// drift_diff: offline DES-vs-real drift report from two saved run reports.
//
//   mitos_run prog.mitos --backend=des     --report-out=des.json
//   mitos_run prog.mitos --backend=threads --report-out=threads.json
//   drift_diff des.json threads.json [--json]
//
// Each input is a mitos_run --report-out file; its "clock" field says which
// time domain it measured, so the two files may be given in either order
// (exactly one must be virtual and one wall). Prints the per-operator and
// per-step virtual-vs-wall ratio report (obs/analysis/drift.h); --json
// emits the deterministic JSON form instead.
//
// Exit codes: 0 report printed, 2 unreadable/invalid input.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/analysis/drift.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "drift_diff: %s\n", message.c_str());
  return 2;
}

bool ReadTextFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string paths[2];
  int num_paths = 0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown flag: " + arg);
    } else if (num_paths < 2) {
      paths[num_paths++] = arg;
    } else {
      return Fail("expected exactly two report files, got a third: " + arg);
    }
  }
  if (num_paths != 2) {
    return Fail(
        "usage: drift_diff <report-a.json> <report-b.json> [--json]\n"
        "  inputs are mitos_run --report-out files: one from --backend=des, "
        "one from --backend=threads (either order)");
  }

  mitos::obs::analysis::DriftSide sides[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!ReadTextFile(paths[i], &text)) {
      return Fail("cannot open " + paths[i]);
    }
    auto side =
        mitos::obs::analysis::DriftSide::FromReportJson(text, paths[i]);
    if (!side.ok()) {
      return Fail(paths[i] + ": " + side.status().ToString());
    }
    sides[i] = std::move(*side);
  }

  auto report = mitos::obs::analysis::BuildDriftReport(sides[0], sides[1]);
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf("%s", (json ? report->ToJson() : report->ToString()).c_str());
  return 0;
}
