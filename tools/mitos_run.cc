// mitos_run: run a textual Mitos program from the command line.
//
//   mitos_run examples/scripts/visit_count.mitos
//       --engine=mitos --machines=8 --gen-visits=10,5000,100
//
// Flags:
//   --engine=<reference|mitos|mitos-nopipe|mitos-nohoist|flink|
//             flink-jobs|spark|naiad|tensorflow>   (default mitos)
//   --machines=N                                   (default 4)
//   --backend=<des|threads>  execution substrate (default des): the
//                       deterministic discrete-event simulator, or a real
//                       thread-per-machine pool running the same operator
//                       kernels under wall-clock time (Mitos engines only;
//                       differential-tested against the DES — see
//                       DESIGN.md §11)
//   --gen-visits=days,entriesPerDay,numPages       synthesize visit logs
//   --gen-types=numPages,numTypes                  synthesize pageTypes
//   --gen-graph=vertices,edges                     synthesize a graph
//   --gen-points=points,clusters                   synthesize k-means input
//   --dump-ir                                      print the SSA IR
//   --dump-dot                                     print the dataflow (dot)
//   --explain[=dot|json]  plan EXPLAIN: print the AST → SSA → dataflow
//                       plan (Graphviz DOT by default, or one JSON object)
//                       with per-operator cost annotations back-filled from
//                       the profiled run (api::Engine::Explain)
//   --report            print the post-run performance diagnosis: critical
//                       path with per-step compute/comms/barrier/broadcast
//                       breakdown, plus skew & straggler attribution
//   --report-out=FILE   write the same diagnosis as deterministic JSON
//   --drift-report      run the program on BOTH backends (a fresh DES run
//                       and a fresh threads run, each from the pristine
//                       input files) and print per-operator and per-step
//                       virtual-vs-wall drift ratios (Mitos engines only;
//                       see DESIGN.md §12 and tools/drift_diff for the
//                       two-files offline variant)
//   --drift-out=FILE    write the same drift report as deterministic JSON
//   --show-files                                   print produced files
//   --trace-out=FILE    write a Chrome trace-event JSON of the run; open it
//                       at https://ui.perfetto.dev or chrome://tracing
//   --metrics-out=FILE  write counters/gauges/histograms + the per-step
//                       timeline as JSON
//   --metrics-format=json|prom  format for --metrics-out: schema-versioned
//                       JSON (default) or Prometheus text exposition
//                       (mitos_-prefixed families; counters, gauges, and
//                       summary quantiles — see DESIGN.md §10)
//   --event-log=FILE    stream structured JSONL events (steps, decisions,
//                       template activity, faults, recovery, checkpoints,
//                       snapshots, watchdog stalls) to FILE as the run
//                       executes; each record carries virtual time and a
//                       wall-clock timestamp
//   --snapshot-every=K  with --event-log: also emit a metrics snapshot
//                       record every K virtual seconds (snapshots at every
//                       control-flow step boundary are always on)
//   --watchdog=on|off   step-level stall watchdog (default on with
//                       --event-log): flags a stall when no step completes
//                       within an 8x rolling-median window and emits a
//                       watchdog_stall record naming the operators behind
//   --progress          render a one-line live status on stderr (current
//                       step, path length, template hit rate, faults seen)
//   --profile           print the per-operator CPU table and the per-step
//                       timeline (step index, path, barrier wait, data moved)
//   --step-templates=on|off  step-template control-plane caching (Mitos
//                       engines; default on): validated replay of per-step
//                       bag-id/input-choice/routing decisions across
//                       structurally identical loop iterations
//   --columnar=on|off   columnar chunk plane (Mitos engines; default on):
//                       off boxes every chunk as a DatumVector end to end
//                       (the pre-batching data plane; ablation baseline).
//                       Outputs are element-identical either way
//   --faults=SPEC       deterministic fault injection (Mitos engines only):
//                       "crash=M@T[+R]; drop=P[@SEED]; slow=MxF; ckpt=K"
//                       e.g. --faults="crash=1@2.5+0.5" crashes machine 1 at
//                       t=2.5s and restarts it 0.5s later (see sim/fault.h)
//   --check-against=<engine>  after the main run, run the program a second
//                       time on the named engine from the pristine inputs
//                       and require both runs to produce the same output
//                       files with the same elements (multiset equality).
//                       `--check-against=reference` turns any script into a
//                       correctness assertion.
//
// Exit codes (also documented in README.md):
//   0  run succeeded (and --check-against, if given, agreed)
//   1  engine-result mismatch: the --check-against run diverged
//   2  infrastructure error: bad flags, unreadable script, parse/compile/
//      run error — anything that is not an engine-vs-engine divergence
//
// Logging: MITOS_LOG_LEVEL=info|warning|error and MITOS_VLOG=N environment
// variables control diagnostic output on stderr (see src/common/logging.h).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ir/ssa.h"
#include "lang/parser.h"
#include "mitos.h"
#include "obs/analysis/analysis.h"
#include "obs/analysis/drift.h"
#include "obs/live/event_log.h"
#include "obs/live/prom.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/translator.h"
#include "sim/fault.h"

namespace {

using namespace mitos;

bool ParseInts(const std::string& value, std::vector<int64_t>* out) {
  std::stringstream stream(value);
  std::string piece;
  while (std::getline(stream, piece, ',')) {
    try {
      out->push_back(std::stoll(piece));
    } catch (...) {
      return false;
    }
  }
  return !out->empty();
}

// Infrastructure failure (exit 2): flags, files, parse, compile, or run —
// distinct from exit 1, which is reserved for an engine-result mismatch
// found by --check-against.
int Fail(const std::string& message) {
  std::fprintf(stderr, "mitos_run: %s\n", message.c_str());
  return 2;
}

int FailMismatch(const std::string& message) {
  std::fprintf(stderr, "mitos_run: engine mismatch: %s\n", message.c_str());
  return 1;
}

bool ParseEngineName(const std::string& name, api::EngineKind* out) {
  if (name == "reference") *out = api::EngineKind::kReference;
  else if (name == "mitos") *out = api::EngineKind::kMitos;
  else if (name == "mitos-nopipe") *out = api::EngineKind::kMitosNoPipelining;
  else if (name == "mitos-nohoist") *out = api::EngineKind::kMitosNoHoisting;
  else if (name == "flink") *out = api::EngineKind::kFlink;
  else if (name == "flink-jobs") *out = api::EngineKind::kFlinkSeparateJobs;
  else if (name == "spark") *out = api::EngineKind::kSpark;
  else if (name == "naiad") *out = api::EngineKind::kNaiad;
  else if (name == "tensorflow") *out = api::EngineKind::kTensorFlow;
  else return false;
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << contents;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string script_path;
  std::string engine_name = "mitos";
  std::string backend_name = "des";
  int machines = 4;
  bool dump_ir = false, dump_dot = false, show_files = false;
  bool profile = false, report = false, drift = false;
  std::string explain_format;  // "", "dot", or "json"
  std::string trace_out, metrics_out, report_out, drift_out, faults_spec;
  std::string metrics_format = "json";
  std::string event_log_out;
  std::string check_against;
  double snapshot_every = 0;
  bool progress = false;
  std::string watchdog_flag = "auto";  // on with --event-log by default
  bool have_faults = false;
  bool step_templates = true;
  bool columnar = true;
  sim::SimFileSystem fs;
  std::vector<std::string> input_files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--engine=", 0) == 0) {
      engine_name = value_of("--engine=");
    } else if (arg.rfind("--machines=", 0) == 0) {
      machines = std::atoi(value_of("--machines=").c_str());
    } else if (arg.rfind("--backend=", 0) == 0) {
      backend_name = value_of("--backend=");
      if (backend_name != "des" && backend_name != "threads") {
        return Fail("--backend expects des or threads, got " + backend_name);
      }
    } else if (arg.rfind("--gen-visits=", 0) == 0) {
      std::vector<int64_t> v;
      if (!ParseInts(value_of("--gen-visits="), &v) || v.size() != 3) {
        return Fail("--gen-visits expects days,entriesPerDay,numPages");
      }
      workloads::GenerateVisitLogs(&fs, {.days = static_cast<int>(v[0]),
                                         .entries_per_day = v[1],
                                         .num_pages = v[2]});
    } else if (arg.rfind("--gen-types=", 0) == 0) {
      std::vector<int64_t> v;
      if (!ParseInts(value_of("--gen-types="), &v) || v.size() != 2) {
        return Fail("--gen-types expects numPages,numTypes");
      }
      workloads::GeneratePageTypes(&fs, {.num_pages = v[0],
                                         .num_types = v[1]});
    } else if (arg.rfind("--gen-graph=", 0) == 0) {
      std::vector<int64_t> v;
      if (!ParseInts(value_of("--gen-graph="), &v) || v.size() != 2) {
        return Fail("--gen-graph expects vertices,edges");
      }
      workloads::GenerateGraph(&fs, {.num_vertices = v[0],
                                     .num_edges = v[1]});
    } else if (arg.rfind("--gen-points=", 0) == 0) {
      std::vector<int64_t> v;
      if (!ParseInts(value_of("--gen-points="), &v) || v.size() != 2) {
        return Fail("--gen-points expects points,clusters");
      }
      workloads::GeneratePoints(&fs, {.num_points = v[0],
                                      .num_clusters = v[1]});
    } else if (arg == "--dump-ir") {
      dump_ir = true;
    } else if (arg == "--dump-dot") {
      dump_dot = true;
    } else if (arg == "--explain") {
      explain_format = "dot";
    } else if (arg.rfind("--explain=", 0) == 0) {
      explain_format = value_of("--explain=");
      if (explain_format != "dot" && explain_format != "json") {
        return Fail("--explain expects dot or json, got " + explain_format);
      }
    } else if (arg == "--show-files") {
      show_files = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg.rfind("--report-out=", 0) == 0) {
      report_out = value_of("--report-out=");
    } else if (arg == "--drift-report") {
      drift = true;
    } else if (arg.rfind("--drift-out=", 0) == 0) {
      drift_out = value_of("--drift-out=");
      if (drift_out.empty()) return Fail("--drift-out expects a file");
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = value_of("--trace-out=");
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = value_of("--metrics-out=");
    } else if (arg.rfind("--metrics-format=", 0) == 0) {
      metrics_format = value_of("--metrics-format=");
      if (metrics_format != "json" && metrics_format != "prom") {
        return Fail("--metrics-format expects json or prom, got " +
                    metrics_format);
      }
    } else if (arg.rfind("--event-log=", 0) == 0) {
      event_log_out = value_of("--event-log=");
      if (event_log_out.empty()) return Fail("--event-log expects a file");
    } else if (arg.rfind("--snapshot-every=", 0) == 0) {
      snapshot_every = std::atof(value_of("--snapshot-every=").c_str());
      if (snapshot_every <= 0) {
        return Fail("--snapshot-every expects a positive virtual-second "
                    "interval");
      }
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      watchdog_flag = value_of("--watchdog=");
      if (watchdog_flag != "on" && watchdog_flag != "off") {
        return Fail("--watchdog expects on or off, got " + watchdog_flag);
      }
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg.rfind("--step-templates=", 0) == 0) {
      const std::string value = value_of("--step-templates=");
      if (value != "on" && value != "off") {
        return Fail("--step-templates expects on or off, got " + value);
      }
      step_templates = value == "on";
    } else if (arg.rfind("--columnar=", 0) == 0) {
      const std::string value = value_of("--columnar=");
      if (value != "on" && value != "off") {
        return Fail("--columnar expects on or off, got " + value);
      }
      columnar = value == "on";
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_spec = value_of("--faults=");
      have_faults = true;
    } else if (arg.rfind("--check-against=", 0) == 0) {
      check_against = value_of("--check-against=");
      if (check_against.empty()) {
        return Fail("--check-against expects an engine name");
      }
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown flag: " + arg);
    } else {
      script_path = arg;
    }
  }
  if (script_path.empty()) {
    return Fail("usage: mitos_run <script.mitos> [flags]  (see header)");
  }
  input_files = fs.ListFiles();

  std::ifstream file(script_path);
  if (!file) return Fail("cannot open " + script_path);
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto program = lang::Parse(buffer.str());
  if (!program.ok()) {
    return Fail("parse error: " + program.status().ToString());
  }

  if (dump_ir || dump_dot) {
    auto ir = ir::CompileToIr(*program);
    if (!ir.ok()) return Fail("compile error: " + ir.status().ToString());
    if (dump_ir) std::printf("%s\n", ir::ToString(*ir).c_str());
    if (dump_dot) {
      auto translated = runtime::Translate(*ir, machines);
      if (!translated.ok()) {
        return Fail("translate error: " + translated.status().ToString());
      }
      std::printf("%s\n", dataflow::ToDot(translated->graph).c_str());
    }
  }

  api::EngineKind engine;
  if (!ParseEngineName(engine_name, &engine)) {
    return Fail("unknown engine: " + engine_name);
  }
  api::EngineKind check_engine = api::EngineKind::kReference;
  if (!check_against.empty() &&
      !ParseEngineName(check_against, &check_engine)) {
    return Fail("unknown --check-against engine: " + check_against);
  }

  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  sim::FaultPlan fault_plan;
  const bool want_report = report || !report_out.empty();
  const bool want_drift = drift || !drift_out.empty();
  if (want_drift) {
    if (engine != api::EngineKind::kMitos &&
        engine != api::EngineKind::kMitosNoPipelining &&
        engine != api::EngineKind::kMitosNoHoisting) {
      return Fail(
          "--drift-report compares the DES against the threads backend, "
          "which runs Mitos engines only (got --engine=" +
          engine_name + ")");
    }
    if (have_faults) {
      return Fail(
          "--drift-report cannot run with --faults: fault plans are "
          "virtual-time schedules the threads backend rejects");
    }
  }
  api::RunConfig config{.machines = machines};
  config.backend = backend_name == "threads" ? api::BackendKind::kThreads
                                             : api::BackendKind::kDes;
  config.step_templates = step_templates;
  config.columnar = columnar;
  // The analyzer consumes the same recorder the trace export does; both are
  // purely observational, so enabling them never changes virtual time.
  if (!trace_out.empty() || want_report) config.trace = &trace;
  if (!metrics_out.empty() || profile || want_report) {
    config.metrics = &metrics;
  }
  std::unique_ptr<obs::live::EventLog> event_log;
  if (!event_log_out.empty()) {
    auto sink_file =
        std::make_shared<std::ofstream>(event_log_out, std::ios::binary);
    if (!*sink_file) return Fail("cannot write " + event_log_out);
    obs::live::EventLog::Options log_options;
    // Flush per batch so the file can be tailed while the run executes.
    log_options.sink = [sink_file](const std::string& text) {
      (*sink_file) << text;
      sink_file->flush();
    };
    log_options.wall_clock_ms = [] {
      return static_cast<int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
    };
    event_log =
        std::make_unique<obs::live::EventLog>(std::move(log_options));
    config.live.event_log = event_log.get();
    // Snapshot records read the metrics registry, so the log pulls it in.
    config.metrics = &metrics;
    config.live.snapshots.enabled = true;
    config.live.snapshots.every_virtual_seconds = snapshot_every;
    config.live.watchdog.enabled = watchdog_flag != "off";
  } else if (snapshot_every > 0) {
    return Fail("--snapshot-every requires --event-log");
  } else if (watchdog_flag == "on") {
    return Fail("--watchdog=on requires --event-log");
  }
  if (progress) {
    config.live.progress = [](const obs::live::Progress& p) {
      const double total =
          static_cast<double>(p.template_hits + p.template_misses);
      const double hit_rate =
          total > 0 ? 100.0 * static_cast<double>(p.template_hits) / total
                    : 0.0;
      std::fprintf(stderr,
                   "\r[t=%8.3fs] step %d  path %d  attempt %d  "
                   "tmpl %5.1f%%  faults %lld%s",
                   p.virtual_time, p.step + 1, p.path_len, p.attempt,
                   hit_rate, static_cast<long long>(p.faults_seen),
                   p.complete ? "  done\n" : "");
      std::fflush(stderr);
    };
  }
  if (have_faults) {
    auto parsed = sim::FaultPlan::Parse(faults_spec);
    if (!parsed.ok()) {
      return Fail("bad --faults spec: " + parsed.status().ToString());
    }
    fault_plan = *parsed;
    config.faults = &fault_plan;
  }

  // Drift comparison and --check-against both re-run the program from the
  // pristine inputs (the main run appends its outputs to `fs`).
  sim::SimFileSystem pristine_fs;
  if (want_drift || !check_against.empty()) pristine_fs = fs;

  api::Engine engine_handle(engine, config);
  auto result = engine_handle.Run(*program, &fs);
  if (!result.ok()) {
    return Fail("run error: " + result.status().ToString());
  }
  std::printf("engine:   %s (%d machines%s)\n", api::EngineKindName(engine),
              machines,
              config.backend == api::BackendKind::kThreads
                  ? ", threads backend"
                  : "");
  std::printf("stats:    %s\n", result->stats.ToString().c_str());
  if (!trace_out.empty()) {
    if (!WriteTextFile(trace_out, trace.ToJson())) {
      return Fail("cannot write " + trace_out);
    }
    std::printf("trace:    %s (%zu events; open at https://ui.perfetto.dev)\n",
                trace_out.c_str(), trace.events().size());
  }
  if (!metrics_out.empty()) {
    obs::live::PromRunInfo prom_info;
    prom_info.backend = backend_name;
    // total_seconds lives in the backend's own clock domain: virtual under
    // the DES, wall seconds under the thread pool.
    if (config.backend == api::BackendKind::kThreads) {
      prom_info.wall_seconds = result->stats.total_seconds;
    } else {
      prom_info.virtual_seconds = result->stats.total_seconds;
    }
    const std::string text =
        metrics_format == "prom"
            ? obs::live::ToPrometheusText(metrics, prom_info)
            : metrics.ToJson();
    if (!WriteTextFile(metrics_out, text)) {
      return Fail("cannot write " + metrics_out);
    }
    std::printf("metrics:  %s (%s)\n", metrics_out.c_str(),
                metrics_format.c_str());
  }
  if (event_log != nullptr) {
    event_log->Flush();
    std::printf("events:   %s (%lld records", event_log_out.c_str(),
                static_cast<long long>(event_log->appended()));
    if (event_log->CountKind("watchdog_stall") > 0) {
      std::printf(", %lld stall warnings",
                  static_cast<long long>(
                      event_log->CountKind("watchdog_stall")));
    }
    std::printf(")\n");
  }
  if (profile) {
    std::vector<std::pair<double, std::string>> rows;
    for (const auto& [name, cpu] : result->stats.operator_cpu) {
      rows.emplace_back(cpu, name);
    }
    std::sort(rows.rbegin(), rows.rend());
    std::printf("operator CPU profile (top 12):\n");
    for (size_t i = 0; i < rows.size() && i < 12; ++i) {
      std::printf("  %10.4fs  %s\n", rows[i].first, rows[i].second.c_str());
    }
    if (!metrics.steps().empty()) {
      std::printf("%s", metrics.StepTableToString().c_str());
    }
  }
  if (want_report) {
    obs::analysis::RunAnalysis analysis =
        obs::analysis::Analyze(trace, &metrics);
    if (report) std::printf("%s", analysis.ToString().c_str());
    if (!report_out.empty()) {
      if (!WriteTextFile(report_out, analysis.ToJson())) {
        return Fail("cannot write " + report_out);
      }
      std::printf("report:   %s\n", report_out.c_str());
    }
  }
  if (want_drift) {
    // One fresh run per backend, each fully instrumented and each from the
    // pristine inputs — the main run above is left untouched.
    auto run_side = [&](api::BackendKind side_backend,
                        obs::TraceRecorder* side_trace,
                        obs::MetricsRegistry* side_metrics) {
      sim::SimFileSystem side_fs = pristine_fs;
      api::RunConfig side_config{.machines = machines};
      side_config.backend = side_backend;
      side_config.step_templates = step_templates;
      side_config.columnar = columnar;
      side_config.trace = side_trace;
      side_config.metrics = side_metrics;
      return api::Run(engine, *program, &side_fs, side_config);
    };
    obs::TraceRecorder des_trace, threads_trace;
    obs::MetricsRegistry des_metrics, threads_metrics;
    auto des_run = run_side(api::BackendKind::kDes, &des_trace, &des_metrics);
    if (!des_run.ok()) {
      return Fail("drift DES run error: " + des_run.status().ToString());
    }
    auto threads_run =
        run_side(api::BackendKind::kThreads, &threads_trace,
                 &threads_metrics);
    if (!threads_run.ok()) {
      return Fail("drift threads run error: " +
                  threads_run.status().ToString());
    }
    auto drift_report = obs::analysis::BuildDriftReport(
        obs::analysis::DriftSide::FromAnalysis(
            obs::analysis::Analyze(des_trace, &des_metrics), "des"),
        obs::analysis::DriftSide::FromAnalysis(
            obs::analysis::Analyze(threads_trace, &threads_metrics),
            "threads"));
    if (!drift_report.ok()) {
      return Fail("drift error: " + drift_report.status().ToString());
    }
    if (drift) std::printf("%s", drift_report->ToString().c_str());
    if (!drift_out.empty()) {
      if (!WriteTextFile(drift_out, drift_report->ToJson())) {
        return Fail("cannot write " + drift_out);
      }
      std::printf("drift:    %s\n", drift_out.c_str());
    }
  }
  if (!check_against.empty()) {
    // Second run on the check engine, from pristine inputs, fault-free and
    // on the DES (the check engine need not support the main run's backend
    // or fault plan); outputs must match as multisets per file.
    sim::SimFileSystem check_fs = pristine_fs;
    api::RunConfig check_config{.machines = machines};
    check_config.step_templates = step_templates;
    check_config.columnar = columnar;
    auto check_run = api::Run(check_engine, *program, &check_fs, check_config);
    if (!check_run.ok()) {
      return Fail("--check-against run error: " +
                  check_run.status().ToString());
    }
    auto outputs_of = [&](const sim::SimFileSystem& side) {
      std::vector<std::string> names;
      for (const std::string& name : side.ListFiles()) {
        if (std::find(input_files.begin(), input_files.end(), name) ==
            input_files.end()) {
          names.push_back(name);
        }
      }
      return names;
    };
    const std::vector<std::string> main_outputs = outputs_of(fs);
    const std::vector<std::string> check_outputs = outputs_of(check_fs);
    if (main_outputs != check_outputs) {
      return FailMismatch(engine_name + " and " + check_against +
                          " produced different output file sets");
    }
    for (const std::string& name : main_outputs) {
      DatumVector got = *fs.Read(name);
      DatumVector want = *check_fs.Read(name);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      if (got != want) {
        return FailMismatch(
            name + ": " + engine_name + " wrote " +
            std::to_string(got.size()) + " element(s) " +
            mitos::ToString(got, 6) + ", " + check_against + " wrote " +
            std::to_string(want.size()) + " " + mitos::ToString(want, 6));
      }
    }
    std::printf("check:    %s agrees with %s (%zu output file(s))\n",
                engine_name.c_str(), check_against.c_str(),
                main_outputs.size());
  }
  if (!explain_format.empty()) {
    // After the run, so Explain() back-fills measured operator costs.
    auto plan = engine_handle.Explain(*program);
    if (!plan.ok()) {
      return Fail("explain error: " + plan.status().ToString());
    }
    std::printf("%s\n", (explain_format == "json" ? plan->ToJson()
                                                  : plan->ToDot())
                            .c_str());
  }
  if (show_files) {
    std::printf("files:\n");
    for (const std::string& name : fs.ListFiles()) {
      bool is_input = false;
      for (const std::string& in : input_files) {
        if (in == name) is_input = true;
      }
      if (is_input) continue;
      auto data = fs.Read(name);
      std::printf("  %s (%zu elements): %s\n", name.c_str(), data->size(),
                  mitos::ToString(*data, 8).c_str());
    }
  }
  return 0;
}
