// bench_diff: compare two bench-regression baseline files (BENCH_*.json,
// written by the figure benchmarks' --baseline-out flag) and flag runs whose
// virtual time regressed beyond a threshold.
//
//   bench_diff BASE.json CURRENT.json
//       [--threshold=0.10 | --no-worse] [--advisory]
//
// --no-worse tightens the threshold to a hair above zero (1e-9 relative),
// i.e. CURRENT must not be slower than BASE on any run at all; used by the
// CI perf-smoke gate to assert step-templates-on never loses to off.
//
// --advisory makes the comparison report-only: drift is printed but the
// exit status stays 0 regardless (I/O and schema errors still exit 2).
// Meant for wall-clock baselines (BENCH_threads_wallclock.json) whose
// numbers depend on the host — CI cross-checks them against a committed
// reference with a generous threshold (default 0.50 in this mode) without
// letting a noisy runner fail the build.
//
// Exit status: 0 when no regression (or --advisory), 1 when any run
// regressed (or a run present in BASE is missing from CURRENT), 2 on usage
// or I/O errors — including a baseline that fails to parse, has no
// "schema" field, or carries a schema version this binary doesn't
// understand. Baselines hold virtual-time quantities, so a committed BASE
// diffs byte-stably against a fresh CI run on any host (wall-clock bench
// shapes are the exception — hence --advisory).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/analysis/baseline.h"

int main(int argc, char** argv) {
  using mitos::obs::analysis::BaselineDiff;
  using mitos::obs::analysis::BaselineFile;
  using mitos::obs::analysis::Compare;

  std::string base_path, current_path;
  double threshold = 0.10;
  bool have_threshold = false;
  bool advisory = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::atof(arg.c_str() + std::strlen("--threshold="));
      if (threshold <= 0) {
        std::fprintf(stderr, "bench_diff: bad --threshold value: %s\n",
                     arg.c_str());
        return 2;
      }
      have_threshold = true;
    } else if (arg == "--no-worse") {
      threshold = 1e-9;
      have_threshold = true;
    } else if (arg == "--advisory") {
      advisory = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_diff: unknown flag: %s\n", arg.c_str());
      return 2;
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "bench_diff: too many arguments\n");
      return 2;
    }
  }
  if (current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_diff BASE.json CURRENT.json "
                 "[--threshold=0.10 | --no-worse] [--advisory]\n");
    return 2;
  }
  // Wall-clock numbers are host-dependent; without an explicit threshold
  // the advisory cross-check uses a generous one.
  if (advisory && !have_threshold) threshold = 0.50;

  auto base = BaselineFile::Load(base_path);
  if (!base.ok()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", base_path.c_str(),
                 base.status().ToString().c_str());
    return 2;
  }
  auto current = BaselineFile::Load(current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", current_path.c_str(),
                 current.status().ToString().c_str());
    return 2;
  }

  // Baseline files carry a schema version ("schema":1). A missing field
  // (schema 0) or a version this binary doesn't know is a hard error: a
  // comparison across shapes silently reads garbage quantities, which is
  // worse than failing the gate outright.
  for (const auto& [path, file] :
       {std::pair{&base_path, &*base}, std::pair{&current_path, &*current}}) {
    if (file->schema == 0) {
      std::fprintf(stderr,
                   "bench_diff: %s: baseline has no \"schema\" field; "
                   "regenerate it with the current bench binaries\n",
                   path->c_str());
      return 2;
    }
    if (file->schema != BaselineFile::kSchemaVersion) {
      std::fprintf(stderr,
                   "bench_diff: %s: unknown baseline schema %d (this tool "
                   "understands %d)\n",
                   path->c_str(), file->schema,
                   BaselineFile::kSchemaVersion);
      return 2;
    }
  }
  BaselineDiff diff = Compare(*base, *current, threshold);
  std::printf("%s", diff.ToString().c_str());
  if (diff.failed()) {
    if (advisory) {
      std::printf("ADVISORY: %d drift(s) beyond %g%%, %zu missing run(s) — "
                  "report only, not failing\n",
                  diff.regressions, threshold * 100, diff.missing.size());
      return 0;
    }
    std::printf("FAIL: %d regression(s), %zu missing run(s) "
                "(threshold %g%%)\n",
                diff.regressions, diff.missing.size(), threshold * 100);
    return 1;
  }
  std::printf("OK: %zu run(s) compared, %d improvement(s), %zu new run(s) "
              "(threshold %g%%)\n",
              diff.rows.size(), diff.improvements, diff.added.size(),
              threshold * 100);
  return 0;
}
