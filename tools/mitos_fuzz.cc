// mitos_fuzz: generative differential testing of every engine.
//
// Generates seeded random control-flow programs (testing/generator.h), runs
// each on the full engine matrix (testing/differential.h) — Mitos with step
// templates on and off, DES and threads backends, the ablation engines, and
// the Flink-/Spark-style baselines — and cross-checks all outputs against
// the sequential reference interpreter, plus run-twice determinism and
// byte-identical fault-plan recovery. On divergence the failing program is
// greedily minimized (testing/shrink.h) and written as a self-contained
// repro file (testing/repro.h) that both mitos_fuzz --replay and mitos_run
// accept.
//
//   mitos_fuzz --seed=42 --count=150            # fuzz 150 programs
//   mitos_fuzz --replay=fuzz_repro.mitos        # re-run one finding
//   mitos_fuzz --corpus=tests/fixtures/fuzz     # replay the pinned corpus
//
// Flags:
//   --seed=N            base seed (default 1); case i uses CaseSeed(N, i)
//   --count=N           programs to generate (default 50)
//   --max-depth=N       control-flow nesting depth (default 3)
//   --budget=N          statement budget per program (default 14)
//   --engines=a,b       label-substring filter over the matrix (labels:
//                       mitos-des-t@3 mitos-des-not@3 mitos-des-t@1
//                       mitos-des-boxed@3 mitos-threads@3 mitos-fusion@3
//                       mitos-nopipe@3 flink@3 spark@3)
//   --faults-per-program=N  fault plans replayed per program (default 2)
//   --shrink / --no-shrink  minimize findings (default on)
//   --max-evals=N       shrink evaluation budget (default 300)
//   --repro-out=FILE    where to write the minimized repro
//                       (default fuzz_repro.mitos)
//   --replay=FILE       replay one repro file instead of generating
//   --corpus=DIR        replay every *.mitos in DIR instead of generating
//   --emit-corpus=DIR   also write every generated case to DIR in repro
//                       format (corpus curation: cases must still pass)
//   --time-budget=SECS  stop starting new cases after SECS wall seconds
//   --stats-out=FILE    write run statistics as JSON
//
// Exit codes (CI contract, also documented in README.md):
//   0  every case agreed on every engine
//   1  a divergence was found (the repro file holds the minimized case)
//   2  infrastructure error — the generator, reference interpreter, or the
//      harness itself broke; not an engine bug
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "testing/differential.h"
#include "testing/generator.h"
#include "testing/repro.h"
#include "testing/shrink.h"

namespace {

using namespace mitos;

constexpr int kExitOk = 0;
constexpr int kExitMismatch = 1;
constexpr int kExitInfra = 2;

int Infra(const std::string& message) {
  std::fprintf(stderr, "mitos_fuzz: infra error: %s\n", message.c_str());
  return kExitInfra;
}

struct Stats {
  int cases = 0;
  int engine_runs = 0;
  int shrink_evals = 0;
  std::map<std::string, int> op_histogram;

  std::string ToJson(double elapsed_seconds) const {
    std::string out = "{\n";
    out += "  \"cases\": " + std::to_string(cases) + ",\n";
    out += "  \"engine_runs\": " + std::to_string(engine_runs) + ",\n";
    out += "  \"shrink_evals\": " + std::to_string(shrink_evals) + ",\n";
    out += "  \"elapsed_seconds\": " +
           std::to_string(elapsed_seconds) + ",\n";
    out += "  \"op_histogram\": {";
    bool first = true;
    for (const auto& [op, n] : op_histogram) {
      out += first ? "\n" : ",\n";
      out += "    \"" + op + "\": " + std::to_string(n);
      first = false;
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
  }
};

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool closed = std::fclose(f) == 0;
  return n == contents.size() && closed;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t base_seed = 1;
  int count = 50;
  int max_depth = 3;
  int budget = 14;
  int faults_per_program = 2;
  int max_evals = 300;
  bool shrink = true;
  double time_budget = 0;
  std::string engines_filter, repro_out = "fuzz_repro.mitos";
  std::string replay_path, corpus_dir, emit_corpus_dir, stats_out;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--seed=", 0) == 0) {
      base_seed = std::strtoull(value_of("--seed=").c_str(), nullptr, 0);
    } else if (arg.rfind("--count=", 0) == 0) {
      count = std::atoi(value_of("--count=").c_str());
    } else if (arg.rfind("--max-depth=", 0) == 0) {
      max_depth = std::atoi(value_of("--max-depth=").c_str());
    } else if (arg.rfind("--budget=", 0) == 0) {
      budget = std::atoi(value_of("--budget=").c_str());
    } else if (arg.rfind("--engines=", 0) == 0) {
      engines_filter = value_of("--engines=");
    } else if (arg.rfind("--faults-per-program=", 0) == 0) {
      faults_per_program =
          std::atoi(value_of("--faults-per-program=").c_str());
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg.rfind("--max-evals=", 0) == 0) {
      max_evals = std::atoi(value_of("--max-evals=").c_str());
    } else if (arg.rfind("--repro-out=", 0) == 0) {
      repro_out = value_of("--repro-out=");
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay_path = value_of("--replay=");
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = value_of("--corpus=");
    } else if (arg.rfind("--emit-corpus=", 0) == 0) {
      emit_corpus_dir = value_of("--emit-corpus=");
    } else if (arg.rfind("--time-budget=", 0) == 0) {
      time_budget = std::atof(value_of("--time-budget=").c_str());
    } else if (arg.rfind("--stats-out=", 0) == 0) {
      stats_out = value_of("--stats-out=");
    } else {
      return Infra("unknown flag: " + arg + " (see tools/mitos_fuzz.cc)");
    }
  }

  testing::DiffOptions diff_options;
  diff_options.variants =
      testing::FilterMatrix(testing::DefaultMatrix(), engines_filter);
  if (diff_options.variants.empty()) {
    return Infra("--engines=" + engines_filter +
                 " matched no engine variant");
  }

  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  Stats stats;

  // ----- Replay modes -----
  if (!replay_path.empty() || !corpus_dir.empty()) {
    std::vector<std::string> paths;
    if (!replay_path.empty()) paths.push_back(replay_path);
    if (!corpus_dir.empty()) {
      std::vector<std::string> corpus = testing::ListCorpus(corpus_dir);
      if (corpus.empty()) {
        return Infra("--corpus=" + corpus_dir +
                     " holds no .mitos repro files");
      }
      paths.insert(paths.end(), corpus.begin(), corpus.end());
    }
    int exit_code = kExitOk;
    for (const std::string& path : paths) {
      auto repro = testing::LoadReproFile(path);
      if (!repro.ok()) return Infra(repro.status().ToString());
      testing::DiffOptions replay_options = diff_options;
      replay_options.fault_plans = repro->fault_plans;
      auto report = testing::RunDifferential(repro->program, replay_options);
      ++stats.cases;
      stats.engine_runs += report.runs;
      std::printf("%-52s %s\n", path.c_str(), report.ToString().c_str());
      if (report.verdict == testing::Verdict::kInfraError) {
        return Infra(path + ": " + report.ToString());
      }
      if (report.verdict == testing::Verdict::kMismatch) {
        exit_code = kExitMismatch;
      }
    }
    if (!stats_out.empty() &&
        !WriteTextFile(stats_out, stats.ToJson(elapsed()))) {
      return Infra("cannot write " + stats_out);
    }
    std::printf("replayed %d repro(s), %d engine runs: %s\n", stats.cases,
                stats.engine_runs,
                exit_code == kExitOk ? "all agree" : "DIVERGENCE");
    return exit_code;
  }

  // ----- Generative mode -----
  testing::GeneratorOptions gen_options;
  gen_options.max_depth = max_depth;
  gen_options.budget = budget;
  gen_options.fault_plans = faults_per_program;

  for (int i = 0; i < count; ++i) {
    if (time_budget > 0 && elapsed() >= time_budget) {
      std::printf("time budget (%.0fs) reached after %d cases\n",
                  time_budget, stats.cases);
      break;
    }
    gen_options.seed = testing::CaseSeed(base_seed, i);
    testing::GeneratedCase generated = testing::GenerateCase(gen_options);
    testing::DiffOptions case_options = diff_options;
    case_options.fault_plans = generated.fault_plans;

    auto report = testing::RunDifferential(generated.program, case_options);
    ++stats.cases;
    stats.engine_runs += report.runs;
    for (const auto& [op, n] : generated.op_histogram) {
      stats.op_histogram[op] += n;
    }
    if (!emit_corpus_dir.empty()) {
      testing::Repro entry;
      entry.seed = gen_options.seed;
      entry.fault_specs = generated.fault_specs;
      entry.source = generated.source;
      auto saved = testing::SaveReproFile(
          emit_corpus_dir + "/seed_" + std::to_string(gen_options.seed) +
              ".mitos",
          entry);
      if (!saved.ok()) return Infra(saved.ToString());
    }
    if (report.verdict == testing::Verdict::kInfraError) {
      std::fprintf(stderr, "case %d (seed %llu):\n%s\n", i,
                   static_cast<unsigned long long>(gen_options.seed),
                   generated.source.c_str());
      return Infra("case " + std::to_string(i) + ": " + report.ToString());
    }
    if (report.verdict == testing::Verdict::kOk) {
      if ((i + 1) % 25 == 0) {
        std::fprintf(stderr, "mitos_fuzz: %d/%d cases ok (%.1fs)\n", i + 1,
                     count, elapsed());
      }
      continue;
    }

    // ----- A finding: minimize and write the repro -----
    std::printf("case %d (seed %llu) DIVERGED:\n%s\n", i,
                static_cast<unsigned long long>(gen_options.seed),
                report.ToString().c_str());
    lang::Program minimized = generated.program;
    if (shrink) {
      auto still_fails = [&](const lang::Program& candidate) {
        auto r = testing::RunDifferential(candidate, case_options);
        stats.engine_runs += r.runs;
        return r.verdict == testing::Verdict::kMismatch;
      };
      testing::ShrinkOptions shrink_options;
      shrink_options.max_evals = max_evals;
      auto shrunk = testing::Shrink(minimized, still_fails, shrink_options);
      stats.shrink_evals += shrunk.evals;
      std::printf("shrink: %d -> %d statements in %d evals\n",
                  testing::CountStmts(generated.program),
                  testing::CountStmts(shrunk.program), shrunk.evals);
      minimized = shrunk.program;
    }
    // Re-run the minimized program for the repro's header diagnosis.
    auto final_report = testing::RunDifferential(minimized, case_options);
    stats.engine_runs += final_report.runs;
    testing::Repro repro;
    repro.seed = gen_options.seed;
    if (!final_report.mismatches.empty()) {
      repro.mismatch_label = final_report.mismatches[0].label;
      repro.detail = final_report.mismatches[0].detail;
      if (!final_report.mismatches[0].file.empty()) {
        repro.detail =
            final_report.mismatches[0].file + ": " + repro.detail;
      }
    } else if (!report.mismatches.empty()) {
      repro.mismatch_label = report.mismatches[0].label;
      repro.detail = report.mismatches[0].detail;
    }
    repro.fault_specs = generated.fault_specs;
    repro.source = lang::ToSource(minimized);
    auto saved = testing::SaveReproFile(repro_out, repro);
    if (!saved.ok()) return Infra(saved.ToString());
    std::printf("repro written to %s — replay with:\n"
                "  mitos_fuzz --replay=%s\n",
                repro_out.c_str(), repro_out.c_str());
    if (!stats_out.empty() &&
        !WriteTextFile(stats_out, stats.ToJson(elapsed()))) {
      return Infra("cannot write " + stats_out);
    }
    return kExitMismatch;
  }

  if (!stats_out.empty() &&
      !WriteTextFile(stats_out, stats.ToJson(elapsed()))) {
    return Infra("cannot write " + stats_out);
  }
  std::printf(
      "mitos_fuzz: %d cases, %d engine runs, %.1fs — all engines agree\n",
      stats.cases, stats.engine_runs, elapsed());
  return kExitOk;
}
