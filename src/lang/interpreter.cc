#include "lang/interpreter.h"

#include <set>
#include <unordered_map>
#include <utility>

#include "lang/scalar_ops.h"
#include "lang/type_check.h"

namespace mitos::lang {

StatusOr<DatumVector> ReduceByKeyKernel(const DatumVector& input,
                                        const BinaryFn& combine) {
  // first-seen key order keeps the kernel deterministic.
  std::vector<Datum> key_order;
  std::unordered_map<Datum, Datum, DatumHash, DatumEq> acc;
  for (const Datum& element : input) {
    if (!element.is_tuple() || element.size() < 2) {
      return Status::InvalidArgument(
          "reduceByKey input element is not a (key, value) pair: " +
          element.ToString());
    }
    const Datum& key = element.field(0);
    const Datum& value = element.field(1);
    auto it = acc.find(key);
    if (it == acc.end()) {
      acc.emplace(key, value);
      key_order.push_back(key);
    } else {
      it->second = combine(it->second, value);
    }
  }
  DatumVector out;
  out.reserve(key_order.size());
  for (const Datum& key : key_order) {
    out.push_back(Datum::Pair(key, acc.at(key)));
  }
  return out;
}

DatumVector JoinKernel(const DatumVector& build, const DatumVector& probe) {
  std::unordered_map<Datum, DatumVector, DatumHash, DatumEq> table;
  for (const Datum& element : build) {
    table[element.field(0)].push_back(element.field(1));
  }
  DatumVector out;
  for (const Datum& element : probe) {
    auto it = table.find(element.field(0));
    if (it == table.end()) continue;
    for (const Datum& build_value : it->second) {
      out.push_back(Datum::Tuple(
          {element.field(0), build_value, element.field(1)}));
    }
  }
  return out;
}

Interpreter::Interpreter(sim::SimFileSystem* fs, InterpreterOptions options)
    : fs_(fs), options_(options) {
  MITOS_CHECK(fs != nullptr);
}

Status Interpreter::Run(const Program& program) {
  StatusOr<TypeCheckResult> types = TypeCheck(program);
  if (!types.ok()) return types.status();
  scalars_.clear();
  bags_.clear();
  stats_ = InterpreterStats{};
  return RunStmts(program.stmts);
}

Status Interpreter::RunStmts(const StmtList& stmts) {
  for (const StmtPtr& stmt : stmts) {
    MITOS_RETURN_IF_ERROR(RunStmt(*stmt));
  }
  return Status::Ok();
}

bool Interpreter::IsBagExpr(const Expr& expr) const {
  if (IsBagExprKind(expr.kind)) return true;
  return expr.kind == ExprKind::kVarRef && bags_.count(expr.var) > 0;
}

// A condition is a scalar bool or — in Preparator output — a one-element
// bool bag (the paper's ifCond/exitCond nodes are exactly such bags).
StatusOr<bool> Interpreter::EvalCondition(const Expr& expr) {
  Datum value;
  if (IsBagExpr(expr)) {
    StatusOr<DatumVector> bag = EvalBag(expr);
    if (!bag.ok()) return bag.status();
    if (bag->size() != 1) {
      return Status::InvalidArgument(
          "bag condition must hold exactly 1 element, has " +
          std::to_string(bag->size()));
    }
    value = (*bag)[0];
  } else {
    StatusOr<Datum> scalar = EvalScalar(expr);
    if (!scalar.ok()) return scalar.status();
    value = *scalar;
  }
  if (!value.is_bool()) {
    return Status::InvalidArgument("condition is not boolean: " +
                                   value.ToString());
  }
  return value.boolean();
}

// A file name is a scalar string or a one-element string bag.
StatusOr<std::string> Interpreter::EvalFilename(const Expr& expr) {
  Datum value;
  if (IsBagExpr(expr)) {
    StatusOr<DatumVector> bag = EvalBag(expr);
    if (!bag.ok()) return bag.status();
    if (bag->size() != 1) {
      return Status::InvalidArgument("bag filename must hold exactly 1 "
                                     "element");
    }
    value = (*bag)[0];
  } else {
    StatusOr<Datum> scalar = EvalScalar(expr);
    if (!scalar.ok()) return scalar.status();
    value = *scalar;
  }
  if (!value.is_string()) {
    return Status::InvalidArgument("filename is not a string: " +
                                   value.ToString());
  }
  return value.str();
}

Status Interpreter::RunStmt(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kAssign: {
      if (IsBagExpr(*stmt.expr)) {
        StatusOr<DatumVector> value = EvalBag(*stmt.expr);
        if (!value.ok()) return value.status();
        bags_[stmt.var] = std::move(value).value();
      } else {
        StatusOr<Datum> value = EvalScalar(*stmt.expr);
        if (!value.ok()) return value.status();
        scalars_[stmt.var] = std::move(value).value();
      }
      return Status::Ok();
    }
    case StmtKind::kWhile: {
      while (true) {
        StatusOr<bool> cond = EvalCondition(*stmt.expr);
        if (!cond.ok()) return cond.status();
        if (!*cond) break;
        if (++stats_.loop_iterations > options_.max_total_iterations) {
          return Status::FailedPrecondition("loop iteration limit exceeded");
        }
        MITOS_RETURN_IF_ERROR(RunStmts(stmt.body));
      }
      return Status::Ok();
    }
    case StmtKind::kDoWhile: {
      while (true) {
        if (++stats_.loop_iterations > options_.max_total_iterations) {
          return Status::FailedPrecondition("loop iteration limit exceeded");
        }
        MITOS_RETURN_IF_ERROR(RunStmts(stmt.body));
        StatusOr<bool> cond = EvalCondition(*stmt.expr);
        if (!cond.ok()) return cond.status();
        if (!*cond) break;
      }
      return Status::Ok();
    }
    case StmtKind::kIf: {
      StatusOr<bool> cond = EvalCondition(*stmt.expr);
      if (!cond.ok()) return cond.status();
      return RunStmts(*cond ? stmt.body : stmt.else_body);
    }
    case StmtKind::kWriteFile: {
      StatusOr<DatumVector> bag = EvalBag(*stmt.expr);
      if (!bag.ok()) return bag.status();
      StatusOr<std::string> filename = EvalFilename(*stmt.filename);
      if (!filename.ok()) return filename.status();
      stats_.elements_written += static_cast<int64_t>(bag->size());
      fs_->Write(*filename, std::move(bag).value());
      return Status::Ok();
    }
  }
  return Status::Internal("unknown statement kind");
}

StatusOr<Datum> Interpreter::EvalScalar(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLit:
      return expr.lit;
    case ExprKind::kVarRef: {
      auto it = scalars_.find(expr.var);
      if (it == scalars_.end()) {
        return Status::InvalidArgument("undefined scalar variable: " +
                                       expr.var);
      }
      return it->second;
    }
    case ExprKind::kBinOp: {
      StatusOr<Datum> a = EvalScalar(*expr.a);
      if (!a.ok()) return a.status();
      StatusOr<Datum> b = EvalScalar(*expr.b);
      if (!b.ok()) return b.status();
      return ApplyBinOp(expr.binop, *a, *b);
    }
    case ExprKind::kNot: {
      StatusOr<Datum> a = EvalScalar(*expr.a);
      if (!a.ok()) return a.status();
      if (!a->is_bool()) {
        return Status::InvalidArgument("'!' on non-boolean");
      }
      return Datum::Bool(!a->boolean());
    }
    case ExprKind::kScalarFromBag: {
      StatusOr<DatumVector> bag = EvalBag(*expr.a);
      if (!bag.ok()) return bag.status();
      if (bag->size() != 1) {
        return Status::InvalidArgument(
            "scalarOf on a bag with " + std::to_string(bag->size()) +
            " elements (expected exactly 1)");
      }
      return (*bag)[0];
    }
    default:
      return Status::InvalidArgument("expected a scalar expression, got: " +
                                     lang::ToString(expr));
  }
}

StatusOr<DatumVector> Interpreter::EvalBag(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kVarRef: {
      auto it = bags_.find(expr.var);
      if (it == bags_.end()) {
        return Status::InvalidArgument("undefined bag variable: " + expr.var);
      }
      return it->second;
    }
    case ExprKind::kBagLit:
      return expr.bag_lit;
    case ExprKind::kFromScalar: {
      StatusOr<Datum> value = EvalScalar(*expr.a);
      if (!value.ok()) return value.status();
      return DatumVector{*value};
    }
    case ExprKind::kReadFile: {
      StatusOr<std::string> filename = EvalFilename(*expr.a);
      if (!filename.ok()) return filename.status();
      StatusOr<DatumVector> data = fs_->Read(*filename);
      if (!data.ok()) return data.status();
      stats_.elements_read += static_cast<int64_t>(data->size());
      return data;
    }
    case ExprKind::kMap: {
      StatusOr<DatumVector> in = EvalBag(*expr.a);
      if (!in.ok()) return in.status();
      DatumVector out;
      out.reserve(in->size());
      for (const Datum& x : *in) out.push_back(expr.unary(x));
      return out;
    }
    case ExprKind::kFilter: {
      StatusOr<DatumVector> in = EvalBag(*expr.a);
      if (!in.ok()) return in.status();
      DatumVector out;
      for (const Datum& x : *in) {
        if (expr.pred(x)) out.push_back(x);
      }
      return out;
    }
    case ExprKind::kFlatMap: {
      StatusOr<DatumVector> in = EvalBag(*expr.a);
      if (!in.ok()) return in.status();
      DatumVector out;
      for (const Datum& x : *in) {
        DatumVector pieces = expr.flat(x);
        out.insert(out.end(), pieces.begin(), pieces.end());
      }
      return out;
    }
    case ExprKind::kReduceByKey: {
      StatusOr<DatumVector> in = EvalBag(*expr.a);
      if (!in.ok()) return in.status();
      return ReduceByKeyKernel(*in, expr.binary);
    }
    case ExprKind::kReduce: {
      StatusOr<DatumVector> in = EvalBag(*expr.a);
      if (!in.ok()) return in.status();
      if (in->empty()) return DatumVector{};
      Datum acc = (*in)[0];
      for (size_t i = 1; i < in->size(); ++i) acc = expr.binary(acc, (*in)[i]);
      return DatumVector{acc};
    }
    case ExprKind::kJoin: {
      StatusOr<DatumVector> build = EvalBag(*expr.a);
      if (!build.ok()) return build.status();
      StatusOr<DatumVector> probe = EvalBag(*expr.b);
      if (!probe.ok()) return probe.status();
      return JoinKernel(*build, *probe);
    }
    case ExprKind::kUnion: {
      StatusOr<DatumVector> a = EvalBag(*expr.a);
      if (!a.ok()) return a.status();
      StatusOr<DatumVector> b = EvalBag(*expr.b);
      if (!b.ok()) return b.status();
      DatumVector out = std::move(a).value();
      out.insert(out.end(), b->begin(), b->end());
      return out;
    }
    case ExprKind::kDistinct: {
      StatusOr<DatumVector> in = EvalBag(*expr.a);
      if (!in.ok()) return in.status();
      std::set<Datum> seen;
      DatumVector out;
      for (const Datum& x : *in) {
        if (seen.insert(x).second) out.push_back(x);
      }
      return out;
    }
    case ExprKind::kCount: {
      StatusOr<DatumVector> in = EvalBag(*expr.a);
      if (!in.ok()) return in.status();
      return DatumVector{Datum::Int64(static_cast<int64_t>(in->size()))};
    }
    case ExprKind::kCombine2: {
      StatusOr<DatumVector> a = EvalBag(*expr.a);
      if (!a.ok()) return a.status();
      StatusOr<DatumVector> b = EvalBag(*expr.b);
      if (!b.ok()) return b.status();
      if (a->size() != 1 || b->size() != 1) {
        return Status::InvalidArgument(
            "combine2 requires one-element bags, got sizes " +
            std::to_string(a->size()) + " and " + std::to_string(b->size()));
      }
      return DatumVector{expr.binary((*a)[0], (*b)[0])};
    }
    default:
      return Status::InvalidArgument("expected a bag expression, got: " +
                                     lang::ToString(expr));
  }
}

}  // namespace mitos::lang
