// Named user-function wrappers for bag operations.
//
// The paper's user programs pass Scala lambdas to bag operations (map,
// filter, reduceByKey, ...). We wrap std::function with a name so that IR
// dumps and dataflow visualizations stay readable; the function body itself
// is opaque to the compiler, exactly as in the paper (only control flow is
// inspected, never lambda bodies).
#ifndef MITOS_LANG_FUNCTIONS_H_
#define MITOS_LANG_FUNCTIONS_H_

#include <functional>
#include <string>
#include <utility>

#include "common/datum.h"

namespace mitos::lang {

// Element -> element (map, key extraction).
struct UnaryFn {
  std::string name;
  std::function<Datum(const Datum&)> fn;

  bool valid() const { return static_cast<bool>(fn); }
  Datum operator()(const Datum& x) const { return fn(x); }
};

// (element, element) -> element (reduce, reduceByKey combiners, join output).
struct BinaryFn {
  std::string name;
  std::function<Datum(const Datum&, const Datum&)> fn;

  bool valid() const { return static_cast<bool>(fn); }
  Datum operator()(const Datum& a, const Datum& b) const { return fn(a, b); }
};

// Element -> bool (filter).
struct PredicateFn {
  std::string name;
  std::function<bool(const Datum&)> fn;

  bool valid() const { return static_cast<bool>(fn); }
  bool operator()(const Datum& x) const { return fn(x); }
};

// Element -> elements (flatMap).
struct FlatMapFn {
  std::string name;
  std::function<DatumVector(const Datum&)> fn;

  bool valid() const { return static_cast<bool>(fn); }
  DatumVector operator()(const Datum& x) const { return fn(x); }
};

// ----- Stock functions used by the paper's workloads and by tests -----
namespace fns {

// x -> (x, 1): the classic word-count/visit-count mapper.
UnaryFn PairWithOne();

// (a, b) -> a + b for int64s.
BinaryFn SumInt64();

// (a, b) -> a + b for doubles.
BinaryFn SumDouble();

// Pair/tuple field accessors: x -> x.field(i).
UnaryFn Field(size_t i);

// Identity.
UnaryFn Identity();

// x -> x + delta for int64s.
UnaryFn AddInt64(int64_t delta);

// (today, yesterday) tuple of (key, a, b) -> |a - b| as int64.
// Matches the paper's `map((id,today,yesterday) => abs(today-yesterday))`.
UnaryFn AbsDiffFields12();

// x -> x * factor for doubles.
UnaryFn ScaleDouble(double factor);

// True iff x.field(i) == value.
PredicateFn FieldEquals(size_t i, Datum value);

// True iff int64 x % modulus == remainder.
PredicateFn Int64ModEquals(int64_t modulus, int64_t remainder);

}  // namespace fns

}  // namespace mitos::lang

#endif  // MITOS_LANG_FUNCTIONS_H_
