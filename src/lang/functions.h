// Named user-function wrappers for bag operations.
//
// The paper's user programs pass Scala lambdas to bag operations (map,
// filter, reduceByKey, ...). We wrap std::function with a name so that IR
// dumps and dataflow visualizations stay readable; the function body itself
// is opaque to the compiler, exactly as in the paper (only control flow is
// inspected, never lambda bodies).
//
// Each wrapper optionally carries typed fast-path variants operating on raw
// int64/double values. These power the vectorized kernels over columnar
// chunks (common/chunk.h): when a chunk's representation matches a fast
// path, the kernel runs a tight loop with no Datum boxing. A fast path MUST
// be exactly equivalent to `fn` on the corresponding representation — the
// fuzz harness cross-checks this by diffing columnar-on vs columnar-off
// runs element-for-element.
#ifndef MITOS_LANG_FUNCTIONS_H_
#define MITOS_LANG_FUNCTIONS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/datum.h"

namespace mitos::lang {

// (key, value) int64 pair for typed fast paths.
using Int64Pair = std::pair<int64_t, int64_t>;

// Element -> element (map, key extraction).
struct UnaryFn {
  std::string name;
  std::function<Datum(const Datum&)> fn;

  // Typed fast paths (all optional; see file comment).
  std::function<int64_t(int64_t)> i64;            // int64 -> int64
  std::function<double(double)> f64;              // double -> double
  std::function<Int64Pair(int64_t)> i64_to_pair;  // int64 -> (k, v)
  std::function<int64_t(int64_t, int64_t)> pair_to_i64;    // (k, v) -> int64
  std::function<Int64Pair(int64_t, int64_t)> pair_to_pair;  // (k,v) -> (k,v)

  bool valid() const { return static_cast<bool>(fn); }
  Datum operator()(const Datum& x) const { return fn(x); }
};

// (element, element) -> element (reduce, reduceByKey combiners, join output).
struct BinaryFn {
  std::string name;
  std::function<Datum(const Datum&, const Datum&)> fn;

  // int64 fast path. Only set for combiners that are commutative and
  // associative on int64 (sum/min/max), where a typed fold over the
  // canonical sorted order provably matches the generic Datum fold.
  // Order-sensitive combiners (keepLast) must stay generic.
  std::function<int64_t(int64_t, int64_t)> i64;

  bool valid() const { return static_cast<bool>(fn); }
  Datum operator()(const Datum& a, const Datum& b) const { return fn(a, b); }
};

// Element -> bool (filter).
struct PredicateFn {
  std::string name;
  std::function<bool(const Datum&)> fn;

  // Typed fast paths.
  std::function<bool(int64_t)> i64;
  std::function<bool(int64_t, int64_t)> pair;

  bool valid() const { return static_cast<bool>(fn); }
  bool operator()(const Datum& x) const { return fn(x); }
};

// Element -> elements (flatMap).
struct FlatMapFn {
  std::string name;
  std::function<DatumVector(const Datum&)> fn;

  // int64 -> int64s fast path; appends outputs to `out`.
  std::function<void(int64_t, std::vector<int64_t>*)> i64;

  bool valid() const { return static_cast<bool>(fn); }
  DatumVector operator()(const Datum& x) const { return fn(x); }
};

// ----- Stock functions used by the paper's workloads and by tests -----
//
// Every factory here whose name matches the parser registry (lang/parser.cc)
// must keep that exact name so printed programs (lang::ToSource) round-trip
// through lang::Parse.
namespace fns {

// x -> (x, 1): the classic word-count/visit-count mapper.
UnaryFn PairWithOne();

// (a, b) -> a + b for int64s.
BinaryFn SumInt64();

// (a, b) -> a + b for doubles.
BinaryFn SumDouble();

// (a, b) -> min / max for int64s.
BinaryFn MinInt64();
BinaryFn MaxInt64();

// (a, b) -> b. Order-sensitive by design; no fast path.
BinaryFn KeepLast();

// Pair/tuple field accessors: x -> x.field(i).
UnaryFn Field(size_t i);

// Identity.
UnaryFn Identity();

// x -> x + delta for int64s.
UnaryFn AddInt64(int64_t delta);

// x -> x * k for int64s.
UnaryFn MulInt64(int64_t k);

// Join output (k, lv, rv) -> (k, lv + rv).
UnaryFn SumJoin();

// (a, b) -> (b, a).
UnaryFn PairSwap();

// (today, yesterday) tuple of (key, a, b) -> |a - b| as int64.
// Matches the paper's `map((id,today,yesterday) => abs(today-yesterday))`.
UnaryFn AbsDiffFields12();

// x -> x * factor for doubles.
UnaryFn ScaleDouble(double factor);

// String length as int64 (maps string bags back into the int vocabulary).
UnaryFn StrLen();

// s -> s + "#" + k: string-preserving transform with an int64 parameter so
// it fits the parser's registry syntax.
UnaryFn StrTag(int64_t k);

// True iff x.field(i) == value.
PredicateFn FieldEquals(size_t i, Datum value);

// True iff int64 x % modulus == remainder.
PredicateFn Int64ModEquals(int64_t modulus, int64_t remainder);

// True iff int64 x > k / x < k.
PredicateFn GtInt64(int64_t k);
PredicateFn LtInt64(int64_t k);

// True iff string length > k.
PredicateFn StrLenGt(int64_t k);

// x -> [x, x].
FlatMapFn Dup();

// n -> [0, 1, ..., n-1].
FlatMapFn RangeTo();

}  // namespace fns

}  // namespace mitos::lang

#endif  // MITOS_LANG_FUNCTIONS_H_
