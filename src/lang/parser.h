// A textual frontend for the imperative language: parses programs written
// in the paper's pseudocode style into lang::Programs.
//
//   yesterday = empty();
//   day = 1;
//   do {
//     visits = readFile("pageVisitLog" ++ day);
//     counts = visits.map(pairWithOne).reduceByKey(sumInt64);
//     if (day != 1) {
//       summed = yesterday.join(counts).map(absDiff).reduce(sumInt64);
//       write(summed, "diff" ++ day);
//     }
//     yesterday = counts;
//     day = day + 1;
//   } while (day <= 365);
//
// User functions are referenced by name from a registry of builtins
// (pairWithOne, sumInt64, identity, field(i), addInt64(k),
// modEquals(m, r), ...). This keeps the surface language closed — exactly
// the situation of an external DSL like SystemDS' language, which the
// paper names as an alternative frontend whose compiler "can naturally
// inspect the control flow" (Sec. 3).
//
// Grammar (informal):
//   program   := stmt*
//   stmt      := ident '=' expr ';'
//              | 'while' '(' expr ')' block
//              | 'do' block 'while' '(' expr ')' ';'
//              | 'if' '(' expr ')' block ('else' block)?
//              | 'write' '(' expr ',' expr ')' ';'
//   block     := '{' stmt* '}'
//   expr      := orExpr, with '||' '&&' '==' '!=' '<' '<=' '>' '>='
//                '+' '-' '++' '*' '/' '%' '!' and parentheses;
//                postfix method chains: e '.' method '(' args ')'
//   primary   := int | float | string | 'true' | 'false' | ident
//              | 'readFile' '(' expr ')' | 'empty' '(' ')'
//              | 'bagOf' '(' literal* ')' | 'newBag' '(' expr ')'
//              | 'scalarOf' '(' expr ')'
//   literal   := int | float | string | '(' literal (',' literal)* ')'
//                (parenthesized literals are tuples, e.g. bagOf((1, 2)))
//   methods   := map | filter | flatMap | reduceByKey | reduce | join
//              | union | distinct | count
#ifndef MITOS_LANG_PARSER_H_
#define MITOS_LANG_PARSER_H_

#include <string>

#include "common/status.h"
#include "lang/ast.h"

namespace mitos::lang {

// Parses `source`; errors carry line/column and a short description.
StatusOr<Program> Parse(const std::string& source);

}  // namespace mitos::lang

#endif  // MITOS_LANG_PARSER_H_
