#include "lang/scalar_ops.h"

#include <string>

namespace mitos::lang {

std::string StringifyForConcat(const Datum& d) {
  if (d.is_string()) return d.str();
  return d.ToString();
}

StatusOr<Datum> ApplyBinOp(BinOpKind op, const Datum& a, const Datum& b) {
  switch (op) {
    case BinOpKind::kConcat:
      return Datum::String(StringifyForConcat(a) + StringifyForConcat(b));
    case BinOpKind::kAnd:
    case BinOpKind::kOr: {
      if (!a.is_bool() || !b.is_bool()) {
        return Status::InvalidArgument("boolean operator on non-bools");
      }
      bool r = (op == BinOpKind::kAnd) ? (a.boolean() && b.boolean())
                                       : (a.boolean() || b.boolean());
      return Datum::Bool(r);
    }
    case BinOpKind::kEq:
      return Datum::Bool(a == b);
    case BinOpKind::kNe:
      return Datum::Bool(!(a == b));
    default:
      break;
  }
  bool numeric = (a.is_int64() || a.is_double()) &&
                 (b.is_int64() || b.is_double());
  if (!numeric) {
    return Status::InvalidArgument(std::string("numeric operator '") +
                                   BinOpName(op) + "' on non-numbers: " +
                                   a.ToString() + ", " + b.ToString());
  }
  bool both_int = a.is_int64() && b.is_int64();
  switch (op) {
    case BinOpKind::kAdd:
      return both_int ? Datum::Int64(a.int64() + b.int64())
                      : Datum::Double(a.AsNumber() + b.AsNumber());
    case BinOpKind::kSub:
      return both_int ? Datum::Int64(a.int64() - b.int64())
                      : Datum::Double(a.AsNumber() - b.AsNumber());
    case BinOpKind::kMul:
      return both_int ? Datum::Int64(a.int64() * b.int64())
                      : Datum::Double(a.AsNumber() * b.AsNumber());
    case BinOpKind::kDiv:
      if (both_int) {
        if (b.int64() == 0) return Status::InvalidArgument("division by zero");
        return Datum::Int64(a.int64() / b.int64());
      }
      return Datum::Double(a.AsNumber() / b.AsNumber());
    case BinOpKind::kMod:
      if (!both_int) {
        return Status::InvalidArgument("'%' requires int64 operands");
      }
      if (b.int64() == 0) return Status::InvalidArgument("modulo by zero");
      return Datum::Int64(a.int64() % b.int64());
    case BinOpKind::kLt:
      return Datum::Bool(a.AsNumber() < b.AsNumber());
    case BinOpKind::kLe:
      return Datum::Bool(a.AsNumber() <= b.AsNumber());
    case BinOpKind::kGt:
      return Datum::Bool(a.AsNumber() > b.AsNumber());
    case BinOpKind::kGe:
      return Datum::Bool(a.AsNumber() >= b.AsNumber());
    default:
      return Status::Internal("unhandled binary operator");
  }
}

}  // namespace mitos::lang
