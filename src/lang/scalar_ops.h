// Datum-level semantics of the language's scalar binary operators.
//
// Shared by the reference interpreter and by the Preparator
// (ir/normalize.h), which synthesizes map/combine closures from scalar
// expressions when wrapping scalars into one-element bags (paper Sec. 4.1).
#ifndef MITOS_LANG_SCALAR_OPS_H_
#define MITOS_LANG_SCALAR_OPS_H_

#include "common/datum.h"
#include "common/status.h"
#include "lang/ast.h"

namespace mitos::lang {

// Applies `op` with the language's coercion rules:
//   * arithmetic: int64 op int64 -> int64, otherwise double;
//   * comparisons: == / != are value equality, orderings are numeric;
//   * && / || require bools;
//   * concat stringifies numeric operands.
// Division/modulo by zero and kind mismatches yield InvalidArgument.
StatusOr<Datum> ApplyBinOp(BinOpKind op, const Datum& a, const Datum& b);

// Renders `d` the way concat does: bare for strings, ToString otherwise.
std::string StringifyForConcat(const Datum& d);

}  // namespace mitos::lang

#endif  // MITOS_LANG_SCALAR_OPS_H_
