// Static checking of lang::Programs: scalar/bag typing and def-before-use.
//
// The source language distinguishes scalars (loop counters, conditions, file
// names) from bags. This pass infers a type for every variable, rejects
// mixed use, rejects reads of possibly-undefined variables (e.g. a variable
// assigned in only one branch of an if and read after the join), and checks
// operator arity rules (conditions must be scalars, map needs a bag, ...).
//
// Every executor (reference interpreter, Mitos, baselines) runs this check
// first, so downstream passes may assume well-typed input.
#ifndef MITOS_LANG_TYPE_CHECK_H_
#define MITOS_LANG_TYPE_CHECK_H_

#include <map>
#include <string>

#include "common/status.h"
#include "lang/ast.h"

namespace mitos::lang {

enum class VarType { kScalar, kBag };

struct TypeCheckResult {
  // Type of every variable assigned anywhere in the program.
  std::map<std::string, VarType> var_types;
};

// Returns the inferred variable types, or an InvalidArgument status
// describing the first problem found.
StatusOr<TypeCheckResult> TypeCheck(const Program& program);

}  // namespace mitos::lang

#endif  // MITOS_LANG_TYPE_CHECK_H_
