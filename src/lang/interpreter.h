// Sequential reference interpreter for lang::Programs.
//
// Executes a program with ordinary (non-parallel, non-simulated) semantics
// against a SimFileSystem. This is the ground truth for differential tests:
// every distributed executor (Mitos and the baselines) must produce the same
// bags, because the paper's coordination mechanism promises that "the same
// bags and same bag identifiers are created during the distributed execution
// as they would be in a non-parallel execution" (Sec. 5.2).
#ifndef MITOS_LANG_INTERPRETER_H_
#define MITOS_LANG_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/datum.h"
#include "common/status.h"
#include "lang/ast.h"
#include "sim/filesystem.h"

namespace mitos::lang {

struct InterpreterOptions {
  // Aborts programs that loop more than this many total iterations
  // (protection against accidental infinite loops in tests).
  int64_t max_total_iterations = 10'000'000;
};

struct InterpreterStats {
  int64_t loop_iterations = 0;   // total loop-body executions
  int64_t elements_read = 0;     // elements read from files
  int64_t elements_written = 0;  // elements written to files
};

class Interpreter {
 public:
  explicit Interpreter(sim::SimFileSystem* fs,
                       InterpreterOptions options = {});

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // Type-checks and runs `program`. File writes land in the file system
  // passed to the constructor.
  Status Run(const Program& program);

  // Final variable environments (valid after a successful Run).
  const std::map<std::string, Datum>& scalars() const { return scalars_; }
  const std::map<std::string, DatumVector>& bags() const { return bags_; }
  const InterpreterStats& stats() const { return stats_; }

 private:
  StatusOr<Datum> EvalScalar(const Expr& expr);
  StatusOr<DatumVector> EvalBag(const Expr& expr);
  Status RunStmts(const StmtList& stmts);
  Status RunStmt(const Stmt& stmt);
  // True when `expr` evaluates to a bag in the current environment.
  bool IsBagExpr(const Expr& expr) const;
  // Evaluates a loop/if condition: a scalar bool, or a one-element bool bag.
  StatusOr<bool> EvalCondition(const Expr& expr);
  // Evaluates a file name: a scalar string, or a one-element string bag.
  StatusOr<std::string> EvalFilename(const Expr& expr);

  sim::SimFileSystem* fs_;
  InterpreterOptions options_;
  std::map<std::string, Datum> scalars_;
  std::map<std::string, DatumVector> bags_;
  InterpreterStats stats_;
};

// Shared kernel: reduceByKey over (k, v) pairs, emitting (k, combined) in
// first-seen key order. Used by the interpreter and (per partition) by the
// distributed operator so both have identical per-key semantics.
StatusOr<DatumVector> ReduceByKeyKernel(const DatumVector& input,
                                        const BinaryFn& combine);

// Shared kernel: hash join on field 0. Emits (k, build_v, probe_v) for every
// match, in probe order (build matches in build-insertion order).
DatumVector JoinKernel(const DatumVector& build, const DatumVector& probe);

}  // namespace mitos::lang

#endif  // MITOS_LANG_INTERPRETER_H_
