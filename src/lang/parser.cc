#include "lang/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace mitos::lang {

namespace {

// ----- tokens -----

enum class TokKind {
  kEnd, kIdent, kInt, kFloat, kString,
  kLParen, kRParen, kLBrace, kRBrace, kComma, kSemicolon, kDot,
  kAssign,                                   // =
  kPlus, kMinus, kStar, kSlash, kPercent, kConcat,  // + - * / % ++
  kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr, kNot,
  kKwWhile, kKwDo, kKwIf, kKwElse, kKwWrite, kKwTrue, kKwFalse,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  StatusOr<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.col = col_;
      if (AtEnd()) {
        token.kind = TokKind::kEnd;
        tokens.push_back(token);
        return tokens;
      }
      char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word;
        while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                            Peek() == '_')) {
          word.push_back(Get());
        }
        token.text = word;
        if (word == "while") token.kind = TokKind::kKwWhile;
        else if (word == "do") token.kind = TokKind::kKwDo;
        else if (word == "if") token.kind = TokKind::kKwIf;
        else if (word == "else") token.kind = TokKind::kKwElse;
        else if (word == "write") token.kind = TokKind::kKwWrite;
        else if (word == "true") token.kind = TokKind::kKwTrue;
        else if (word == "false") token.kind = TokKind::kKwFalse;
        else token.kind = TokKind::kIdent;
        tokens.push_back(std::move(token));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string number;
        bool is_float = false;
        while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                            Peek() == '.')) {
          if (Peek() == '.') {
            // A dot followed by a non-digit is a method call, not a float.
            if (pos_ + 1 >= src_.size() ||
                !std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
              break;
            }
            is_float = true;
          }
          number.push_back(Get());
        }
        token.text = number;
        if (is_float) {
          token.kind = TokKind::kFloat;
          token.float_value = std::strtod(number.c_str(), nullptr);
        } else {
          token.kind = TokKind::kInt;
          token.int_value = std::strtoll(number.c_str(), nullptr, 10);
        }
        tokens.push_back(std::move(token));
        continue;
      }
      if (c == '"') {
        Get();
        std::string value;
        while (!AtEnd() && Peek() != '"') {
          char ch = Get();
          if (ch == '\\' && !AtEnd()) {
            char esc = Get();
            value.push_back(esc == 'n' ? '\n' : esc);
          } else {
            value.push_back(ch);
          }
        }
        if (AtEnd()) return Error(token, "unterminated string literal");
        Get();  // closing quote
        token.kind = TokKind::kString;
        token.text = std::move(value);
        tokens.push_back(std::move(token));
        continue;
      }
      // Operators and punctuation.
      Get();
      switch (c) {
        case '(': token.kind = TokKind::kLParen; break;
        case ')': token.kind = TokKind::kRParen; break;
        case '{': token.kind = TokKind::kLBrace; break;
        case '}': token.kind = TokKind::kRBrace; break;
        case ',': token.kind = TokKind::kComma; break;
        case ';': token.kind = TokKind::kSemicolon; break;
        case '.': token.kind = TokKind::kDot; break;
        case '*': token.kind = TokKind::kStar; break;
        case '/': token.kind = TokKind::kSlash; break;
        case '%': token.kind = TokKind::kPercent; break;
        case '-': token.kind = TokKind::kMinus; break;
        case '+':
          token.kind = Match('+') ? TokKind::kConcat : TokKind::kPlus;
          break;
        case '=':
          token.kind = Match('=') ? TokKind::kEq : TokKind::kAssign;
          break;
        case '!':
          token.kind = Match('=') ? TokKind::kNe : TokKind::kNot;
          break;
        case '<':
          token.kind = Match('=') ? TokKind::kLe : TokKind::kLt;
          break;
        case '>':
          token.kind = Match('=') ? TokKind::kGe : TokKind::kGt;
          break;
        case '&':
          if (!Match('&')) return Error(token, "expected '&&'");
          token.kind = TokKind::kAnd;
          break;
        case '|':
          if (!Match('|')) return Error(token, "expected '||'");
          token.kind = TokKind::kOr;
          break;
        default:
          return Error(token, std::string("unexpected character '") + c +
                                  "'");
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  char Get() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool Match(char expected) {
    if (AtEnd() || Peek() != expected) return false;
    Get();
    return true;
  }
  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Get();
      } else if (c == '/' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '/') {
        while (!AtEnd() && Peek() != '\n') Get();
      } else {
        break;
      }
    }
  }
  static Status Error(const Token& at, const std::string& message) {
    return Status::InvalidArgument(
        "line " + std::to_string(at.line) + ", col " +
        std::to_string(at.col) + ": " + message);
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// ----- builtin user-function registry -----

// A parsed function reference: name plus optional int64 literal arguments,
// e.g. addInt64(1) or modEquals(2, 0).
struct FnRef {
  std::string name;
  std::vector<int64_t> args;
  int line = 0;
  int col = 0;
};

Status FnError(const FnRef& ref, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(ref.line) +
                                 ", col " + std::to_string(ref.col) + ": " +
                                 message);
}

Status WrongArity(const FnRef& ref, size_t want) {
  return FnError(ref, "builtin '" + ref.name + "' expects " +
                          std::to_string(want) + " argument(s), got " +
                          std::to_string(ref.args.size()));
}

StatusOr<UnaryFn> ResolveUnary(const FnRef& ref) {
  auto need = [&](size_t n) -> Status {
    if (ref.args.size() != n) return WrongArity(ref, n);
    return Status::Ok();
  };
  if (ref.name == "identity") {
    MITOS_RETURN_IF_ERROR(need(0));
    return fns::Identity();
  }
  if (ref.name == "pairWithOne") {
    MITOS_RETURN_IF_ERROR(need(0));
    return fns::PairWithOne();
  }
  if (ref.name == "absDiff") {
    MITOS_RETURN_IF_ERROR(need(0));
    return fns::AbsDiffFields12();
  }
  if (ref.name == "field") {
    MITOS_RETURN_IF_ERROR(need(1));
    return fns::Field(static_cast<size_t>(ref.args[0]));
  }
  if (ref.name == "addInt64") {
    MITOS_RETURN_IF_ERROR(need(1));
    return fns::AddInt64(ref.args[0]);
  }
  if (ref.name == "mulInt64") {
    MITOS_RETURN_IF_ERROR(need(1));
    return fns::MulInt64(ref.args[0]);
  }
  if (ref.name == "sumJoin") {
    MITOS_RETURN_IF_ERROR(need(0));
    return fns::SumJoin();
  }
  if (ref.name == "pairSwap") {
    MITOS_RETURN_IF_ERROR(need(0));
    return fns::PairSwap();
  }
  if (ref.name == "strLen") {
    MITOS_RETURN_IF_ERROR(need(0));
    return fns::StrLen();
  }
  if (ref.name == "strTag") {
    MITOS_RETURN_IF_ERROR(need(1));
    return fns::StrTag(ref.args[0]);
  }
  return FnError(ref, "unknown element function '" + ref.name + "'");
}

StatusOr<PredicateFn> ResolvePredicate(const FnRef& ref) {
  auto need = [&](size_t n) -> Status {
    if (ref.args.size() != n) return WrongArity(ref, n);
    return Status::Ok();
  };
  if (ref.name == "modEquals") {
    MITOS_RETURN_IF_ERROR(need(2));
    return fns::Int64ModEquals(ref.args[0], ref.args[1]);
  }
  if (ref.name == "gtInt64") {
    MITOS_RETURN_IF_ERROR(need(1));
    return fns::GtInt64(ref.args[0]);
  }
  if (ref.name == "ltInt64") {
    MITOS_RETURN_IF_ERROR(need(1));
    return fns::LtInt64(ref.args[0]);
  }
  if (ref.name == "strLenGt") {
    MITOS_RETURN_IF_ERROR(need(1));
    return fns::StrLenGt(ref.args[0]);
  }
  if (ref.name == "fieldEquals") {
    MITOS_RETURN_IF_ERROR(need(2));
    return fns::FieldEquals(static_cast<size_t>(ref.args[0]),
                            Datum::Int64(ref.args[1]));
  }
  return FnError(ref, "unknown predicate '" + ref.name + "'");
}

StatusOr<BinaryFn> ResolveBinary(const FnRef& ref) {
  if (!ref.args.empty()) return WrongArity(ref, 0);
  if (ref.name == "sumInt64") return fns::SumInt64();
  if (ref.name == "sumDouble") return fns::SumDouble();
  if (ref.name == "minInt64") return fns::MinInt64();
  if (ref.name == "maxInt64") return fns::MaxInt64();
  if (ref.name == "keepLast") return fns::KeepLast();
  return FnError(ref, "unknown combiner '" + ref.name + "'");
}

StatusOr<FlatMapFn> ResolveFlatMap(const FnRef& ref) {
  if (ref.name == "dup") {
    if (!ref.args.empty()) return WrongArity(ref, 0);
    return fns::Dup();
  }
  if (ref.name == "rangeTo") {
    if (!ref.args.empty()) return WrongArity(ref, 0);
    return fns::RangeTo();
  }
  return FnError(ref, "unknown flatMap function '" + ref.name + "'");
}

// ----- parser -----

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Program> Run() {
    Program program;
    while (!Check(TokKind::kEnd)) {
      StatusOr<StmtPtr> stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      program.stmts.push_back(*stmt);
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Previous() const { return tokens_[pos_ - 1]; }
  bool Check(TokKind kind) const { return Peek().kind == kind; }
  bool MatchTok(TokKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokKind kind, const char* what) {
    if (MatchTok(kind)) return Status::Ok();
    return ErrorHere(std::string("expected ") + what);
  }
  Status ErrorHere(const std::string& message) const {
    const Token& t = Peek();
    return Status::InvalidArgument("line " + std::to_string(t.line) +
                                   ", col " + std::to_string(t.col) + ": " +
                                   message +
                                   (t.text.empty() ? "" : " near '" +
                                                              t.text + "'"));
  }

  StatusOr<StmtList> ParseBlock() {
    MITOS_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
    StmtList stmts;
    while (!Check(TokKind::kRBrace) && !Check(TokKind::kEnd)) {
      StatusOr<StmtPtr> stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      stmts.push_back(*stmt);
    }
    MITOS_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
    return stmts;
  }

  StatusOr<StmtPtr> ParseStmt() {
    if (MatchTok(TokKind::kKwWhile)) {
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      StatusOr<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      StatusOr<StmtList> body = ParseBlock();
      if (!body.ok()) return body.status();
      return While(*cond, *body);
    }
    if (MatchTok(TokKind::kKwDo)) {
      StatusOr<StmtList> body = ParseBlock();
      if (!body.ok()) return body.status();
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kKwWhile, "'while'"));
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      StatusOr<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
      return DoWhile(*body, *cond);
    }
    if (MatchTok(TokKind::kKwIf)) {
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      StatusOr<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      StatusOr<StmtList> then_body = ParseBlock();
      if (!then_body.ok()) return then_body.status();
      StmtList else_body;
      if (MatchTok(TokKind::kKwElse)) {
        StatusOr<StmtList> parsed = ParseBlock();
        if (!parsed.ok()) return parsed.status();
        else_body = *parsed;
      }
      return If(*cond, *then_body, else_body);
    }
    if (MatchTok(TokKind::kKwWrite)) {
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      StatusOr<ExprPtr> bag = ParseExpr();
      if (!bag.ok()) return bag.status();
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
      StatusOr<ExprPtr> name = ParseExpr();
      if (!name.ok()) return name.status();
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
      return WriteFile(*bag, *name);
    }
    if (Check(TokKind::kIdent)) {
      std::string name = Peek().text;
      ++pos_;
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kAssign, "'='"));
      StatusOr<ExprPtr> rhs = ParseExpr();
      if (!rhs.ok()) return rhs.status();
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
      return Assign(std::move(name), *rhs);
    }
    return ErrorHere("expected a statement");
  }

  // Precedence climbing: || < && < equality < comparison < additive
  // (+ - ++) < multiplicative (* / %) < unary < postfix.
  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    StatusOr<ExprPtr> left = ParseAnd();
    if (!left.ok()) return left;
    while (MatchTok(TokKind::kOr)) {
      StatusOr<ExprPtr> right = ParseAnd();
      if (!right.ok()) return right;
      left = Or(*left, *right);
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAnd() {
    StatusOr<ExprPtr> left = ParseEquality();
    if (!left.ok()) return left;
    while (MatchTok(TokKind::kAnd)) {
      StatusOr<ExprPtr> right = ParseEquality();
      if (!right.ok()) return right;
      left = And(*left, *right);
    }
    return left;
  }

  StatusOr<ExprPtr> ParseEquality() {
    StatusOr<ExprPtr> left = ParseComparison();
    if (!left.ok()) return left;
    while (Check(TokKind::kEq) || Check(TokKind::kNe)) {
      TokKind op = Peek().kind;
      ++pos_;
      StatusOr<ExprPtr> right = ParseComparison();
      if (!right.ok()) return right;
      left = op == TokKind::kEq ? Eq(*left, *right) : Ne(*left, *right);
    }
    return left;
  }

  StatusOr<ExprPtr> ParseComparison() {
    StatusOr<ExprPtr> left = ParseAdditive();
    if (!left.ok()) return left;
    while (Check(TokKind::kLt) || Check(TokKind::kLe) ||
           Check(TokKind::kGt) || Check(TokKind::kGe)) {
      TokKind op = Peek().kind;
      ++pos_;
      StatusOr<ExprPtr> right = ParseAdditive();
      if (!right.ok()) return right;
      switch (op) {
        case TokKind::kLt: left = Lt(*left, *right); break;
        case TokKind::kLe: left = Le(*left, *right); break;
        case TokKind::kGt: left = Gt(*left, *right); break;
        default: left = Ge(*left, *right); break;
      }
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAdditive() {
    StatusOr<ExprPtr> left = ParseMultiplicative();
    if (!left.ok()) return left;
    while (Check(TokKind::kPlus) || Check(TokKind::kMinus) ||
           Check(TokKind::kConcat)) {
      TokKind op = Peek().kind;
      ++pos_;
      StatusOr<ExprPtr> right = ParseMultiplicative();
      if (!right.ok()) return right;
      switch (op) {
        case TokKind::kPlus: left = Add(*left, *right); break;
        case TokKind::kMinus: left = Sub(*left, *right); break;
        default: left = Concat(*left, *right); break;
      }
    }
    return left;
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    StatusOr<ExprPtr> left = ParseUnary();
    if (!left.ok()) return left;
    while (Check(TokKind::kStar) || Check(TokKind::kSlash) ||
           Check(TokKind::kPercent)) {
      TokKind op = Peek().kind;
      ++pos_;
      StatusOr<ExprPtr> right = ParseUnary();
      if (!right.ok()) return right;
      switch (op) {
        case TokKind::kStar: left = Mul(*left, *right); break;
        case TokKind::kSlash: left = Div(*left, *right); break;
        default: left = Mod(*left, *right); break;
      }
    }
    return left;
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (MatchTok(TokKind::kNot)) {
      StatusOr<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Not(*operand);
    }
    if (MatchTok(TokKind::kMinus)) {
      StatusOr<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Sub(LitInt(0), *operand);
    }
    return ParsePostfix();
  }

  // Method-call chains: expr '.' method '(' args ')'.
  StatusOr<ExprPtr> ParsePostfix() {
    StatusOr<ExprPtr> expr = ParsePrimary();
    if (!expr.ok()) return expr;
    while (MatchTok(TokKind::kDot)) {
      if (!Check(TokKind::kIdent)) return ErrorHere("expected method name");
      std::string method = Peek().text;
      ++pos_;
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
      StatusOr<ExprPtr> result = ParseMethod(*expr, method);
      if (!result.ok()) return result;
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      expr = *result;
    }
    return expr;
  }

  StatusOr<ExprPtr> ParseMethod(ExprPtr receiver, const std::string& method) {
    if (method == "distinct") return Distinct(std::move(receiver));
    if (method == "count") return Count(std::move(receiver));
    if (method == "join" || method == "union") {
      StatusOr<ExprPtr> other = ParseExpr();
      if (!other.ok()) return other;
      return method == "join" ? Join(std::move(receiver), *other)
                              : Union(std::move(receiver), *other);
    }
    // Remaining methods take a builtin function reference.
    StatusOr<FnRef> ref = ParseFnRef();
    if (!ref.ok()) return ref.status();
    if (method == "map") {
      StatusOr<UnaryFn> fn = ResolveUnary(*ref);
      if (!fn.ok()) return fn.status();
      return Map(std::move(receiver), *fn);
    }
    if (method == "filter") {
      StatusOr<PredicateFn> fn = ResolvePredicate(*ref);
      if (!fn.ok()) return fn.status();
      return Filter(std::move(receiver), *fn);
    }
    if (method == "flatMap") {
      StatusOr<FlatMapFn> fn = ResolveFlatMap(*ref);
      if (!fn.ok()) return fn.status();
      return FlatMap(std::move(receiver), *fn);
    }
    if (method == "reduceByKey") {
      StatusOr<BinaryFn> fn = ResolveBinary(*ref);
      if (!fn.ok()) return fn.status();
      return ReduceByKey(std::move(receiver), *fn);
    }
    if (method == "reduce") {
      StatusOr<BinaryFn> fn = ResolveBinary(*ref);
      if (!fn.ok()) return fn.status();
      return Reduce(std::move(receiver), *fn);
    }
    return ErrorHere("unknown method '" + method + "'");
  }

  StatusOr<FnRef> ParseFnRef() {
    if (!Check(TokKind::kIdent)) return ErrorHere("expected function name");
    FnRef ref;
    ref.name = Peek().text;
    ref.line = Peek().line;
    ref.col = Peek().col;
    ++pos_;
    if (MatchTok(TokKind::kLParen)) {
      if (!Check(TokKind::kRParen)) {
        do {
          bool negative = MatchTok(TokKind::kMinus);
          if (!Check(TokKind::kInt)) {
            return ErrorHere("expected integer literal argument");
          }
          int64_t v = Peek().int_value;
          ++pos_;
          ref.args.push_back(negative ? -v : v);
        } while (MatchTok(TokKind::kComma));
      }
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    }
    return ref;
  }

  // One element of a bagOf(...) literal: an int, float, or string scalar,
  // or a parenthesized tuple of literals, e.g. (1, 2) or (1, (2, "x")).
  StatusOr<Datum> ParseDatumLiteral() {
    if (MatchTok(TokKind::kLParen)) {
      DatumVector fields;
      if (!Check(TokKind::kRParen)) {
        do {
          StatusOr<Datum> field = ParseDatumLiteral();
          if (!field.ok()) return field.status();
          fields.push_back(*std::move(field));
        } while (MatchTok(TokKind::kComma));
      }
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return Datum::Tuple(std::move(fields));
    }
    bool negative = MatchTok(TokKind::kMinus);
    if (Check(TokKind::kInt)) {
      int64_t v = Peek().int_value;
      ++pos_;
      return Datum::Int64(negative ? -v : v);
    }
    if (Check(TokKind::kFloat)) {
      double v = Peek().float_value;
      ++pos_;
      return Datum::Double(negative ? -v : v);
    }
    if (Check(TokKind::kString) && !negative) {
      Datum v = Datum::String(Peek().text);
      ++pos_;
      return v;
    }
    return ErrorHere("expected literal in bagOf(...)");
  }

  StatusOr<ExprPtr> ParsePrimary() {
    if (Check(TokKind::kInt)) {
      int64_t v = Peek().int_value;
      ++pos_;
      return LitInt(v);
    }
    if (Check(TokKind::kFloat)) {
      double v = Peek().float_value;
      ++pos_;
      return LitDouble(v);
    }
    if (Check(TokKind::kString)) {
      std::string v = Peek().text;
      ++pos_;
      return LitString(std::move(v));
    }
    if (MatchTok(TokKind::kKwTrue)) return LitBool(true);
    if (MatchTok(TokKind::kKwFalse)) return LitBool(false);
    if (MatchTok(TokKind::kLParen)) {
      StatusOr<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    if (Check(TokKind::kIdent)) {
      std::string name = Peek().text;
      ++pos_;
      // Builtin pseudo-functions.
      if (Check(TokKind::kLParen) &&
          (name == "readFile" || name == "empty" || name == "newBag" ||
           name == "scalarOf" || name == "bagOf")) {
        ++pos_;  // '('
        if (name == "empty") {
          MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
          return BagLit({});
        }
        if (name == "bagOf") {
          DatumVector values;
          if (!Check(TokKind::kRParen)) {
            do {
              StatusOr<Datum> value = ParseDatumLiteral();
              if (!value.ok()) return value.status();
              values.push_back(*std::move(value));
            } while (MatchTok(TokKind::kComma));
          }
          MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
          return BagLit(std::move(values));
        }
        StatusOr<ExprPtr> arg = ParseExpr();
        if (!arg.ok()) return arg;
        MITOS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        if (name == "readFile") return ReadFile(*arg);
        if (name == "newBag") return FromScalar(*arg);
        return ScalarFromBag(*arg);
      }
      return Var(std::move(name));
    }
    return ErrorHere("expected an expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Program> Parse(const std::string& source) {
  Lexer lexer(source);
  StatusOr<std::vector<Token>> tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Run();
}

}  // namespace mitos::lang
