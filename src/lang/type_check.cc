#include "lang/type_check.h"

#include <set>
#include <utility>

namespace mitos::lang {

namespace {

class Checker {
 public:
  Status Run(const Program& program) {
    std::set<std::string> defined;
    return CheckStmts(program.stmts, &defined);
  }

  TypeCheckResult TakeResult() { return std::move(result_); }

 private:
  // Infers the type of `expr` under the current variable types, also
  // verifying that every referenced variable is in `defined`.
  StatusOr<VarType> ExprType(const Expr& expr,
                             const std::set<std::string>& defined) {
    switch (expr.kind) {
      case ExprKind::kLit:
        return VarType::kScalar;
      case ExprKind::kVarRef: {
        if (defined.find(expr.var) == defined.end()) {
          return Status::InvalidArgument(
              "variable '" + expr.var +
              "' may be read before it is assigned");
        }
        auto it = result_.var_types.find(expr.var);
        if (it == result_.var_types.end()) {
          return Status::Internal("defined variable without type: " +
                                  expr.var);
        }
        return it->second;
      }
      case ExprKind::kBinOp: {
        MITOS_RETURN_IF_ERROR(ExpectType(*expr.a, VarType::kScalar, defined,
                                         "binary operator operand"));
        MITOS_RETURN_IF_ERROR(ExpectType(*expr.b, VarType::kScalar, defined,
                                         "binary operator operand"));
        return VarType::kScalar;
      }
      case ExprKind::kNot:
        MITOS_RETURN_IF_ERROR(
            ExpectType(*expr.a, VarType::kScalar, defined, "'!' operand"));
        return VarType::kScalar;
      case ExprKind::kScalarFromBag:
        MITOS_RETURN_IF_ERROR(ExpectType(*expr.a, VarType::kBag, defined,
                                         "scalarOf operand"));
        return VarType::kScalar;
      case ExprKind::kBagLit:
        return VarType::kBag;
      case ExprKind::kFromScalar:
        MITOS_RETURN_IF_ERROR(ExpectType(*expr.a, VarType::kScalar, defined,
                                         "newBag operand"));
        return VarType::kBag;
      case ExprKind::kReadFile:
        // The filename is a scalar, or — in Preparator output, where every
        // scalar has been wrapped — a one-element bag (paper Sec. 4.1).
        MITOS_RETURN_IF_ERROR(ExpectAnyType(*expr.a, defined));
        return VarType::kBag;
      case ExprKind::kMap:
      case ExprKind::kFilter:
      case ExprKind::kFlatMap:
      case ExprKind::kReduceByKey:
      case ExprKind::kReduce:
      case ExprKind::kDistinct:
      case ExprKind::kCount:
        MITOS_RETURN_IF_ERROR(ExpectType(*expr.a, VarType::kBag, defined,
                                         "bag operation input"));
        return VarType::kBag;
      case ExprKind::kJoin:
      case ExprKind::kUnion:
      case ExprKind::kCombine2:
        MITOS_RETURN_IF_ERROR(ExpectType(*expr.a, VarType::kBag, defined,
                                         "binary bag operation input"));
        MITOS_RETURN_IF_ERROR(ExpectType(*expr.b, VarType::kBag, defined,
                                         "binary bag operation input"));
        return VarType::kBag;
    }
    return Status::Internal("unknown expression kind");
  }

  Status ExpectType(const Expr& expr, VarType want,
                    const std::set<std::string>& defined,
                    const char* where) {
    StatusOr<VarType> got = ExprType(expr, defined);
    if (!got.ok()) return got.status();
    if (*got != want) {
      return Status::InvalidArgument(
          std::string(where) + " has wrong type (" +
          (want == VarType::kBag ? "bag" : "scalar") + " expected): " +
          lang::ToString(expr));
    }
    return Status::Ok();
  }

  // Accepts either type, still verifying def-before-use. Used where the
  // language admits both a scalar and its one-element-bag wrapping:
  // conditions and file names (paper Sec. 4.1: ifCond/exitCond in the IR
  // *are* one-element bags).
  Status ExpectAnyType(const Expr& expr,
                       const std::set<std::string>& defined) {
    StatusOr<VarType> got = ExprType(expr, defined);
    if (!got.ok()) return got.status();
    return Status::Ok();
  }

  Status CheckStmts(const StmtList& stmts, std::set<std::string>* defined) {
    for (const StmtPtr& stmt : stmts) {
      MITOS_RETURN_IF_ERROR(CheckStmt(*stmt, defined));
    }
    return Status::Ok();
  }

  Status CheckStmt(const Stmt& stmt, std::set<std::string>* defined) {
    switch (stmt.kind) {
      case StmtKind::kAssign: {
        StatusOr<VarType> type = ExprType(*stmt.expr, *defined);
        if (!type.ok()) return type.status();
        auto it = result_.var_types.find(stmt.var);
        if (it != result_.var_types.end() && it->second != *type) {
          return Status::InvalidArgument(
              "variable '" + stmt.var +
              "' is assigned both scalar and bag values");
        }
        result_.var_types[stmt.var] = *type;
        defined->insert(stmt.var);
        return Status::Ok();
      }
      case StmtKind::kWhile: {
        MITOS_RETURN_IF_ERROR(ExpectAnyType(*stmt.expr, *defined));
        // The body may execute zero times: definitions inside it are not
        // definitely available afterwards.
        std::set<std::string> body_defined = *defined;
        MITOS_RETURN_IF_ERROR(CheckStmts(stmt.body, &body_defined));
        // Re-check the condition against the loop-carried environment so a
        // condition variable updated in the body is accepted.
        MITOS_RETURN_IF_ERROR(ExpectAnyType(*stmt.expr, body_defined));
        return Status::Ok();
      }
      case StmtKind::kDoWhile: {
        // The body executes at least once: its definitions persist, and the
        // condition is evaluated in the post-body environment.
        MITOS_RETURN_IF_ERROR(CheckStmts(stmt.body, defined));
        MITOS_RETURN_IF_ERROR(ExpectAnyType(*stmt.expr, *defined));
        return Status::Ok();
      }
      case StmtKind::kIf: {
        MITOS_RETURN_IF_ERROR(ExpectAnyType(*stmt.expr, *defined));
        std::set<std::string> then_defined = *defined;
        MITOS_RETURN_IF_ERROR(CheckStmts(stmt.body, &then_defined));
        std::set<std::string> else_defined = *defined;
        MITOS_RETURN_IF_ERROR(CheckStmts(stmt.else_body, &else_defined));
        // Only variables defined on both paths are definitely defined after.
        for (const std::string& v : then_defined) {
          if (else_defined.count(v) > 0) defined->insert(v);
        }
        return Status::Ok();
      }
      case StmtKind::kWriteFile: {
        MITOS_RETURN_IF_ERROR(ExpectType(*stmt.expr, VarType::kBag, *defined,
                                         "writeFile input"));
        MITOS_RETURN_IF_ERROR(ExpectAnyType(*stmt.filename, *defined));
        return Status::Ok();
      }
    }
    return Status::Internal("unknown statement kind");
  }

  TypeCheckResult result_;
};

}  // namespace

StatusOr<TypeCheckResult> TypeCheck(const Program& program) {
  Checker checker;
  Status status = checker.Run(program);
  if (!status.ok()) return status;
  return checker.TakeResult();
}

}  // namespace mitos::lang
