// The imperative source language of Mitos.
//
// The paper embeds its language (Emma) in Scala and extracts the user
// program's abstract syntax tree via Scala macros. C++ has no AST-level
// metaprogramming, so this reproduction makes the AST explicit: users build
// a lang::Program with the free functions below (or lang::ProgramBuilder,
// which reads like straight-line imperative code). Everything downstream —
// simplification, SSA construction, dataflow building, coordination — is
// implemented as in the paper.
//
// Two expression worlds coexist, as in the paper's examples:
//   * scalar expressions — loop counters, conditions, file names
//     (`day + 1`, `day != 1`, "pageVisitLog" + day);
//   * bag expressions — scalable collections and their operations
//     (readFile, map, filter, reduceByKey, join, ...).
// The Preparator (ir/normalize.h) later wraps every scalar into a
// one-element bag, exactly as described in Sec. 4.1 of the paper.
#ifndef MITOS_LANG_AST_H_
#define MITOS_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/datum.h"
#include "lang/functions.h"

namespace mitos::lang {

// ----- Expressions -----

enum class ExprKind {
  // Scalar expressions.
  kLit,            // constant Datum
  kVarRef,         // variable reference (scalar or bag; typed by context)
  kBinOp,          // scalar binary operation
  kNot,            // scalar boolean negation
  kScalarFromBag,  // the single element of a one-element bag (e.g. collect())
  // Bag expressions.
  kBagLit,         // literal bag of constants
  kFromScalar,     // one-element bag holding a scalar expression's value
  kReadFile,       // read the named file from the (simulated) file system
  kMap,            // elementwise transform
  kFilter,         // elementwise predicate
  kFlatMap,        // elementwise one-to-many transform
  kReduceByKey,    // (k,v) pairs -> (k, combined v) per distinct key
  kReduce,         // full-bag fold -> one-element bag (empty in -> empty out)
  kJoin,           // hash join on field 0; build LEFT, probe RIGHT;
                   // emits (k, lv, rv) per match
  kUnion,          // multiset union (concatenation)
  kDistinct,       // duplicate elimination
  kCount,          // number of elements -> one-element int64 bag
  kCombine2,       // f(a0, b0) over two one-element bags -> one-element bag.
                   // This is how the Preparator expresses scalar expressions
                   // with two variable operands after wrapping scalars into
                   // one-element bags (paper Sec. 4.1).
};

enum class BinOpKind {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kConcat,  // string concatenation; numeric operands are stringified
};

// Returns e.g. "+", "<=", "concat".
const char* BinOpName(BinOpKind op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// A single AST expression node. Tagged-union style: only the fields relevant
// to `kind` are populated (the printer and type checker enforce this).
struct Expr {
  ExprKind kind;

  Datum lit;               // kLit
  std::string var;         // kVarRef
  BinOpKind binop{};       // kBinOp
  ExprPtr a;               // first child (scalar or bag, by kind)
  ExprPtr b;               // second child
  DatumVector bag_lit;     // kBagLit
  UnaryFn unary;           // kMap
  PredicateFn pred;        // kFilter
  FlatMapFn flat;          // kFlatMap
  BinaryFn binary;         // kReduceByKey / kReduce combiner
};

// True when `kind` denotes a bag-typed expression *node* (kVarRef excluded;
// its type depends on the variable).
bool IsBagExprKind(ExprKind kind);

// ----- Expression factories -----

ExprPtr Lit(Datum v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitBool(bool v);
ExprPtr LitString(std::string v);
ExprPtr Var(std::string name);

ExprPtr BinOp(BinOpKind op, ExprPtr a, ExprPtr b);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Mod(ExprPtr a, ExprPtr b);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Concat(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr ScalarFromBag(ExprPtr bag);

ExprPtr BagLit(DatumVector elements);
ExprPtr FromScalar(ExprPtr scalar);
ExprPtr ReadFile(ExprPtr filename);
ExprPtr Map(ExprPtr bag, UnaryFn fn);
ExprPtr Filter(ExprPtr bag, PredicateFn fn);
ExprPtr FlatMap(ExprPtr bag, FlatMapFn fn);
ExprPtr ReduceByKey(ExprPtr bag, BinaryFn combine);
ExprPtr Reduce(ExprPtr bag, BinaryFn combine);
ExprPtr Join(ExprPtr build, ExprPtr probe);
ExprPtr Union(ExprPtr a, ExprPtr b);
ExprPtr Distinct(ExprPtr bag);
ExprPtr Count(ExprPtr bag);
ExprPtr Combine2(ExprPtr a, ExprPtr b, BinaryFn fn);

// ----- Statements -----

enum class StmtKind {
  kAssign,     // var = expr
  kWhile,      // while (cond) { body }
  kDoWhile,    // do { body } while (cond)
  kIf,         // if (cond) { then } [else { else }]
  kWriteFile,  // bag.writeFile(filename)
};

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;
using StmtList = std::vector<StmtPtr>;

struct Stmt {
  StmtKind kind;

  std::string var;      // kAssign target
  ExprPtr expr;         // kAssign rhs | loop/if condition | kWriteFile bag
  ExprPtr filename;     // kWriteFile destination (scalar string expression)
  StmtList body;        // loop body | if-then branch
  StmtList else_body;   // if-else branch (may be empty)
};

StmtPtr Assign(std::string var, ExprPtr expr);
StmtPtr While(ExprPtr cond, StmtList body);
StmtPtr DoWhile(StmtList body, ExprPtr cond);
StmtPtr If(ExprPtr cond, StmtList then_body, StmtList else_body = {});
StmtPtr WriteFile(ExprPtr bag, ExprPtr filename);

// A whole user program: a statement sequence.
struct Program {
  StmtList stmts;
};

// ----- Pretty-printing (for debugging, docs, and golden tests) -----

std::string ToString(const Expr& expr);
std::string ToString(const Stmt& stmt, int indent = 0);
std::string ToString(const Program& program);

// ----- Source printing (parser round-trip) -----
//
// Emits the program in the textual grammar of lang/parser.h, so that
// lang::Parse(ToSource(p)) reconstructs `p` — the foundation of the fuzzer's
// self-contained repro files (testing/repro.h). Round-tripping holds for
// surface-language programs: every statement kind, every bag operation, and
// every user function whose name uses the parser's registry syntax (all of
// fns::* do). kCombine2 — introduced only by the Preparator, never by user
// programs — and functions with non-registry names print in a debug form
// that does not parse.
std::string ToSource(const Expr& expr);
std::string ToSource(const Program& program);

}  // namespace mitos::lang

#endif  // MITOS_LANG_AST_H_
