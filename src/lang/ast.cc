#include "lang/ast.h"

#include <sstream>
#include <utility>

#include "common/logging.h"

namespace mitos::lang {

const char* BinOpName(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd: return "+";
    case BinOpKind::kSub: return "-";
    case BinOpKind::kMul: return "*";
    case BinOpKind::kDiv: return "/";
    case BinOpKind::kMod: return "%";
    case BinOpKind::kEq: return "==";
    case BinOpKind::kNe: return "!=";
    case BinOpKind::kLt: return "<";
    case BinOpKind::kLe: return "<=";
    case BinOpKind::kGt: return ">";
    case BinOpKind::kGe: return ">=";
    case BinOpKind::kAnd: return "&&";
    case BinOpKind::kOr: return "||";
    case BinOpKind::kConcat: return "concat";
  }
  return "?";
}

bool IsBagExprKind(ExprKind kind) {
  switch (kind) {
    case ExprKind::kBagLit:
    case ExprKind::kFromScalar:
    case ExprKind::kReadFile:
    case ExprKind::kMap:
    case ExprKind::kFilter:
    case ExprKind::kFlatMap:
    case ExprKind::kReduceByKey:
    case ExprKind::kReduce:
    case ExprKind::kJoin:
    case ExprKind::kUnion:
    case ExprKind::kDistinct:
    case ExprKind::kCount:
    case ExprKind::kCombine2:
      return true;
    default:
      return false;
  }
}

namespace {

std::shared_ptr<Expr> MakeMutable(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

}  // namespace

ExprPtr Lit(Datum v) {
  auto e = MakeMutable(ExprKind::kLit);
  e->lit = std::move(v);
  return e;
}

ExprPtr LitInt(int64_t v) { return Lit(Datum::Int64(v)); }
ExprPtr LitDouble(double v) { return Lit(Datum::Double(v)); }
ExprPtr LitBool(bool v) { return Lit(Datum::Bool(v)); }
ExprPtr LitString(std::string v) { return Lit(Datum::String(std::move(v))); }

ExprPtr Var(std::string name) {
  auto e = MakeMutable(ExprKind::kVarRef);
  e->var = std::move(name);
  return e;
}

ExprPtr BinOp(BinOpKind op, ExprPtr a, ExprPtr b) {
  MITOS_CHECK(a && b);
  auto e = MakeMutable(ExprKind::kBinOp);
  e->binop = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprPtr Add(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kAdd, a, b); }
ExprPtr Sub(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kSub, a, b); }
ExprPtr Mul(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kMul, a, b); }
ExprPtr Div(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kDiv, a, b); }
ExprPtr Mod(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kMod, a, b); }
ExprPtr Eq(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kEq, a, b); }
ExprPtr Ne(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kNe, a, b); }
ExprPtr Lt(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kLt, a, b); }
ExprPtr Le(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kLe, a, b); }
ExprPtr Gt(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kGt, a, b); }
ExprPtr Ge(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kGe, a, b); }
ExprPtr And(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kAnd, a, b); }
ExprPtr Or(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kOr, a, b); }
ExprPtr Concat(ExprPtr a, ExprPtr b) { return BinOp(BinOpKind::kConcat, a, b); }

ExprPtr Not(ExprPtr a) {
  MITOS_CHECK(a);
  auto e = MakeMutable(ExprKind::kNot);
  e->a = std::move(a);
  return e;
}

ExprPtr ScalarFromBag(ExprPtr bag) {
  MITOS_CHECK(bag);
  auto e = MakeMutable(ExprKind::kScalarFromBag);
  e->a = std::move(bag);
  return e;
}

ExprPtr BagLit(DatumVector elements) {
  auto e = MakeMutable(ExprKind::kBagLit);
  e->bag_lit = std::move(elements);
  return e;
}

ExprPtr FromScalar(ExprPtr scalar) {
  MITOS_CHECK(scalar);
  auto e = MakeMutable(ExprKind::kFromScalar);
  e->a = std::move(scalar);
  return e;
}

ExprPtr ReadFile(ExprPtr filename) {
  MITOS_CHECK(filename);
  auto e = MakeMutable(ExprKind::kReadFile);
  e->a = std::move(filename);
  return e;
}

ExprPtr Map(ExprPtr bag, UnaryFn fn) {
  MITOS_CHECK(bag);
  MITOS_CHECK(fn.valid());
  auto e = MakeMutable(ExprKind::kMap);
  e->a = std::move(bag);
  e->unary = std::move(fn);
  return e;
}

ExprPtr Filter(ExprPtr bag, PredicateFn fn) {
  MITOS_CHECK(bag);
  MITOS_CHECK(fn.valid());
  auto e = MakeMutable(ExprKind::kFilter);
  e->a = std::move(bag);
  e->pred = std::move(fn);
  return e;
}

ExprPtr FlatMap(ExprPtr bag, FlatMapFn fn) {
  MITOS_CHECK(bag);
  MITOS_CHECK(fn.valid());
  auto e = MakeMutable(ExprKind::kFlatMap);
  e->a = std::move(bag);
  e->flat = std::move(fn);
  return e;
}

ExprPtr ReduceByKey(ExprPtr bag, BinaryFn combine) {
  MITOS_CHECK(bag);
  MITOS_CHECK(combine.valid());
  auto e = MakeMutable(ExprKind::kReduceByKey);
  e->a = std::move(bag);
  e->binary = std::move(combine);
  return e;
}

ExprPtr Reduce(ExprPtr bag, BinaryFn combine) {
  MITOS_CHECK(bag);
  MITOS_CHECK(combine.valid());
  auto e = MakeMutable(ExprKind::kReduce);
  e->a = std::move(bag);
  e->binary = std::move(combine);
  return e;
}

ExprPtr Join(ExprPtr build, ExprPtr probe) {
  MITOS_CHECK(build && probe);
  auto e = MakeMutable(ExprKind::kJoin);
  e->a = std::move(build);
  e->b = std::move(probe);
  return e;
}

ExprPtr Union(ExprPtr a, ExprPtr b) {
  MITOS_CHECK(a && b);
  auto e = MakeMutable(ExprKind::kUnion);
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprPtr Distinct(ExprPtr bag) {
  MITOS_CHECK(bag);
  auto e = MakeMutable(ExprKind::kDistinct);
  e->a = std::move(bag);
  return e;
}

ExprPtr Count(ExprPtr bag) {
  MITOS_CHECK(bag);
  auto e = MakeMutable(ExprKind::kCount);
  e->a = std::move(bag);
  return e;
}

ExprPtr Combine2(ExprPtr a, ExprPtr b, BinaryFn fn) {
  MITOS_CHECK(a && b);
  MITOS_CHECK(fn.valid());
  auto e = MakeMutable(ExprKind::kCombine2);
  e->a = std::move(a);
  e->b = std::move(b);
  e->binary = std::move(fn);
  return e;
}

StmtPtr Assign(std::string var, ExprPtr expr) {
  MITOS_CHECK(expr);
  MITOS_CHECK(!var.empty());
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kAssign;
  s->var = std::move(var);
  s->expr = std::move(expr);
  return s;
}

StmtPtr While(ExprPtr cond, StmtList body) {
  MITOS_CHECK(cond);
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kWhile;
  s->expr = std::move(cond);
  s->body = std::move(body);
  return s;
}

StmtPtr DoWhile(StmtList body, ExprPtr cond) {
  MITOS_CHECK(cond);
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kDoWhile;
  s->expr = std::move(cond);
  s->body = std::move(body);
  return s;
}

StmtPtr If(ExprPtr cond, StmtList then_body, StmtList else_body) {
  MITOS_CHECK(cond);
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kIf;
  s->expr = std::move(cond);
  s->body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr WriteFile(ExprPtr bag, ExprPtr filename) {
  MITOS_CHECK(bag && filename);
  auto s = std::make_shared<Stmt>();
  s->kind = StmtKind::kWriteFile;
  s->expr = std::move(bag);
  s->filename = std::move(filename);
  return s;
}

// ----- Printer -----

namespace {

void PrintExpr(const Expr& e, std::ostream& out) {
  switch (e.kind) {
    case ExprKind::kLit:
      out << e.lit.ToString();
      break;
    case ExprKind::kVarRef:
      out << e.var;
      break;
    case ExprKind::kBinOp:
      out << '(';
      PrintExpr(*e.a, out);
      out << ' ' << BinOpName(e.binop) << ' ';
      PrintExpr(*e.b, out);
      out << ')';
      break;
    case ExprKind::kNot:
      out << "!(";
      PrintExpr(*e.a, out);
      out << ')';
      break;
    case ExprKind::kScalarFromBag:
      out << "scalarOf(";
      PrintExpr(*e.a, out);
      out << ')';
      break;
    case ExprKind::kBagLit:
      out << "bag" << mitos::ToString(e.bag_lit, 4);
      break;
    case ExprKind::kFromScalar:
      out << "newBag(";
      PrintExpr(*e.a, out);
      out << ')';
      break;
    case ExprKind::kReadFile:
      out << "readFile(";
      PrintExpr(*e.a, out);
      out << ')';
      break;
    case ExprKind::kMap:
      PrintExpr(*e.a, out);
      out << ".map(" << e.unary.name << ')';
      break;
    case ExprKind::kFilter:
      PrintExpr(*e.a, out);
      out << ".filter(" << e.pred.name << ')';
      break;
    case ExprKind::kFlatMap:
      PrintExpr(*e.a, out);
      out << ".flatMap(" << e.flat.name << ')';
      break;
    case ExprKind::kReduceByKey:
      PrintExpr(*e.a, out);
      out << ".reduceByKey(" << e.binary.name << ')';
      break;
    case ExprKind::kReduce:
      PrintExpr(*e.a, out);
      out << ".reduce(" << e.binary.name << ')';
      break;
    case ExprKind::kJoin:
      out << '(';
      PrintExpr(*e.a, out);
      out << " join ";
      PrintExpr(*e.b, out);
      out << ')';
      break;
    case ExprKind::kUnion:
      out << '(';
      PrintExpr(*e.a, out);
      out << " union ";
      PrintExpr(*e.b, out);
      out << ')';
      break;
    case ExprKind::kDistinct:
      PrintExpr(*e.a, out);
      out << ".distinct()";
      break;
    case ExprKind::kCount:
      PrintExpr(*e.a, out);
      out << ".count()";
      break;
    case ExprKind::kCombine2:
      out << "combine2(";
      PrintExpr(*e.a, out);
      out << ", ";
      PrintExpr(*e.b, out);
      out << ", " << e.binary.name << ')';
      break;
  }
}

void PrintStmt(const Stmt& s, int indent, std::ostream& out);

void PrintStmts(const StmtList& stmts, int indent, std::ostream& out) {
  for (const StmtPtr& s : stmts) PrintStmt(*s, indent, out);
}

void PrintStmt(const Stmt& s, int indent, std::ostream& out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case StmtKind::kAssign:
      out << pad << s.var << " = ";
      PrintExpr(*s.expr, out);
      out << '\n';
      break;
    case StmtKind::kWhile:
      out << pad << "while ";
      PrintExpr(*s.expr, out);
      out << " do\n";
      PrintStmts(s.body, indent + 1, out);
      out << pad << "end while\n";
      break;
    case StmtKind::kDoWhile:
      out << pad << "do\n";
      PrintStmts(s.body, indent + 1, out);
      out << pad << "while ";
      PrintExpr(*s.expr, out);
      out << '\n';
      break;
    case StmtKind::kIf:
      out << pad << "if ";
      PrintExpr(*s.expr, out);
      out << " then\n";
      PrintStmts(s.body, indent + 1, out);
      if (!s.else_body.empty()) {
        out << pad << "else\n";
        PrintStmts(s.else_body, indent + 1, out);
      }
      out << pad << "end if\n";
      break;
    case StmtKind::kWriteFile:
      out << pad;
      PrintExpr(*s.expr, out);
      out << ".writeFile(";
      PrintExpr(*s.filename, out);
      out << ")\n";
      break;
  }
}

}  // namespace

// ----- Source printer -----
//
// Emits the parser grammar (lang/parser.h) so programs round-trip through
// lang::Parse. Kept separate from the debug printer above: the debug form
// optimizes for reading IR dumps, this form for re-running programs.

namespace {

void SourceDatumLiteral(const Datum& d, std::ostream& out) {
  switch (d.kind()) {
    case Datum::Kind::kInt64:
      out << d.int64();
      break;
    case Datum::Kind::kDouble:
      out << std::to_string(d.dbl());  // fixed notation; the lexer has no
      break;                           // exponent syntax
    case Datum::Kind::kString: {
      out << '"';
      for (char c : d.str()) {
        if (c == '"' || c == '\\') out << '\\';
        if (c == '\n') {
          out << "\\n";
        } else {
          out << c;
        }
      }
      out << '"';
      break;
    }
    case Datum::Kind::kTuple: {
      out << '(';
      bool first = true;
      for (const Datum& field : d.tuple()) {
        if (!first) out << ", ";
        first = false;
        SourceDatumLiteral(field, out);
      }
      out << ')';
      break;
    }
    default:
      // Null/bool literals have no bagOf syntax; the debug form at least
      // makes the failure readable.
      out << d.ToString();
      break;
  }
}

void SourceExpr(const Expr& e, std::ostream& out) {
  switch (e.kind) {
    case ExprKind::kLit:
      if (e.lit.is_int64() && e.lit.int64() < 0) {
        // The expression grammar has no unary minus.
        out << "(0 - " << -e.lit.int64() << ')';
      } else if (e.lit.is_bool()) {
        out << (e.lit.boolean() ? "true" : "false");
      } else {
        SourceDatumLiteral(e.lit, out);
      }
      break;
    case ExprKind::kVarRef:
      out << e.var;
      break;
    case ExprKind::kBinOp:
      out << '(';
      SourceExpr(*e.a, out);
      out << ' '
          << (e.binop == BinOpKind::kConcat ? "++" : BinOpName(e.binop))
          << ' ';
      SourceExpr(*e.b, out);
      out << ')';
      break;
    case ExprKind::kNot:
      out << "!(";
      SourceExpr(*e.a, out);
      out << ')';
      break;
    case ExprKind::kScalarFromBag:
      out << "scalarOf(";
      SourceExpr(*e.a, out);
      out << ')';
      break;
    case ExprKind::kBagLit:
      if (e.bag_lit.empty()) {
        out << "empty()";
      } else {
        out << "bagOf(";
        bool first = true;
        for (const Datum& d : e.bag_lit) {
          if (!first) out << ", ";
          first = false;
          SourceDatumLiteral(d, out);
        }
        out << ')';
      }
      break;
    case ExprKind::kFromScalar:
      out << "newBag(";
      SourceExpr(*e.a, out);
      out << ')';
      break;
    case ExprKind::kReadFile:
      out << "readFile(";
      SourceExpr(*e.a, out);
      out << ')';
      break;
    case ExprKind::kMap:
      SourceExpr(*e.a, out);
      out << ".map(" << e.unary.name << ')';
      break;
    case ExprKind::kFilter:
      SourceExpr(*e.a, out);
      out << ".filter(" << e.pred.name << ')';
      break;
    case ExprKind::kFlatMap:
      SourceExpr(*e.a, out);
      out << ".flatMap(" << e.flat.name << ')';
      break;
    case ExprKind::kReduceByKey:
      SourceExpr(*e.a, out);
      out << ".reduceByKey(" << e.binary.name << ')';
      break;
    case ExprKind::kReduce:
      SourceExpr(*e.a, out);
      out << ".reduce(" << e.binary.name << ')';
      break;
    case ExprKind::kJoin:
      SourceExpr(*e.a, out);
      out << ".join(";
      SourceExpr(*e.b, out);
      out << ')';
      break;
    case ExprKind::kUnion:
      SourceExpr(*e.a, out);
      out << ".union(";
      SourceExpr(*e.b, out);
      out << ')';
      break;
    case ExprKind::kDistinct:
      SourceExpr(*e.a, out);
      out << ".distinct()";
      break;
    case ExprKind::kCount:
      SourceExpr(*e.a, out);
      out << ".count()";
      break;
    case ExprKind::kCombine2:
      // Preparator-internal; no surface syntax (documented in ast.h).
      out << "combine2(";
      SourceExpr(*e.a, out);
      out << ", ";
      SourceExpr(*e.b, out);
      out << ", " << e.binary.name << ')';
      break;
  }
}

void SourceStmts(const StmtList& stmts, int indent, std::ostream& out);

void SourceStmt(const Stmt& s, int indent, std::ostream& out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case StmtKind::kAssign:
      out << pad << s.var << " = ";
      SourceExpr(*s.expr, out);
      out << ";\n";
      break;
    case StmtKind::kWhile:
      out << pad << "while (";
      SourceExpr(*s.expr, out);
      out << ") {\n";
      SourceStmts(s.body, indent + 1, out);
      out << pad << "}\n";
      break;
    case StmtKind::kDoWhile:
      out << pad << "do {\n";
      SourceStmts(s.body, indent + 1, out);
      out << pad << "} while (";
      SourceExpr(*s.expr, out);
      out << ");\n";
      break;
    case StmtKind::kIf:
      out << pad << "if (";
      SourceExpr(*s.expr, out);
      out << ") {\n";
      SourceStmts(s.body, indent + 1, out);
      if (!s.else_body.empty()) {
        out << pad << "} else {\n";
        SourceStmts(s.else_body, indent + 1, out);
      }
      out << pad << "}\n";
      break;
    case StmtKind::kWriteFile:
      out << pad << "write(";
      SourceExpr(*s.expr, out);
      out << ", ";
      SourceExpr(*s.filename, out);
      out << ");\n";
      break;
  }
}

void SourceStmts(const StmtList& stmts, int indent, std::ostream& out) {
  for (const StmtPtr& s : stmts) SourceStmt(*s, indent, out);
}

}  // namespace

std::string ToSource(const Expr& expr) {
  std::ostringstream out;
  SourceExpr(expr, out);
  return out.str();
}

std::string ToSource(const Program& program) {
  std::ostringstream out;
  SourceStmts(program.stmts, 0, out);
  return out.str();
}

std::string ToString(const Expr& expr) {
  std::ostringstream out;
  PrintExpr(expr, out);
  return out.str();
}

std::string ToString(const Stmt& stmt, int indent) {
  std::ostringstream out;
  PrintStmt(stmt, indent, out);
  return out.str();
}

std::string ToString(const Program& program) {
  std::ostringstream out;
  PrintStmts(program.stmts, 0, out);
  return out.str();
}

}  // namespace mitos::lang
