#include "lang/functions.h"

#include <cstdlib>

#include "common/logging.h"

namespace mitos::lang {
namespace fns {

UnaryFn PairWithOne() {
  return {"pairWithOne",
          [](const Datum& x) { return Datum::Pair(x, Datum::Int64(1)); }};
}

BinaryFn SumInt64() {
  return {"sumInt64", [](const Datum& a, const Datum& b) {
            return Datum::Int64(a.int64() + b.int64());
          }};
}

BinaryFn SumDouble() {
  return {"sumDouble", [](const Datum& a, const Datum& b) {
            return Datum::Double(a.dbl() + b.dbl());
          }};
}

UnaryFn Field(size_t i) {
  // The name is the parser's registry syntax (lang/parser.cc), so printed
  // programs (lang::ToSource) round-trip through lang::Parse.
  return {"field(" + std::to_string(i) + ")",
          [i](const Datum& x) { return x.field(i); }};
}

UnaryFn Identity() {
  return {"identity", [](const Datum& x) { return x; }};
}

UnaryFn AddInt64(int64_t delta) {
  return {"addInt64(" + std::to_string(delta) + ")", [delta](const Datum& x) {
            return Datum::Int64(x.int64() + delta);
          }};
}

UnaryFn AbsDiffFields12() {
  // Named to match the parser registry ("absDiff") so printed
  // programs re-parse to a program that prints identically.
  return {"absDiff", [](const Datum& x) {
            return Datum::Int64(std::abs(x.field(1).int64() -
                                         x.field(2).int64()));
          }};
}

UnaryFn ScaleDouble(double factor) {
  return {"scaleDouble", [factor](const Datum& x) {
            return Datum::Double(x.dbl() * factor);
          }};
}

PredicateFn FieldEquals(size_t i, Datum value) {
  // Only int64 values are expressible in the parser's fieldEquals(i, v)
  // syntax; other kinds keep a debug-only name.
  std::string name =
      value.is_int64()
          ? "fieldEquals(" + std::to_string(i) + ", " +
                std::to_string(value.int64()) + ")"
          : "fieldEquals" + std::to_string(i);
  return {std::move(name),
          [i, value](const Datum& x) { return x.field(i) == value; }};
}

PredicateFn Int64ModEquals(int64_t modulus, int64_t remainder) {
  MITOS_CHECK_GT(modulus, 0);
  return {"modEquals(" + std::to_string(modulus) + ", " +
              std::to_string(remainder) + ")",
          [modulus, remainder](const Datum& x) {
            return x.int64() % modulus == remainder;
          }};
}

}  // namespace fns
}  // namespace mitos::lang
