#include "lang/functions.h"

#include <cstdlib>

#include "common/logging.h"

namespace mitos::lang {
namespace fns {

UnaryFn PairWithOne() {
  UnaryFn f{"pairWithOne",
            [](const Datum& x) { return Datum::Pair(x, Datum::Int64(1)); }};
  f.i64_to_pair = [](int64_t x) { return Int64Pair{x, 1}; };
  return f;
}

BinaryFn SumInt64() {
  BinaryFn f{"sumInt64", [](const Datum& a, const Datum& b) {
               return Datum::Int64(a.int64() + b.int64());
             }};
  f.i64 = [](int64_t a, int64_t b) { return a + b; };
  return f;
}

BinaryFn SumDouble() {
  return {"sumDouble", [](const Datum& a, const Datum& b) {
            return Datum::Double(a.dbl() + b.dbl());
          }};
}

BinaryFn MinInt64() {
  BinaryFn f{"minInt64", [](const Datum& a, const Datum& b) {
               return a.int64() <= b.int64() ? a : b;
             }};
  f.i64 = [](int64_t a, int64_t b) { return a <= b ? a : b; };
  return f;
}

BinaryFn MaxInt64() {
  BinaryFn f{"maxInt64", [](const Datum& a, const Datum& b) {
               return a.int64() >= b.int64() ? a : b;
             }};
  f.i64 = [](int64_t a, int64_t b) { return a >= b ? a : b; };
  return f;
}

BinaryFn KeepLast() {
  // Deliberately no i64 fast path: the result depends on fold order.
  return {"keepLast", [](const Datum&, const Datum& b) { return b; }};
}

UnaryFn Field(size_t i) {
  // The name is the parser's registry syntax (lang/parser.cc), so printed
  // programs (lang::ToSource) round-trip through lang::Parse.
  UnaryFn f{"field(" + std::to_string(i) + ")",
            [i](const Datum& x) { return x.field(i); }};
  // Columnar pairs are exactly width-2 tuples, so field(0)/field(1) have
  // typed projections.
  if (i == 0) f.pair_to_i64 = [](int64_t k, int64_t) { return k; };
  if (i == 1) f.pair_to_i64 = [](int64_t, int64_t v) { return v; };
  return f;
}

UnaryFn Identity() {
  UnaryFn f{"identity", [](const Datum& x) { return x; }};
  f.i64 = [](int64_t x) { return x; };
  f.f64 = [](double x) { return x; };
  f.pair_to_pair = [](int64_t k, int64_t v) { return Int64Pair{k, v}; };
  return f;
}

UnaryFn AddInt64(int64_t delta) {
  UnaryFn f{"addInt64(" + std::to_string(delta) + ")",
            [delta](const Datum& x) {
              return Datum::Int64(x.int64() + delta);
            }};
  f.i64 = [delta](int64_t x) { return x + delta; };
  return f;
}

UnaryFn MulInt64(int64_t k) {
  UnaryFn f{"mulInt64(" + std::to_string(k) + ")", [k](const Datum& x) {
              return Datum::Int64(x.int64() * k);
            }};
  f.i64 = [k](int64_t x) { return x * k; };
  return f;
}

UnaryFn SumJoin() {
  // Join output (k, lv, rv) -> (k, lv + rv): projects a join back into a
  // pair bag, so joined pipelines stay joinable/reducible. Width-3 tuples
  // are never columnar, so there is no fast path.
  return {"sumJoin", [](const Datum& t) {
            return Datum::Pair(t.field(0), Datum::Int64(t.field(1).int64() +
                                                        t.field(2).int64()));
          }};
}

UnaryFn PairSwap() {
  UnaryFn f{"pairSwap", [](const Datum& p) {
              return Datum::Pair(p.field(1), p.field(0));
            }};
  f.pair_to_pair = [](int64_t k, int64_t v) { return Int64Pair{v, k}; };
  return f;
}

UnaryFn AbsDiffFields12() {
  // Named to match the parser registry ("absDiff") so printed
  // programs re-parse to a program that prints identically.
  return {"absDiff", [](const Datum& x) {
            return Datum::Int64(std::abs(x.field(1).int64() -
                                         x.field(2).int64()));
          }};
}

UnaryFn ScaleDouble(double factor) {
  UnaryFn f{"scaleDouble", [factor](const Datum& x) {
              return Datum::Double(x.dbl() * factor);
            }};
  f.f64 = [factor](double x) { return x * factor; };
  return f;
}

UnaryFn StrLen() {
  return {"strLen", [](const Datum& x) {
            return Datum::Int64(static_cast<int64_t>(x.str().size()));
          }};
}

UnaryFn StrTag(int64_t k) {
  return {"strTag(" + std::to_string(k) + ")", [k](const Datum& x) {
            return Datum::String(x.str() + "#" + std::to_string(k));
          }};
}

PredicateFn FieldEquals(size_t i, Datum value) {
  // Only int64 values are expressible in the parser's fieldEquals(i, v)
  // syntax; other kinds keep a debug-only name.
  std::string name =
      value.is_int64()
          ? "fieldEquals(" + std::to_string(i) + ", " +
                std::to_string(value.int64()) + ")"
          : "fieldEquals" + std::to_string(i);
  PredicateFn f{std::move(name),
                [i, value](const Datum& x) { return x.field(i) == value; }};
  if (value.is_int64() && i < 2) {
    int64_t want = value.int64();
    f.pair = i == 0
                 ? std::function<bool(int64_t, int64_t)>(
                       [want](int64_t k, int64_t) { return k == want; })
                 : std::function<bool(int64_t, int64_t)>(
                       [want](int64_t, int64_t v) { return v == want; });
  }
  return f;
}

PredicateFn Int64ModEquals(int64_t modulus, int64_t remainder) {
  MITOS_CHECK_GT(modulus, 0);
  PredicateFn f{"modEquals(" + std::to_string(modulus) + ", " +
                    std::to_string(remainder) + ")",
                [modulus, remainder](const Datum& x) {
                  return x.int64() % modulus == remainder;
                }};
  f.i64 = [modulus, remainder](int64_t x) { return x % modulus == remainder; };
  return f;
}

PredicateFn GtInt64(int64_t k) {
  PredicateFn f{"gtInt64(" + std::to_string(k) + ")",
                [k](const Datum& x) { return x.int64() > k; }};
  f.i64 = [k](int64_t x) { return x > k; };
  return f;
}

PredicateFn LtInt64(int64_t k) {
  PredicateFn f{"ltInt64(" + std::to_string(k) + ")",
                [k](const Datum& x) { return x.int64() < k; }};
  f.i64 = [k](int64_t x) { return x < k; };
  return f;
}

PredicateFn StrLenGt(int64_t k) {
  return {"strLenGt(" + std::to_string(k) + ")", [k](const Datum& x) {
            return static_cast<int64_t>(x.str().size()) > k;
          }};
}

FlatMapFn Dup() {
  FlatMapFn f{"dup", [](const Datum& x) {
                return DatumVector{x, x};
              }};
  f.i64 = [](int64_t x, std::vector<int64_t>* out) {
    out->push_back(x);
    out->push_back(x);
  };
  return f;
}

FlatMapFn RangeTo() {
  FlatMapFn f{"rangeTo", [](const Datum& x) {
                DatumVector out;
                for (int64_t i = 0; i < x.int64(); ++i) {
                  out.push_back(Datum::Int64(i));
                }
                return out;
              }};
  f.i64 = [](int64_t x, std::vector<int64_t>* out) {
    for (int64_t i = 0; i < x; ++i) out->push_back(i);
  };
  return f;
}

}  // namespace fns
}  // namespace mitos::lang
