#include "lang/functions.h"

#include <cstdlib>

#include "common/logging.h"

namespace mitos::lang {
namespace fns {

UnaryFn PairWithOne() {
  return {"pairWithOne",
          [](const Datum& x) { return Datum::Pair(x, Datum::Int64(1)); }};
}

BinaryFn SumInt64() {
  return {"sumInt64", [](const Datum& a, const Datum& b) {
            return Datum::Int64(a.int64() + b.int64());
          }};
}

BinaryFn SumDouble() {
  return {"sumDouble", [](const Datum& a, const Datum& b) {
            return Datum::Double(a.dbl() + b.dbl());
          }};
}

UnaryFn Field(size_t i) {
  return {"field" + std::to_string(i),
          [i](const Datum& x) { return x.field(i); }};
}

UnaryFn Identity() {
  return {"identity", [](const Datum& x) { return x; }};
}

UnaryFn AddInt64(int64_t delta) {
  return {"addInt64(" + std::to_string(delta) + ")", [delta](const Datum& x) {
            return Datum::Int64(x.int64() + delta);
          }};
}

UnaryFn AbsDiffFields12() {
  return {"absDiffFields12", [](const Datum& x) {
            return Datum::Int64(std::abs(x.field(1).int64() -
                                         x.field(2).int64()));
          }};
}

UnaryFn ScaleDouble(double factor) {
  return {"scaleDouble", [factor](const Datum& x) {
            return Datum::Double(x.dbl() * factor);
          }};
}

PredicateFn FieldEquals(size_t i, Datum value) {
  return {"fieldEquals" + std::to_string(i),
          [i, value](const Datum& x) { return x.field(i) == value; }};
}

PredicateFn Int64ModEquals(int64_t modulus, int64_t remainder) {
  MITOS_CHECK_GT(modulus, 0);
  return {"int64Mod", [modulus, remainder](const Datum& x) {
            return x.int64() % modulus == remainder;
          }};
}

}  // namespace fns
}  // namespace mitos::lang
