// ProgramBuilder: imperative-feeling construction of lang::Programs.
//
// This is the reproduction's stand-in for the paper's macro-based frontend:
// user code reads top-to-bottom like an imperative script, and the builder
// records the control-flow structure the Scala macro would have captured:
//
//   ProgramBuilder pb;
//   pb.Assign("day", LitInt(1));
//   pb.While(Le(Var("day"), LitInt(365)), [&] {
//     pb.Assign("visits", ReadFile(Concat(LitString("log"), Var("day"))));
//     pb.Assign("counts", ReduceByKey(Map(Var("visits"), fns::PairWithOne()),
//                                     fns::SumInt64()));
//     pb.WriteFile(Var("counts"), Concat(LitString("out"), Var("day")));
//     pb.Assign("day", Add(Var("day"), LitInt(1)));
//   });
//   lang::Program program = pb.Build();
#ifndef MITOS_LANG_BUILDER_H_
#define MITOS_LANG_BUILDER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "lang/ast.h"

namespace mitos::lang {

class ProgramBuilder {
 public:
  ProgramBuilder() { scopes_.emplace_back(); }

  ProgramBuilder(const ProgramBuilder&) = delete;
  ProgramBuilder& operator=(const ProgramBuilder&) = delete;

  // var = expr
  void Assign(std::string var, ExprPtr expr) {
    Emit(lang::Assign(std::move(var), std::move(expr)));
  }

  // bag.writeFile(filename)
  void WriteFile(ExprPtr bag, ExprPtr filename) {
    Emit(lang::WriteFile(std::move(bag), std::move(filename)));
  }

  // while (cond) { body() }
  void While(ExprPtr cond, const std::function<void()>& body) {
    Emit(lang::While(std::move(cond), Capture(body)));
  }

  // do { body() } while (cond)
  void DoWhile(const std::function<void()>& body, ExprPtr cond) {
    Emit(lang::DoWhile(Capture(body), std::move(cond)));
  }

  // if (cond) { then_body() } else { else_body() }
  void If(ExprPtr cond, const std::function<void()>& then_body,
          const std::function<void()>& else_body = nullptr) {
    StmtList then_stmts = Capture(then_body);
    StmtList else_stmts = else_body ? Capture(else_body) : StmtList{};
    Emit(lang::If(std::move(cond), std::move(then_stmts),
                  std::move(else_stmts)));
  }

  // Returns the program built so far. Non-destructive: statements are
  // shared, so calling Build() repeatedly (or continuing to add statements
  // afterwards) is safe and cheap.
  Program Build() const {
    MITOS_CHECK_EQ(scopes_.size(), 1u)
        << "Build() called inside an open control-flow scope";
    Program p;
    p.stmts = scopes_.back();
    return p;
  }

 private:
  void Emit(StmtPtr stmt) { scopes_.back().push_back(std::move(stmt)); }

  StmtList Capture(const std::function<void()>& body) {
    MITOS_CHECK(body) << "null body callback";
    scopes_.emplace_back();
    body();
    StmtList captured = std::move(scopes_.back());
    scopes_.pop_back();
    return captured;
  }

  std::vector<StmtList> scopes_;
};

}  // namespace mitos::lang

#endif  // MITOS_LANG_BUILDER_H_
