#include "testing/repro.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "lang/parser.h"

namespace mitos::testing {
namespace {

// Strips one leading "// " (or "//") marker; returns false for
// non-comment lines.
bool CommentBody(const std::string& line, std::string* body) {
  if (line.rfind("//", 0) != 0) return false;
  size_t start = 2;
  while (start < line.size() && line[start] == ' ') ++start;
  *body = line.substr(start);
  return true;
}

// Splits "key: value" (returns false when there is no ':').
bool KeyValue(const std::string& body, std::string* key,
              std::string* value) {
  const size_t colon = body.find(':');
  if (colon == std::string::npos) return false;
  *key = body.substr(0, colon);
  size_t start = colon + 1;
  while (start < body.size() && body[start] == ' ') ++start;
  *value = body.substr(start);
  while (!key->empty() && key->back() == ' ') key->pop_back();
  return true;
}

}  // namespace

std::string FormatRepro(const Repro& repro) {
  std::ostringstream out;
  out << "// mitos_fuzz repro\n";
  out << "// seed: " << repro.seed << "\n";
  if (!repro.mismatch_label.empty()) {
    out << "// mismatch: " << repro.mismatch_label << "\n";
  }
  if (!repro.detail.empty()) {
    std::istringstream lines(repro.detail);
    std::string line;
    bool first = true;
    while (std::getline(lines, line)) {
      out << "// " << (first ? "detail: " : "    ") << line << "\n";
      first = false;
    }
  }
  for (size_t i = 0; i < repro.fault_specs.size(); ++i) {
    out << "// fault[" << i << "]: " << repro.fault_specs[i] << "\n";
  }
  out << "\n" << repro.source;
  if (repro.source.empty() || repro.source.back() != '\n') out << "\n";
  return out.str();
}

StatusOr<Repro> ParseRepro(const std::string& text) {
  Repro repro;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::string body;
    if (line.empty()) continue;
    if (!CommentBody(line, &body)) break;  // header over; body may still
                                           // contain comments — fine, the
                                           // lexer skips them
    std::string key, value;
    if (!KeyValue(body, &key, &value)) continue;
    if (key == "seed") {
      repro.seed = std::strtoull(value.c_str(), nullptr, 0);
    } else if (key == "mismatch") {
      repro.mismatch_label = value;
    } else if (key == "detail") {
      repro.detail = value;
    } else if (key.rfind("fault[", 0) == 0) {
      repro.fault_specs.push_back(value);
    }
  }
  for (const std::string& spec : repro.fault_specs) {
    auto plan = sim::FaultPlan::Parse(spec);
    if (!plan.ok()) {
      return Status::InvalidArgument("bad fault spec \"" + spec +
                                     "\": " + plan.status().ToString());
    }
    repro.fault_plans.push_back(std::move(plan).value());
  }
  // The program body is everything (comments included); the header keys
  // above are harmless comments to the parser.
  repro.source = text;
  auto program = lang::Parse(text);
  if (!program.ok()) return program.status();
  repro.program = std::move(program).value();
  return repro;
}

StatusOr<Repro> LoadReproFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open repro file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  auto repro = ParseRepro(text.str());
  if (!repro.ok()) {
    return Status(repro.status().code(),
                  path + ": " + repro.status().message());
  }
  return repro;
}

Status SaveReproFile(const std::string& path, const Repro& repro) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write repro file: " + path);
  out << FormatRepro(repro);
  out.close();
  if (!out) return Status::Internal("short write to repro file: " + path);
  return Status::Ok();
}

std::vector<std::string> ListCorpus(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".mitos") continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace mitos::testing
