// Greedy AST minimization for fuzzer findings.
//
// Given a failing program and a predicate ("does this program still
// fail?"), Shrink repeatedly tries size-reducing rewrites and keeps every
// one that preserves the failure, until a fixpoint (no single rewrite keeps
// it failing) or the evaluation budget runs out:
//
//   * statement level: delete any statement; unwrap a loop or if into its
//     body (one-trip / then-branch / else-branch); force a condition false;
//   * expression level: replace an operator chain with its input
//     (x.map(f) -> x, a.union(b) -> a or b), shrink integer literals
//     toward 1, truncate or empty bag literals.
//
// Rewrites that break the program (unknown variable, type error) are
// rejected automatically: the harness reports them as run errors on every
// engine *including the reference*, which the predicate (built on
// RunDifferential) maps to kInfraError — not a mismatch — so the candidate
// is discarded. Shrinking is deterministic: candidates are enumerated in a
// fixed order, so the same input and predicate always minimize to the same
// repro.
#ifndef MITOS_TESTING_SHRINK_H_
#define MITOS_TESTING_SHRINK_H_

#include <functional>

#include "lang/ast.h"

namespace mitos::testing {

struct ShrinkOptions {
  // Upper bound on predicate evaluations (each is a full differential
  // harness run for mitos_fuzz's use).
  int max_evals = 500;
};

struct ShrinkResult {
  lang::Program program;
  int evals = 0;   // predicate evaluations spent
  int rounds = 0;  // successful rewrites applied
};

// `still_fails` must be true for `program` itself (the caller found the
// failure); the result is the smallest program reached for which it stayed
// true.
ShrinkResult Shrink(
    const lang::Program& program,
    const std::function<bool(const lang::Program&)>& still_fails,
    const ShrinkOptions& options = {});

// Statements in `program`, counted recursively (test/diagnostic helper).
int CountStmts(const lang::Program& program);

}  // namespace mitos::testing

#endif  // MITOS_TESTING_SHRINK_H_
