#include "testing/generator.h"

#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "lang/functions.h"

namespace mitos::testing {
namespace {

using lang::ExprPtr;
using lang::StmtList;

// Element shapes a generated bag can hold. kInt and kPair ride the typed
// column fast path of the batched data plane; kStr and kStrPair (string
// key, int64 value) force the boxed DatumVector fallback — the fuzzer must
// exercise both so the differential harness covers fast path and fallback.
enum class Shape { kInt, kPair, kStr, kStrPair };

class Generator {
 public:
  explicit Generator(const GeneratorOptions& options)
      : opts_(options), rng_(options.seed) {}

  GeneratedCase Run() {
    GeneratedCase result;
    result.seed = opts_.seed;
    out_ = &result.program.stmts;
    hist_ = &result.op_histogram;

    // Seed input bags: every program starts from 2-3 bagOf literals so it
    // is closed (no pre-seeded filesystem).
    int num_seeds = 2 + static_cast<int>(rng_.NextBelow(2));
    for (int i = 0; i < num_seeds; ++i) {
      Shape shape = RandomShape();
      std::string name = NewVar();
      Emit(lang::Assign(name, lang::BagLit(RandomBag(shape))));
      bags_.push_back({name, shape});
    }

    EmitStmts(opts_.budget, /*depth=*/0);

    // Write out every live bag so every computation is observable.
    int out_index = 0;
    for (const auto& [name, shape] : bags_) {
      Emit(lang::WriteFile(
          lang::Var(name),
          lang::LitString("out" + std::to_string(out_index++))));
    }

    result.source = lang::ToSource(result.program);
    GenerateFaultPlans(&result);
    return result;
  }

 private:
  struct BagVar {
    std::string name;
    Shape shape;
  };

  void Emit(lang::StmtPtr stmt) { out_->push_back(std::move(stmt)); }
  void Count(const char* op) { ++(*hist_)[op]; }

  std::string NewVar() { return "v" + std::to_string(var_counter_++); }

  Shape RandomShape() {
    switch (rng_.NextBelow(4)) {
      case 0:
        return Shape::kInt;
      case 1:
        return Shape::kPair;
      case 2:
        return Shape::kStr;
      default:
        return Shape::kStrPair;
    }
  }

  // A small vocabulary keyed by k (same key space as the int shapes) so
  // distinct/union/reduceByKey see collisions on string data too.
  static std::string Word(int64_t k) {
    return std::string(1 + static_cast<size_t>(k % 4),
                       static_cast<char>('a' + k % 26));
  }

  DatumVector RandomBag(Shape shape) {
    DatumVector data;
    size_t n = 1 + rng_.NextBelow(static_cast<uint64_t>(opts_.max_bag));
    for (size_t i = 0; i < n; ++i) {
      int64_t k = static_cast<int64_t>(
          rng_.NextBelow(static_cast<uint64_t>(opts_.key_range)));
      switch (shape) {
        case Shape::kInt:
          data.push_back(Datum::Int64(k));
          break;
        case Shape::kPair:
          data.push_back(Datum::Pair(
              Datum::Int64(k),
              Datum::Int64(static_cast<int64_t>(rng_.NextBelow(100)))));
          break;
        case Shape::kStr:
          data.push_back(Datum::String(Word(k)));
          break;
        case Shape::kStrPair:
          data.push_back(Datum::Pair(
              Datum::String(Word(k)),
              Datum::Int64(static_cast<int64_t>(rng_.NextBelow(100)))));
          break;
      }
    }
    return data;
  }

  // Picks a visible bag of the wanted shape, deriving one (with an emitted
  // conversion statement) when none exists.
  std::string BagOfShape(Shape want) {
    std::vector<const BagVar*> candidates;
    for (const BagVar& b : bags_) {
      if (b.shape == want) candidates.push_back(&b);
    }
    if (!candidates.empty()) {
      return candidates[rng_.NextBelow(candidates.size())]->name;
    }
    std::string name = NewVar();
    switch (want) {
      case Shape::kStr:
        // Strings are not derivable from the int world: seed a literal.
        Emit(lang::Assign(name, lang::BagLit(RandomBag(Shape::kStr))));
        break;
      case Shape::kStrPair: {
        std::string in = BagOfShape(Shape::kStr);
        Emit(lang::Assign(name, lang::Map(lang::Var(in),
                                          lang::fns::PairWithOne())));
        Count("map");
        break;
      }
      case Shape::kPair: {
        std::string in = BagOfShape(Shape::kInt);
        Emit(lang::Assign(name, lang::Map(lang::Var(in),
                                          lang::fns::PairWithOne())));
        Count("map");
        break;
      }
      case Shape::kInt: {
        const BagVar& src = bags_[rng_.NextBelow(bags_.size())];
        ExprPtr in = lang::Var(src.name);
        switch (src.shape) {
          case Shape::kInt:
            in = lang::Map(std::move(in), lang::fns::AddInt64(1));
            break;
          case Shape::kPair:
          case Shape::kStrPair:
            in = lang::Map(std::move(in), lang::fns::Field(1));
            break;
          case Shape::kStr:
            in = lang::Map(std::move(in), lang::fns::StrLen());
            break;
        }
        Emit(lang::Assign(name, std::move(in)));
        Count("map");
        break;
      }
    }
    bags_.push_back({name, want});
    return name;
  }

  // ----- statements -----

  void EmitStmts(int budget, int depth) {
    while (budget > 0) {
      --budget;
      uint64_t pick = rng_.NextBelow(12);
      if (depth >= opts_.max_depth && pick >= 6 && pick <= 9) pick = 0;
      switch (pick) {
        case 6:
          EmitScalarStmt();
          break;
        case 7:
        case 8: {
          // Loops consume extra budget for their body.
          int body_budget = 1 + static_cast<int>(rng_.NextBelow(3));
          budget -= body_budget / 2;
          EmitLoop(depth, body_budget);
          break;
        }
        case 9:
          EmitIf(depth);
          break;
        case 10:
          EmitWrite();
          break;
        default:
          EmitBagStmt();
          break;
      }
    }
  }

  void EmitBagStmt() {
    switch (rng_.NextBelow(17)) {
      case 0: {  // int map
        std::string in = BagOfShape(Shape::kInt);
        std::string name = NewVar();
        ExprPtr rhs =
            rng_.NextBelow(2) == 0
                ? lang::Map(lang::Var(in),
                            lang::fns::AddInt64(rng_.NextInRange(-3, 3)))
                : lang::Map(lang::Var(in),
                            lang::fns::MulInt64(rng_.NextInRange(-2, 3)));
        Emit(lang::Assign(name, rhs));
        Count("map");
        bags_.push_back({name, Shape::kInt});
        break;
      }
      case 1: {  // filter
        std::string in = BagOfShape(Shape::kInt);
        std::string name = NewVar();
        ExprPtr rhs;
        switch (rng_.NextBelow(3)) {
          case 0:
            rhs = lang::Filter(lang::Var(in),
                               lang::fns::Int64ModEquals(
                                   2 + rng_.NextInRange(0, 2),
                                   rng_.NextInRange(0, 1)));
            break;
          case 1:
            rhs = lang::Filter(lang::Var(in),
                               lang::fns::GtInt64(rng_.NextInRange(0, 8)));
            break;
          default:
            rhs = lang::Filter(lang::Var(in),
                               lang::fns::LtInt64(rng_.NextInRange(2, 10)));
            break;
        }
        Emit(lang::Assign(name, rhs));
        Count("filter");
        bags_.push_back({name, Shape::kInt});
        break;
      }
      case 2: {  // pair from int
        std::string in = BagOfShape(Shape::kInt);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::Map(lang::Var(in),
                                          lang::fns::PairWithOne())));
        Count("map");
        bags_.push_back({name, Shape::kPair});
        break;
      }
      case 3: {  // reduceByKey
        std::string in = BagOfShape(Shape::kPair);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::ReduceByKey(lang::Var(in),
                                                  RandomCombiner())));
        Count("reduceByKey");
        bags_.push_back({name, Shape::kPair});
        break;
      }
      case 4: {  // join; project the (k, lv, rv) triples back to a shape
        std::string build = BagOfShape(Shape::kPair);
        std::string probe = BagOfShape(Shape::kPair);
        std::string name = NewVar();
        ExprPtr joined = lang::Join(lang::Var(build), lang::Var(probe));
        switch (rng_.NextBelow(3)) {
          case 0:  // (k, lv + rv): stays a pair bag
            Emit(lang::Assign(name, lang::Map(joined, lang::fns::SumJoin())));
            bags_.push_back({name, Shape::kPair});
            break;
          case 1:  // |lv - rv|: int bag
            Emit(lang::Assign(name,
                              lang::Map(joined,
                                        lang::fns::AbsDiffFields12())));
            bags_.push_back({name, Shape::kInt});
            break;
          default:  // matched keys: int bag
            Emit(lang::Assign(name, lang::Map(joined, lang::fns::Field(0))));
            bags_.push_back({name, Shape::kInt});
            break;
        }
        Count("join");
        break;
      }
      case 5: {  // union (same shape)
        Shape shape = RandomShape();
        std::string a = BagOfShape(shape);
        std::string b = BagOfShape(shape);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::Union(lang::Var(a), lang::Var(b))));
        Count("union");
        bags_.push_back({name, shape});
        break;
      }
      case 6: {  // distinct
        Shape shape = RandomShape();
        std::string in = BagOfShape(shape);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::Distinct(lang::Var(in))));
        Count("distinct");
        bags_.push_back({name, shape});
        break;
      }
      case 7: {  // values of pairs (int- or string-keyed)
        std::string in = BagOfShape(rng_.NextBelow(2) == 0
                                        ? Shape::kPair
                                        : Shape::kStrPair);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::Map(lang::Var(in),
                                          lang::fns::Field(1))));
        Count("map");
        bags_.push_back({name, Shape::kInt});
        break;
      }
      case 8: {  // copy (identity materialization + loop carry)
        const BagVar& src = bags_[rng_.NextBelow(bags_.size())];
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::Var(src.name)));
        Count("copy");
        bags_.push_back({name, src.shape});
        break;
      }
      case 9: {  // flatMap dup
        std::string in = BagOfShape(Shape::kInt);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::FlatMap(lang::Var(in),
                                              lang::fns::Dup())));
        Count("flatMap");
        bags_.push_back({name, Shape::kInt});
        break;
      }
      case 10: {  // count: one-element int bag
        Shape shape = RandomShape();
        std::string in = BagOfShape(shape);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::Count(lang::Var(in))));
        Count("count");
        bags_.push_back({name, Shape::kInt});
        break;
      }
      case 11: {  // full reduce: one-element (or empty) int bag
        std::string in = BagOfShape(Shape::kInt);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::Reduce(lang::Var(in),
                                             RandomCombiner())));
        Count("reduce");
        bags_.push_back({name, Shape::kInt});
        break;
      }
      case 12: {  // pairSwap (value becomes the join/reduce key)
        std::string in = BagOfShape(Shape::kPair);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::Map(lang::Var(in),
                                          lang::fns::PairSwap())));
        Count("map");
        bags_.push_back({name, Shape::kPair});
        break;
      }
      case 13: {  // filter pairs on key
        std::string in = BagOfShape(Shape::kPair);
        std::string name = NewVar();
        Emit(lang::Assign(
            name,
            lang::Filter(lang::Var(in),
                         lang::fns::FieldEquals(
                             0, Datum::Int64(rng_.NextInRange(
                                    0, opts_.key_range - 1))))));
        Count("filter");
        bags_.push_back({name, Shape::kPair});
        break;
      }
      case 14: {  // string map: tag (str -> str), boxed fallback territory
        std::string in = BagOfShape(Shape::kStr);
        std::string name = NewVar();
        Emit(lang::Assign(name,
                          lang::Map(lang::Var(in),
                                    lang::fns::StrTag(
                                        rng_.NextInRange(0, 9)))));
        Count("map");
        bags_.push_back({name, Shape::kStr});
        break;
      }
      case 15: {  // string length: map into the int world, or filter on it
        std::string in = BagOfShape(Shape::kStr);
        std::string name = NewVar();
        if (rng_.NextBelow(2) == 0) {
          Emit(lang::Assign(name, lang::Map(lang::Var(in),
                                            lang::fns::StrLen())));
          Count("map");
          bags_.push_back({name, Shape::kInt});
        } else {
          Emit(lang::Assign(name,
                            lang::Filter(lang::Var(in),
                                         lang::fns::StrLenGt(
                                             rng_.NextInRange(0, 3)))));
          Count("filter");
          bags_.push_back({name, Shape::kStr});
        }
        break;
      }
      default: {  // string-keyed reduceByKey: typed state must degrade
        std::string in = BagOfShape(Shape::kStrPair);
        std::string name = NewVar();
        Emit(lang::Assign(name, lang::ReduceByKey(lang::Var(in),
                                                  RandomCombiner())));
        Count("reduceByKey");
        bags_.push_back({name, Shape::kStrPair});
        break;
      }
    }
  }

  void EmitScalarStmt() {
    Count("scalar");
    std::string name;
    bool is_new = false;
    // Half the time reassign an existing (non-counter) scalar, creating
    // scalar Φs; otherwise define a new one. A new scalar becomes visible
    // (to operand() below and to later statements) only AFTER its defining
    // statement — otherwise the rhs could read it before assignment.
    if (!scalars_.empty() && rng_.NextBelow(2) == 0) {
      name = scalars_[rng_.NextBelow(scalars_.size())];
    } else {
      name = NewVar();
      is_new = true;
    }
    if (rng_.NextBelow(3) == 0) {
      // Data flows into the scalar world: s = scalarOf(bag.count()).
      const BagVar& b = bags_[rng_.NextBelow(bags_.size())];
      Emit(lang::Assign(name, lang::ScalarFromBag(
                                  lang::Count(lang::Var(b.name)))));
      if (is_new) scalars_.push_back(name);
      return;
    }
    auto operand = [&]() -> ExprPtr {
      if (!scalars_.empty() && rng_.NextBelow(2) == 0) {
        return lang::Var(scalars_[rng_.NextBelow(scalars_.size())]);
      }
      return lang::LitInt(rng_.NextInRange(-3, 9));
    };
    ExprPtr rhs;
    switch (rng_.NextBelow(3)) {
      case 0:
        rhs = lang::Add(operand(), operand());
        break;
      case 1:
        rhs = lang::Sub(operand(), operand());
        break;
      default:
        // Multiplication only by a small literal so values stay bounded.
        rhs = lang::Mul(operand(), lang::LitInt(rng_.NextInRange(-2, 3)));
        break;
    }
    Emit(lang::Assign(name, rhs));
    if (is_new) scalars_.push_back(name);
  }

  // A data-dependent boolean over a visible bag: the k-means-convergence
  // territory of the paper. `limit` bounds which bags may be referenced
  // (loop conditions must only use bags defined before the loop).
  ExprPtr DataCond(size_t bag_limit) {
    const BagVar& b = bags_[rng_.NextBelow(bag_limit)];
    ExprPtr count = lang::ScalarFromBag(lang::Count(lang::Var(b.name)));
    if (rng_.NextBelow(2) == 0) {
      return lang::Gt(count, lang::LitInt(rng_.NextInRange(0, 4)));
    }
    return lang::Eq(lang::Mod(count, lang::LitInt(2)),
                    lang::LitInt(rng_.NextInRange(0, 1)));
  }

  // A boolean over visible scalars; falls back to a data condition when no
  // scalar is in scope.
  ExprPtr ScalarCond() {
    if (scalars_.empty() || rng_.NextBelow(3) == 0) {
      return DataCond(bags_.size());
    }
    ExprPtr s = lang::Var(scalars_[rng_.NextBelow(scalars_.size())]);
    switch (rng_.NextBelow(3)) {
      case 0:
        return lang::Eq(lang::Mod(s, lang::LitInt(2)),
                        lang::LitInt(rng_.NextInRange(0, 1)));
      case 1:
        return lang::Lt(s, lang::LitInt(rng_.NextInRange(0, 6)));
      default:
        return lang::Ne(s, lang::LitInt(rng_.NextInRange(0, 3)));
    }
  }

  void EmitLoop(int depth, int body_budget) {
    bool is_while = rng_.NextBelow(2) == 0;
    Count(is_while ? "while" : "doWhile");
    std::string counter = NewVar();
    // While loops may be zero-trip (their body's definitions do not
    // escape); do-while bodies run at least once.
    int64_t trips = is_while
                        ? static_cast<int64_t>(
                              rng_.NextBelow(opts_.max_trip + 1))
                        : 1 + static_cast<int64_t>(
                                  rng_.NextBelow(opts_.max_trip));
    Emit(lang::Assign(counter, lang::LitInt(0)));
    size_t bag_scope = bags_.size();
    size_t scalar_scope = scalars_.size();

    // Termination invariant: the condition always carries the bounded
    // counter conjunct; an optional data-dependent conjunct can only exit
    // the loop early, never extend it.
    ExprPtr cond = lang::Lt(lang::Var(counter), lang::LitInt(trips));
    if (rng_.NextBelow(3) == 0) {
      cond = lang::And(cond, DataCond(bag_scope));
    }

    StmtList body;
    StmtList* saved = out_;
    out_ = &body;
    loop_counters_.push_back(counter);
    EmitStmts(body_budget, depth + 1);
    ReassignExistingBag(bag_scope);
    Emit(lang::Assign(counter,
                      lang::Add(lang::Var(counter), lang::LitInt(1))));
    loop_counters_.pop_back();
    out_ = saved;

    if (is_while) {
      Emit(lang::While(cond, std::move(body)));
      // A while body may run zero times: its definitions do not escape.
      bags_.resize(bag_scope);
      scalars_.resize(scalar_scope);
    } else {
      Emit(lang::DoWhile(std::move(body), cond));
      // Do-while definitions escape (the body runs at least once).
    }
  }

  void EmitIf(int depth) {
    Count("if");
    ExprPtr cond = ScalarCond();
    size_t bag_scope = bags_.size();
    size_t scalar_scope = scalars_.size();

    StmtList then_body;
    StmtList* saved = out_;
    out_ = &then_body;
    EmitStmts(1 + static_cast<int>(rng_.NextBelow(2)), depth + 1);
    ReassignExistingBag(bag_scope);
    bags_.resize(bag_scope);
    scalars_.resize(scalar_scope);

    StmtList else_body;
    if (rng_.NextBelow(2) == 0) {
      out_ = &else_body;
      ReassignExistingBag(bag_scope);
      if (rng_.NextBelow(2) == 0) {
        EmitStmts(1, depth + 1);
      }
      bags_.resize(bag_scope);
      scalars_.resize(scalar_scope);
    }
    out_ = saved;
    Emit(lang::If(std::move(cond), std::move(then_body),
                  std::move(else_body)));
  }

  // Writes a visible bag under a name that is unique per dynamic execution:
  // inside loops the enclosing counters are concatenated into the filename
  // ("o3_" ++ i ++ "_" ++ j), the paper's own pattern ("diff" ++ day).
  void EmitWrite() {
    Count("write");
    const BagVar& b = bags_[rng_.NextBelow(bags_.size())];
    ExprPtr name = lang::LitString("o" + std::to_string(file_counter_++));
    for (const std::string& counter : loop_counters_) {
      name = lang::Concat(lang::Concat(name, lang::LitString("_")),
                          lang::Var(counter));
    }
    Emit(lang::WriteFile(lang::Var(b.name), std::move(name)));
  }

  // x = f(x) for a bag existing OUTSIDE the current scope: creates Φs at
  // loop heads and if joins — the machinery step templates must invalidate
  // correctly.
  void ReassignExistingBag(size_t scope) {
    if (scope == 0) return;
    const BagVar& target = bags_[rng_.NextBelow(scope)];
    switch (target.shape) {
      case Shape::kInt:
        Emit(lang::Assign(target.name,
                          lang::Map(lang::Var(target.name),
                                    lang::fns::AddInt64(1))));
        Count("map");
        break;
      case Shape::kStr:
        Emit(lang::Assign(target.name,
                          lang::Map(lang::Var(target.name),
                                    lang::fns::StrTag(1))));
        Count("map");
        break;
      case Shape::kPair:
      case Shape::kStrPair:
        Emit(lang::Assign(target.name,
                          lang::ReduceByKey(lang::Var(target.name),
                                            lang::fns::SumInt64())));
        Count("reduceByKey");
        break;
    }
  }

  // Only commutative + associative combiners: engines reduce in partition
  // order, the reference in literal order, so an order-dependent combiner
  // (keepLast, say) diverges legally — found by this very fuzzer on seed
  // 2499428271988735912, where reduce(keepLast) over bagOf(11, 11, 0)
  // keeps 0 sequentially and 11 distributed. The fns:: factories carry the
  // vectorized i64 fast paths, so generated programs exercise the typed
  // reducer state as well as the generic one.
  lang::BinaryFn RandomCombiner() {
    switch (rng_.NextBelow(3)) {
      case 0:
        return lang::fns::SumInt64();
      case 1:
        return lang::fns::MinInt64();
      default:
        return lang::fns::MaxInt64();
    }
  }

  // ----- fault plans -----

  void GenerateFaultPlans(GeneratedCase* result) {
    for (int i = 0; i < opts_.fault_plans; ++i) {
      sim::FaultPlan plan;
      uint64_t mode = rng_.NextBelow(3);
      if (mode != 1) {
        sim::FaultPlan::Crash crash;
        // Machine 0 hosts the coordinator; crash workers only.
        crash.machine =
            1 + static_cast<int>(rng_.NextBelow(
                    static_cast<uint64_t>(opts_.machines - 1)));
        crash.at = 0.05 + rng_.NextDouble() * 1.5;
        crash.restart_after = 0.1 + rng_.NextDouble() * 0.7;
        plan.crashes.push_back(crash);
      }
      if (mode != 0) {
        plan.drop_probability = 0.002 + rng_.NextDouble() * 0.015;
        // The spec grammar parses seeds as int, so stay within it.
        plan.drop_seed = rng_.NextBelow(1u << 30);
      }
      plan.checkpoint_every = static_cast<int>(rng_.NextBelow(4));
      // Round-trip through the textual spec so the stored plan is exactly
      // what a repro file replays.
      std::string spec = plan.ToString();
      auto reparsed = sim::FaultPlan::Parse(spec);
      MITOS_CHECK(reparsed.ok());
      result->fault_plans.push_back(*reparsed);
      result->fault_specs.push_back(std::move(spec));
    }
  }

  GeneratorOptions opts_;
  Rng rng_;
  StmtList* out_ = nullptr;
  std::map<std::string, int>* hist_ = nullptr;
  std::vector<BagVar> bags_;
  std::vector<std::string> scalars_;        // excludes active loop counters
  std::vector<std::string> loop_counters_;  // innermost last
  int var_counter_ = 0;
  int file_counter_ = 0;
};

}  // namespace

GeneratedCase GenerateCase(const GeneratorOptions& options) {
  MITOS_CHECK_GE(options.machines, 2);
  Generator generator(options);
  return generator.Run();
}

uint64_t CaseSeed(uint64_t base_seed, int index) {
  return MixInt64(base_seed ^
                  (0x517cc1b727220a95ULL *
                   (static_cast<uint64_t>(index) + 1)));
}

}  // namespace mitos::testing
