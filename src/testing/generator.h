// Seeded generative testing: a deterministic program generator over the
// mitos::lang AST.
//
// Samples well-typed, guaranteed-terminating imperative dataflow programs —
// random nesting of while / do-while / if over a small vocabulary of
// map/filter/flatMap/join/reduce operations on integer and (key, value)
// bags — following the formal grammar view of "An Abstract View of Big Data
// Processing Programs" (PAPERS.md). Every program:
//
//   * is closed: inputs are bagOf(...) literals, outputs are write(...)
//     statements, so no pre-seeded filesystem is needed;
//   * terminates: every loop condition carries a bounded-counter conjunct
//     (i < k with k <= max_trip and i incremented exactly once per
//     iteration), even when a data-dependent conjunct
//     (scalarOf(bag.count()) > t) is mixed in;
//   * round-trips: only parser-registry functions are used, so
//     lang::Parse(lang::ToSource(program)) reconstructs the program — the
//     basis of self-contained repro files (testing/repro.h).
//
// Determinism is the contract: the same GeneratorOptions (seed included)
// produce byte-identical source on every platform, pinned by golden hashes
// in tests/testing/generator_test.cc. CI seeds therefore reproduce locally:
//   mitos_fuzz --seed=N --count=1
#ifndef MITOS_TESTING_GENERATOR_H_
#define MITOS_TESTING_GENERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "sim/fault.h"

namespace mitos::testing {

struct GeneratorOptions {
  uint64_t seed = 1;

  // Maximum control-flow nesting depth (loops and ifs combined). Depth 0
  // generates straight-line programs.
  int max_depth = 3;

  // Statement budget for the top-level sequence; nested blocks draw smaller
  // budgets from it, so total program size is O(budget).
  int budget = 14;

  // Largest literal input bag.
  int max_bag = 24;

  // Largest loop trip count (while loops may also be zero-trip).
  int max_trip = 3;

  // Range of key values in generated bags; small so joins and reduceByKey
  // collide often.
  int64_t key_range = 12;

  // Number of fault plans to attach (replayed by the differential harness
  // against the fault-free run). 0 disables fault generation.
  int fault_plans = 2;

  // Machine count the fault plans are valid for (crash targets are drawn
  // from [1, machines)).
  int machines = 3;
};

struct GeneratedCase {
  uint64_t seed = 0;
  lang::Program program;
  // lang::ToSource(program): parseable, human-readable, deterministic.
  std::string source;
  // Seeded fault plans plus their round-trippable specs
  // (sim::FaultPlan::ToString / Parse).
  std::vector<sim::FaultPlan> fault_plans;
  std::vector<std::string> fault_specs;
  // Operation histogram (map/filter/join/... counts) for corpus statistics.
  std::map<std::string, int> op_histogram;
};

// Generates one program (and its fault plans) from `options`. Pure function
// of the options.
GeneratedCase GenerateCase(const GeneratorOptions& options);

// The seed for the i-th case of a fuzzing run starting at `base_seed`.
// Decouples case seeds from --count so prefixes of a run are reproducible.
uint64_t CaseSeed(uint64_t base_seed, int index);

}  // namespace mitos::testing

#endif  // MITOS_TESTING_GENERATOR_H_
