// The differential harness behind mitos_fuzz: runs one program on every
// engine variant and cross-checks results.
//
// The oracle is the sequential reference interpreter. Every variant —
// Mitos with step templates on and off, on the DES and the real-parallel
// threads backend, the ablation engines, and the Flink-/Spark-style
// baselines — must produce the same output files with the same elements
// (multiset equality; engines are free to reorder). On top of that:
//
//   * run-twice determinism: variants marked `run_twice` are executed a
//     second time from pristine inputs and must reproduce their own output
//     byte-identically (exact element order);
//   * fault replay: variants marked `fault_replay` re-run the program once
//     per sim::FaultPlan in DiffOptions::fault_plans, and recovery must be
//     byte-identical to the variant's own fault-free run.
//
// Verdicts separate "found a bug" from "job broke": a variant that errors
// or diverges where the reference succeeded is a kMismatch (the fuzzer's
// payload — exit code 1); a failing reference run is a kInfraError (a
// generator or harness defect — exit code 2).
#ifndef MITOS_TESTING_DIFFERENTIAL_H_
#define MITOS_TESTING_DIFFERENTIAL_H_

#include <functional>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/status.h"
#include "lang/ast.h"
#include "sim/fault.h"
#include "sim/filesystem.h"

namespace mitos::testing {

struct EngineVariant {
  std::string label;
  api::EngineKind engine = api::EngineKind::kMitos;
  api::BackendKind backend = api::BackendKind::kDes;
  bool step_templates = true;
  int machines = 3;
  bool fusion = false;
  // Columnar batched data plane (the default); false runs the boxed
  // DatumVector fallback end to end — the two must be element-identical.
  bool columnar = true;
  // Run twice from pristine inputs; the outputs must be byte-identical.
  bool run_twice = false;
  // Replay DiffOptions::fault_plans against this variant (DES Mitos only);
  // recovery must be byte-identical to the variant's fault-free run.
  bool fault_replay = false;
};

// The default cross-check matrix (see the header comment). Labels:
//   mitos-des-t@3, mitos-des-not@3, mitos-des-t@1, mitos-des-boxed@3,
//   mitos-threads@3, mitos-fusion@3, mitos-nopipe@3, flink@3, spark@3
std::vector<EngineVariant> DefaultMatrix();

// `filter` is a comma-separated list of label substrings (mitos_fuzz
// --engines=); empty keeps everything.
std::vector<EngineVariant> FilterMatrix(std::vector<EngineVariant> matrix,
                                        const std::string& filter);

struct DiffOptions {
  std::vector<EngineVariant> variants = DefaultMatrix();
  std::vector<sim::FaultPlan> fault_plans;
  // Test hook: corrupts a variant's output filesystem before comparison,
  // proving the harness detects injected mismatches.
  std::function<void(const std::string& label, sim::SimFileSystem*)> tamper;
};

enum class Verdict { kOk, kMismatch, kInfraError };

struct Mismatch {
  std::string label;   // engine variant (":faults" / ":rerun" suffixed)
  std::string file;    // first differing file ("" for run errors)
  std::string detail;  // human-readable diagnosis
};

struct DiffReport {
  Verdict verdict = Verdict::kOk;
  std::vector<Mismatch> mismatches;  // non-empty iff kMismatch
  Status infra_status = Status::Ok();
  std::string infra_context;  // which run broke, for kInfraError
  int runs = 0;               // engine executions performed

  std::string ToString() const;
};

DiffReport RunDifferential(const lang::Program& program,
                           const DiffOptions& options = {});

}  // namespace mitos::testing

#endif  // MITOS_TESTING_DIFFERENTIAL_H_
