// Self-contained fuzzer repro files.
//
// When mitos_fuzz finds a divergence it writes one file that captures the
// whole finding: a `//`-comment metadata header (seed, the mismatching
// engine label, a one-line diagnosis, the fault-plan specs in sim::FaultPlan
// grammar) followed by the minimized program in lang/parser.h source syntax.
// Because the header is comments and the body is surface syntax, the same
// file is simultaneously
//   * machine-loadable: ParseRepro() recovers the program AND the fault
//     plans, so tests/testing/fuzz_corpus_test.cc replays the exact failing
//     configuration through the full differential harness; and
//   * a plain Mitos script: `mitos_run --program=<file>` runs it directly
//     (the lexer skips // comments), which is how you poke at a repro by
//     hand.
//
// Example:
//   // mitos_fuzz repro
//   // seed: 77
//   // mismatch: mitos-des-t@3:faults[0]
//   // detail: o1: element mismatch: expected 4 elements ...
//   // fault[0]: crash=1@0.61+0.30; ckpt=2
//   b0 = bagOf(3, 1, 4);
//   write(b0.map(addInt64(2)), "o1");
#ifndef MITOS_TESTING_REPRO_H_
#define MITOS_TESTING_REPRO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "lang/ast.h"
#include "sim/fault.h"

namespace mitos::testing {

struct Repro {
  uint64_t seed = 0;
  std::string mismatch_label;  // first diverging variant label
  std::string detail;          // one-line diagnosis (informational)
  std::vector<std::string> fault_specs;  // FaultPlan::Parse grammar
  std::vector<sim::FaultPlan> fault_plans;  // parsed from fault_specs
  std::string source;          // program source, no header
  lang::Program program;       // parsed from `source`
};

// Renders the repro file text (header + source). `repro.source` is the
// authoritative program body; `program` is ignored by the formatter.
std::string FormatRepro(const Repro& repro);

// Inverse of FormatRepro: accepts any text whose leading `//` comment lines
// optionally carry `seed:` / `mismatch:` / `detail:` / `fault[i]:` keys
// (unknown keys are ignored) and whose remainder parses as a Mitos program.
StatusOr<Repro> ParseRepro(const std::string& text);

StatusOr<Repro> LoadReproFile(const std::string& path);
Status SaveReproFile(const std::string& path, const Repro& repro);

// Sorted paths of the `*.mitos` files directly inside `dir` (the committed
// corpus layout of tests/fixtures/fuzz/). Missing directory -> empty.
std::vector<std::string> ListCorpus(const std::string& dir);

}  // namespace mitos::testing

#endif  // MITOS_TESTING_REPRO_H_
