#include "testing/shrink.h"

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lang/parser.h"

namespace mitos::testing {
namespace {

using lang::Expr;
using lang::ExprPtr;
using lang::Program;
using lang::Stmt;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

// ----- Statement-level rewrites -----
//
// Statements are addressed by pre-order index (a statement before its
// nested bodies); a rewrite is (index, variant). Variant 0 is always
// deletion; control statements add unwrap-into-body and force-false
// variants. Invalid (index, variant) pairs yield no candidate.

int CountStmtsIn(const StmtList& list) {
  int n = 0;
  for (const StmtPtr& s : list) {
    ++n;
    n += CountStmtsIn(s->body);
    n += CountStmtsIn(s->else_body);
  }
  return n;
}

// The splice replacing statement `s` under rewrite `variant`, or nullopt
// when `s` has no such variant.
std::optional<StmtList> StmtCandidate(const StmtPtr& s, int variant) {
  if (variant == 0) return StmtList{};  // delete
  const bool is_loop =
      s->kind == StmtKind::kWhile || s->kind == StmtKind::kDoWhile;
  if (is_loop) {
    if (variant == 1) return s->body;  // unwrap: run the body exactly once
    if (variant == 2) {                // force the condition false
      auto copy = std::make_shared<Stmt>(*s);
      copy->expr = lang::LitBool(false);
      return StmtList{copy};
    }
    return std::nullopt;
  }
  if (s->kind == StmtKind::kIf) {
    if (variant == 1) return s->body;       // keep the then-branch
    if (variant == 2) {                     // keep the else-branch
      if (s->else_body.empty()) return std::nullopt;
      return s->else_body;
    }
    if (variant == 3) {  // force the condition false
      auto copy = std::make_shared<Stmt>(*s);
      copy->expr = lang::LitBool(false);
      return StmtList{copy};
    }
    return std::nullopt;
  }
  return std::nullopt;
}

// Applies rewrite `variant` to the statement with pre-order index *k.
// Returns the rewritten list; `*found` reports whether the index was
// reached (it may have been reached and the variant declined, in which
// case the return is nullopt).
std::optional<StmtList> RewriteStmts(const StmtList& list, int* k,
                                     int variant, bool* found) {
  for (size_t i = 0; i < list.size(); ++i) {
    const StmtPtr& s = list[i];
    if (*k == 0) {
      *found = true;
      auto splice = StmtCandidate(s, variant);
      if (!splice) return std::nullopt;
      StmtList out(list.begin(), list.begin() + static_cast<long>(i));
      out.insert(out.end(), splice->begin(), splice->end());
      out.insert(out.end(), list.begin() + static_cast<long>(i) + 1,
                 list.end());
      return out;
    }
    --*k;
    auto body = RewriteStmts(s->body, k, variant, found);
    if (*found) {
      if (!body) return std::nullopt;
      auto copy = std::make_shared<Stmt>(*s);
      copy->body = std::move(*body);
      StmtList out = list;
      out[i] = copy;
      return out;
    }
    auto else_body = RewriteStmts(s->else_body, k, variant, found);
    if (*found) {
      if (!else_body) return std::nullopt;
      auto copy = std::make_shared<Stmt>(*s);
      copy->else_body = std::move(*else_body);
      StmtList out = list;
      out[i] = copy;
      return out;
    }
  }
  return std::nullopt;
}

// ----- Expression-level rewrites -----
//
// Expression nodes are addressed by pre-order index across the whole
// program (each statement's expr tree, then its filename tree, then its
// bodies). Candidates only ever replace a node with something strictly
// smaller: one of its inputs, a shrunken literal, or a truncated bag.

// Integer arguments live *inside* function values, printed as part of the
// name ("addInt64(40)"). To shrink them, rewrite the name text and
// re-resolve it through the parser registry — the same authority repro
// files go through — instead of poking at closures.
std::vector<std::string> ShrunkFnNames(const std::string& name) {
  const size_t l = name.find('(');
  if (l == std::string::npos || name.back() != ')') return {};
  const std::string base = name.substr(0, l);
  const std::string arg = name.substr(l + 1, name.size() - l - 2);
  char* end = nullptr;
  const long long v = std::strtoll(arg.c_str(), &end, 10);
  // Single integer argument only (multi-arg names contain a comma and
  // fail the full-consumption check).
  if (end == nullptr || *end != '\0' || arg.empty()) return {};
  std::vector<std::string> out;
  if (v != 1) out.push_back(base + "(1)");
  if (std::llabs(v) > 2) {
    out.push_back(base + "(" + std::to_string(v / 2) + ")");
  }
  return out;
}

// Re-resolve a rewritten function name in the element-function position
// `call` occupies ("map", "filter", ...) by parsing a one-line program.
// Returns the whole parsed call expression; caller grafts the original
// input back in.
std::optional<Expr> ResolveFnCall(const std::string& call,
                                  const std::string& fn_name) {
  auto parsed = lang::Parse("x = y." + call + "(" + fn_name + ");");
  if (!parsed.ok() || parsed->stmts.size() != 1) return std::nullopt;
  const ExprPtr& e = parsed->stmts[0]->expr;
  if (!e) return std::nullopt;
  return *e;
}

void AppendFnArgCandidates(const Expr& e, const std::string& call,
                           const std::string& fn_name,
                           std::vector<ExprPtr>* out) {
  for (const std::string& shrunk : ShrunkFnNames(fn_name)) {
    std::optional<Expr> resolved = ResolveFnCall(call, shrunk);
    if (!resolved) continue;
    auto copy = std::make_shared<Expr>(*resolved);
    copy->a = e.a;  // keep the real input, take the shrunk function
    out->push_back(std::move(copy));
  }
}

std::vector<ExprPtr> ExprCandidates(const Expr& e) {
  using lang::ExprKind;
  switch (e.kind) {
    case ExprKind::kMap: {
      std::vector<ExprPtr> out = {e.a};  // drop the operator entirely
      AppendFnArgCandidates(e, "map", e.unary.name, &out);
      return out;
    }
    case ExprKind::kFilter: {
      std::vector<ExprPtr> out = {e.a};
      AppendFnArgCandidates(e, "filter", e.pred.name, &out);
      return out;
    }
    case ExprKind::kFlatMap:
    case ExprKind::kReduceByKey:
    case ExprKind::kDistinct:
      return {e.a};  // drop the operator, keep its input
    case ExprKind::kUnion:
    case ExprKind::kJoin:
      return {e.a, e.b};
    case ExprKind::kBinOp:
      if (e.binop == lang::BinOpKind::kAnd) return {e.a, e.b};
      return {};
    case ExprKind::kNot:
      return {e.a};
    case ExprKind::kLit:
      if (e.lit.is_int64()) {
        const int64_t v = e.lit.int64();
        if (v != 0 && v != 1) {
          std::vector<ExprPtr> out = {lang::LitInt(1)};
          if (std::abs(v) > 2) out.push_back(lang::LitInt(v / 2));
          return out;
        }
      }
      return {};
    case ExprKind::kBagLit: {
      std::vector<ExprPtr> out;
      const DatumVector& bag = e.bag_lit;
      if (bag.size() > 1) {
        out.push_back(lang::BagLit(DatumVector(bag.begin(), bag.begin() + 1)));
      }
      if (bag.size() > 3) {
        out.push_back(lang::BagLit(
            DatumVector(bag.begin(),
                        bag.begin() + static_cast<long>(bag.size() / 2))));
      }
      return out;
    }
    default:
      // kVarRef, kScalarFromBag, kFromScalar, kReadFile, kReduce, kCount,
      // kCombine2: either leaves, or replacing them with the child changes
      // the scalar/bag domain and would only waste predicate evaluations.
      return {};
  }
}

int CountExprNodes(const ExprPtr& e) {
  if (!e) return 0;
  return 1 + CountExprNodes(e->a) + CountExprNodes(e->b);
}

int CountExprNodesIn(const StmtList& list) {
  int n = 0;
  for (const StmtPtr& s : list) {
    n += CountExprNodes(s->expr);
    n += CountExprNodes(s->filename);
    n += CountExprNodesIn(s->body);
    n += CountExprNodesIn(s->else_body);
  }
  return n;
}

ExprPtr RewriteExpr(const ExprPtr& e, int* j, int variant, bool* found) {
  if (!e || *found) return nullptr;
  if (*j == 0) {
    *found = true;
    std::vector<ExprPtr> cands = ExprCandidates(*e);
    if (variant < static_cast<int>(cands.size())) return cands[variant];
    return nullptr;
  }
  --*j;
  if (ExprPtr a = RewriteExpr(e->a, j, variant, found)) {
    auto copy = std::make_shared<Expr>(*e);
    copy->a = std::move(a);
    return copy;
  }
  if (*found) return nullptr;  // reached under a, but variant declined
  if (ExprPtr b = RewriteExpr(e->b, j, variant, found)) {
    auto copy = std::make_shared<Expr>(*e);
    copy->b = std::move(b);
    return copy;
  }
  return nullptr;
}

std::optional<StmtList> RewriteStmtExprs(const StmtList& list, int* j,
                                         int variant, bool* found) {
  for (size_t i = 0; i < list.size(); ++i) {
    const StmtPtr& s = list[i];
    auto rewrite_field = [&](const ExprPtr& field) -> std::optional<ExprPtr> {
      ExprPtr e = RewriteExpr(field, j, variant, found);
      if (e) return e;
      return std::nullopt;
    };
    if (auto e = rewrite_field(s->expr)) {
      auto copy = std::make_shared<Stmt>(*s);
      copy->expr = std::move(*e);
      StmtList out = list;
      out[i] = copy;
      return out;
    }
    if (*found) return std::nullopt;
    if (auto e = rewrite_field(s->filename)) {
      auto copy = std::make_shared<Stmt>(*s);
      copy->filename = std::move(*e);
      StmtList out = list;
      out[i] = copy;
      return out;
    }
    if (*found) return std::nullopt;
    if (auto body = RewriteStmtExprs(s->body, j, variant, found)) {
      auto copy = std::make_shared<Stmt>(*s);
      copy->body = std::move(*body);
      StmtList out = list;
      out[i] = copy;
      return out;
    }
    if (*found) return std::nullopt;
    if (auto else_body = RewriteStmtExprs(s->else_body, j, variant, found)) {
      auto copy = std::make_shared<Stmt>(*s);
      copy->else_body = std::move(*else_body);
      StmtList out = list;
      out[i] = copy;
      return out;
    }
    if (*found) return std::nullopt;
  }
  return std::nullopt;
}

constexpr int kMaxStmtVariants = 4;
constexpr int kMaxExprVariants = 2;

}  // namespace

int CountStmts(const Program& program) { return CountStmtsIn(program.stmts); }

ShrinkResult Shrink(
    const Program& program,
    const std::function<bool(const Program&)>& still_fails,
    const ShrinkOptions& options) {
  ShrinkResult result;
  result.program = program;

  bool improved = true;
  while (improved && result.evals < options.max_evals) {
    improved = false;

    // Pass 1: statement rewrites. On success stay at the same index — after
    // a deletion the next statement takes the freed slot.
    for (int i = 0; i < CountStmtsIn(result.program.stmts);) {
      bool advanced = true;
      for (int v = 0; v < kMaxStmtVariants; ++v) {
        if (result.evals >= options.max_evals) break;
        int k = i;
        bool found = false;
        auto stmts = RewriteStmts(result.program.stmts, &k, v, &found);
        if (!found) break;  // i beyond the program; loop condition ends us
        if (!stmts) continue;
        Program candidate{std::move(*stmts)};
        ++result.evals;
        if (still_fails(candidate)) {
          result.program = std::move(candidate);
          ++result.rounds;
          improved = true;
          advanced = false;
          break;
        }
      }
      if (advanced) ++i;
    }

    // Pass 2: expression rewrites. Successful rewrites keep the node count
    // the same or smaller, and replacement nodes are re-visited at the same
    // index, so advancing only on failure terminates.
    for (int j = 0; j < CountExprNodesIn(result.program.stmts);) {
      bool advanced = true;
      for (int v = 0; v < kMaxExprVariants; ++v) {
        if (result.evals >= options.max_evals) break;
        int k = j;
        bool found = false;
        auto stmts =
            RewriteStmtExprs(result.program.stmts, &k, v, &found);
        if (!found) break;
        if (!stmts) continue;
        Program candidate{std::move(*stmts)};
        ++result.evals;
        if (still_fails(candidate)) {
          result.program = std::move(candidate);
          ++result.rounds;
          improved = true;
          advanced = false;
          break;
        }
      }
      if (advanced) ++j;
    }
  }
  return result;
}

}  // namespace mitos::testing
