#include "testing/differential.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace mitos::testing {
namespace {

DatumVector Sorted(DatumVector v) {
  std::sort(v.begin(), v.end(),
            [](const Datum& a, const Datum& b) { return a < b; });
  return v;
}

std::string Preview(const DatumVector& v, size_t limit = 4) {
  return mitos::ToString(v, limit);
}

// Elements of `a` not in `b`, as multisets.
DatumVector MultisetMinus(const DatumVector& a, const DatumVector& b) {
  DatumVector sorted_b = Sorted(b);
  DatumVector out;
  for (const Datum& d : a) {
    auto it = std::lower_bound(
        sorted_b.begin(), sorted_b.end(), d,
        [](const Datum& x, const Datum& y) { return x < y; });
    if (it != sorted_b.end() && *it == d) {
      sorted_b.erase(it);
    } else {
      out.push_back(d);
    }
  }
  return out;
}

std::string FileSetDetail(const std::vector<std::string>& want,
                          const std::vector<std::string>& got) {
  std::ostringstream out;
  out << "output file sets differ: expected {";
  for (size_t i = 0; i < want.size(); ++i) {
    out << (i ? ", " : "") << want[i];
  }
  out << "} got {";
  for (size_t i = 0; i < got.size(); ++i) {
    out << (i ? ", " : "") << got[i];
  }
  out << "}";
  return out.str();
}

// Compares `got` against `want`; appends a Mismatch per divergence.
// `exact` demands identical element order (determinism / fault replay);
// otherwise multiset equality per file.
void Compare(const std::string& label, const sim::SimFileSystem& want_fs,
             const sim::SimFileSystem& got_fs, bool exact,
             std::vector<Mismatch>* out) {
  const std::vector<std::string> want_files = want_fs.ListFiles();
  const std::vector<std::string> got_files = got_fs.ListFiles();
  if (want_files != got_files) {
    out->push_back({label, "", FileSetDetail(want_files, got_files)});
    return;
  }
  for (const std::string& name : want_files) {
    DatumVector want = *want_fs.Read(name);
    DatumVector got = *got_fs.Read(name);
    if (exact) {
      if (want == got) continue;
      std::ostringstream detail;
      if (Sorted(want) == Sorted(got)) {
        detail << "same elements, different order (" << want.size()
               << " elements): expected " << Preview(want) << " got "
               << Preview(got);
      } else {
        detail << "element mismatch: expected " << want.size()
               << " elements " << Preview(want) << ", got " << got.size()
               << " " << Preview(got);
      }
      out->push_back({label, name, detail.str()});
      continue;
    }
    DatumVector missing = MultisetMinus(want, got);
    DatumVector extra = MultisetMinus(got, want);
    if (missing.empty() && extra.empty()) continue;
    std::ostringstream detail;
    detail << "expected " << want.size() << " elements, got " << got.size();
    if (!missing.empty()) {
      detail << "; missing " << missing.size() << " e.g. "
             << Preview(missing);
    }
    if (!extra.empty()) {
      detail << "; extra " << extra.size() << " e.g. " << Preview(extra);
    }
    out->push_back({label, name, detail.str()});
  }
}

bool IsMitosEngine(api::EngineKind kind) {
  return kind == api::EngineKind::kMitos ||
         kind == api::EngineKind::kMitosNoPipelining ||
         kind == api::EngineKind::kMitosNoHoisting;
}

}  // namespace

std::vector<EngineVariant> DefaultMatrix() {
  using api::BackendKind;
  using api::EngineKind;
  return {
      // label, engine, backend, templates, machines, fusion, columnar,
      // twice, faults
      {"mitos-des-t@3", EngineKind::kMitos, BackendKind::kDes, true, 3,
       false, /*columnar=*/true, /*run_twice=*/true, /*fault_replay=*/true},
      {"mitos-des-not@3", EngineKind::kMitos, BackendKind::kDes, false, 3},
      {"mitos-des-t@1", EngineKind::kMitos, BackendKind::kDes, true, 1},
      // Boxed data plane: same engine, columnar ablation off. Catches any
      // divergence between the typed column kernels and the generic path.
      {"mitos-des-boxed@3", EngineKind::kMitos, BackendKind::kDes, true, 3,
       false, /*columnar=*/false},
      {"mitos-threads@3", EngineKind::kMitos, BackendKind::kThreads, true,
       3, false, /*columnar=*/true, /*run_twice=*/true},
      {"mitos-fusion@3", EngineKind::kMitos, BackendKind::kDes, true, 3,
       /*fusion=*/true},
      {"mitos-nopipe@3", EngineKind::kMitosNoPipelining, BackendKind::kDes,
       true, 3},
      {"flink@3", EngineKind::kFlink, BackendKind::kDes, true, 3},
      {"spark@3", EngineKind::kSpark, BackendKind::kDes, true, 3},
  };
}

std::vector<EngineVariant> FilterMatrix(std::vector<EngineVariant> matrix,
                                        const std::string& filter) {
  if (filter.empty()) return matrix;
  std::vector<std::string> wanted;
  std::stringstream stream(filter);
  std::string piece;
  while (std::getline(stream, piece, ',')) {
    if (!piece.empty()) wanted.push_back(piece);
  }
  std::vector<EngineVariant> kept;
  for (EngineVariant& v : matrix) {
    for (const std::string& w : wanted) {
      if (v.label.find(w) != std::string::npos) {
        kept.push_back(std::move(v));
        break;
      }
    }
  }
  return kept;
}

std::string DiffReport::ToString() const {
  std::ostringstream out;
  switch (verdict) {
    case Verdict::kOk:
      out << "ok (" << runs << " runs)";
      break;
    case Verdict::kInfraError:
      out << "infra error in " << infra_context << ": "
          << infra_status.ToString();
      break;
    case Verdict::kMismatch:
      out << mismatches.size() << " mismatch(es) over " << runs
          << " runs:";
      for (const Mismatch& m : mismatches) {
        out << "\n  [" << m.label << "]";
        if (!m.file.empty()) out << " " << m.file << ":";
        out << " " << m.detail;
      }
      break;
  }
  return out.str();
}

DiffReport RunDifferential(const lang::Program& program,
                           const DiffOptions& options) {
  DiffReport report;

  sim::SimFileSystem ref_fs;
  auto ref = api::Run(api::EngineKind::kReference, program, &ref_fs, {});
  ++report.runs;
  if (!ref.ok()) {
    report.verdict = Verdict::kInfraError;
    report.infra_status = ref.status();
    report.infra_context = "reference run";
    return report;
  }

  for (const EngineVariant& variant : options.variants) {
    api::RunConfig config;
    config.machines = variant.machines;
    config.backend = variant.backend;
    config.step_templates = variant.step_templates;
    config.mitos_operator_fusion = variant.fusion;
    config.columnar = variant.columnar;

    sim::SimFileSystem fs;
    auto run = api::Run(variant.engine, program, &fs, config);
    ++report.runs;
    if (!run.ok()) {
      // The reference accepted this program; an engine that rejects or
      // crashes on it diverges — that is a finding, not an infra error.
      report.mismatches.push_back(
          {variant.label, "", "run failed: " + run.status().ToString()});
      continue;
    }
    if (options.tamper) options.tamper(variant.label, &fs);
    Compare(variant.label, ref_fs, fs, /*exact=*/false,
            &report.mismatches);

    if (variant.run_twice) {
      sim::SimFileSystem fs2;
      auto rerun = api::Run(variant.engine, program, &fs2, config);
      ++report.runs;
      if (!rerun.ok()) {
        report.mismatches.push_back(
            {variant.label + ":rerun", "",
             "second run failed: " + rerun.status().ToString()});
      } else {
        Compare(variant.label + ":rerun", fs, fs2, /*exact=*/true,
                &report.mismatches);
      }
    }

    if (variant.fault_replay && !options.fault_plans.empty() &&
        variant.backend == api::BackendKind::kDes &&
        IsMitosEngine(variant.engine)) {
      for (size_t i = 0; i < options.fault_plans.size(); ++i) {
        api::RunConfig fault_config = config;
        fault_config.faults = &options.fault_plans[i];
        sim::SimFileSystem fault_fs;
        auto fault_run =
            api::Run(variant.engine, program, &fault_fs, fault_config);
        ++report.runs;
        const std::string label =
            variant.label + ":faults[" + std::to_string(i) + "]";
        if (!fault_run.ok()) {
          report.mismatches.push_back(
              {label, "",
               "faulted run failed: " + fault_run.status().ToString()});
          continue;
        }
        // Recovery must be byte-identical to the fault-free run.
        Compare(label, fs, fault_fs, /*exact=*/true, &report.mismatches);
      }
    }
  }

  report.verdict = report.mismatches.empty() ? Verdict::kOk
                                             : Verdict::kMismatch;
  return report;
}

}  // namespace mitos::testing
