// The Preparator: program simplification (paper Sec. 4.1).
//
// Rewrites a type-checked lang::Program so that
//   * every assignment's right-hand side is a single bag operation whose
//     operands are plain variable references (multi-operation expressions
//     are split into temporaries: b = a.map(f).filter(p) becomes
//     _t1 = a.map(f); b = _t1.filter(p));
//   * every scalar (loop counter, condition, file name) is wrapped into a
//     one-element bag: literals become one-element bag literals, scalar
//     expressions with one variable operand become maps over that variable's
//     bag, expressions with two variable operands become combine2 nodes;
//   * loop and if conditions are references to one-element bool-bag
//     variables (the paper's ifCond / exitCond nodes);
//   * a copy assignment v = w becomes an identity map (a real dataflow
//     node, matching yesterdayCnts3 in the paper's Figure 3).
//
// The output is still a lang::Program (runnable by the reference
// interpreter, which is how the rewrite is differentially tested), plus the
// set of variables living in the wrapped-scalar world — the SSA builder
// marks those singleton so the translator gives them parallelism 1.
#ifndef MITOS_IR_NORMALIZE_H_
#define MITOS_IR_NORMALIZE_H_

#include <set>
#include <string>

#include "common/status.h"
#include "lang/ast.h"

namespace mitos::ir {

struct NormalizeResult {
  lang::Program program;
  // Variables holding wrapped scalars (one-element bags).
  std::set<std::string> singleton_vars;
};

StatusOr<NormalizeResult> Normalize(const lang::Program& program);

// True when `program` satisfies the normal form above (used by tests and
// asserted by the SSA builder).
bool IsNormalized(const lang::Program& program);

}  // namespace mitos::ir

#endif  // MITOS_IR_NORMALIZE_H_
