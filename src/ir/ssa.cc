#include "ir/ssa.h"

#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace mitos::ir {

namespace {

using lang::ExprKind;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

// Source variable names assigned anywhere in `stmts` (recursively).
void CollectAssigned(const StmtList& stmts, std::set<std::string>* out) {
  for (const StmtPtr& stmt : stmts) {
    switch (stmt->kind) {
      case StmtKind::kAssign:
        out->insert(stmt->var);
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        CollectAssigned(stmt->body, out);
        break;
      case StmtKind::kIf:
        CollectAssigned(stmt->body, out);
        CollectAssigned(stmt->else_body, out);
        break;
      case StmtKind::kWriteFile:
        break;
    }
  }
}

class SsaBuilder {
 public:
  SsaBuilder(const lang::Program& program,
             const std::set<std::string>& singleton_vars)
      : source_(program), singleton_names_(singleton_vars) {}

  StatusOr<Program> Run() {
    if (!IsNormalized(source_)) {
      return Status::FailedPrecondition(
          "SSA construction requires a Preparator-normalized program");
    }
    current_ = NewBlock("entry");
    MITOS_RETURN_IF_ERROR(BuildStmts(source_.stmts));
    Block(current_).term.kind = Terminator::Kind::kExit;
    return std::move(program_);
  }

 private:
  BasicBlock& Block(BlockId id) {
    return program_.blocks[static_cast<size_t>(id)];
  }

  BlockId NewBlock(std::string label) {
    BasicBlock block;
    block.label = std::move(label);
    program_.blocks.push_back(std::move(block));
    return static_cast<BlockId>(program_.blocks.size() - 1);
  }

  // Creates a fresh SSA variable versioning source name `name`.
  VarId NewVar(const std::string& name, bool singleton) {
    VarInfo info;
    info.name = name + std::to_string(++versions_[name]);
    info.singleton = singleton;
    program_.vars.push_back(std::move(info));
    return static_cast<VarId>(program_.vars.size() - 1);
  }

  StatusOr<VarId> Lookup(const std::string& name) const {
    auto it = env_.find(name);
    if (it == env_.end()) {
      return Status::Internal("SSA: unresolved variable '" + name + "'");
    }
    return it->second;
  }

  // Appends `stmt` to the current block, recording the definition site.
  void Emit(Stmt stmt) {
    if (stmt.result != kNoVar) {
      VarInfo& info = program_.vars[static_cast<size_t>(stmt.result)];
      info.def_block = current_;
      info.def_index = static_cast<int>(Block(current_).stmts.size());
    }
    Block(current_).stmts.push_back(std::move(stmt));
  }

  bool InputsSingleton(const std::vector<VarId>& inputs) const {
    for (VarId v : inputs) {
      if (v == kNoVar || !program_.var(v).singleton) return false;
    }
    return true;
  }

  // Singleton propagation: wrapped-scalar names are singleton by
  // construction; reduce/count/combine2 always produce one-element bags;
  // map/filter/Φ preserve singleton-ness of their inputs.
  bool StmtSingleton(const std::string& name, OpKind op,
                     const std::vector<VarId>& inputs) const {
    if (singleton_names_.count(name) > 0) return true;
    switch (op) {
      case OpKind::kReduce:
      case OpKind::kCount:
      case OpKind::kCombine2:
        return true;
      case OpKind::kMap:
      case OpKind::kFilter:
      case OpKind::kPhi:
        return InputsSingleton(inputs);
      default:
        return false;
    }
  }

  Status BuildStmts(const StmtList& stmts) {
    for (const StmtPtr& stmt : stmts) {
      MITOS_RETURN_IF_ERROR(BuildStmt(*stmt));
    }
    return Status::Ok();
  }

  Status BuildAssign(const lang::Stmt& s) {
    const lang::Expr& e = *s.expr;
    Stmt stmt;
    auto add_input = [&](const lang::ExprPtr& operand) -> Status {
      StatusOr<VarId> id = Lookup(operand->var);
      if (!id.ok()) return id.status();
      stmt.inputs.push_back(*id);
      return Status::Ok();
    };
    switch (e.kind) {
      case ExprKind::kBagLit:
        stmt.op = OpKind::kBagLit;
        stmt.bag_lit = e.bag_lit;
        break;
      case ExprKind::kReadFile:
        stmt.op = OpKind::kReadFile;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        break;
      case ExprKind::kMap:
        stmt.op = OpKind::kMap;
        stmt.unary = e.unary;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        break;
      case ExprKind::kFilter:
        stmt.op = OpKind::kFilter;
        stmt.pred = e.pred;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        break;
      case ExprKind::kFlatMap:
        stmt.op = OpKind::kFlatMap;
        stmt.flat = e.flat;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        break;
      case ExprKind::kReduceByKey:
        stmt.op = OpKind::kReduceByKey;
        stmt.binary = e.binary;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        break;
      case ExprKind::kReduce:
        stmt.op = OpKind::kReduce;
        stmt.binary = e.binary;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        break;
      case ExprKind::kJoin:
        stmt.op = OpKind::kJoin;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        MITOS_RETURN_IF_ERROR(add_input(e.b));
        break;
      case ExprKind::kUnion:
        stmt.op = OpKind::kUnion;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        MITOS_RETURN_IF_ERROR(add_input(e.b));
        break;
      case ExprKind::kDistinct:
        stmt.op = OpKind::kDistinct;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        break;
      case ExprKind::kCount:
        stmt.op = OpKind::kCount;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        break;
      case ExprKind::kCombine2:
        stmt.op = OpKind::kCombine2;
        stmt.binary = e.binary;
        MITOS_RETURN_IF_ERROR(add_input(e.a));
        MITOS_RETURN_IF_ERROR(add_input(e.b));
        break;
      default:
        return Status::Internal("non-normalized assignment rhs: " +
                                lang::ToString(e));
    }
    stmt.result = NewVar(s.var, StmtSingleton(s.var, stmt.op, stmt.inputs));
    env_[s.var] = stmt.result;
    Emit(std::move(stmt));
    return Status::Ok();
  }

  // Emits a Φ into the current block, versioning source variable `name`.
  VarId EmitPhi(const std::string& name, std::vector<VarId> inputs) {
    Stmt stmt;
    stmt.op = OpKind::kPhi;
    stmt.inputs = std::move(inputs);
    stmt.result = NewVar(name, StmtSingleton(name, OpKind::kPhi, stmt.inputs));
    VarId id = stmt.result;
    Emit(std::move(stmt));
    env_[name] = id;
    return id;
  }

  Status BuildIf(const lang::Stmt& s) {
    int n = ++construct_counter_;
    StatusOr<VarId> cond = Lookup(s.expr->var);
    if (!cond.ok()) return cond.status();

    std::string tag = "if" + std::to_string(n);
    BlockId then_b = NewBlock(tag + "_then");
    BlockId else_b = s.else_body.empty() ? kNoBlock : NewBlock(tag + "_else");
    BlockId join_b = NewBlock(tag + "_join");

    Block(current_).term = {Terminator::Kind::kBranch, then_b,
                            else_b != kNoBlock ? else_b : join_b, *cond};

    std::map<std::string, VarId> env_before = env_;

    current_ = then_b;
    MITOS_RETURN_IF_ERROR(BuildStmts(s.body));
    Block(current_).term = {Terminator::Kind::kJump, join_b, kNoBlock,
                            kNoVar};
    std::map<std::string, VarId> env_then = env_;

    std::map<std::string, VarId> env_else = env_before;
    if (else_b != kNoBlock) {
      env_ = env_before;
      current_ = else_b;
      MITOS_RETURN_IF_ERROR(BuildStmts(s.else_body));
      Block(current_).term = {Terminator::Kind::kJump, join_b, kNoBlock,
                              kNoVar};
      env_else = env_;
    }

    // Merge environments in the join block.
    current_ = join_b;
    env_.clear();
    for (const auto& [name, then_id] : env_then) {
      auto it = env_else.find(name);
      if (it == env_else.end()) continue;  // defined on one path only: drop
      if (it->second == then_id) {
        env_[name] = then_id;
      } else {
        EmitPhi(name, {then_id, it->second});
      }
    }
    return Status::Ok();
  }

  Status BuildWhile(const lang::Stmt& s) {
    int n = ++construct_counter_;
    std::string tag = "while" + std::to_string(n);
    BlockId header_b = NewBlock(tag + "_header");
    BlockId body_b = NewBlock(tag + "_body");
    BlockId after_b = NewBlock(tag + "_after");

    Block(current_).term = {Terminator::Kind::kJump, header_b, kNoBlock,
                            kNoVar};

    std::set<std::string> assigned;
    CollectAssigned(s.body, &assigned);

    // Φs in the header for loop-carried variables.
    current_ = header_b;
    std::vector<std::pair<std::string, int>> patches;  // (name, stmt index)
    for (const std::string& name : assigned) {
      auto it = env_.find(name);
      if (it == env_.end()) continue;  // body-local variable: no Φ
      patches.emplace_back(name,
                           static_cast<int>(Block(header_b).stmts.size()));
      EmitPhi(name, {it->second, kNoVar});
    }

    StatusOr<VarId> cond = Lookup(s.expr->var);
    if (!cond.ok()) return cond.status();
    Block(header_b).term = {Terminator::Kind::kBranch, body_b, after_b,
                            *cond};
    std::map<std::string, VarId> env_header = env_;

    current_ = body_b;
    MITOS_RETURN_IF_ERROR(BuildStmts(s.body));
    Block(current_).term = {Terminator::Kind::kJump, header_b, kNoBlock,
                            kNoVar};

    // Patch the Φs' back-edge inputs with the body-end definitions.
    MITOS_RETURN_IF_ERROR(PatchPhis(header_b, patches));

    env_ = std::move(env_header);
    current_ = after_b;
    return Status::Ok();
  }

  // Fills loop Φs' back-edge inputs from the body-end environment and
  // recomputes their singleton flag now that both inputs are known.
  Status PatchPhis(BlockId block,
                   const std::vector<std::pair<std::string, int>>& patches) {
    for (const auto& [name, index] : patches) {
      StatusOr<VarId> id = Lookup(name);
      if (!id.ok()) return id.status();
      Stmt& phi = Block(block).stmts[static_cast<size_t>(index)];
      phi.inputs[1] = *id;
      program_.vars[static_cast<size_t>(phi.result)].singleton =
          singleton_names_.count(name) > 0 || InputsSingleton(phi.inputs);
    }
    return Status::Ok();
  }

  Status BuildDoWhile(const lang::Stmt& s) {
    int n = ++construct_counter_;
    std::string tag = "do" + std::to_string(n);
    BlockId body_b = NewBlock(tag + "_body");
    BlockId after_b = NewBlock(tag + "_after");

    Block(current_).term = {Terminator::Kind::kJump, body_b, kNoBlock,
                            kNoVar};

    std::set<std::string> assigned;
    CollectAssigned(s.body, &assigned);

    // Φs at the top of the body for loop-carried variables (paper Fig. 3:
    // yesterdayCnts2, day2).
    current_ = body_b;
    std::vector<std::pair<std::string, int>> patches;
    for (const std::string& name : assigned) {
      auto it = env_.find(name);
      if (it == env_.end()) continue;
      patches.emplace_back(name,
                           static_cast<int>(Block(body_b).stmts.size()));
      EmitPhi(name, {it->second, kNoVar});
    }

    MITOS_RETURN_IF_ERROR(BuildStmts(s.body));

    StatusOr<VarId> cond = Lookup(s.expr->var);
    if (!cond.ok()) return cond.status();
    Block(current_).term = {Terminator::Kind::kBranch, body_b, after_b,
                            *cond};

    MITOS_RETURN_IF_ERROR(PatchPhis(body_b, patches));

    // Do-while definitions escape the loop: keep the post-body environment.
    current_ = after_b;
    return Status::Ok();
  }

  Status BuildWriteFile(const lang::Stmt& s) {
    Stmt stmt;
    stmt.op = OpKind::kWriteFile;
    StatusOr<VarId> bag = Lookup(s.expr->var);
    if (!bag.ok()) return bag.status();
    StatusOr<VarId> filename = Lookup(s.filename->var);
    if (!filename.ok()) return filename.status();
    stmt.inputs = {*bag, *filename};
    Emit(std::move(stmt));
    return Status::Ok();
  }

  Status BuildStmt(const lang::Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kAssign:
        return BuildAssign(stmt);
      case StmtKind::kWhile:
        return BuildWhile(stmt);
      case StmtKind::kDoWhile:
        return BuildDoWhile(stmt);
      case StmtKind::kIf:
        return BuildIf(stmt);
      case StmtKind::kWriteFile:
        return BuildWriteFile(stmt);
    }
    return Status::Internal("unknown statement kind");
  }

  const lang::Program& source_;
  const std::set<std::string>& singleton_names_;
  Program program_;
  BlockId current_ = kNoBlock;
  std::map<std::string, VarId> env_;
  std::map<std::string, int> versions_;
  int construct_counter_ = 0;
};

}  // namespace

StatusOr<Program> BuildSsa(const lang::Program& normalized,
                           const std::set<std::string>& singleton_vars) {
  SsaBuilder builder(normalized, singleton_vars);
  return builder.Run();
}

StatusOr<Program> CompileToIr(const lang::Program& program) {
  StatusOr<NormalizeResult> normalized = Normalize(program);
  if (!normalized.ok()) return normalized.status();
  return BuildSsa(normalized->program, normalized->singleton_vars);
}

}  // namespace mitos::ir
