// The SSA-based intermediate representation of Mitos (paper Sec. 4.2).
//
// A program is a list of basic blocks. Each block holds a sequence of
// single-operation assignment statements (one future dataflow node each)
// and ends with a terminator: an unconditional jump, a conditional branch
// on a one-element bool bag, or program exit. Every variable has exactly one
// assignment (SSA); variables that had multiple assignments in the source
// are merged with Φ-statements whose input is chosen at runtime from the
// execution path (Sec. 5.2.3).
#ifndef MITOS_IR_IR_H_
#define MITOS_IR_IR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/datum.h"
#include "lang/functions.h"

namespace mitos::ir {

using VarId = int32_t;
using BlockId = int32_t;
inline constexpr VarId kNoVar = -1;
inline constexpr BlockId kNoBlock = -1;

enum class OpKind {
  kBagLit,       // literal bag (also wrapped scalar constants); no inputs
  kReadFile,     // inputs: [filename (one-element string bag)]
  kMap,          // inputs: [bag]; unary
  kFilter,       // inputs: [bag]; pred
  kFlatMap,      // inputs: [bag]; flat
  kReduceByKey,  // inputs: [bag of (k,v)]; binary combiner
  kReduce,       // inputs: [bag]; binary; one-element (or empty) output
  kJoin,         // inputs: [build, probe]; emits (k, bv, pv)
  kUnion,        // inputs: [a, b]
  kDistinct,     // inputs: [bag]
  kCount,        // inputs: [bag]; one-element int64 output
  kCombine2,     // inputs: [a, b] one-element bags; binary
  kPhi,          // inputs: one per incoming definition; runtime chooses
  kWriteFile,    // sink; inputs: [bag, filename]; no result
};

const char* OpKindName(OpKind op);

// One SSA assignment statement = one dataflow node.
struct Stmt {
  VarId result = kNoVar;  // kNoVar for sinks (kWriteFile)
  OpKind op{};
  std::vector<VarId> inputs;

  // Op payloads (only the field matching `op` is set).
  lang::UnaryFn unary;
  lang::PredicateFn pred;
  lang::FlatMapFn flat;
  lang::BinaryFn binary;
  DatumVector bag_lit;
};

struct Terminator {
  enum class Kind { kJump, kBranch, kExit };
  Kind kind = Kind::kExit;
  BlockId target = kNoBlock;       // kJump target / kBranch true-successor
  BlockId target_else = kNoBlock;  // kBranch false-successor
  VarId cond = kNoVar;             // kBranch condition (one-element bool bag)
};

struct BasicBlock {
  std::string label;  // e.g. "entry", "loop1_body", for debugging
  std::vector<Stmt> stmts;
  Terminator term;
};

// Per-SSA-variable metadata.
struct VarInfo {
  std::string name;              // source name + version, e.g. "day2"
  BlockId def_block = kNoBlock;  // block containing the defining statement
  int def_index = -1;            // statement index within def_block
  // True for variables that live in the wrapped-scalar world (one-element
  // bags): loop counters, conditions, file names, reduce/count results.
  // Drives the translator's parallelism choice (such ops run single-
  // instance, forming the cheap control-flow "spine" that enables loop
  // pipelining to overlap heavy steps).
  bool singleton = false;
};

struct Program {
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry block
  std::vector<VarInfo> vars;

  BlockId entry() const { return 0; }
  const BasicBlock& block(BlockId id) const {
    return blocks[static_cast<size_t>(id)];
  }
  int num_blocks() const { return static_cast<int>(blocks.size()); }
  int num_vars() const { return static_cast<int>(vars.size()); }
  const VarInfo& var(VarId id) const { return vars[static_cast<size_t>(id)]; }
};

// Text rendering in the style of the paper's Figure 3a.
std::string ToString(const Program& program);

}  // namespace mitos::ir

#endif  // MITOS_IR_IR_H_
