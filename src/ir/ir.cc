#include "ir/ir.h"

#include <sstream>

#include "common/logging.h"

namespace mitos::ir {

const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kBagLit: return "bagLit";
    case OpKind::kReadFile: return "readFile";
    case OpKind::kMap: return "map";
    case OpKind::kFilter: return "filter";
    case OpKind::kFlatMap: return "flatMap";
    case OpKind::kReduceByKey: return "reduceByKey";
    case OpKind::kReduce: return "reduce";
    case OpKind::kJoin: return "join";
    case OpKind::kUnion: return "union";
    case OpKind::kDistinct: return "distinct";
    case OpKind::kCount: return "count";
    case OpKind::kCombine2: return "combine2";
    case OpKind::kPhi: return "Φ";
    case OpKind::kWriteFile: return "writeFile";
  }
  return "?";
}

namespace {

std::string VarName(const Program& p, VarId id) {
  if (id == kNoVar) return "_";
  return p.var(id).name;
}

}  // namespace

std::string ToString(const Program& program) {
  std::ostringstream out;
  for (BlockId b = 0; b < program.num_blocks(); ++b) {
    const BasicBlock& block = program.block(b);
    out << "block " << b << " (" << block.label << "):\n";
    for (const Stmt& stmt : block.stmts) {
      out << "  ";
      if (stmt.result != kNoVar) {
        out << VarName(program, stmt.result) << " = ";
      }
      out << OpKindName(stmt.op) << '(';
      for (size_t i = 0; i < stmt.inputs.size(); ++i) {
        if (i > 0) out << ", ";
        out << VarName(program, stmt.inputs[i]);
      }
      // Function payloads, for readability.
      if (stmt.unary.valid()) out << "; " << stmt.unary.name;
      if (stmt.pred.valid()) out << "; " << stmt.pred.name;
      if (stmt.flat.valid()) out << "; " << stmt.flat.name;
      if (stmt.binary.valid()) out << "; " << stmt.binary.name;
      if (stmt.op == OpKind::kBagLit) {
        out << mitos::ToString(stmt.bag_lit, 4);
      }
      out << ")";
      if (stmt.result != kNoVar && program.var(stmt.result).singleton) {
        out << "  [singleton]";
      }
      out << '\n';
    }
    switch (block.term.kind) {
      case Terminator::Kind::kJump:
        out << "  jump " << block.term.target << '\n';
        break;
      case Terminator::Kind::kBranch:
        out << "  branch " << VarName(program, block.term.cond) << " ? "
            << block.term.target << " : " << block.term.target_else << '\n';
        break;
      case Terminator::Kind::kExit:
        out << "  exit\n";
        break;
    }
  }
  return out.str();
}

}  // namespace mitos::ir
