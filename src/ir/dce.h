// Dead code elimination on the SSA IR (an optimization pass beyond the
// paper's minimum).
//
// SSA construction conservatively creates a Φ in every loop for every
// variable assigned in the body — whether or not anything downstream reads
// it — and user programs may compute bags they never observe. Every IR
// statement becomes a dataflow operator with per-iteration coordination
// (output-bag choice, markers, conditional-edge gating), so pruning dead
// statements removes real runtime work.
//
// Roots of liveness: writeFile sinks and branch condition variables.
// Everything not transitively reachable from a root is removed; variables
// are renumbered densely.
#ifndef MITOS_IR_DCE_H_
#define MITOS_IR_DCE_H_

#include "common/status.h"
#include "ir/ir.h"

namespace mitos::ir {

struct DceResult {
  Program program;
  int removed_stmts = 0;
};

StatusOr<DceResult> EliminateDeadCode(const Program& program);

}  // namespace mitos::ir

#endif  // MITOS_IR_DCE_H_
