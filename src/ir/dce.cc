#include "ir/dce.h"

#include <utility>
#include <vector>

#include "common/logging.h"

namespace mitos::ir {

StatusOr<DceResult> EliminateDeadCode(const Program& program) {
  const size_t num_vars = static_cast<size_t>(program.num_vars());
  std::vector<bool> live(num_vars, false);
  std::vector<VarId> worklist;

  auto mark = [&](VarId v) {
    if (v == kNoVar) return;
    if (!live[static_cast<size_t>(v)]) {
      live[static_cast<size_t>(v)] = true;
      worklist.push_back(v);
    }
  };

  // Roots: sink inputs and branch conditions.
  for (const BasicBlock& block : program.blocks) {
    for (const Stmt& stmt : block.stmts) {
      if (stmt.op == OpKind::kWriteFile) {
        for (VarId in : stmt.inputs) mark(in);
      }
    }
    if (block.term.kind == Terminator::Kind::kBranch) {
      mark(block.term.cond);
    }
  }

  // Transitive closure through defining statements.
  while (!worklist.empty()) {
    VarId v = worklist.back();
    worklist.pop_back();
    const VarInfo& info = program.var(v);
    const Stmt& def = program.block(info.def_block)
                          .stmts[static_cast<size_t>(info.def_index)];
    for (VarId in : def.inputs) mark(in);
  }

  // Rebuild with dense variable ids.
  DceResult result;
  std::vector<VarId> remap(num_vars, kNoVar);
  Program& out = result.program;
  out.blocks.reserve(program.blocks.size());

  for (const BasicBlock& block : program.blocks) {
    BasicBlock new_block;
    new_block.label = block.label;
    new_block.term = block.term;
    for (const Stmt& stmt : block.stmts) {
      bool keep = stmt.op == OpKind::kWriteFile ||
                  (stmt.result != kNoVar &&
                   live[static_cast<size_t>(stmt.result)]);
      if (!keep) {
        ++result.removed_stmts;
        continue;
      }
      Stmt new_stmt = stmt;
      if (stmt.result != kNoVar) {
        VarId new_id = static_cast<VarId>(out.vars.size());
        remap[static_cast<size_t>(stmt.result)] = new_id;
        VarInfo info = program.var(stmt.result);
        info.def_block = static_cast<BlockId>(out.blocks.size());
        info.def_index = static_cast<int>(new_block.stmts.size());
        out.vars.push_back(std::move(info));
        new_stmt.result = new_id;
      }
      new_block.stmts.push_back(std::move(new_stmt));
    }
    out.blocks.push_back(std::move(new_block));
  }

  // Remap uses (inputs were defined before uses in program order except Φ
  // back-edges, so remap in a second pass over the rebuilt program).
  for (BasicBlock& block : out.blocks) {
    for (Stmt& stmt : block.stmts) {
      for (VarId& in : stmt.inputs) {
        VarId mapped = remap[static_cast<size_t>(in)];
        if (mapped == kNoVar) {
          return Status::Internal(
              "DCE dropped a variable that is still referenced: " +
              program.var(in).name);
        }
        in = mapped;
      }
    }
    if (block.term.kind == Terminator::Kind::kBranch) {
      VarId mapped = remap[static_cast<size_t>(block.term.cond)];
      if (mapped == kNoVar) {
        return Status::Internal("DCE dropped a live branch condition");
      }
      block.term.cond = mapped;
    }
  }

  return result;
}

}  // namespace mitos::ir
