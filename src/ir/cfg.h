// Control-flow-graph analyses over ir::Program.
//
// The Mitos runtime needs two graph queries (paper Sec. 5.2.4):
//   * whether a block occurrence means a conditional edge's target can still
//     be reached without passing the producer's block again — this decides
//     when buffered bag partitions may be discarded;
//   * dominators, used by the IR verifier.
#ifndef MITOS_IR_CFG_H_
#define MITOS_IR_CFG_H_

#include <map>
#include <shared_mutex>
#include <tuple>
#include <vector>

#include "ir/ir.h"

namespace mitos::ir {

class Cfg {
 public:
  explicit Cfg(const Program& program);

  int num_blocks() const { return static_cast<int>(succs_.size()); }
  const std::vector<BlockId>& successors(BlockId b) const {
    return succs_[static_cast<size_t>(b)];
  }
  const std::vector<BlockId>& predecessors(BlockId b) const {
    return preds_[static_cast<size_t>(b)];
  }

  // True if some path from `from` reaches `target` (paths of length zero
  // count: CanReach(b, b) is true).
  bool CanReach(BlockId from, BlockId target) const;

  // True if some path from `from` reaches `target` without passing through
  // `banned` as an intermediate step. `from == target` counts as reached
  // (zero-length path). If `from == banned`, the path may still start there:
  // only *subsequent* visits to `banned` are forbidden, matching the
  // discard rule "every path to b2 goes through b1" evaluated after b1.
  bool CanReachAvoiding(BlockId from, BlockId target, BlockId banned) const;

  // Immediate dominator of each block (entry's idom is itself). Blocks
  // unreachable from entry get kNoBlock.
  const std::vector<BlockId>& idom() const { return idom_; }

  // True if `a` dominates `b` (reflexive).
  bool Dominates(BlockId a, BlockId b) const;

 private:
  void ComputeDominators();

  std::vector<std::vector<BlockId>> succs_;
  std::vector<std::vector<BlockId>> preds_;
  std::vector<BlockId> idom_;
  std::vector<int> rpo_index_;  // reverse-postorder number, -1 if unreachable
  // CanReachAvoiding memo — the CFG is immutable after construction, so
  // answers never change (mutable: the query is logically const). One Cfg
  // is shared by every host, and under the threads backend hosts query
  // from different machine threads, so the memo takes a reader-writer
  // lock; the BFS itself runs unlocked (recomputing a memoizable answer
  // twice is harmless).
  mutable std::shared_mutex reach_mu_;
  mutable std::map<std::tuple<BlockId, BlockId, BlockId>, bool> reach_cache_;
};

}  // namespace mitos::ir

#endif  // MITOS_IR_CFG_H_
