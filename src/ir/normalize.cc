#include "ir/normalize.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "lang/scalar_ops.h"
#include "lang/type_check.h"

namespace mitos::ir {

namespace {

using lang::Expr;
using lang::ExprKind;
using lang::ExprPtr;
using lang::Program;
using lang::Stmt;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

// Wraps ApplyBinOp as an element-level function. Type errors inside the
// generated closure are programming errors at that point (the original
// program type-checked), so they abort rather than propagate.
lang::BinaryFn BinOpFn(lang::BinOpKind op) {
  return {std::string("binop:") + lang::BinOpName(op),
          [op](const Datum& a, const Datum& b) {
            StatusOr<Datum> r = lang::ApplyBinOp(op, a, b);
            MITOS_CHECK(r.ok()) << r.status().ToString();
            return *r;
          }};
}

lang::UnaryFn BindLeft(lang::BinOpKind op, Datum lit) {
  return {std::string("binopL:") + lang::BinOpName(op),
          [op, lit](const Datum& x) {
            StatusOr<Datum> r = lang::ApplyBinOp(op, lit, x);
            MITOS_CHECK(r.ok()) << r.status().ToString();
            return *r;
          }};
}

lang::UnaryFn BindRight(lang::BinOpKind op, Datum lit) {
  return {std::string("binopR:") + lang::BinOpName(op),
          [op, lit](const Datum& x) {
            StatusOr<Datum> r = lang::ApplyBinOp(op, x, lit);
            MITOS_CHECK(r.ok()) << r.status().ToString();
            return *r;
          }};
}

lang::UnaryFn NotFn() {
  return {"not", [](const Datum& x) {
            MITOS_CHECK(x.is_bool()) << "'!' on non-boolean";
            return Datum::Bool(!x.boolean());
          }};
}

lang::UnaryFn IdentityFn() {
  return {"identity", [](const Datum& x) { return x; }};
}

class Normalizer {
 public:
  explicit Normalizer(const lang::TypeCheckResult& types) : types_(types) {}

  StatusOr<NormalizeResult> Run(const Program& program) {
    scopes_.emplace_back();
    MITOS_RETURN_IF_ERROR(NormStmts(program.stmts));
    NormalizeResult result;
    result.program.stmts = std::move(scopes_.back());
    result.singleton_vars = std::move(singletons_);
    return result;
  }

 private:
  bool ExprIsBag(const Expr& e) const {
    if (lang::IsBagExprKind(e.kind)) return true;
    if (e.kind == ExprKind::kVarRef) {
      auto it = types_.var_types.find(e.var);
      return it != types_.var_types.end() && it->second == lang::VarType::kBag;
    }
    return false;
  }

  std::string FreshTmp() { return "_t" + std::to_string(++tmp_counter_); }
  std::string FreshCond() { return "_cond" + std::to_string(++cond_counter_); }

  void Emit(StmtPtr stmt) { scopes_.back().push_back(std::move(stmt)); }

  void EmitAssign(const std::string& target, ExprPtr op, bool singleton) {
    if (singleton) singletons_.insert(target);
    Emit(lang::Assign(target, std::move(op)));
  }

  // ----- bag world -----

  // Normalizes a bag expression used as an operand; returns the variable
  // holding its value (emitting temporaries as needed).
  StatusOr<std::string> BagOperand(const Expr& e) {
    if (e.kind == ExprKind::kVarRef) return e.var;
    if (e.kind == ExprKind::kScalarFromBag) {
      // As an operand, scalarOf(b) is just b's one-element bag.
      return BagOperand(*e.a);
    }
    StatusOr<ExprPtr> op = ExprIsBag(e) ? BagOpOf(e) : ScalarOpOf(e);
    if (!op.ok()) return op.status();
    std::string tmp = FreshTmp();
    EmitAssign(tmp, std::move(op).value(), !ExprIsBag(e));
    return tmp;
  }

  // Normalizes a scalar expression used as an operand; returns the variable
  // holding its one-element bag.
  StatusOr<std::string> ScalarOperand(const Expr& e) {
    if (e.kind == ExprKind::kVarRef) return e.var;
    if (e.kind == ExprKind::kScalarFromBag) return BagOperand(*e.a);
    StatusOr<ExprPtr> op = ScalarOpOf(e);
    if (!op.ok()) return op.status();
    std::string tmp = FreshTmp();
    EmitAssign(tmp, std::move(op).value(), true);
    return tmp;
  }

  // Returns a single bag operation with variable-reference operands that is
  // equivalent to bag expression `e` (emitting temporaries for operands).
  StatusOr<ExprPtr> BagOpOf(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kBagLit:
        return lang::BagLit(e.bag_lit);
      case ExprKind::kFromScalar:
        return ScalarOpOf(*e.a);
      case ExprKind::kReadFile: {
        StatusOr<std::string> fn = ScalarOperand(*e.a);
        if (!fn.ok()) return fn.status();
        return lang::ReadFile(lang::Var(*fn));
      }
      case ExprKind::kMap: {
        StatusOr<std::string> in = BagOperand(*e.a);
        if (!in.ok()) return in.status();
        return lang::Map(lang::Var(*in), e.unary);
      }
      case ExprKind::kFilter: {
        StatusOr<std::string> in = BagOperand(*e.a);
        if (!in.ok()) return in.status();
        return lang::Filter(lang::Var(*in), e.pred);
      }
      case ExprKind::kFlatMap: {
        StatusOr<std::string> in = BagOperand(*e.a);
        if (!in.ok()) return in.status();
        return lang::FlatMap(lang::Var(*in), e.flat);
      }
      case ExprKind::kReduceByKey: {
        StatusOr<std::string> in = BagOperand(*e.a);
        if (!in.ok()) return in.status();
        return lang::ReduceByKey(lang::Var(*in), e.binary);
      }
      case ExprKind::kReduce: {
        StatusOr<std::string> in = BagOperand(*e.a);
        if (!in.ok()) return in.status();
        return lang::Reduce(lang::Var(*in), e.binary);
      }
      case ExprKind::kDistinct: {
        StatusOr<std::string> in = BagOperand(*e.a);
        if (!in.ok()) return in.status();
        return lang::Distinct(lang::Var(*in));
      }
      case ExprKind::kCount: {
        StatusOr<std::string> in = BagOperand(*e.a);
        if (!in.ok()) return in.status();
        return lang::Count(lang::Var(*in));
      }
      case ExprKind::kJoin: {
        StatusOr<std::string> a = BagOperand(*e.a);
        if (!a.ok()) return a.status();
        StatusOr<std::string> b = BagOperand(*e.b);
        if (!b.ok()) return b.status();
        return lang::Join(lang::Var(*a), lang::Var(*b));
      }
      case ExprKind::kUnion: {
        StatusOr<std::string> a = BagOperand(*e.a);
        if (!a.ok()) return a.status();
        StatusOr<std::string> b = BagOperand(*e.b);
        if (!b.ok()) return b.status();
        return lang::Union(lang::Var(*a), lang::Var(*b));
      }
      case ExprKind::kCombine2: {
        StatusOr<std::string> a = BagOperand(*e.a);
        if (!a.ok()) return a.status();
        StatusOr<std::string> b = BagOperand(*e.b);
        if (!b.ok()) return b.status();
        return lang::Combine2(lang::Var(*a), lang::Var(*b), e.binary);
      }
      default:
        return Status::Internal("BagOpOf on non-bag expression: " +
                                lang::ToString(e));
    }
  }

  // ----- scalar world (wraps into one-element bags, paper Sec. 4.1) -----

  // Returns a single bag operation computing scalar expression `e` as a
  // one-element bag.
  StatusOr<ExprPtr> ScalarOpOf(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLit:
        return lang::BagLit({e.lit});
      case ExprKind::kVarRef:
        // A scalar copy materializes as an identity map node (the paper's
        // Figure 3 materializes yesterdayCnts3 = counts the same way).
        return lang::Map(lang::Var(e.var), IdentityFn());
      case ExprKind::kScalarFromBag: {
        StatusOr<std::string> in = BagOperand(*e.a);
        if (!in.ok()) return in.status();
        return lang::Map(lang::Var(*in), IdentityFn());
      }
      case ExprKind::kNot: {
        StatusOr<std::string> in = ScalarOperand(*e.a);
        if (!in.ok()) return in.status();
        return lang::Map(lang::Var(*in), NotFn());
      }
      case ExprKind::kBinOp: {
        const bool a_lit = e.a->kind == ExprKind::kLit;
        const bool b_lit = e.b->kind == ExprKind::kLit;
        if (a_lit && b_lit) {
          // Constant-fold at compile time.
          StatusOr<Datum> folded =
              lang::ApplyBinOp(e.binop, e.a->lit, e.b->lit);
          if (!folded.ok()) return folded.status();
          return lang::BagLit({*folded});
        }
        if (a_lit) {
          // Fold the literal into the closure: day.map(x => lit op x).
          StatusOr<std::string> in = ScalarOperand(*e.b);
          if (!in.ok()) return in.status();
          return lang::Map(lang::Var(*in), BindLeft(e.binop, e.a->lit));
        }
        if (b_lit) {
          StatusOr<std::string> in = ScalarOperand(*e.a);
          if (!in.ok()) return in.status();
          return lang::Map(lang::Var(*in), BindRight(e.binop, e.b->lit));
        }
        StatusOr<std::string> a = ScalarOperand(*e.a);
        if (!a.ok()) return a.status();
        StatusOr<std::string> b = ScalarOperand(*e.b);
        if (!b.ok()) return b.status();
        return lang::Combine2(lang::Var(*a), lang::Var(*b), BinOpFn(e.binop));
      }
      default:
        return Status::Internal("ScalarOpOf on non-scalar expression: " +
                                lang::ToString(e));
    }
  }

  // ----- conditions -----

  // Normalizes a condition expression into a variable reference, emitting
  // the statement(s) computing it. Returns the condition variable name.
  StatusOr<std::string> EmitCondition(const Expr& cond) {
    if (cond.kind == ExprKind::kVarRef) return cond.var;
    if (cond.kind == ExprKind::kScalarFromBag &&
        cond.a->kind == ExprKind::kVarRef) {
      return cond.a->var;
    }
    std::string cv = FreshCond();
    StatusOr<ExprPtr> op = ExprIsBag(cond) ? BagOpOf(cond) : ScalarOpOf(cond);
    if (!op.ok()) return op.status();
    EmitAssign(cv, std::move(op).value(), !ExprIsBag(cond));
    return cv;
  }

  // Re-emits the condition computation targeting the SAME variable `cv`
  // (used at the end of while-loop bodies so the next test sees fresh
  // values).
  Status ReEmitCondition(const Expr& cond, const std::string& cv) {
    if (cond.kind == ExprKind::kVarRef) return Status::Ok();  // no recompute
    if (cond.kind == ExprKind::kScalarFromBag &&
        cond.a->kind == ExprKind::kVarRef) {
      return Status::Ok();
    }
    StatusOr<ExprPtr> op = ExprIsBag(cond) ? BagOpOf(cond) : ScalarOpOf(cond);
    if (!op.ok()) return op.status();
    EmitAssign(cv, std::move(op).value(), !ExprIsBag(cond));
    return Status::Ok();
  }

  // ----- statements -----

  Status NormStmts(const StmtList& stmts) {
    for (const StmtPtr& stmt : stmts) {
      MITOS_RETURN_IF_ERROR(NormStmt(*stmt));
    }
    return Status::Ok();
  }

  Status NormStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kAssign: {
        const Expr& rhs = *stmt.expr;
        if (ExprIsBag(rhs)) {
          StatusOr<ExprPtr> op =
              (rhs.kind == ExprKind::kVarRef)
                  ? StatusOr<ExprPtr>(lang::Map(lang::Var(rhs.var),
                                                IdentityFn()))
                  : BagOpOf(rhs);
          if (!op.ok()) return op.status();
          bool singleton = rhs.kind == ExprKind::kVarRef &&
                           singletons_.count(rhs.var) > 0;
          EmitAssign(stmt.var, std::move(op).value(), singleton);
        } else {
          StatusOr<ExprPtr> op = ScalarOpOf(rhs);
          if (!op.ok()) return op.status();
          EmitAssign(stmt.var, std::move(op).value(), true);
        }
        return Status::Ok();
      }
      case StmtKind::kWhile: {
        StatusOr<std::string> cv = EmitCondition(*stmt.expr);
        if (!cv.ok()) return cv.status();
        scopes_.emplace_back();
        MITOS_RETURN_IF_ERROR(NormStmts(stmt.body));
        MITOS_RETURN_IF_ERROR(ReEmitCondition(*stmt.expr, *cv));
        StmtList body = std::move(scopes_.back());
        scopes_.pop_back();
        Emit(lang::While(lang::Var(*cv), std::move(body)));
        return Status::Ok();
      }
      case StmtKind::kDoWhile: {
        scopes_.emplace_back();
        MITOS_RETURN_IF_ERROR(NormStmts(stmt.body));
        StatusOr<std::string> cv = EmitCondition(*stmt.expr);
        if (!cv.ok()) return cv.status();
        StmtList body = std::move(scopes_.back());
        scopes_.pop_back();
        Emit(lang::DoWhile(std::move(body), lang::Var(*cv)));
        return Status::Ok();
      }
      case StmtKind::kIf: {
        StatusOr<std::string> cv = EmitCondition(*stmt.expr);
        if (!cv.ok()) return cv.status();
        scopes_.emplace_back();
        MITOS_RETURN_IF_ERROR(NormStmts(stmt.body));
        StmtList then_body = std::move(scopes_.back());
        scopes_.pop_back();
        scopes_.emplace_back();
        MITOS_RETURN_IF_ERROR(NormStmts(stmt.else_body));
        StmtList else_body = std::move(scopes_.back());
        scopes_.pop_back();
        Emit(lang::If(lang::Var(*cv), std::move(then_body),
                      std::move(else_body)));
        return Status::Ok();
      }
      case StmtKind::kWriteFile: {
        StatusOr<std::string> bag = BagOperand(*stmt.expr);
        if (!bag.ok()) return bag.status();
        StatusOr<std::string> filename =
            ExprIsBag(*stmt.filename) ? BagOperand(*stmt.filename)
                                      : ScalarOperand(*stmt.filename);
        if (!filename.ok()) return filename.status();
        Emit(lang::WriteFile(lang::Var(*bag), lang::Var(*filename)));
        return Status::Ok();
      }
    }
    return Status::Internal("unknown statement kind");
  }
  const lang::TypeCheckResult& types_;
  std::vector<StmtList> scopes_;
  std::set<std::string> singletons_;
  int tmp_counter_ = 0;
  int cond_counter_ = 0;
};

bool IsSingleOpWithVarOperands(const Expr& e) {
  auto is_var = [](const ExprPtr& p) {
    return p && p->kind == ExprKind::kVarRef;
  };
  switch (e.kind) {
    case ExprKind::kBagLit:
      return true;
    case ExprKind::kReadFile:
    case ExprKind::kMap:
    case ExprKind::kFilter:
    case ExprKind::kFlatMap:
    case ExprKind::kReduceByKey:
    case ExprKind::kReduce:
    case ExprKind::kDistinct:
    case ExprKind::kCount:
      return is_var(e.a);
    case ExprKind::kJoin:
    case ExprKind::kUnion:
    case ExprKind::kCombine2:
      return is_var(e.a) && is_var(e.b);
    default:
      return false;
  }
}

bool StmtsNormalized(const StmtList& stmts) {
  for (const StmtPtr& stmt : stmts) {
    switch (stmt->kind) {
      case StmtKind::kAssign:
        if (!IsSingleOpWithVarOperands(*stmt->expr)) return false;
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        if (stmt->expr->kind != ExprKind::kVarRef) return false;
        if (!StmtsNormalized(stmt->body)) return false;
        break;
      case StmtKind::kIf:
        if (stmt->expr->kind != ExprKind::kVarRef) return false;
        if (!StmtsNormalized(stmt->body)) return false;
        if (!StmtsNormalized(stmt->else_body)) return false;
        break;
      case StmtKind::kWriteFile:
        if (stmt->expr->kind != ExprKind::kVarRef) return false;
        if (stmt->filename->kind != ExprKind::kVarRef) return false;
        break;
    }
  }
  return true;
}

}  // namespace

StatusOr<NormalizeResult> Normalize(const lang::Program& program) {
  StatusOr<lang::TypeCheckResult> types = lang::TypeCheck(program);
  if (!types.ok()) return types.status();
  Normalizer normalizer(*types);
  return normalizer.Run(program);
}

bool IsNormalized(const lang::Program& program) {
  return StmtsNormalized(program.stmts);
}

}  // namespace mitos::ir
