// Structural verifier for ir::Programs.
//
// Checks the invariants downstream passes (translator, runtime) rely on:
//   * terminators target valid blocks; branch conditions are defined
//     variables; exactly the blocks reachable from entry are present;
//   * SSA: every variable has exactly one defining statement, matching its
//     recorded definition site;
//   * non-Φ inputs: the definition dominates the use (same-block uses must
//     come after the definition);
//   * Φ inputs: each input's defining block can reach the Φ's block, and a
//     Φ has at least two inputs;
//   * operator arities (join/combine2/union take 2 inputs, writeFile takes
//     bag + filename, ...).
#ifndef MITOS_IR_VERIFY_H_
#define MITOS_IR_VERIFY_H_

#include "common/status.h"
#include "ir/ir.h"

namespace mitos::ir {

Status Verify(const Program& program);

}  // namespace mitos::ir

#endif  // MITOS_IR_VERIFY_H_
