#include "ir/fusion.h"

#include <utility>
#include <vector>

#include "common/logging.h"

namespace mitos::ir {

namespace {

bool IsElementwise(OpKind op) {
  return op == OpKind::kMap || op == OpKind::kFilter ||
         op == OpKind::kFlatMap;
}

// Any elementwise statement as an element -> elements function.
lang::FlatMapFn AsFlatMap(const Stmt& stmt) {
  switch (stmt.op) {
    case OpKind::kMap: {
      lang::UnaryFn fn = stmt.unary;
      return {fn.name, [fn](const Datum& x) { return DatumVector{fn(x)}; }};
    }
    case OpKind::kFilter: {
      lang::PredicateFn fn = stmt.pred;
      return {fn.name, [fn](const Datum& x) {
                return fn(x) ? DatumVector{x} : DatumVector{};
              }};
    }
    case OpKind::kFlatMap:
      return stmt.flat;
    default:
      MITOS_UNREACHABLE();
  }
  return {};
}

lang::FlatMapFn Compose(const lang::FlatMapFn& first,
                        const lang::FlatMapFn& second) {
  return {first.name + "|" + second.name, [first, second](const Datum& x) {
            DatumVector out;
            for (const Datum& mid : first(x)) {
              DatumVector pieces = second(mid);
              out.insert(out.end(),
                         std::make_move_iterator(pieces.begin()),
                         std::make_move_iterator(pieces.end()));
            }
            return out;
          }};
}

void RecomputeDefSites(Program* program) {
  for (BlockId b = 0; b < program->num_blocks(); ++b) {
    BasicBlock& block = program->blocks[static_cast<size_t>(b)];
    for (size_t i = 0; i < block.stmts.size(); ++i) {
      if (block.stmts[i].result == kNoVar) continue;
      VarInfo& info =
          program->vars[static_cast<size_t>(block.stmts[i].result)];
      info.def_block = b;
      info.def_index = static_cast<int>(i);
    }
  }
}

std::vector<int> UseCounts(const Program& program) {
  std::vector<int> uses(static_cast<size_t>(program.num_vars()), 0);
  for (const BasicBlock& block : program.blocks) {
    for (const Stmt& stmt : block.stmts) {
      for (VarId in : stmt.inputs) ++uses[static_cast<size_t>(in)];
    }
    if (block.term.kind == Terminator::Kind::kBranch) {
      ++uses[static_cast<size_t>(block.term.cond)];
    }
  }
  return uses;
}

// Performs one fusion if possible; returns whether anything changed.
bool FuseOnePair(Program* program) {
  std::vector<int> uses = UseCounts(*program);
  for (BlockId b = 0; b < program->num_blocks(); ++b) {
    BasicBlock& block = program->blocks[static_cast<size_t>(b)];
    for (size_t i = 0; i < block.stmts.size(); ++i) {
      Stmt& consumer = block.stmts[i];
      if (!IsElementwise(consumer.op)) continue;
      VarId in = consumer.inputs[0];
      const VarInfo& producer_info = program->var(in);
      if (producer_info.def_block != b) continue;  // cross-block: keep
      Stmt& producer = block.stmts[static_cast<size_t>(
          producer_info.def_index)];
      if (!IsElementwise(producer.op)) continue;
      if (uses[static_cast<size_t>(in)] != 1) continue;  // shared: keep

      // Fuse: consumer becomes a flatMap over the producer's input with
      // the composed function; the producer statement disappears.
      lang::FlatMapFn composed =
          Compose(AsFlatMap(producer), AsFlatMap(consumer));
      consumer.op = OpKind::kFlatMap;
      consumer.flat = std::move(composed);
      consumer.unary = {};
      consumer.pred = {};
      consumer.inputs = producer.inputs;
      block.stmts.erase(block.stmts.begin() +
                        producer_info.def_index);
      RecomputeDefSites(program);
      return true;
    }
  }
  return false;
}

// Renumbers variables densely after fusion removed some definitions.
Status Compact(Program* program) {
  std::vector<VarId> remap(static_cast<size_t>(program->num_vars()),
                           kNoVar);
  std::vector<VarInfo> new_vars;
  for (BlockId b = 0; b < program->num_blocks(); ++b) {
    BasicBlock& block = program->blocks[static_cast<size_t>(b)];
    for (size_t i = 0; i < block.stmts.size(); ++i) {
      Stmt& stmt = block.stmts[i];
      if (stmt.result == kNoVar) continue;
      VarId new_id = static_cast<VarId>(new_vars.size());
      remap[static_cast<size_t>(stmt.result)] = new_id;
      VarInfo info = program->var(stmt.result);
      info.def_block = b;
      info.def_index = static_cast<int>(i);
      new_vars.push_back(std::move(info));
      stmt.result = new_id;
    }
  }
  for (BasicBlock& block : program->blocks) {
    for (Stmt& stmt : block.stmts) {
      for (VarId& in : stmt.inputs) {
        if (remap[static_cast<size_t>(in)] == kNoVar) {
          return Status::Internal("fusion dropped a referenced variable");
        }
        in = remap[static_cast<size_t>(in)];
      }
    }
    if (block.term.kind == Terminator::Kind::kBranch) {
      if (remap[static_cast<size_t>(block.term.cond)] == kNoVar) {
        return Status::Internal("fusion dropped a branch condition");
      }
      block.term.cond = remap[static_cast<size_t>(block.term.cond)];
    }
  }
  program->vars = std::move(new_vars);
  return Status::Ok();
}

}  // namespace

StatusOr<FusionResult> FuseElementwise(const Program& program) {
  FusionResult result;
  result.program = program;
  while (FuseOnePair(&result.program)) {
    ++result.fused_stmts;
  }
  MITOS_RETURN_IF_ERROR(Compact(&result.program));
  return result;
}

}  // namespace mitos::ir
