#include "ir/cfg.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "common/logging.h"

namespace mitos::ir {

Cfg::Cfg(const Program& program) {
  int n = program.num_blocks();
  succs_.resize(static_cast<size_t>(n));
  preds_.resize(static_cast<size_t>(n));
  for (BlockId b = 0; b < n; ++b) {
    const Terminator& term = program.block(b).term;
    switch (term.kind) {
      case Terminator::Kind::kJump:
        succs_[static_cast<size_t>(b)] = {term.target};
        break;
      case Terminator::Kind::kBranch:
        succs_[static_cast<size_t>(b)] = {term.target, term.target_else};
        break;
      case Terminator::Kind::kExit:
        break;
    }
    for (BlockId s : succs_[static_cast<size_t>(b)]) {
      MITOS_CHECK_GE(s, 0);
      MITOS_CHECK_LT(s, n);
      preds_[static_cast<size_t>(s)].push_back(b);
    }
  }
  ComputeDominators();
}

bool Cfg::CanReach(BlockId from, BlockId target) const {
  return CanReachAvoiding(from, target, kNoBlock);
}

bool Cfg::CanReachAvoiding(BlockId from, BlockId target,
                           BlockId banned) const {
  if (from == target) return true;
  // Pure function of the static CFG, queried by every host on every path
  // append (the Sec. 5.2.4 discard rule) — memoize per (from, target,
  // banned) so the BFS runs once per distinct query.
  const auto key = std::make_tuple(from, target, banned);
  {
    std::shared_lock<std::shared_mutex> lock(reach_mu_);
    auto it = reach_cache_.find(key);
    if (it != reach_cache_.end()) return it->second;
  }
  std::vector<bool> visited(static_cast<size_t>(num_blocks()), false);
  std::vector<BlockId> stack = {from};
  visited[static_cast<size_t>(from)] = true;
  bool reached = false;
  while (!reached && !stack.empty()) {
    BlockId b = stack.back();
    stack.pop_back();
    for (BlockId s : successors(b)) {
      if (s == target) {
        reached = true;
        break;
      }
      if (s == banned) continue;  // may not pass through `banned`
      if (!visited[static_cast<size_t>(s)]) {
        visited[static_cast<size_t>(s)] = true;
        stack.push_back(s);
      }
    }
  }
  std::unique_lock<std::shared_mutex> lock(reach_mu_);
  reach_cache_.emplace(key, reached);
  return reached;
}

void Cfg::ComputeDominators() {
  // Cooper-Harvey-Kennedy iterative algorithm over reverse postorder.
  int n = num_blocks();
  idom_.assign(static_cast<size_t>(n), kNoBlock);
  rpo_index_.assign(static_cast<size_t>(n), -1);
  if (n == 0) return;

  // Postorder DFS from entry (block 0).
  std::vector<BlockId> postorder;
  {
    std::vector<int> state(static_cast<size_t>(n), 0);  // 0 new, 1 open
    std::vector<std::pair<BlockId, size_t>> stack = {{0, 0}};
    state[0] = 1;
    while (!stack.empty()) {
      auto& [b, next] = stack.back();
      const std::vector<BlockId>& ss = successors(b);
      if (next < ss.size()) {
        BlockId s = ss[next++];
        if (state[static_cast<size_t>(s)] == 0) {
          state[static_cast<size_t>(s)] = 1;
          stack.push_back({s, 0});
        }
      } else {
        postorder.push_back(b);
        stack.pop_back();
      }
    }
  }
  std::vector<BlockId> rpo(postorder.rbegin(), postorder.rend());
  for (size_t i = 0; i < rpo.size(); ++i) {
    rpo_index_[static_cast<size_t>(rpo[i])] = static_cast<int>(i);
  }

  auto intersect = [&](BlockId a, BlockId c) {
    while (a != c) {
      while (rpo_index_[static_cast<size_t>(a)] >
             rpo_index_[static_cast<size_t>(c)]) {
        a = idom_[static_cast<size_t>(a)];
      }
      while (rpo_index_[static_cast<size_t>(c)] >
             rpo_index_[static_cast<size_t>(a)]) {
        c = idom_[static_cast<size_t>(c)];
      }
    }
    return a;
  };

  idom_[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == 0) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : predecessors(b)) {
        if (idom_[static_cast<size_t>(p)] == kNoBlock) continue;  // not seen
        new_idom = (new_idom == kNoBlock) ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && idom_[static_cast<size_t>(b)] != new_idom) {
        idom_[static_cast<size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
}

bool Cfg::Dominates(BlockId a, BlockId b) const {
  if (rpo_index_[static_cast<size_t>(b)] < 0) return false;  // unreachable
  BlockId cur = b;
  while (true) {
    if (cur == a) return true;
    BlockId up = idom_[static_cast<size_t>(cur)];
    if (up == cur || up == kNoBlock) return false;  // reached entry / dead
    cur = up;
  }
}

}  // namespace mitos::ir
