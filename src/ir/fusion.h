// Elementwise operator fusion (chaining) on the SSA IR — an optimization
// pass beyond the paper's minimum, mirroring what Flink/Spark call operator
// chaining.
//
// A chain of elementwise statements (map / filter / flatMap) in the same
// basic block, where each intermediate result has exactly one consumer,
// collapses into a single flatMap whose function is the composition. Every
// IR statement becomes a dataflow operator with its own host, work queue,
// per-bag coordination, and channels — fusing removes all of that for the
// interior of the chain.
//
// Statements whose results feed branch terminators or multiple consumers
// are chain heads and never fused away.
#ifndef MITOS_IR_FUSION_H_
#define MITOS_IR_FUSION_H_

#include "common/status.h"
#include "ir/ir.h"

namespace mitos::ir {

struct FusionResult {
  Program program;
  int fused_stmts = 0;  // statements eliminated by fusion
};

StatusOr<FusionResult> FuseElementwise(const Program& program);

}  // namespace mitos::ir

#endif  // MITOS_IR_FUSION_H_
