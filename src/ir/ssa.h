// SSA construction (paper Sec. 4.2): normalized lang::Program -> ir::Program.
//
// The input must be in Preparator normal form (ir/normalize.h). Control-flow
// constructs are lowered to basic blocks with conditional jumps; each source
// variable gets a fresh SSA variable per assignment; variables with
// control-flow-dependent values are merged with Φ-statements:
//   * if/else: a Φ in the join block per variable assigned differently in
//     the branches;
//   * loops: a Φ at the top of the loop body (do-while) or in the loop
//     header (while) per loop-carried variable, merging the initial value
//     with the previous iteration's value — exactly the yesterdayCnts2/day2
//     nodes of the paper's Figure 3.
#ifndef MITOS_IR_SSA_H_
#define MITOS_IR_SSA_H_

#include <set>
#include <string>

#include "common/status.h"
#include "ir/ir.h"
#include "ir/normalize.h"
#include "lang/ast.h"

namespace mitos::ir {

// Builds SSA from a normalized program. `singleton_vars` marks variables in
// the wrapped-scalar world (from NormalizeResult); the builder propagates
// singleton-ness through maps/filters/Φs.
StatusOr<Program> BuildSsa(const lang::Program& normalized,
                           const std::set<std::string>& singleton_vars);

// Convenience: TypeCheck + Normalize + BuildSsa.
StatusOr<Program> CompileToIr(const lang::Program& program);

}  // namespace mitos::ir

#endif  // MITOS_IR_SSA_H_
