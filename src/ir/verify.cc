#include "ir/verify.h"

#include <string>
#include <vector>

#include "ir/cfg.h"

namespace mitos::ir {

namespace {

Status Fail(const std::string& message) {
  return Status::Internal("IR verification failed: " + message);
}

size_t ExpectedArity(OpKind op) {
  switch (op) {
    case OpKind::kBagLit:
      return 0;
    case OpKind::kReadFile:
    case OpKind::kMap:
    case OpKind::kFilter:
    case OpKind::kFlatMap:
    case OpKind::kReduceByKey:
    case OpKind::kReduce:
    case OpKind::kDistinct:
    case OpKind::kCount:
      return 1;
    case OpKind::kJoin:
    case OpKind::kUnion:
    case OpKind::kCombine2:
    case OpKind::kWriteFile:
      return 2;
    case OpKind::kPhi:
      return 2;  // minimum; checked separately
  }
  return 0;
}

}  // namespace

Status Verify(const Program& program) {
  const int num_blocks = program.num_blocks();
  const int num_vars = program.num_vars();
  if (num_blocks == 0) return Fail("no blocks");

  // Terminators are well-formed.
  for (BlockId b = 0; b < num_blocks; ++b) {
    const Terminator& term = program.block(b).term;
    auto check_target = [&](BlockId t) -> Status {
      if (t < 0 || t >= num_blocks) {
        return Fail("block " + std::to_string(b) + " targets invalid block " +
                    std::to_string(t));
      }
      return Status::Ok();
    };
    switch (term.kind) {
      case Terminator::Kind::kJump:
        MITOS_RETURN_IF_ERROR(check_target(term.target));
        break;
      case Terminator::Kind::kBranch:
        MITOS_RETURN_IF_ERROR(check_target(term.target));
        MITOS_RETURN_IF_ERROR(check_target(term.target_else));
        if (term.cond < 0 || term.cond >= num_vars) {
          return Fail("branch in block " + std::to_string(b) +
                      " has invalid condition variable");
        }
        break;
      case Terminator::Kind::kExit:
        break;
    }
  }

  Cfg cfg(program);

  // Definition sites are consistent and unique (SSA).
  std::vector<int> def_count(static_cast<size_t>(num_vars), 0);
  for (BlockId b = 0; b < num_blocks; ++b) {
    const BasicBlock& block = program.block(b);
    for (size_t i = 0; i < block.stmts.size(); ++i) {
      const Stmt& stmt = block.stmts[i];
      if (stmt.result == kNoVar) {
        if (stmt.op != OpKind::kWriteFile) {
          return Fail("non-sink statement without result");
        }
        continue;
      }
      if (stmt.result < 0 || stmt.result >= num_vars) {
        return Fail("statement defines invalid variable id");
      }
      ++def_count[static_cast<size_t>(stmt.result)];
      const VarInfo& info = program.var(stmt.result);
      if (info.def_block != b || info.def_index != static_cast<int>(i)) {
        return Fail("definition site mismatch for " + info.name);
      }
    }
  }
  for (VarId v = 0; v < num_vars; ++v) {
    if (def_count[static_cast<size_t>(v)] != 1) {
      return Fail("variable " + program.var(v).name + " has " +
                  std::to_string(def_count[static_cast<size_t>(v)]) +
                  " definitions (SSA requires exactly 1)");
    }
  }

  // Uses are dominated by definitions; arities hold.
  for (BlockId b = 0; b < num_blocks; ++b) {
    const BasicBlock& block = program.block(b);
    for (size_t i = 0; i < block.stmts.size(); ++i) {
      const Stmt& stmt = block.stmts[i];
      if (stmt.op == OpKind::kPhi) {
        if (stmt.inputs.size() < 2) {
          return Fail("Φ with fewer than 2 inputs");
        }
      } else if (stmt.inputs.size() != ExpectedArity(stmt.op)) {
        return Fail(std::string("arity mismatch for ") + OpKindName(stmt.op));
      }
      for (VarId in : stmt.inputs) {
        if (in < 0 || in >= num_vars) {
          return Fail("use of invalid variable id");
        }
        const VarInfo& def = program.var(in);
        if (stmt.op == OpKind::kPhi) {
          // Φ inputs arrive along some control-flow path.
          if (!cfg.CanReach(def.def_block, b)) {
            return Fail("Φ input " + def.name + " cannot reach its Φ");
          }
          continue;
        }
        if (def.def_block == b) {
          if (def.def_index >= static_cast<int>(i)) {
            return Fail("use of " + def.name + " before its definition");
          }
        } else if (!cfg.Dominates(def.def_block, b)) {
          return Fail("definition of " + def.name +
                      " does not dominate its use in block " +
                      std::to_string(b));
        }
      }
    }
  }

  // Branch conditions must be singleton bags.
  for (BlockId b = 0; b < num_blocks; ++b) {
    const Terminator& term = program.block(b).term;
    if (term.kind == Terminator::Kind::kBranch &&
        !program.var(term.cond).singleton) {
      // A user-supplied bag condition is legal but must be one-element at
      // runtime; we only warn structurally when it is provably large.
      // (BagLit conditions with != 1 element would fail here.)
      const VarInfo& info = program.var(term.cond);
      const Stmt& def = program.block(info.def_block)
                            .stmts[static_cast<size_t>(info.def_index)];
      if (def.op == OpKind::kBagLit && def.bag_lit.size() != 1) {
        return Fail("branch condition " + info.name +
                    " is a literal bag without exactly 1 element");
      }
    }
  }

  return Status::Ok();
}

}  // namespace mitos::ir
