// BagOperatorHost: the coordination wrapper around every physical operator
// instance (paper Sec. 5, Fig. 2).
//
// The host implements the paper's runtime algorithm:
//   * Output-bag choice (5.2.2): when the machine-local control flow
//     manager learns that the execution path reached the operator's basic
//     block, the host enqueues an output bag whose identifier is the
//     current path prefix.
//   * Input-bag choice (5.2.3): for each logical input, the chosen input
//     bag is the one whose identifier is the longest prefix of the output
//     bag's path ending with the producer's block. Φ-operators select the
//     single input whose matching prefix is longest overall ("the latest
//     assignment wins"); for a Φ-input produced *later in the same block*,
//     the current occurrence is excluded so the previous iteration's value
//     is taken.
//   * Element separation (Challenge 1): every delivered chunk and marker
//     carries its bag identifier; the host buffers per (input, bag).
//   * Bag reuse (Challenge 2): received input bags are cached and may feed
//     several output bags (e.g. an outer-loop bag consumed by every inner
//     iteration). A cached bag is discarded once a newer bag from the same
//     producer exists on the path and no queued output bag references it.
//   * Path-ordered processing (Challenge 3): output bags are processed in
//     execution-path order, never first-come-first-served.
//   * Conditional outputs (5.2.4): data crossing basic blocks is held until
//     the path reaches the consumer's block before reaching the producer's
//     block again; a held bag is discarded as soon as the path reaches a
//     block from which every route to the consumer passes the producer's
//     block (ir::Cfg::CanReachAvoiding).
//   * Loop pipelining: an output bag starts processing as soon as its
//     inputs start arriving; the host's work queue serializes one
//     instance's CPU but different operators (and steps) overlap freely.
//   * Loop-invariant hoisting (5.3): when the chosen input bag id on a
//     reusable input equals the previous output bag's choice, the host
//     skips re-feeding and tells the kernel to keep its state.
#ifndef MITOS_RUNTIME_HOST_H_
#define MITOS_RUNTIME_HOST_H_

#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/chunk.h"
#include "common/datum.h"
#include "common/status.h"
#include "dataflow/graph.h"
#include "dataflow/operators.h"
#include "ir/cfg.h"
#include "obs/trace.h"
#include "runtime/backend.h"
#include "runtime/path.h"
#include "sim/filesystem.h"

namespace mitos::runtime {

class BagOperatorHost;

// Services the executor provides to hosts (implemented by Job in
// executor.cc; an interface keeps host.cc free of executor internals).
class RuntimeContext {
 public:
  virtual ~RuntimeContext() = default;

  virtual Backend* backend() = 0;
  virtual sim::SimFileSystem* fs() = 0;
  virtual const dataflow::LogicalGraph& graph() const = 0;
  virtual const ir::Cfg& cfg() const = 0;
  virtual bool hoisting() const = 0;
  virtual bool blocking_shuffles() const = 0;
  // Execution-trace recorder; nullptr when tracing is disabled.
  virtual obs::TraceRecorder* trace() const = 0;

  // Step-template caching (runtime/step_template.h). Defaulted off so
  // existing direct users of ExecuteJob are untouched.
  virtual bool step_templates() const { return false; }
  // Paranoid mode: every template replay is cross-checked against the
  // slow-path computation; a mismatch fails the job with Status::Internal.
  virtual bool validate_templates() const { return false; }
  // A template replay/miss on `node`'s `instance` for the bag at
  // `path_len` (the executor counts these and feeds the live event log).
  virtual void CountTemplateHit(dataflow::NodeId node, int instance,
                                int path_len) {
    (void)node;
    (void)instance;
    (void)path_len;
  }
  virtual void CountTemplateMiss() {}

  virtual BagOperatorHost* host(dataflow::NodeId node, int instance) = 0;
  virtual int MachineOf(dataflow::NodeId node, int instance) const = 0;

  // Condition-node decision for the occurrence whose bag has `path_len`.
  virtual void OnDecision(ir::BlockId block, int path_len, bool value,
                          int machine) = 0;

  // First error wins; the job drains and reports it.
  virtual void Fail(Status status) = 0;
  virtual bool failed() const = 0;

  // Overwrite-semantics coordination for writeFile: clears `filename` the
  // first time a given output bag writes to it (partitions then append).
  virtual void BeginFileWrite(const std::string& filename, BagId bag) = 0;

  virtual void CountBag(int64_t elements_in) = 0;
  // A chunk was delivered to a host; `fallback` says it rode the boxed
  // DatumVector path instead of a typed column (chunk-plane observability).
  virtual void CountChunk(bool fallback) {
    (void)fallback;
  }
  // Columnar plane switch: when false, sources and kernels keep every chunk
  // in the boxed representation (the pre-batching plane; ablation mode).
  virtual bool columnar() const { return true; }
  // An input's built state was kept across bags (loop-invariant hoisting).
  virtual void CountReuse() = 0;
  // Buffered-bytes accounting (input caches + gated output partitions);
  // the executor tracks the global peak.
  virtual void TrackMemory(int64_t delta_bytes) = 0;
  // Per-logical-operator busy-CPU attribution (profiling).
  virtual void ChargeOpCpu(dataflow::NodeId node, double seconds) = 0;
  // When false, spent input bags are never evicted (ablation of the
  // paper's Sec. 5.2.4 discard rule).
  virtual bool discard_spent_bags() const = 0;

  // ----- fault/recovery hooks (defaulted: inert without fault handling) --

  // True when the output bag (node, instance, path_len) survived a failed
  // attempt: the host replays it — kernels run over the real data so state
  // is reconstructed exactly, but CPU is free and I/O runs at memory speed.
  virtual bool IsReplayBag(dataflow::NodeId node, int instance,
                           int path_len) const {
    (void)node;
    (void)instance;
    (void)path_len;
    return false;
  }
  // An output bag finished (all markers sent); `replay` echoes IsReplayBag.
  virtual void OnBagFinished(dataflow::NodeId node, int instance,
                             int path_len, bool replay) {
    (void)node;
    (void)instance;
    (void)path_len;
    (void)replay;
  }
  // Liveness signal for the stall detector: a delivery arrived or a CPU
  // slice completed.
  virtual void NoteProgress() {}
  // Output-file append; the default writes through. The executor overrides
  // it under fault handling to stage/sort partitions so recovered runs
  // produce byte-identical files.
  virtual void AppendOutput(const std::string& filename, int instance,
                            int bag_len, const DatumVector& data) {
    (void)instance;
    (void)bag_len;
    fs()->Append(filename, data);
  }
};

class BagOperatorHost {
 public:
  BagOperatorHost(RuntimeContext* ctx, const dataflow::LogicalNode* node,
                  int instance, int machine, ControlFlowManager* cfm);

  BagOperatorHost(const BagOperatorHost&) = delete;
  BagOperatorHost& operator=(const BagOperatorHost&) = delete;

  // Registers path listeners and precomputes routing tables. Called once
  // after every host exists.
  void Init();

  // Network deliveries (invoked by producer hosts through the cluster).
  // The chunk arrives as a shared handle: channel hops are pointer swaps.
  void DeliverChunk(int input_index, int bag_len, Chunk chunk);
  void DeliverMarker(int input_index, int bag_len);

  // True when the host has no queued or in-flight work (diagnostics).
  bool Idle() const;
  std::string DebugState() const;

  const dataflow::LogicalNode& node() const { return *node_; }
  int instance() const { return instance_; }
  int machine() const { return machine_; }

 private:
  // ----- static routing info -----
  // Pre-built once per graph and shared by every instance
  // (dataflow::LogicalGraph::routing); the host only holds a reference.
  using OutEdgeInfo = dataflow::LogicalGraph::RoutingEdge;

  struct InputBagEntry {
    ChunkVector chunks;
    int markers = 0;
    int refs = 0;
    bool superseded = false;
    int64_t bytes = 0;  // buffered payload bytes (tracked globally)
  };

  struct InputState {
    dataflow::EdgeRef edge;
    ir::BlockId producer_block = ir::kNoBlock;
    int expected_markers = 0;
    std::map<int, InputBagEntry> bags;  // keyed by bag path length
  };

  struct OutBag {
    int path_len = 0;
    std::vector<int> chosen;   // per input: chosen bag length, 0 = none
    std::vector<size_t> fed;   // chunks enqueued so far per input
    std::vector<bool> closed;  // Close enqueued per input
    std::vector<bool> reuse;   // hoisting: skip re-feeding this input
    bool opened = false;
    bool finish_enqueued = false;
    bool replay = false;  // survived a failed attempt: zero-cost re-run
    // Created by a step-template replay: the open/finish bookkeeping that
    // re-derives bag ids and routing is skipped (reduced CPU charge).
    bool templated = false;
    int64_t elements_in = 0;
    double t_open = 0;  // virtual time processing started (tracing)
  };

  // Conditional-output gating state per (bag, conditional out-edge).
  struct PendingSend {
    int bag_len;
    int edge_index;
    enum class State { kPending, kSending, kDropped } state =
        State::kPending;
    ChunkVector buffered;
    bool bag_finished = false;
    bool done = false;  // marker sent or dropped; entry removable
  };

  // ----- path events -----
  void OnPathAppend(int pos, ir::BlockId block);
  void OnPathComplete();
  // The path reached this operator's block at position `pos`: replay the
  // step template when it validates, otherwise compute input choices the
  // slow way and feed the template.
  void OnBlockOccurrence(int pos);
  void CreateOutBag(int path_len);
  void CreateOutBagFromLengths(int path_len, const std::vector<int>& lens,
                               bool templated);
  // Longest-prefix rule (5.2.3) for input `i` of a bag with prefix `len`.
  int ChooseInput(int i, int len) const;
  // True per-input longest-prefix lengths for a bag with prefix `len`
  // (including non-best Φ inputs — the template classifies all of them).
  std::vector<int> ComputeInputLengths(int len) const;

  // ----- processing -----
  void TryFeed();
  // `phase` labels the core span in the execution trace ("open", "push",
  // "close", "finish"); it must be a string literal (stored, not copied).
  void EnqueueWork(double cpu_seconds, const char* phase,
                   std::function<void()> action);
  void Pump();
  void EnqueueFinish(OutBag& bag);
  void FinalizeActiveBag();
  void ReleaseAndPop();

  // ----- special (kernel-less) nodes -----
  bool IsSpecial() const;
  void SpecialPush(int input, const Chunk& chunk);
  void SpecialFinish();  // may complete asynchronously (disk I/O)
  void StartFileRead(const std::string& filename);
  void FinishFileWrite();

  // ----- emission -----
  // Re-chunks `chunk` to the configured chunk size via zero-copy slices and
  // routes each piece over every out-edge; the handle is *moved* on the
  // last (or only) edge so single-consumer fan-out never touches refcounts.
  void EmitChunk(int bag_len, Chunk&& chunk);
  void RoutePiece(int bag_len, Chunk piece);
  void SendOnEdge(size_t edge_index, int bag_len, Chunk chunk);
  // Hash-partitions `chunk` for a shuffle edge, preserving representation
  // (typed columns partition into typed columns). Returns false after
  // failing the job (kField0 over non-tuple elements).
  bool PartitionChunk(const Chunk& chunk, size_t edge_index,
                      ChunkVector* parts);
  void SendChunkTo(const OutEdgeInfo& edge, int consumer_instance,
                   int bag_len, Chunk chunk);
  void SendMarkerOnEdge(size_t edge_index, int bag_len);
  void FlushShuffleBuffers(int bag_len);
  void AdvancePendingSends(ir::BlockId block);
  PendingSend* FindPendingSend(int bag_len, size_t edge_index);

  void MaybeEvict(size_t input_index);

  double PerElementCost() const;
  // Per-chunk virtual-time charge: amortized dispatch bookkeeping plus
  // per-payload-byte cost (sim::ClusterConfig::cpu_per_chunk/cpu_per_byte).
  double ChunkCost(const Chunk& chunk) const;

  RuntimeContext* ctx_;
  const dataflow::LogicalNode* node_;
  int instance_;
  int machine_;
  ControlFlowManager* cfm_;

  std::unique_ptr<dataflow::BagOperator> kernel_;
  std::vector<InputState> inputs_;
  const std::vector<OutEdgeInfo>& out_edges_;
  HostStepTemplate step_template_;

  std::deque<OutBag> out_bags_;
  std::list<PendingSend> pending_sends_;
  // Spark-style blocking shuffles: chunks held until the bag finishes.
  std::map<std::pair<int, size_t>, ChunkVector> shuffle_buffers_;

  // Previous (finished) bag's input choices, for hoisting.
  std::vector<int> prev_chosen_;
  bool has_prev_ = false;

  // The operator instance's lane in the execution trace (registered on
  // first use; -1 until then). Only meaningful when ctx_->trace() != null.
  int TraceLane();

  // Serialized work queue modelling the single-threaded operator instance.
  struct WorkItem {
    double cpu;
    const char* phase;  // trace label for the core span
    std::function<void()> action;
  };
  std::deque<WorkItem> work_;
  bool busy_ = false;
  int trace_lane_ = -1;

  // Special-node scratch (condition values, writeFile buffers, filenames).
  DatumVector special_values_;
  DatumVector special_data_;
  bool special_async_ = false;  // async finish in flight (disk I/O)
};

}  // namespace mitos::runtime

#endif  // MITOS_RUNTIME_HOST_H_
