// Job execution: assembles hosts, control flow managers, and the path
// authority over a simulated cluster, runs a single (possibly cyclic)
// dataflow job to completion, and reports statistics.
//
// MitosExecutor is the paper's full pipeline: imperative program →
// Preparator → SSA → single dataflow job → coordinated distributed
// execution. The same Job machinery also executes the straight-line
// per-action jobs of the Spark baseline (baselines/spark.h).
#ifndef MITOS_RUNTIME_EXECUTOR_H_
#define MITOS_RUNTIME_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "dataflow/graph.h"
#include "ir/ir.h"
#include "lang/ast.h"
#include "obs/live/live.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/backend.h"
#include "runtime/path.h"
#include "sim/cluster.h"
#include "sim/filesystem.h"
#include "sim/simulator.h"

namespace mitos::runtime {

struct ExecutorOptions {
  // Loop pipelining (paper Sec. 5.2 / 6.6). Off = superstep barriers.
  bool pipelining = true;
  // Loop-invariant hoisting (paper Sec. 5.3 / 6.5).
  bool hoisting = true;
  // Extra latency per control-flow decision (models e.g. Flink's per-step
  // native-iteration overhead, FLINK-3322).
  double decision_overhead = 0.0;
  // Job deployment cost: base + per-machine (tasks deploy serially from the
  // coordinator, which is why per-step job launch scales linearly with the
  // machine count — paper Sec. 6.4).
  double launch_base = 0.08;
  double launch_per_machine = 0.045;
  // Materialize shuffle outputs before transmitting (Spark-style stage
  // execution). Streaming engines (Flink, Mitos) pipeline shuffles instead.
  bool blocking_shuffles = false;
  // Prune statements no sink or condition depends on before translation
  // (dead loop Φs cost per-iteration coordination). Off = ablation.
  bool dead_code_elimination = true;
  // Discard cached input bags and gated output partitions the execution
  // path proves dead (Sec. 5.2.4). Off = ablation (memory grows with the
  // iteration count).
  bool discard_spent_bags = true;
  // Step-template control-plane caching (runtime/step_template.h):
  // validated replay of per-step bag-id resolution, input/output choice,
  // and routing decisions across structurally identical loop iterations.
  // Off by default so baselines and direct ExecuteJob users keep their
  // exact virtual-time behavior; api::Engine enables it for the Mitos
  // engines (api::RunConfig::step_templates).
  bool step_templates = false;
  // Paranoid mode: cross-check every template replay against the slow-path
  // computation and fail the job (Status::Internal) on any mismatch.
  bool validate_templates = false;
  // Fuse same-block single-consumer elementwise chains into one operator
  // (Flink/Spark-style chaining; ir/fusion.h). Opt-in: kept off by default
  // so the dataflow graph matches the paper's one-node-per-assignment
  // construction; the ablation bench measures its effect.
  bool operator_fusion = false;
  // Columnar chunk plane (common/chunk.h): homogeneous batches travel as
  // typed columns and kernels vectorize over them. Off = every chunk stays
  // a boxed DatumVector end to end (the pre-batching plane; ablation and
  // wall-clock-speedup baseline). Outputs are element-identical either way.
  bool columnar = true;
  // Runaway-loop guard.
  int max_path_len = 1'000'000;
  // Observability (src/obs/): execution-trace recorder and metrics
  // registry. Both nullable; null (the default) disables the layer
  // entirely — no events, no extra allocations, no simulated cost.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Live observability plane (obs/live/): streaming event log, periodic
  // metrics snapshots, step-level stall watchdog, and progress callback.
  // All default-off; when enabled, everything runs on background timers
  // and observational hooks only, so the virtual-time schedule of the run
  // is byte-identical to a run with the plane disabled.
  obs::live::LiveOptions live;
  // Fault plan (caller-owned, already installed on the cluster; nullptr =
  // fault handling off). With a plan, ExecuteJob runs an attempt loop:
  // failed attempts (machine lost, stalled) are discarded and the job
  // re-executes from the last completed control-flow step, replaying
  // surviving bags (lineage over bag identifiers) at zero cost.
  const sim::FaultPlan* faults = nullptr;
};

struct RunStats {
  double total_seconds = 0;   // virtual time from submission to completion
  double launch_seconds = 0;  // of which job deployment
  int jobs = 1;               // dataflow jobs launched (baselines launch many)
  int decisions = 0;          // control flow decisions taken
  int64_t bags = 0;           // output bags computed across all instances
  int64_t elements = 0;       // elements fed into operators
  int64_t chunks = 0;         // chunks delivered to hosts
  int64_t chunk_fallbacks = 0;  // of which boxed-DatumVector fallbacks
  int64_t hoisted_reuses = 0; // build-side states kept across steps (5.3)
  int64_t peak_buffered_bytes = 0;  // max bytes cached across all hosts
  // Fault recovery (all zero/one for fault-free runs; see sim/fault.h).
  int attempts = 1;             // execution attempts (>1 after failures)
  double recovery_seconds = 0;  // failed-attempt + restart-wait time
  int64_t recomputed_bags = 0;  // lost bags recomputed during recovery
  int64_t replayed_bags = 0;    // surviving bags replayed at zero cost
  int checkpoints = 0;          // durable checkpoints taken
  // Step-template cache (all zero with step templates off).
  int64_t template_hits = 0;           // bags instantiated from a template
  int64_t template_misses = 0;         // occurrences that took the slow path
  int64_t template_invalidations = 0;  // cached step shapes contradicted
  // Busy-CPU seconds per logical operator (summed over instances), by the
  // operator's SSA variable name. A cheap profiler for finding the
  // bottleneck stage of a pipeline.
  std::map<std::string, double> operator_cpu;
  sim::ClusterMetrics cluster;  // deltas over this run

  std::string ToString() const;
};

// Runs ONE dataflow job (graph + its IR program for control flow) on the
// given backend, starting at the backend's current time and blocking until
// the job drains. Fault handling (options.faults) requires a DES backend
// (backend->simulator() != nullptr).
StatusOr<RunStats> ExecuteJob(Backend* backend, sim::SimFileSystem* fs,
                              const ir::Program& program,
                              const dataflow::LogicalGraph& graph,
                              const ExecutorOptions& options);

// Convenience overload over the discrete-event substrate (wraps the pair
// in a DesBackend; byte-identical to the pre-seam runtime).
StatusOr<RunStats> ExecuteJob(sim::Simulator* sim, sim::Cluster* cluster,
                              sim::SimFileSystem* fs,
                              const ir::Program& program,
                              const dataflow::LogicalGraph& graph,
                              const ExecutorOptions& options);

// The full Mitos engine: compile (TypeCheck + Preparator + SSA + translate)
// and execute as a single dataflow job.
class MitosExecutor {
 public:
  MitosExecutor(sim::Simulator* sim, sim::Cluster* cluster,
                sim::SimFileSystem* fs, ExecutorOptions options = {});
  // Executes on an arbitrary backend (e.g. the real-parallel threads
  // backend); the caller keeps `backend` alive for the executor's lifetime.
  MitosExecutor(Backend* backend, sim::SimFileSystem* fs,
                ExecutorOptions options = {});

  // Compiles and runs `program`; outputs land in the file system.
  StatusOr<RunStats> Run(const lang::Program& program);

  // Runs an already-compiled IR program.
  StatusOr<RunStats> RunIr(const ir::Program& program);

 private:
  std::unique_ptr<DesBackend> owned_des_;  // set by the sim/cluster ctor
  Backend* backend_;
  sim::SimFileSystem* fs_;
  ExecutorOptions options_;
};

}  // namespace mitos::runtime

#endif  // MITOS_RUNTIME_EXECUTOR_H_
