#include "runtime/threads_backend.h"

#include <utility>

#include "common/logging.h"

namespace mitos::runtime {

ThreadsBackend::ThreadsBackend(const sim::ClusterConfig& config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  MITOS_CHECK(config_.num_machines > 0);
  machines_.reserve(static_cast<size_t>(config_.num_machines));
  for (int m = 0; m < config_.num_machines; ++m) {
    machines_.push_back(std::make_unique<Machine>());
  }
  // Start workers only after the vector is fully built (a worker never
  // touches other machines' entries, but the thread itself needs a stable
  // Machine address).
  for (auto& m : machines_) {
    m->thread = std::thread([this, mp = m.get()] { WorkerLoop(mp); });
  }
}

ThreadsBackend::~ThreadsBackend() {
  for (auto& m : machines_) {
    {
      std::lock_guard<std::mutex> lock(m->mu);
      m->stop = true;
    }
    m->cv.notify_all();
  }
  for (auto& m : machines_) {
    if (m->thread.joinable()) m->thread.join();
  }
}

double ThreadsBackend::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ThreadsBackend::Post(int machine, std::function<void()> fn) {
  MITOS_CHECK(machine >= 0 && machine < config_.num_machines);
  Machine* m = machines_[static_cast<size_t>(machine)].get();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(m->mu);
    m->queue.push_back(std::move(fn));
  }
  m->cv.notify_one();
}

void ThreadsBackend::WorkerLoop(Machine* m) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(m->mu);
      m->cv.wait(lock, [m] { return m->stop || !m->queue.empty(); });
      if (m->queue.empty()) return;  // stop requested and queue drained
      task = std::move(m->queue.front());
      m->queue.pop_front();
    }
    task();
    // Decrement AFTER the task ran: zero outstanding means every posted
    // task's effects are complete. Notify under done_mu_ so the driver's
    // predicate check cannot miss the wakeup.
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadsBackend::ExecCpu(int machine, double cpu_seconds,
                             std::function<void()> done,
                             std::string trace_label) {
  // The modelled charge is ignored: `done` is the real work and its wall
  // time is what gets metered.
  (void)cpu_seconds;
  Post(machine,
       [this, machine, done = std::move(done),
        label = std::move(trace_label)] {
         const double t0 = now();
         done();
         const double t1 = now();
         {
           std::lock_guard<std::mutex> lock(metrics_mu_);
           metrics_.cpu_seconds += t1 - t0;
         }
         if (trace_ != nullptr && !label.empty()) {
           const int pid = obs::MachinePid(machine);
           trace_->Span(pid, trace_->Lane(pid, "cores"), label, "core", t0,
                        t1, {});
         }
       });
}

void ThreadsBackend::Send(int src, int dst, size_t bytes,
                          std::function<void()> done) {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (src == dst) {
      metrics_.local_bytes += static_cast<int64_t>(bytes);
    } else {
      ++metrics_.messages;
      metrics_.network_bytes += static_cast<int64_t>(bytes);
    }
  }
  Post(dst, std::move(done));
}

void ThreadsBackend::DiskIo(int machine, size_t bytes,
                            std::function<void()> done, bool memory) {
  if (!memory) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.disk_bytes += static_cast<int64_t>(bytes);
  }
  Post(machine, std::move(done));
}

void ThreadsBackend::DiskRead(int machine, size_t bytes, int pieces,
                              std::function<void(int)> on_progress,
                              bool memory) {
  if (!memory) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.disk_bytes += static_cast<int64_t>(bytes);
  }
  // One task for the whole read: the data is already in process memory, so
  // there is no I/O pace to emit at — downstream overlap comes from the
  // other machines' sources reading concurrently.
  Post(machine, [pieces, on_progress = std::move(on_progress)] {
    for (int i = 0; i < pieces; ++i) on_progress(i);
  });
}

void ThreadsBackend::ScheduleAfter(double delay, std::function<void()> fn) {
  (void)delay;  // coordinator-side launch only; see the Backend contract
  Post(0, std::move(fn));
}

void ThreadsBackend::ScheduleWhenIdle(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(done_mu_);
  idle_callbacks_.push_back(std::move(fn));
}

void ThreadsBackend::Run() {
  while (true) {
    std::function<void()> idle;
    {
      std::unique_lock<std::mutex> lock(done_mu_);
      done_cv_.wait(lock, [this] {
        return outstanding_.load(std::memory_order_acquire) == 0;
      });
      if (idle_callbacks_.empty()) return;
      idle = std::move(idle_callbacks_.front());
      idle_callbacks_.pop_front();
    }
    // Quiescent: all workers blocked, their writes published through
    // done_mu_. The callback runs on the driver thread and may post new
    // work (released to the workers through the queue locks), after which
    // the loop waits for quiescence again before the next callback.
    idle();
  }
}

sim::ClusterMetrics ThreadsBackend::MetricsSnapshot() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return metrics_;
}

}  // namespace mitos::runtime
