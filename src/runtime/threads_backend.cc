#include "runtime/threads_backend.h"

#include <utility>

#include "common/logging.h"

namespace mitos::runtime {

namespace {

// Histogram names for the wall-clock queue/contention metrics. One place
// so the tests and the Prometheus exposition agree on spelling.
constexpr const char kEnqueueHist[] = "threads_enqueue_seconds";
constexpr const char kDequeueHist[] = "threads_dequeue_seconds";
constexpr const char kQueueWaitHist[] = "threads_queue_wait_seconds";
constexpr const char kLockWaitHist[] = "threads_lock_wait_seconds";
constexpr const char kQuiesceHist[] = "threads_quiesce_wait_seconds";

}  // namespace

ThreadsBackend::ThreadsBackend(const sim::ClusterConfig& config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  MITOS_CHECK(config_.num_machines > 0);
  machines_.reserve(static_cast<size_t>(config_.num_machines));
  for (int m = 0; m < config_.num_machines; ++m) {
    machines_.push_back(std::make_unique<Machine>());
  }
  // Start workers only after the vector is fully built (a worker never
  // touches other machines' entries, but the thread itself needs a stable
  // Machine address).
  for (int m = 0; m < config_.num_machines; ++m) {
    Machine* mp = machines_[static_cast<size_t>(m)].get();
    mp->thread = std::thread([this, m, mp] { WorkerLoop(m, mp); });
  }
}

ThreadsBackend::~ThreadsBackend() {
  for (auto& m : machines_) {
    {
      std::lock_guard<std::mutex> lock(m->mu);
      m->stop = true;
    }
    m->cv.notify_all();
  }
  for (auto& m : machines_) {
    if (m->thread.joinable()) m->thread.join();
  }
}

double ThreadsBackend::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ThreadsBackend::set_trace(obs::TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    // Everything this backend records is wall seconds since construction.
    trace_->set_clock(obs::TraceClock::kWall);
    // Release-publish the pointer write above to the already-running
    // workers (paired with the acquire loads in WorkerLoop/Post).
    instrumented_.store(true, std::memory_order_release);
  }
}

void ThreadsBackend::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_registry_ = metrics;
  if (metrics_registry_ != nullptr) {
    instrumented_.store(true, std::memory_order_release);
  }
}

void ThreadsBackend::Post(int machine, std::function<void()> fn) {
  MITOS_CHECK(machine >= 0 && machine < config_.num_machines);
  Machine* m = machines_[static_cast<size_t>(machine)].get();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (!instrumented_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(m->mu);
      m->queue.push_back(Task{std::move(fn), 0});
    }
    m->cv.notify_one();
    return;
  }
  // Instrumented enqueue: meter how long the producer blocked on the queue
  // mutex (lock-wait) and the full enqueue latency, stamp the task so the
  // consumer can measure its queue wait, and track depth peaks.
  const double t_enter = now();
  size_t depth;
  double t_locked;
  {
    std::unique_lock<std::mutex> lock(m->mu);
    t_locked = now();
    m->queue.push_back(Task{std::move(fn), t_locked});
    depth = m->queue.size();
    if (depth > m->peak_depth) m->peak_depth = depth;
    ++m->tasks_posted;
  }
  m->cv.notify_one();
  const double t_done = now();
  if (metrics_registry_ != nullptr) {
    metrics_registry_->Observe(kLockWaitHist, t_locked - t_enter);
    metrics_registry_->Observe(kEnqueueHist, t_done - t_enter);
  }
}

void ThreadsBackend::WorkerLoop(int machine, Machine* m) {
  // Workers outlive set_trace/set_metrics calls, so the flag is probed
  // with acquire loads (the observer pointers were written before the
  // release store that flipped it).
  while (true) {
    Task task;
    double idle_from = -1;
    double t_dequeue_enter = 0;
    {
      std::unique_lock<std::mutex> lock(m->mu);
      if (instrumented_.load(std::memory_order_acquire) &&
          m->queue.empty() && !m->stop) {
        idle_from = now();
      }
      m->cv.wait(lock, [m] { return m->stop || !m->queue.empty(); });
      if (m->queue.empty()) return;  // stop requested and queue drained
      if (instrumented_.load(std::memory_order_acquire)) {
        t_dequeue_enter = now();
      }
      task = std::move(m->queue.front());
      m->queue.pop_front();
    }
    if (instrumented_.load(std::memory_order_acquire)) {
      const double t_start = now();
      const int pid = obs::MachinePid(machine);
      if (idle_from >= 0 && trace_ != nullptr) {
        trace_->Span(pid, trace_->Lane(pid, "cores"), "idle", "idle",
                     idle_from, t_dequeue_enter, {});
      }
      const double queue_wait = t_dequeue_enter - task.enqueued_at;
      if (trace_ != nullptr && queue_wait > 0) {
        trace_->Span(pid, trace_->Lane(pid, "queue"), "queue-wait", "queue",
                     task.enqueued_at, t_dequeue_enter, {});
      }
      if (metrics_registry_ != nullptr) {
        metrics_registry_->Observe(kQueueWaitHist, queue_wait);
        metrics_registry_->Observe(kDequeueHist, t_start - t_dequeue_enter);
      }
    }
    task.fn();
    // Decrement AFTER the task ran: zero outstanding means every posted
    // task's effects are complete. Notify under done_mu_ so the driver's
    // predicate check cannot miss the wakeup.
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadsBackend::ExecCpu(int machine, double cpu_seconds,
                             std::function<void()> done,
                             std::string trace_label) {
  // The modelled charge is ignored: `done` is the real work and its wall
  // time is what gets metered.
  (void)cpu_seconds;
  Post(machine,
       [this, machine, done = std::move(done),
        label = std::move(trace_label)] {
         const double t0 = now();
         done();
         const double t1 = now();
         {
           std::lock_guard<std::mutex> lock(metrics_mu_);
           metrics_.cpu_seconds += t1 - t0;
         }
         if (trace_ != nullptr && !label.empty()) {
           const int pid = obs::MachinePid(machine);
           trace_->Span(pid, trace_->Lane(pid, "cores"), label, "core", t0,
                        t1, {});
         }
       });
}

void ThreadsBackend::Send(int src, int dst, size_t bytes,
                          std::function<void()> done) {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (src == dst) {
      metrics_.local_bytes += static_cast<int64_t>(bytes);
    } else {
      ++metrics_.messages;
      metrics_.network_bytes += static_cast<int64_t>(bytes);
    }
  }
  Post(dst, std::move(done));
}

void ThreadsBackend::DiskIo(int machine, size_t bytes,
                            std::function<void()> done, bool memory) {
  if (!memory) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.disk_bytes += static_cast<int64_t>(bytes);
  }
  Post(machine, std::move(done));
}

void ThreadsBackend::DiskRead(int machine, size_t bytes, int pieces,
                              std::function<void(int)> on_progress,
                              bool memory) {
  if (!memory) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.disk_bytes += static_cast<int64_t>(bytes);
  }
  // One task for the whole read: the data is already in process memory, so
  // there is no I/O pace to emit at — downstream overlap comes from the
  // other machines' sources reading concurrently.
  Post(machine, [pieces, on_progress = std::move(on_progress)] {
    for (int i = 0; i < pieces; ++i) on_progress(i);
  });
}

void ThreadsBackend::ScheduleAfter(double delay, std::function<void()> fn) {
  (void)delay;  // coordinator-side launch only; see the Backend contract
  Post(0, std::move(fn));
}

void ThreadsBackend::ScheduleWhenIdle(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(done_mu_);
  idle_callbacks_.push_back(std::move(fn));
}

void ThreadsBackend::Run() {
  while (true) {
    std::function<void()> idle;
    const double t_wait = instrumented_ ? now() : 0;
    bool waited = false;
    {
      std::unique_lock<std::mutex> lock(done_mu_);
      waited = outstanding_.load(std::memory_order_acquire) != 0;
      done_cv_.wait(lock, [this] {
        return outstanding_.load(std::memory_order_acquire) == 0;
      });
      if (idle_callbacks_.empty()) {
        if (instrumented_ && waited) RecordQuiesceWait(t_wait, now());
        return;
      }
      idle = std::move(idle_callbacks_.front());
      idle_callbacks_.pop_front();
    }
    if (instrumented_ && waited) RecordQuiesceWait(t_wait, now());
    // Quiescent: all workers blocked, their writes published through
    // done_mu_. The callback runs on the driver thread and may post new
    // work (released to the workers through the queue locks), after which
    // the loop waits for quiescence again before the next callback.
    idle();
  }
}

void ThreadsBackend::RecordQuiesceWait(double t_start, double t_end) {
  if (trace_ != nullptr) {
    trace_->Span(obs::kEnginePid, trace_->Lane(obs::kEnginePid, "barrier"),
                 "quiescence", "quiesce", t_start, t_end, {});
  }
  if (metrics_registry_ != nullptr) {
    metrics_registry_->Observe(kQuiesceHist, t_end - t_start);
  }
}

void ThreadsBackend::FlushMetrics() {
  if (metrics_registry_ == nullptr) return;
  int64_t total_tasks = 0;
  for (int i = 0; i < config_.num_machines; ++i) {
    Machine* m = machines_[static_cast<size_t>(i)].get();
    size_t peak;
    int64_t posted;
    {
      std::lock_guard<std::mutex> lock(m->mu);
      peak = m->peak_depth;
      posted = m->tasks_posted;
    }
    const std::string suffix = "/m" + std::to_string(i);
    metrics_registry_->Set("threads_queue_depth_peak" + suffix,
                           static_cast<double>(peak));
    metrics_registry_->Set("threads_tasks" + suffix,
                           static_cast<double>(posted));
    total_tasks += posted;
  }
  metrics_registry_->Set("threads_tasks_total",
                         static_cast<double>(total_tasks));
}

sim::ClusterMetrics ThreadsBackend::MetricsSnapshot() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  return metrics_;
}

}  // namespace mitos::runtime
