// ThreadsBackend: real parallelism behind the runtime::Backend seam.
//
// One worker thread per "machine", each draining its own MPSC task queue
// (any thread posts, only the owner executes). Every Backend operation
// reduces to Post(target, fn):
//
//   * ExecCpu runs `done` on the target machine's thread — the callback IS
//     the real work; the modelled cpu_seconds charge is ignored and the
//     callback's measured wall time is metered into cpu_seconds instead.
//   * Send posts `done` to the destination. Tasks posted from one thread
//     land in the destination deque in program order, so the per-(src,dst)
//     FIFO guarantee (chunks before their end-of-bag marker) holds for
//     free. Byte/message tallies use the same local-vs-network split as
//     the simulated cluster (src == dst → local_bytes).
//   * DiskIo/DiskRead post to the target machine; there is no modelled
//     disk occupancy — the data already lives in the in-process
//     SimFileSystem — but disk_bytes accounting is kept.
//   * ScheduleAfter posts to machine 0 without the modelled delay (it is
//     only used for the pre-work job launch; Mitos engines run with
//     decision_overhead == 0 — see the Backend contract).
//
// Quiescence (Run / ScheduleWhenIdle): a single atomic counts outstanding
// tasks, incremented BEFORE a task is enqueued and decremented AFTER it
// finishes running, so the count can only reach zero when every posted
// task — and everything it transitively posted — has fully executed. The
// driver thread blocks in Run() until the count hits zero, then runs ONE
// pending idle callback (mirroring sim::Simulator::Run's
// one-idle-callback-at-a-time semantics, which is what superstep barriers
// rely on) and waits again; Run returns when the system is quiescent with
// no idle callbacks left. The driver's wait/wake through done_mu_
// establishes happens-before in both directions, so an idle callback may
// touch any machine's state — exactly like the DES at quiescence — but
// only until it posts work: from the first Post the workers run again,
// and every machine's state re-confines to its own thread (which is why
// PathAuthority::Broadcast self-sends the local decision delivery here
// instead of advancing the local manager inline).
//
// Time is wall-clock seconds since construction; busy_until() == now()
// (no background timers exist here). Fault plans are rejected upstream
// (PathAuthority checks simulator() != nullptr), and simulator()/cluster()
// return nullptr, which gates off the watchdog, snapshot cadence, and
// heartbeat machinery.
//
// Wall-clock observability (DESIGN.md §12): with a TraceRecorder attached
// the backend flips the recorder to TraceClock::kWall and emits per-worker
// spans — kernel execution ("core", the measured ExecCpu callback), per-task
// enqueue→dequeue waits ("queue"), worker idle time ("idle"), and the
// driver's quiescence-barrier waits ("quiesce" on the engine process). With
// a MetricsRegistry attached (set_metrics) it observes enqueue/dequeue
// latency, producer lock-wait, queue-wait, and quiescence-wait histograms
// during the run and flushes per-machine queue-depth peaks and task counts
// as "threads_*" gauges at FlushMetrics(). All timestamping is gated on an
// instrumentation flag computed when the observers attach, so the
// uninstrumented hot path stays a queue push. None of this touches the DES:
// virtual-time traces remain byte-identical with this code compiled in.
#ifndef MITOS_RUNTIME_THREADS_BACKEND_H_
#define MITOS_RUNTIME_THREADS_BACKEND_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "runtime/backend.h"

namespace mitos::runtime {

class ThreadsBackend : public Backend {
 public:
  explicit ThreadsBackend(const sim::ClusterConfig& config);
  ~ThreadsBackend() override;

  ThreadsBackend(const ThreadsBackend&) = delete;
  ThreadsBackend& operator=(const ThreadsBackend&) = delete;

  int num_machines() const override { return config_.num_machines; }
  const sim::ClusterConfig& config() const override { return config_; }

  double now() const override;
  double busy_until() const override { return now(); }

  void ExecCpu(int machine, double cpu_seconds, std::function<void()> done,
               std::string trace_label = {}) override;
  void Send(int src, int dst, size_t bytes,
            std::function<void()> done) override;
  void DiskIo(int machine, size_t bytes, std::function<void()> done,
              bool memory = false) override;
  void DiskRead(int machine, size_t bytes, int pieces,
                std::function<void(int)> on_progress,
                bool memory = false) override;

  void ScheduleAfter(double delay, std::function<void()> fn) override;
  void ScheduleWhenIdle(std::function<void()> fn) override;
  void Run() override;

  sim::ClusterMetrics MetricsSnapshot() const override;

  // Attaching a recorder switches it to wall-clock mode: every timestamp
  // this backend records is wall seconds since construction.
  void set_trace(obs::TraceRecorder* trace) override;
  obs::TraceRecorder* trace() const override { return trace_; }
  void set_event_log(obs::live::EventLog* log) override {
    event_log_ = log;
  }
  obs::live::EventLog* event_log() const override { return event_log_; }

  // Attaches a registry for the wall-clock queue/contention metrics
  // (threads_enqueue_seconds, threads_dequeue_seconds,
  // threads_queue_wait_seconds, threads_lock_wait_seconds,
  // threads_quiesce_wait_seconds histograms). Call before the run starts.
  void set_metrics(obs::MetricsRegistry* metrics);

  // Writes the end-of-run per-machine gauges (threads_queue_depth_peak/m<i>,
  // threads_tasks/m<i>, threads_tasks_total) into the attached registry.
  // Call after Run() has quiesced; a no-op without set_metrics.
  void FlushMetrics();

 private:
  // One queued task, stamped with its enqueue time when instrumentation is
  // on (0 otherwise — the stamp is never read then).
  struct Task {
    std::function<void()> fn;
    double enqueued_at = 0;
  };

  struct Machine {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> queue;
    bool stop = false;
    // Instrumentation tallies, guarded by mu (writers already hold it).
    size_t peak_depth = 0;
    int64_t tasks_posted = 0;
    std::thread thread;
  };

  // Enqueues `fn` on `machine`'s worker. Increments outstanding_ before
  // the push so the driver can never observe a false quiescence between
  // enqueue and execution.
  void Post(int machine, std::function<void()> fn);
  void WorkerLoop(int machine, Machine* m);
  // Emits the driver's quiescence-barrier wait [t_start, t_end] as a trace
  // span and a histogram observation.
  void RecordQuiesceWait(double t_start, double t_end);

  sim::ClusterConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Machine>> machines_;

  // Outstanding tasks: posted but not yet finished executing.
  std::atomic<int64_t> outstanding_{0};
  // Guards idle_callbacks_ and backs the driver's quiescence wait.
  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> idle_callbacks_;

  mutable std::mutex metrics_mu_;
  sim::ClusterMetrics metrics_;

  obs::TraceRecorder* trace_ = nullptr;
  obs::live::EventLog* event_log_ = nullptr;
  obs::MetricsRegistry* metrics_registry_ = nullptr;
  // True once a trace or metrics registry attached: gates every clock read
  // and span/histogram emission, so the uninstrumented hot path is exactly
  // the pre-instrumentation queue push plus one relaxed-ish load. Atomic
  // because the workers already exist when observers attach: they probe the
  // flag on wakeup before any task (and its mutex edge) reaches them. The
  // release store (after the pointer writes) / acquire load pairing also
  // publishes trace_/metrics_registry_ to the workers.
  std::atomic<bool> instrumented_{false};
};

}  // namespace mitos::runtime

#endif  // MITOS_RUNTIME_THREADS_BACKEND_H_
