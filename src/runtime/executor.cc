#include "runtime/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "ir/cfg.h"
#include "ir/dce.h"
#include "ir/fusion.h"
#include "ir/ssa.h"
#include "ir/verify.h"
#include "obs/live/snapshot.h"
#include "obs/live/watchdog.h"
#include "runtime/host.h"
#include "runtime/recovery.h"
#include "runtime/translator.h"

namespace mitos::runtime {

std::string RunStats::ToString() const {
  std::ostringstream out;
  out << "time=" << total_seconds << "s jobs=" << jobs
      << " decisions=" << decisions << " bags=" << bags
      << " elements=" << elements << " net=" << cluster.network_bytes
      << "B msgs=" << cluster.messages << " disk=" << cluster.disk_bytes
      << "B cpu=" << cluster.cpu_seconds << "s";
  // Fault fields only when something actually went wrong (or was durably
  // checkpointed), so fault-free stats lines are unchanged.
  if (attempts > 1) {
    out << " attempts=" << attempts << " recovery=" << recovery_seconds
        << "s recomputed=" << recomputed_bags
        << " replayed=" << replayed_bags;
  }
  if (checkpoints > 0) out << " ckpt=" << checkpoints;
  // Template fields only when the cache did anything, so template-off
  // stats lines are unchanged.
  if (template_hits > 0 || template_invalidations > 0) {
    out << " tmpl_hits=" << template_hits
        << " tmpl_miss=" << template_misses
        << " tmpl_inval=" << template_invalidations;
  }
  if (cluster.dropped_messages > 0) {
    out << " dropped=" << cluster.dropped_messages;
  }
  return out.str();
}

namespace {

// One job execution: owns hosts, managers, and the authority.
class Job : public RuntimeContext {
 public:
  Job(sim::Simulator* sim, sim::Cluster* cluster, sim::SimFileSystem* fs,
      const ir::Program& program, const dataflow::LogicalGraph& graph,
      const ExecutorOptions& options,
      FaultRecoveryState* recovery = nullptr, int attempt = 1)
      : sim_(sim),
        cluster_(cluster),
        fs_(fs),
        program_(program),
        graph_(graph),
        options_(options),
        cfg_(program) {
    faults_ = options.faults;
    recovery_ = recovery;
    attempt_ = attempt;
    // Fault injection disables template replay wholesale: recovery depends
    // on full-fidelity control messages and freshly derived step state, and
    // every attempt starts with a cold cache anyway. Faulted runs are
    // therefore event-identical to step_templates=false (regression-tested
    // in tests/runtime/step_template_test.cc).
    templates_on_ = options.step_templates && faults_ == nullptr;
  }

  StatusOr<RunStats> Execute() {
    const int machines = cluster_->num_machines();
    sim::ClusterMetrics before = cluster_->metrics();
    double t_start = sim_->now();

    // Attach the recorder to the cluster so resource spans (cores, NICs,
    // disks) are captured; keep an already-attached recorder (api::Run
    // attaches it before any baseline engine launches its jobs).
    if (options_.trace != nullptr && cluster_->trace() == nullptr) {
      cluster_->set_trace(options_.trace);
    }
    if (obs::TraceRecorder* tr = trace()) {
      tr->SetProcessName(obs::kEnginePid, "engine");
      for (int m = 0; m < machines; ++m) {
        tr->SetProcessName(obs::MachinePid(m), "machine" + std::to_string(m));
      }
    }
    MITOS_VLOG(1) << "job start: " << graph_.num_nodes() << " operators on "
                  << machines << " machines"
                  << (options_.pipelining ? "" : ", superstep barriers");

    // Per-machine control flow managers over the shared path storage.
    PathAuthority::Options auth_options;
    auth_options.pipelining = options_.pipelining;
    auth_options.decision_overhead = options_.decision_overhead;
    auth_options.max_path_len = options_.max_path_len;
    auth_options.step_templates = templates_on_;
    auth_options.trace = trace();
    auth_options.metrics = options_.metrics;
    auth_options.elements_probe = [this] { return elements_; };
    auth_options.faults = faults_;
    if (faults_ != nullptr && faults_->checkpoint_every > 0) {
      auth_options.on_checkpoint = [this] { OnCheckpoint(); };
    }

    // Live observability plane (obs/live/). All hooks are observational
    // and the periodic machinery (snapshot cadence, watchdog checks) runs
    // on background timers, so the foreground schedule — and therefore the
    // run's virtual-time behavior — is untouched.
    obs::live::EventLog* elog = options_.live.event_log;
    if (elog != nullptr) {
      auth_options.event_log = elog;
      if (cluster_->event_log() == nullptr) cluster_->set_event_log(elog);
    }
    if (options_.live.any()) {
      auth_options.on_step = [this](int step, bool initial) {
        OnLiveStep(step, initial);
      };
    }
    if (elog != nullptr && options_.metrics != nullptr &&
        options_.live.snapshots.enabled) {
      snapshots_ = std::make_unique<obs::live::SnapshotWriter>(
          options_.metrics, elog, options_.live.snapshots);
    }
    if (elog != nullptr && options_.live.watchdog.enabled) {
      watchdog_ = std::make_unique<obs::live::StepWatchdog>(
          sim_, elog, options_.live.watchdog);
      watchdog_->set_quiescent([this] { return failed() || JobDone(); });
      watchdog_->set_diagnose([this] { return StuckHosts(); });
    }

    managers_.clear();
    manager_ptrs_.clear();
    for (int m = 0; m < machines; ++m) {
      managers_.push_back(std::make_unique<ControlFlowManager>(&path_));
      manager_ptrs_.push_back(managers_.back().get());
    }
    authority_ = std::make_unique<PathAuthority>(
        &program_, cluster_, &path_, manager_ptrs_, auth_options,
        [this](Status s) { Fail(std::move(s)); });

    // Hosts: one per (node, instance).
    hosts_.clear();
    hosts_.resize(static_cast<size_t>(graph_.num_nodes()));
    op_cpu_.assign(static_cast<size_t>(graph_.num_nodes()), 0.0);
    for (const dataflow::LogicalNode& node : graph_.nodes) {
      auto& instances = hosts_[static_cast<size_t>(node.id)];
      for (int i = 0; i < node.parallelism; ++i) {
        int machine = MachineOf(node.id, i);
        instances.push_back(std::make_unique<BagOperatorHost>(
            this, &graph_.node(node.id), i, machine,
            manager_ptrs_[static_cast<size_t>(machine)]));
      }
    }
    for (auto& instances : hosts_) {
      for (auto& host : instances) host->Init();
    }

    // Job launch: the coordinator deploys tasks serially across machines.
    double launch =
        options_.launch_base + options_.launch_per_machine * machines;
    sim_->ScheduleAfter(launch, [this] {
      if (!failed()) authority_->Start(/*machine=*/0);
    });

    // Failure detection: a background heartbeat tick declares the attempt
    // lost when a machine stays down or progress stalls.
    if (faults_ != nullptr) {
      last_progress_ = sim_->now();
      MonitorTick();
    }

    // Periodic snapshot cadence (every K virtual seconds, on top of the
    // per-step-boundary snapshots OnLiveStep emits).
    if (snapshots_ != nullptr &&
        options_.live.snapshots.every_virtual_seconds > 0) {
      SnapshotTick();
    }

    sim_->Run();

    if (!status_.ok()) return status_;

    // The job must have drained cleanly: path complete, all hosts idle.
    if (!authority_->path().complete()) {
      if (faults_ != nullptr) {
        return Status::Unavailable("attempt drained before path completion");
      }
      return Status::Internal("job did not complete: path " +
                              authority_->path().ToString() + "\n" +
                              StuckHosts());
    }
    std::string stuck = StuckHosts();
    if (!stuck.empty()) {
      return Status::Internal("job drained with unfinished operators:\n" +
                              stuck);
    }

    RunStats stats;
    // Under fault handling or live observability, trailing background
    // timers (heartbeats, ack timeouts, watchdog checks, snapshot ticks)
    // may outlive the real work; busy_until() is when the last foreground
    // event ran. Without background events busy_until() == now(), so this
    // never changes a plain run's reported time.
    const bool background_timers = faults_ != nullptr ||
                                   watchdog_ != nullptr ||
                                   snapshots_ != nullptr;
    const double t_end = background_timers
                             ? std::max(t_start, sim_->busy_until())
                             : sim_->now();
    stats.total_seconds = t_end - t_start;
    stats.launch_seconds = launch;
    stats.jobs = 1;
    stats.decisions = authority_->decisions();
    stats.bags = bags_;
    stats.elements = elements_;
    stats.hoisted_reuses = reuses_;
    stats.peak_buffered_bytes = peak_buffered_bytes_;
    for (const dataflow::LogicalNode& node : graph_.nodes) {
      double cpu = op_cpu_[static_cast<size_t>(node.id)];
      if (cpu > 0) stats.operator_cpu[node.name] += cpu;
    }
    const sim::ClusterMetrics& after = cluster_->metrics();
    stats.cluster.messages = after.messages - before.messages;
    stats.cluster.network_bytes = after.network_bytes - before.network_bytes;
    stats.cluster.local_bytes = after.local_bytes - before.local_bytes;
    stats.cluster.disk_bytes = after.disk_bytes - before.disk_bytes;
    stats.cluster.cpu_seconds = after.cpu_seconds - before.cpu_seconds;
    stats.cluster.dropped_messages =
        after.dropped_messages - before.dropped_messages;
    stats.recomputed_bags = recomputed_bags_;
    stats.replayed_bags = replayed_bags_;
    stats.checkpoints = checkpoints_;
    stats.template_hits = template_hits_;
    stats.template_misses = template_misses_;
    stats.template_invalidations = authority_->template_invalidations();

    if (obs::TraceRecorder* tr = trace()) {
      int lane = tr->Lane(obs::kEnginePid, "jobs");
      tr->Span(obs::kEnginePid, lane, "launch", "job", t_start,
               t_start + launch, {{"machines", machines}});
      tr->Span(obs::kEnginePid, lane, "job", "job", t_start, t_end,
               {{"operators", graph_.num_nodes()},
                {"decisions", stats.decisions},
                {"bags", stats.bags}});
    }
    if (obs::MetricsRegistry* mr = options_.metrics) {
      mr->Inc("jobs");
      mr->Inc("bags", bags_);
      mr->Inc("elements", elements_);
      mr->Inc("hoisted_reuses", reuses_);
      if (templates_on_) {
        mr->Inc("step_template_hits", template_hits_);
        mr->Inc("step_template_misses", template_misses_);
        mr->Inc("step_template_invalidations",
                stats.template_invalidations);
      }
      mr->Observe("job_launch_seconds", launch);
      mr->Observe("job_seconds", stats.total_seconds);
    }
    if (snapshots_ != nullptr) snapshots_->OnRunEnd(t_end);
    MITOS_VLOG(1) << "job done: " << stats.ToString();
    return stats;
  }

  // ----- RuntimeContext -----
  sim::Cluster* cluster() override { return cluster_; }
  sim::SimFileSystem* fs() override { return fs_; }
  const dataflow::LogicalGraph& graph() const override { return graph_; }
  const ir::Cfg& cfg() const override { return cfg_; }
  bool hoisting() const override { return options_.hoisting; }
  bool blocking_shuffles() const override {
    return options_.blocking_shuffles;
  }
  bool step_templates() const override { return templates_on_; }
  bool validate_templates() const override {
    return options_.validate_templates;
  }
  void CountTemplateHit(dataflow::NodeId node, int instance,
                        int path_len) override {
    ++template_hits_;
    if (obs::live::EventLog* elog = options_.live.event_log) {
      elog->Append(sim_->now(), "template_hit",
                   {{"node", graph_.node(node).name},
                    {"instance", instance},
                    {"path_len", path_len}});
    }
  }
  void CountTemplateMiss() override { ++template_misses_; }
  obs::TraceRecorder* trace() const override {
    return options_.trace != nullptr ? options_.trace : cluster_->trace();
  }

  BagOperatorHost* host(dataflow::NodeId node, int instance) override {
    return hosts_[static_cast<size_t>(node)][static_cast<size_t>(instance)]
        .get();
  }

  int MachineOf(dataflow::NodeId node, int instance) const override {
    const dataflow::LogicalNode& n = graph_.node(node);
    if (n.parallelism == 1) {
      // Spread singleton (control-flow spine) operators across machines.
      return node % cluster_->num_machines();
    }
    return instance % cluster_->num_machines();
  }

  void OnDecision(ir::BlockId block, int path_len, bool value,
                  int machine) override {
    if (failed()) return;
    authority_->OnDecision(block, path_len, value, machine);
  }

  void Fail(Status status) override {
    if (status_.ok()) status_ = std::move(status);
  }
  bool failed() const override { return !status_.ok(); }

  void BeginFileWrite(const std::string& filename, BagId bag) override {
    auto it = file_writers_.find(filename);
    if (it == file_writers_.end() || !(it->second == bag)) {
      // First partition of this output bag: overwrite semantics.
      fs_->Remove(filename);
      file_writers_[filename] = bag;
      file_partitions_[filename] = graph_.node(bag.node).parallelism;
    }
  }

  void AppendOutput(const std::string& filename, int instance, int bag_len,
                    const DatumVector& data) override {
    // Stage partitions and flush the whole file at once, each partition
    // sorted, partitions in instance order. This canonicalizes the
    // within-partition element order (which chunk arrival order — and
    // therefore pipelining and recovery replay — would otherwise leak
    // into the output), making recovered runs byte-identical to
    // fault-free ones. Bags are unordered, so any fixed order is valid.
    StagedFile& sf = staged_files_[filename];
    if (bag_len > sf.bag_len) {
      // A newer output bag for this file supersedes anything staged.
      sf.bag_len = bag_len;
      sf.parts.clear();
    } else if (bag_len < sf.bag_len) {
      return;  // stale straggler partition of an already-superseded bag
    }
    DatumVector sorted = data;
    std::sort(sorted.begin(), sorted.end());
    sf.parts[instance] = std::move(sorted);
    if (static_cast<int>(sf.parts.size()) < file_partitions_[filename]) {
      return;
    }
    DatumVector combined;
    for (auto& [inst, part] : sf.parts) {
      combined.insert(combined.end(), part.begin(), part.end());
    }
    fs_->Remove(filename);
    fs_->Append(filename, combined);
    sf.parts.clear();  // keep sf.bag_len: guards against stale partitions
  }

  void CountBag(int64_t elements_in) override {
    ++bags_;
    elements_ += elements_in;
    if (options_.metrics != nullptr) {
      options_.metrics->Observe("bag_elements",
                                static_cast<double>(elements_in));
    }
  }

  void CountReuse() override { ++reuses_; }

  void TrackMemory(int64_t delta_bytes) override {
    buffered_bytes_ += delta_bytes;
    peak_buffered_bytes_ = std::max(peak_buffered_bytes_, buffered_bytes_);
    if (obs::TraceRecorder* tr = trace()) {
      tr->Counter(obs::kEnginePid, "buffered_bytes", sim_->now(),
                  static_cast<double>(buffered_bytes_));
    }
  }
  bool discard_spent_bags() const override {
    return options_.discard_spent_bags;
  }

  void ChargeOpCpu(dataflow::NodeId node, double seconds) override {
    op_cpu_[static_cast<size_t>(node)] += seconds;
  }

  bool IsReplayBag(dataflow::NodeId node, int instance,
                   int path_len) const override {
    return recovery_ != nullptr &&
           recovery_->IsReplay(BagKey{node, instance, path_len});
  }

  void OnBagFinished(dataflow::NodeId node, int instance, int path_len,
                     bool replay) override {
    if (recovery_ == nullptr) return;
    const BagKey key{node, instance, path_len};
    const int machine = MachineOf(node, instance);
    recovery_->OnBagFinished(key, machine, cluster_->machine_epoch(machine));
    if (replay) {
      ++replayed_bags_;
    } else if (attempt_ > 1 && recovery_->WasLost(key)) {
      ++recomputed_bags_;
    }
  }

  void NoteProgress() override { last_progress_ = sim_->now(); }

  // Counters the attempt loop accumulates across failed attempts.
  int64_t recomputed_bags() const { return recomputed_bags_; }
  int64_t replayed_bags() const { return replayed_bags_; }
  int checkpoints() const { return checkpoints_; }
  int64_t template_hits() const { return template_hits_; }
  int64_t template_misses() const { return template_misses_; }
  int64_t template_invalidations() const {
    return authority_ != nullptr ? authority_->template_invalidations() : 0;
  }

 private:
  bool JobDone() const {
    if (!path_.complete()) return false;
    for (const auto& instances : hosts_) {
      for (const auto& host : instances) {
        if (!host->Idle()) return false;
      }
    }
    return true;
  }

  void MonitorTick() {
    if (failed() || JobDone()) return;  // chain ends; queue can drain
    const double now = sim_->now();
    obs::live::EventLog* elog = options_.live.event_log;
    for (int m = 0; m < cluster_->num_machines(); ++m) {
      if (!cluster_->machine_up(m) &&
          now - cluster_->machine_down_since(m) >=
              faults_->heartbeat_timeout) {
        if (elog != nullptr) {
          elog->Append(now, "fault",
                       {{"what", "machine_lost"},
                        {"machine", m},
                        {"down_for",
                         now - cluster_->machine_down_since(m)}});
        }
        Fail(Status::Unavailable(
            "machine " + std::to_string(m) + " lost (no heartbeat for " +
            std::to_string(now - cluster_->machine_down_since(m)) + "s)"));
        return;
      }
    }
    if (now - last_progress_ > faults_->stall_timeout) {
      if (elog != nullptr) {
        elog->Append(now, "fault",
                     {{"what", "attempt_stalled"},
                      {"silent_for", now - last_progress_}});
      }
      Fail(Status::Unavailable(
          "attempt stalled: no delivery or completed work for " +
          std::to_string(now - last_progress_) + "s"));
      return;
    }
    sim_->ScheduleBackgroundAfter(faults_->heartbeat_interval,
                                  [this] { MonitorTick(); });
  }

  // Background snapshot cadence; the chain ends at job completion (or
  // failure) so the simulator's queue can drain.
  void SnapshotTick() {
    sim_->ScheduleBackgroundAfter(
        options_.live.snapshots.every_virtual_seconds, [this] {
          if (failed() || JobDone()) return;
          snapshots_->OnTimerTick(sim_->now());
          SnapshotTick();
        });
  }

  // Fired by the path authority at every broadcast (step_index = the
  // completed 0-based decision, -1 for the initial path seed).
  void OnLiveStep(int step, bool initial) {
    const double now = sim_->now();
    if (snapshots_ != nullptr && !initial &&
        options_.live.snapshots.at_step_boundaries) {
      snapshots_->OnStepBoundary(now, step);
    }
    if (watchdog_ != nullptr) {
      watchdog_->OnStepCompleted(now, initial ? -1 : step);
    }
    if (options_.live.progress) {
      obs::live::Progress p;
      p.virtual_time = now;
      p.step = step;
      p.path_len = path_.size();
      p.attempt = attempt_;
      p.template_hits = template_hits_;
      p.template_misses = template_misses_;
      p.faults_seen = options_.live.event_log != nullptr
                          ? options_.live.event_log->CountKind("fault")
                          : 0;
      p.complete = path_.complete();
      options_.live.progress(p);
    }
  }

  // Every k-th control-flow decision: everything finished so far becomes
  // durable, charging one bulk disk write per machine for the currently
  // buffered state.
  void OnCheckpoint() {
    if (recovery_ == nullptr || failed()) return;
    recovery_->MarkAllDurable();
    ++checkpoints_;
    const int machines = cluster_->num_machines();
    const size_t per_machine =
        static_cast<size_t>(std::max<int64_t>(buffered_bytes_, 0)) /
            static_cast<size_t>(machines) +
        1;
    for (int m = 0; m < machines; ++m) {
      cluster_->DiskIo(m, per_machine, [] {});
    }
    if (obs::TraceRecorder* tr = trace()) {
      tr->Instant(obs::kEnginePid, tr->Lane(obs::kEnginePid, "recovery"),
                  "checkpoint", "fault", sim_->now(),
                  {{"decisions", authority_->decisions()},
                   {"bytes", static_cast<int64_t>(per_machine) * machines}});
    }
    if (obs::live::EventLog* elog = options_.live.event_log) {
      elog->Append(sim_->now(), "checkpoint",
                   {{"decisions", authority_->decisions()},
                    {"bytes", static_cast<int64_t>(per_machine) * machines}});
    }
    if (options_.metrics != nullptr) options_.metrics->Inc("checkpoints");
  }

  std::string StuckHosts() const {
    std::string out;
    int listed = 0;
    for (const auto& instances : hosts_) {
      for (const auto& host : instances) {
        if (host->Idle()) continue;
        if (++listed > 8) return out + "  ...\n";
        out += "  " + host->DebugState() + "\n";
      }
    }
    return out;
  }

  sim::Simulator* sim_;
  sim::Cluster* cluster_;
  sim::SimFileSystem* fs_;
  const ir::Program& program_;
  const dataflow::LogicalGraph& graph_;
  ExecutorOptions options_;
  ir::Cfg cfg_;
  // The single true execution path; written by the authority, viewed (with
  // per-machine lag) by every ControlFlowManager.
  ExecutionPath path_;

  std::vector<std::unique_ptr<ControlFlowManager>> managers_;
  std::vector<ControlFlowManager*> manager_ptrs_;
  std::unique_ptr<PathAuthority> authority_;
  std::vector<std::vector<std::unique_ptr<BagOperatorHost>>> hosts_;

  // Live observability (null when the plane is off; see obs/live/).
  std::unique_ptr<obs::live::SnapshotWriter> snapshots_;
  std::unique_ptr<obs::live::StepWatchdog> watchdog_;

  Status status_;
  int64_t bags_ = 0;
  int64_t elements_ = 0;
  int64_t reuses_ = 0;
  int64_t buffered_bytes_ = 0;
  int64_t peak_buffered_bytes_ = 0;
  std::vector<double> op_cpu_;
  std::map<std::string, BagId> file_writers_;
  std::map<std::string, int> file_partitions_;

  // Staged writeFile partitions (see AppendOutput).
  struct StagedFile {
    int bag_len = -1;
    std::map<int, DatumVector> parts;  // instance -> sorted partition
  };
  std::map<std::string, StagedFile> staged_files_;

  // Fault handling (inert when faults_ == nullptr).
  const sim::FaultPlan* faults_ = nullptr;
  FaultRecoveryState* recovery_ = nullptr;
  int attempt_ = 1;
  double last_progress_ = 0;
  int64_t recomputed_bags_ = 0;
  int64_t replayed_bags_ = 0;
  int checkpoints_ = 0;
  // Step-template tallies (fed by the hosts through RuntimeContext).
  // templates_on_ is options_.step_templates resolved against the fault
  // plan (replay is disabled wholesale under fault injection).
  bool templates_on_ = false;
  int64_t template_hits_ = 0;
  int64_t template_misses_ = 0;
};

}  // namespace

StatusOr<RunStats> ExecuteJob(sim::Simulator* sim, sim::Cluster* cluster,
                              sim::SimFileSystem* fs,
                              const ir::Program& program,
                              const dataflow::LogicalGraph& graph,
                              const ExecutorOptions& options) {
  if (options.faults == nullptr) {
    Job job(sim, cluster, fs, program, graph, options);
    return job.Execute();
  }

  // Attempt loop: a failed attempt (machine lost, stalled, broadcast
  // unacknowledged — all Status kUnavailable) is discarded, the loop waits
  // for every machine to be back up, folds the attempt's finished bags
  // into the recovery ledger, and re-executes; surviving bags replay at
  // zero cost. Everything is deterministic, so a given fault plan always
  // yields the same attempt sequence and the same final results.
  const sim::FaultPlan& plan = *options.faults;
  const sim::ClusterMetrics before = cluster->metrics();
  FaultRecoveryState recovery;
  const double first_start = sim->now();
  Status last_error = Status::Unavailable("no attempt ran");
  int64_t recomputed = 0;
  int64_t replayed = 0;
  int checkpoints = 0;
  int64_t template_hits = 0;
  int64_t template_misses = 0;
  int64_t template_invalidations = 0;
  for (int attempt = 1; attempt <= plan.max_attempts; ++attempt) {
    if (attempt > 1) {
      recovery.BeginNextAttempt(
          [cluster](int m) { return cluster->machine_epoch(m); });
      // Wait (in virtual time) until every machine is back up.
      double resume = sim->now();
      for (int m = 0; m < cluster->num_machines(); ++m) {
        resume = std::max(resume, cluster->machine_up_time(m));
      }
      if (!std::isfinite(resume)) return last_error;  // gone for good
      if (resume > sim->now()) {
        sim->Schedule(resume, [] {});
        sim->Run();
      }
      if (options.trace != nullptr) {
        int lane = options.trace->Lane(obs::kEnginePid, "recovery");
        options.trace->Instant(obs::kEnginePid, lane, "recovery-start",
                               "fault", sim->now(),
                               {{"attempt", attempt},
                                {"survivors", recovery.num_survivors()},
                                {"durable", recovery.num_durable()}});
      }
      if (options.live.event_log != nullptr) {
        options.live.event_log->Append(
            sim->now(), "recovery",
            {{"attempt", attempt},
             {"survivors", recovery.num_survivors()},
             {"durable", recovery.num_durable()}});
      }
    }
    const double attempt_start = sim->now();
    Job job(sim, cluster, fs, program, graph, options, &recovery, attempt);
    StatusOr<RunStats> result = job.Execute();
    if (result.ok()) {
      RunStats stats = std::move(*result);
      stats.attempts = attempt;
      stats.recovery_seconds = attempt_start - first_start;
      stats.total_seconds += attempt_start - first_start;
      stats.recomputed_bags += recomputed;
      stats.replayed_bags += replayed;
      stats.checkpoints += checkpoints;
      stats.template_hits += template_hits;
      stats.template_misses += template_misses;
      stats.template_invalidations += template_invalidations;
      // Resource deltas span every attempt (wasted work is real work).
      const sim::ClusterMetrics& after = cluster->metrics();
      stats.cluster.messages = after.messages - before.messages;
      stats.cluster.network_bytes =
          after.network_bytes - before.network_bytes;
      stats.cluster.local_bytes = after.local_bytes - before.local_bytes;
      stats.cluster.disk_bytes = after.disk_bytes - before.disk_bytes;
      stats.cluster.cpu_seconds = after.cpu_seconds - before.cpu_seconds;
      stats.cluster.dropped_messages =
          after.dropped_messages - before.dropped_messages;
      if (options.metrics != nullptr) {
        options.metrics->Set("attempts", static_cast<double>(attempt));
        options.metrics->Set("recovery_seconds", stats.recovery_seconds);
        options.metrics->Set("recomputed_bags",
                             static_cast<double>(stats.recomputed_bags));
        options.metrics->Set("replayed_bags",
                             static_cast<double>(stats.replayed_bags));
      }
      return stats;
    }
    if (result.status().code() != StatusCode::kUnavailable) {
      return result.status();  // genuine error: retrying would not help
    }
    last_error = result.status();
    recomputed += job.recomputed_bags();
    replayed += job.replayed_bags();
    checkpoints += job.checkpoints();
    template_hits += job.template_hits();
    template_misses += job.template_misses();
    template_invalidations += job.template_invalidations();
    MITOS_VLOG(1) << "attempt " << attempt
                  << " failed: " << last_error.ToString();
    if (options.trace != nullptr) {
      int lane = options.trace->Lane(obs::kEnginePid, "recovery");
      options.trace->Instant(
          obs::kEnginePid, lane, "attempt-failed", "fault", sim->now(),
          {{"attempt", attempt}, {"error", last_error.message()}});
    }
    if (options.live.event_log != nullptr) {
      options.live.event_log->Append(
          sim->now(), "fault",
          {{"what", "attempt_failed"},
           {"attempt", attempt},
           {"error", last_error.message()}});
    }
  }
  return last_error;
}

MitosExecutor::MitosExecutor(sim::Simulator* sim, sim::Cluster* cluster,
                             sim::SimFileSystem* fs, ExecutorOptions options)
    : sim_(sim), cluster_(cluster), fs_(fs), options_(options) {}

StatusOr<RunStats> MitosExecutor::Run(const lang::Program& program) {
  StatusOr<ir::Program> ir_program = ir::CompileToIr(program);
  if (!ir_program.ok()) return ir_program.status();
  return RunIr(*ir_program);
}

StatusOr<RunStats> MitosExecutor::RunIr(const ir::Program& program) {
  MITOS_RETURN_IF_ERROR(ir::Verify(program));
  ir::Program optimized = program;
  if (options_.dead_code_elimination) {
    StatusOr<ir::DceResult> pruned = ir::EliminateDeadCode(optimized);
    if (!pruned.ok()) return pruned.status();
    optimized = std::move(pruned->program);
    MITOS_RETURN_IF_ERROR(ir::Verify(optimized));
  }
  if (options_.operator_fusion) {
    StatusOr<ir::FusionResult> fused = ir::FuseElementwise(optimized);
    if (!fused.ok()) return fused.status();
    optimized = std::move(fused->program);
    MITOS_RETURN_IF_ERROR(ir::Verify(optimized));
  }
  StatusOr<TranslateResult> translated =
      Translate(optimized, cluster_->num_machines());
  if (!translated.ok()) return translated.status();
  return ExecuteJob(sim_, cluster_, fs_, optimized, translated->graph,
                    options_);
}

}  // namespace mitos::runtime
