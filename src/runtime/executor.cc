#include "runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "ir/cfg.h"
#include "ir/dce.h"
#include "ir/fusion.h"
#include "ir/ssa.h"
#include "ir/verify.h"
#include "obs/live/snapshot.h"
#include "obs/live/watchdog.h"
#include "runtime/host.h"
#include "runtime/recovery.h"
#include "runtime/translator.h"

namespace mitos::runtime {

std::string RunStats::ToString() const {
  std::ostringstream out;
  out << "time=" << total_seconds << "s jobs=" << jobs
      << " decisions=" << decisions << " bags=" << bags
      << " elements=" << elements << " chunks=" << chunks
      << " net=" << cluster.network_bytes
      << "B msgs=" << cluster.messages << " disk=" << cluster.disk_bytes
      << "B cpu=" << cluster.cpu_seconds << "s";
  // Fault fields only when something actually went wrong (or was durably
  // checkpointed), so fault-free stats lines are unchanged.
  if (attempts > 1) {
    out << " attempts=" << attempts << " recovery=" << recovery_seconds
        << "s recomputed=" << recomputed_bags
        << " replayed=" << replayed_bags;
  }
  if (checkpoints > 0) out << " ckpt=" << checkpoints;
  // Template fields only when the cache did anything, so template-off
  // stats lines are unchanged.
  if (template_hits > 0 || template_invalidations > 0) {
    out << " tmpl_hits=" << template_hits
        << " tmpl_miss=" << template_misses
        << " tmpl_inval=" << template_invalidations;
  }
  if (cluster.dropped_messages > 0) {
    out << " dropped=" << cluster.dropped_messages;
  }
  return out.str();
}

namespace {

// One job execution: owns hosts, managers, and the authority.
//
// Thread-safety: on the DES backend everything runs on one host thread and
// the synchronization below is free of contention. On real-parallel
// backends the RuntimeContext methods are called from machine worker
// threads, so the shared tallies are atomics, the file/staging maps and the
// status are mutex-guarded, and control-flow decisions serialize through
// control_mu_ (consecutive decisions may arrive from different machines;
// the mutex publishes each decision's authority-state writes to the next).
class Job : public RuntimeContext {
 public:
  Job(Backend* backend, sim::SimFileSystem* fs, const ir::Program& program,
      const dataflow::LogicalGraph& graph, const ExecutorOptions& options,
      obs::live::StepWatchdog* watchdog = nullptr,
      FaultRecoveryState* recovery = nullptr, int attempt = 1)
      : backend_(backend),
        fs_(fs),
        program_(program),
        graph_(graph),
        options_(options),
        cfg_(program) {
    faults_ = options.faults;
    watchdog_ = watchdog;
    recovery_ = recovery;
    attempt_ = attempt;
    // Fault injection disables template replay wholesale: recovery depends
    // on full-fidelity control messages and freshly derived step state, and
    // every attempt starts with a cold cache anyway. Faulted runs are
    // therefore event-identical to step_templates=false (regression-tested
    // in tests/runtime/step_template_test.cc).
    templates_on_ = options.step_templates && faults_ == nullptr;
  }

  StatusOr<RunStats> Execute() {
    const int machines = backend_->num_machines();
    const sim::ClusterMetrics before = backend_->MetricsSnapshot();
    double t_start = backend_->now();

    // Attach the recorder to the backend so resource spans (cores, NICs,
    // disks) are captured; keep an already-attached recorder (api::Run
    // attaches it before any baseline engine launches its jobs).
    if (options_.trace != nullptr && backend_->trace() == nullptr) {
      backend_->set_trace(options_.trace);
    }
    if (obs::TraceRecorder* tr = trace()) {
      tr->SetProcessName(obs::kEnginePid, "engine");
      for (int m = 0; m < machines; ++m) {
        tr->SetProcessName(obs::MachinePid(m), "machine" + std::to_string(m));
      }
    }
    MITOS_VLOG(1) << "job start: " << graph_.num_nodes() << " operators on "
                  << machines << " machines"
                  << (options_.pipelining ? "" : ", superstep barriers");

    // Per-machine control flow managers over the shared path storage.
    PathAuthority::Options auth_options;
    auth_options.pipelining = options_.pipelining;
    auth_options.decision_overhead = options_.decision_overhead;
    auth_options.max_path_len = options_.max_path_len;
    auth_options.step_templates = templates_on_;
    auth_options.trace = trace();
    auth_options.metrics = options_.metrics;
    auth_options.elements_probe = [this] { return elements_.load(); };
    auth_options.faults = faults_;
    if (faults_ != nullptr && faults_->checkpoint_every > 0) {
      auth_options.on_checkpoint = [this] { OnCheckpoint(); };
    }

    // Live observability plane (obs/live/). All hooks are observational
    // and the periodic machinery (snapshot cadence, watchdog checks) runs
    // on background simulator timers — it exists only on the DES backend,
    // where it leaves the foreground schedule (and therefore the run's
    // virtual-time behavior) untouched.
    obs::live::EventLog* elog = options_.live.event_log;
    if (elog != nullptr) {
      auth_options.event_log = elog;
      if (backend_->event_log() == nullptr) backend_->set_event_log(elog);
    }
    if (options_.live.any()) {
      auth_options.on_step = [this](int step, bool initial) {
        OnLiveStep(step, initial);
      };
    }
    if (elog != nullptr && options_.metrics != nullptr &&
        options_.live.snapshots.enabled &&
        backend_->simulator() != nullptr) {
      snapshots_ = std::make_unique<obs::live::SnapshotWriter>(
          options_.metrics, elog, options_.live.snapshots);
    }
    if (watchdog_ != nullptr) {
      // The watchdog is run-scoped (one instance across the attempt loop,
      // so max_reports caps the whole run); each attempt resets its gap
      // window — pre-fault cadence must not leak into the re-execution —
      // and rewires the probes to this attempt's state.
      watchdog_->OnAttemptStart();
      watchdog_->set_quiescent([this] { return failed() || JobDone(); });
      watchdog_->set_diagnose([this] { return StuckHosts(); });
    }

    managers_.clear();
    manager_ptrs_.clear();
    for (int m = 0; m < machines; ++m) {
      managers_.push_back(std::make_unique<ControlFlowManager>(&path_));
      manager_ptrs_.push_back(managers_.back().get());
    }
    authority_ = std::make_unique<PathAuthority>(
        &program_, backend_, &path_, manager_ptrs_, auth_options,
        [this](Status s) { Fail(std::move(s)); });

    // Hosts: one per (node, instance).
    hosts_.clear();
    hosts_.resize(static_cast<size_t>(graph_.num_nodes()));
    op_cpu_ = std::make_unique<std::atomic<double>[]>(
        static_cast<size_t>(graph_.num_nodes()));
    for (const dataflow::LogicalNode& node : graph_.nodes) {
      auto& instances = hosts_[static_cast<size_t>(node.id)];
      for (int i = 0; i < node.parallelism; ++i) {
        int machine = MachineOf(node.id, i);
        instances.push_back(std::make_unique<BagOperatorHost>(
            this, &graph_.node(node.id), i, machine,
            manager_ptrs_[static_cast<size_t>(machine)]));
      }
    }
    for (auto& instances : hosts_) {
      for (auto& host : instances) host->Init();
    }

    // Job launch: the coordinator deploys tasks serially across machines.
    double launch =
        options_.launch_base + options_.launch_per_machine * machines;
    backend_->ScheduleAfter(launch, [this] {
      if (!failed()) authority_->Start(/*machine=*/0);
    });

    // Failure detection: a background heartbeat tick declares the attempt
    // lost when a machine stays down or progress stalls. DES-only (the
    // authority rejects fault plans on real-parallel backends).
    if (faults_ != nullptr) {
      last_progress_ = backend_->now();
      MonitorTick();
    }

    // Periodic snapshot cadence (every K virtual seconds, on top of the
    // per-step-boundary snapshots OnLiveStep emits).
    if (snapshots_ != nullptr &&
        options_.live.snapshots.every_virtual_seconds > 0) {
      SnapshotTick();
    }

    backend_->Run();

    {
      std::lock_guard<std::mutex> lock(status_mu_);
      if (!status_.ok()) return status_;
    }

    // The job must have drained cleanly: path complete, all hosts idle.
    if (!authority_->path().complete()) {
      if (faults_ != nullptr) {
        return Status::Unavailable("attempt drained before path completion");
      }
      return Status::Internal("job did not complete: path " +
                              authority_->path().ToString() + "\n" +
                              StuckHosts());
    }
    std::string stuck = StuckHosts();
    if (!stuck.empty()) {
      if (faults_ != nullptr) {
        // A crash during the final control-flow step can leave peers
        // waiting on in-flight chunks that died with the machine: the
        // path is complete, no further broadcast will time out, and the
        // queue simply drains. That is a lost attempt, not a bug — hand
        // it to the attempt loop like any other faulted drain.
        return Status::Unavailable(
            "attempt drained with unfinished operators:\n" + stuck);
      }
      return Status::Internal("job drained with unfinished operators:\n" +
                              stuck);
    }

    RunStats stats;
    // Under fault handling or live observability, trailing background
    // timers (heartbeats, ack timeouts, watchdog checks, snapshot ticks)
    // may outlive the real work; busy_until() is when the last foreground
    // event ran. Without background events busy_until() == now(), so this
    // never changes a plain run's reported time.
    const bool background_timers = faults_ != nullptr ||
                                   watchdog_ != nullptr ||
                                   snapshots_ != nullptr;
    const double t_end = background_timers
                             ? std::max(t_start, backend_->busy_until())
                             : backend_->now();
    stats.total_seconds = t_end - t_start;
    stats.launch_seconds = launch;
    stats.jobs = 1;
    stats.decisions = authority_->decisions();
    stats.bags = bags_.load();
    stats.elements = elements_.load();
    stats.chunks = chunks_.load();
    stats.chunk_fallbacks = chunk_fallbacks_.load();
    stats.hoisted_reuses = reuses_.load();
    stats.peak_buffered_bytes = peak_buffered_bytes_.load();
    for (const dataflow::LogicalNode& node : graph_.nodes) {
      double cpu = op_cpu_[static_cast<size_t>(node.id)].load();
      if (cpu > 0) stats.operator_cpu[node.name] += cpu;
    }
    const sim::ClusterMetrics after = backend_->MetricsSnapshot();
    stats.cluster.messages = after.messages - before.messages;
    stats.cluster.network_bytes = after.network_bytes - before.network_bytes;
    stats.cluster.local_bytes = after.local_bytes - before.local_bytes;
    stats.cluster.disk_bytes = after.disk_bytes - before.disk_bytes;
    stats.cluster.cpu_seconds = after.cpu_seconds - before.cpu_seconds;
    stats.cluster.dropped_messages =
        after.dropped_messages - before.dropped_messages;
    stats.recomputed_bags = recomputed_bags_.load();
    stats.replayed_bags = replayed_bags_.load();
    stats.checkpoints = checkpoints_;
    stats.template_hits = template_hits_.load();
    stats.template_misses = template_misses_.load();
    stats.template_invalidations = authority_->template_invalidations();

    if (obs::TraceRecorder* tr = trace()) {
      int lane = tr->Lane(obs::kEnginePid, "jobs");
      tr->Span(obs::kEnginePid, lane, "launch", "job", t_start,
               t_start + launch, {{"machines", machines}});
      tr->Span(obs::kEnginePid, lane, "job", "job", t_start, t_end,
               {{"operators", graph_.num_nodes()},
                {"decisions", stats.decisions},
                {"bags", stats.bags}});
    }
    if (obs::MetricsRegistry* mr = options_.metrics) {
      mr->Inc("jobs");
      mr->Inc("bags", stats.bags);
      mr->Inc("elements", stats.elements);
      mr->Inc("chunks", stats.chunks);
      mr->Inc("chunk_fallback", stats.chunk_fallbacks);
      mr->Inc("hoisted_reuses", stats.hoisted_reuses);
      if (templates_on_) {
        mr->Inc("step_template_hits", stats.template_hits);
        mr->Inc("step_template_misses", stats.template_misses);
        mr->Inc("step_template_invalidations",
                stats.template_invalidations);
      }
      mr->Observe("job_launch_seconds", launch);
      mr->Observe("job_seconds", stats.total_seconds);
    }
    if (snapshots_ != nullptr) snapshots_->OnRunEnd(t_end);
    MITOS_VLOG(1) << "job done: " << stats.ToString();
    return stats;
  }

  // ----- RuntimeContext -----
  Backend* backend() override { return backend_; }
  sim::SimFileSystem* fs() override { return fs_; }
  const dataflow::LogicalGraph& graph() const override { return graph_; }
  const ir::Cfg& cfg() const override { return cfg_; }
  bool hoisting() const override { return options_.hoisting; }
  bool blocking_shuffles() const override {
    return options_.blocking_shuffles;
  }
  bool step_templates() const override { return templates_on_; }
  bool validate_templates() const override {
    return options_.validate_templates;
  }
  void CountTemplateHit(dataflow::NodeId node, int instance,
                        int path_len) override {
    template_hits_.fetch_add(1, std::memory_order_relaxed);
    if (obs::live::EventLog* elog = options_.live.event_log) {
      elog->Append(backend_->now(), "template_hit",
                   {{"node", graph_.node(node).name},
                    {"instance", instance},
                    {"path_len", path_len}});
    }
  }
  void CountTemplateMiss() override {
    template_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  obs::TraceRecorder* trace() const override {
    return options_.trace != nullptr ? options_.trace : backend_->trace();
  }

  BagOperatorHost* host(dataflow::NodeId node, int instance) override {
    return hosts_[static_cast<size_t>(node)][static_cast<size_t>(instance)]
        .get();
  }

  int MachineOf(dataflow::NodeId node, int instance) const override {
    const dataflow::LogicalNode& n = graph_.node(node);
    if (n.parallelism == 1) {
      // Spread singleton (control-flow spine) operators across machines.
      return node % backend_->num_machines();
    }
    return instance % backend_->num_machines();
  }

  void OnDecision(ir::BlockId block, int path_len, bool value,
                  int machine) override {
    // Decisions are serialized by path order, but consecutive decisions
    // arrive from different machine threads on real-parallel backends; the
    // mutex publishes each decision's authority-state writes to the next.
    // Never reentered on one thread: condition evaluation always reaches
    // this through an ExecCpu completion, which is asynchronous on every
    // backend.
    std::lock_guard<std::mutex> lock(control_mu_);
    if (failed()) return;
    authority_->OnDecision(block, path_len, value, machine);
  }

  void Fail(Status status) override {
    std::lock_guard<std::mutex> lock(status_mu_);
    if (status_.ok()) {
      status_ = std::move(status);
      failed_.store(true, std::memory_order_release);
    }
  }
  bool failed() const override {
    return failed_.load(std::memory_order_acquire);
  }

  void BeginFileWrite(const std::string& filename, BagId bag) override {
    std::lock_guard<std::mutex> lock(file_mu_);
    auto it = file_writers_.find(filename);
    if (it == file_writers_.end() || !(it->second == bag)) {
      // First partition of this output bag: overwrite semantics.
      fs_->Remove(filename);
      file_writers_[filename] = bag;
      file_partitions_[filename] = graph_.node(bag.node).parallelism;
    }
  }

  void AppendOutput(const std::string& filename, int instance, int bag_len,
                    const DatumVector& data) override {
    // Stage partitions and flush the whole file at once, each partition
    // sorted, partitions in instance order. This canonicalizes the
    // within-partition element order (which chunk arrival order — and
    // therefore pipelining, recovery replay, and real-parallel thread
    // interleaving — would otherwise leak into the output), making
    // recovered runs byte-identical to fault-free ones and threads-backend
    // runs element-identical to DES runs. Bags are unordered, so any fixed
    // order is valid.
    std::lock_guard<std::mutex> lock(file_mu_);
    StagedFile& sf = staged_files_[filename];
    if (bag_len > sf.bag_len) {
      // A newer output bag for this file supersedes anything staged.
      sf.bag_len = bag_len;
      sf.parts.clear();
    } else if (bag_len < sf.bag_len) {
      return;  // stale straggler partition of an already-superseded bag
    }
    DatumVector sorted = data;
    std::sort(sorted.begin(), sorted.end());
    sf.parts[instance] = std::move(sorted);
    if (static_cast<int>(sf.parts.size()) < file_partitions_[filename]) {
      return;
    }
    DatumVector combined;
    for (auto& [inst, part] : sf.parts) {
      combined.insert(combined.end(), part.begin(), part.end());
    }
    fs_->Remove(filename);
    fs_->Append(filename, combined);
    sf.parts.clear();  // keep sf.bag_len: guards against stale partitions
  }

  void CountBag(int64_t elements_in) override {
    bags_.fetch_add(1, std::memory_order_relaxed);
    elements_.fetch_add(elements_in, std::memory_order_relaxed);
    if (options_.metrics != nullptr) {
      options_.metrics->Observe("bag_elements",
                                static_cast<double>(elements_in));
    }
  }

  void CountChunk(bool fallback) override {
    chunks_.fetch_add(1, std::memory_order_relaxed);
    if (fallback) chunk_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  bool columnar() const override { return options_.columnar; }

  void CountReuse() override {
    reuses_.fetch_add(1, std::memory_order_relaxed);
  }

  void TrackMemory(int64_t delta_bytes) override {
    const int64_t now_bytes =
        buffered_bytes_.fetch_add(delta_bytes, std::memory_order_relaxed) +
        delta_bytes;
    int64_t peak = peak_buffered_bytes_.load(std::memory_order_relaxed);
    while (now_bytes > peak &&
           !peak_buffered_bytes_.compare_exchange_weak(
               peak, now_bytes, std::memory_order_relaxed)) {
    }
    if (obs::TraceRecorder* tr = trace()) {
      tr->Counter(obs::kEnginePid, "buffered_bytes", backend_->now(),
                  static_cast<double>(now_bytes));
    }
  }
  bool discard_spent_bags() const override {
    return options_.discard_spent_bags;
  }

  void ChargeOpCpu(dataflow::NodeId node, double seconds) override {
    op_cpu_[static_cast<size_t>(node)].fetch_add(seconds,
                                                 std::memory_order_relaxed);
  }

  bool IsReplayBag(dataflow::NodeId node, int instance,
                   int path_len) const override {
    return recovery_ != nullptr &&
           recovery_->IsReplay(BagKey{node, instance, path_len});
  }

  void OnBagFinished(dataflow::NodeId node, int instance, int path_len,
                     bool replay) override {
    if (recovery_ == nullptr) return;  // implies a DES backend (see ctor)
    const BagKey key{node, instance, path_len};
    const int machine = MachineOf(node, instance);
    recovery_->OnBagFinished(key, machine,
                             backend_->cluster()->machine_epoch(machine));
    if (replay) {
      replayed_bags_.fetch_add(1, std::memory_order_relaxed);
    } else if (attempt_ > 1 && recovery_->WasLost(key)) {
      recomputed_bags_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void NoteProgress() override {
    last_progress_.store(backend_->now(), std::memory_order_relaxed);
  }

  // Counters the attempt loop accumulates across failed attempts.
  int64_t recomputed_bags() const { return recomputed_bags_.load(); }
  int64_t replayed_bags() const { return replayed_bags_.load(); }
  int checkpoints() const { return checkpoints_; }
  int64_t template_hits() const { return template_hits_.load(); }
  int64_t template_misses() const { return template_misses_.load(); }
  int64_t template_invalidations() const {
    return authority_ != nullptr ? authority_->template_invalidations() : 0;
  }

 private:
  bool JobDone() const {
    if (!path_.complete()) return false;
    for (const auto& instances : hosts_) {
      for (const auto& host : instances) {
        if (!host->Idle()) return false;
      }
    }
    return true;
  }

  void MonitorTick() {
    if (failed() || JobDone()) return;  // chain ends; queue can drain
    sim::Cluster* cluster = backend_->cluster();
    const double now = backend_->now();
    obs::live::EventLog* elog = options_.live.event_log;
    for (int m = 0; m < backend_->num_machines(); ++m) {
      if (!cluster->machine_up(m) &&
          now - cluster->machine_down_since(m) >=
              faults_->heartbeat_timeout) {
        if (elog != nullptr) {
          elog->Append(now, "fault",
                       {{"what", "machine_lost"},
                        {"machine", m},
                        {"down_for",
                         now - cluster->machine_down_since(m)}});
        }
        Fail(Status::Unavailable(
            "machine " + std::to_string(m) + " lost (no heartbeat for " +
            std::to_string(now - cluster->machine_down_since(m)) + "s)"));
        return;
      }
    }
    if (now - last_progress_.load() > faults_->stall_timeout) {
      if (elog != nullptr) {
        elog->Append(now, "fault",
                     {{"what", "attempt_stalled"},
                      {"silent_for", now - last_progress_.load()}});
      }
      Fail(Status::Unavailable(
          "attempt stalled: no delivery or completed work for " +
          std::to_string(now - last_progress_.load()) + "s"));
      return;
    }
    backend_->simulator()->ScheduleBackgroundAfter(
        faults_->heartbeat_interval, [this] { MonitorTick(); });
  }

  // Background snapshot cadence; the chain ends at job completion (or
  // failure) so the simulator's queue can drain.
  void SnapshotTick() {
    backend_->simulator()->ScheduleBackgroundAfter(
        options_.live.snapshots.every_virtual_seconds, [this] {
          if (failed() || JobDone()) return;
          snapshots_->OnTimerTick(backend_->now());
          SnapshotTick();
        });
  }

  // Fired by the path authority at every broadcast (step_index = the
  // completed 0-based decision, -1 for the initial path seed).
  void OnLiveStep(int step, bool initial) {
    const double now = backend_->now();
    if (snapshots_ != nullptr && !initial &&
        options_.live.snapshots.at_step_boundaries) {
      snapshots_->OnStepBoundary(now, step);
    }
    if (watchdog_ != nullptr) {
      watchdog_->OnStepCompleted(now, initial ? -1 : step);
    }
    if (options_.live.progress) {
      obs::live::Progress p;
      p.virtual_time = now;
      p.step = step;
      p.path_len = path_.size();
      p.attempt = attempt_;
      p.template_hits = template_hits_.load();
      p.template_misses = template_misses_.load();
      p.faults_seen = options_.live.event_log != nullptr
                          ? options_.live.event_log->CountKind("fault")
                          : 0;
      p.complete = path_.complete();
      options_.live.progress(p);
    }
  }

  // Every k-th control-flow decision: everything finished so far becomes
  // durable, charging one bulk disk write per machine for the currently
  // buffered state.
  void OnCheckpoint() {
    if (recovery_ == nullptr || failed()) return;
    recovery_->MarkAllDurable();
    ++checkpoints_;
    const int machines = backend_->num_machines();
    const size_t per_machine =
        static_cast<size_t>(std::max<int64_t>(buffered_bytes_.load(), 0)) /
            static_cast<size_t>(machines) +
        1;
    for (int m = 0; m < machines; ++m) {
      backend_->DiskIo(m, per_machine, [] {});
    }
    if (obs::TraceRecorder* tr = trace()) {
      tr->Instant(obs::kEnginePid, tr->Lane(obs::kEnginePid, "recovery"),
                  "checkpoint", "fault", backend_->now(),
                  {{"decisions", authority_->decisions()},
                   {"bytes", static_cast<int64_t>(per_machine) * machines}});
    }
    if (obs::live::EventLog* elog = options_.live.event_log) {
      elog->Append(backend_->now(), "checkpoint",
                   {{"decisions", authority_->decisions()},
                    {"bytes", static_cast<int64_t>(per_machine) * machines}});
    }
    if (options_.metrics != nullptr) options_.metrics->Inc("checkpoints");
  }

  std::string StuckHosts() const {
    std::string out;
    int listed = 0;
    for (const auto& instances : hosts_) {
      for (const auto& host : instances) {
        if (host->Idle()) continue;
        if (++listed > 8) return out + "  ...\n";
        out += "  " + host->DebugState() + "\n";
      }
    }
    return out;
  }

  Backend* backend_;
  sim::SimFileSystem* fs_;
  const ir::Program& program_;
  const dataflow::LogicalGraph& graph_;
  ExecutorOptions options_;
  ir::Cfg cfg_;
  // The single true execution path; written by the authority, viewed (with
  // per-machine lag) by every ControlFlowManager.
  ExecutionPath path_;

  std::vector<std::unique_ptr<ControlFlowManager>> managers_;
  std::vector<ControlFlowManager*> manager_ptrs_;
  std::unique_ptr<PathAuthority> authority_;
  std::vector<std::vector<std::unique_ptr<BagOperatorHost>>> hosts_;

  // Live observability (null when the plane is off; see obs/live/).
  // Snapshot cadence is per-attempt; the watchdog is run-scoped (owned by
  // ExecuteJob so its report budget spans the attempt loop).
  std::unique_ptr<obs::live::SnapshotWriter> snapshots_;
  obs::live::StepWatchdog* watchdog_ = nullptr;

  // Serializes control-flow decisions into the path authority.
  std::mutex control_mu_;
  // Guards status_; failed_ mirrors !status_.ok() for lock-free checks.
  mutable std::mutex status_mu_;
  Status status_;
  std::atomic<bool> failed_{false};

  std::atomic<int64_t> bags_{0};
  std::atomic<int64_t> elements_{0};
  std::atomic<int64_t> chunks_{0};
  std::atomic<int64_t> chunk_fallbacks_{0};
  std::atomic<int64_t> reuses_{0};
  std::atomic<int64_t> buffered_bytes_{0};
  std::atomic<int64_t> peak_buffered_bytes_{0};
  std::unique_ptr<std::atomic<double>[]> op_cpu_;

  // Guards the writeFile bookkeeping (writer registry + staged partitions).
  std::mutex file_mu_;
  std::map<std::string, BagId> file_writers_;
  std::map<std::string, int> file_partitions_;

  // Staged writeFile partitions (see AppendOutput).
  struct StagedFile {
    int bag_len = -1;
    std::map<int, DatumVector> parts;  // instance -> sorted partition
  };
  std::map<std::string, StagedFile> staged_files_;

  // Fault handling (inert when faults_ == nullptr; DES-only).
  const sim::FaultPlan* faults_ = nullptr;
  FaultRecoveryState* recovery_ = nullptr;
  int attempt_ = 1;
  std::atomic<double> last_progress_{0};
  std::atomic<int64_t> recomputed_bags_{0};
  std::atomic<int64_t> replayed_bags_{0};
  int checkpoints_ = 0;
  // Step-template tallies (fed by the hosts through RuntimeContext).
  // templates_on_ is options_.step_templates resolved against the fault
  // plan (replay is disabled wholesale under fault injection).
  bool templates_on_ = false;
  std::atomic<int64_t> template_hits_{0};
  std::atomic<int64_t> template_misses_{0};
};

}  // namespace

StatusOr<RunStats> ExecuteJob(Backend* backend, sim::SimFileSystem* fs,
                              const ir::Program& program,
                              const dataflow::LogicalGraph& graph,
                              const ExecutorOptions& options) {
  // Run-scoped watchdog: one instance spans the whole attempt loop, so its
  // stall-report budget (max_reports) caps the run, not each attempt. The
  // watchdog arms background simulator timers, so it is DES-only.
  std::unique_ptr<obs::live::StepWatchdog> watchdog;
  if (options.live.event_log != nullptr && options.live.watchdog.enabled &&
      backend->simulator() != nullptr) {
    watchdog = std::make_unique<obs::live::StepWatchdog>(
        backend->simulator(), options.live.event_log, options.live.watchdog);
  }

  if (options.faults == nullptr) {
    Job job(backend, fs, program, graph, options, watchdog.get());
    return job.Execute();
  }

  // Fault handling runs on the DES only: injection, machine epochs, and
  // the ack/retry protocol all live on the simulated cluster.
  sim::Simulator* sim = backend->simulator();
  sim::Cluster* cluster = backend->cluster();
  MITOS_CHECK(sim != nullptr && cluster != nullptr);

  // Attempt loop: a failed attempt (machine lost, stalled, broadcast
  // unacknowledged — all Status kUnavailable) is discarded, the loop waits
  // for every machine to be back up, folds the attempt's finished bags
  // into the recovery ledger, and re-executes; surviving bags replay at
  // zero cost. Everything is deterministic, so a given fault plan always
  // yields the same attempt sequence and the same final results.
  const sim::FaultPlan& plan = *options.faults;
  const sim::ClusterMetrics before = cluster->metrics();
  FaultRecoveryState recovery;
  const double first_start = sim->now();
  Status last_error = Status::Unavailable("no attempt ran");
  int64_t recomputed = 0;
  int64_t replayed = 0;
  int checkpoints = 0;
  int64_t template_hits = 0;
  int64_t template_misses = 0;
  int64_t template_invalidations = 0;
  for (int attempt = 1; attempt <= plan.max_attempts; ++attempt) {
    if (attempt > 1) {
      recovery.BeginNextAttempt(
          [cluster](int m) { return cluster->machine_epoch(m); });
      // Wait (in virtual time) until every machine is back up.
      double resume = sim->now();
      for (int m = 0; m < cluster->num_machines(); ++m) {
        resume = std::max(resume, cluster->machine_up_time(m));
      }
      if (!std::isfinite(resume)) return last_error;  // gone for good
      if (resume > sim->now()) {
        sim->Schedule(resume, [] {});
        sim->Run();
      }
      if (options.trace != nullptr) {
        int lane = options.trace->Lane(obs::kEnginePid, "recovery");
        options.trace->Instant(obs::kEnginePid, lane, "recovery-start",
                               "fault", sim->now(),
                               {{"attempt", attempt},
                                {"survivors", recovery.num_survivors()},
                                {"durable", recovery.num_durable()}});
      }
      if (options.live.event_log != nullptr) {
        options.live.event_log->Append(
            sim->now(), "recovery",
            {{"attempt", attempt},
             {"survivors", recovery.num_survivors()},
             {"durable", recovery.num_durable()}});
      }
    }
    const double attempt_start = sim->now();
    Job job(backend, fs, program, graph, options, watchdog.get(), &recovery,
            attempt);
    StatusOr<RunStats> result = job.Execute();
    if (result.ok()) {
      RunStats stats = std::move(*result);
      stats.attempts = attempt;
      stats.recovery_seconds = attempt_start - first_start;
      stats.total_seconds += attempt_start - first_start;
      stats.recomputed_bags += recomputed;
      stats.replayed_bags += replayed;
      stats.checkpoints += checkpoints;
      stats.template_hits += template_hits;
      stats.template_misses += template_misses;
      stats.template_invalidations += template_invalidations;
      // Resource deltas span every attempt (wasted work is real work).
      const sim::ClusterMetrics& after = cluster->metrics();
      stats.cluster.messages = after.messages - before.messages;
      stats.cluster.network_bytes =
          after.network_bytes - before.network_bytes;
      stats.cluster.local_bytes = after.local_bytes - before.local_bytes;
      stats.cluster.disk_bytes = after.disk_bytes - before.disk_bytes;
      stats.cluster.cpu_seconds = after.cpu_seconds - before.cpu_seconds;
      stats.cluster.dropped_messages =
          after.dropped_messages - before.dropped_messages;
      if (options.metrics != nullptr) {
        options.metrics->Set("attempts", static_cast<double>(attempt));
        options.metrics->Set("recovery_seconds", stats.recovery_seconds);
        options.metrics->Set("recomputed_bags",
                             static_cast<double>(stats.recomputed_bags));
        options.metrics->Set("replayed_bags",
                             static_cast<double>(stats.replayed_bags));
      }
      return stats;
    }
    if (result.status().code() != StatusCode::kUnavailable) {
      return result.status();  // genuine error: retrying would not help
    }
    last_error = result.status();
    recomputed += job.recomputed_bags();
    replayed += job.replayed_bags();
    checkpoints += job.checkpoints();
    template_hits += job.template_hits();
    template_misses += job.template_misses();
    template_invalidations += job.template_invalidations();
    MITOS_VLOG(1) << "attempt " << attempt
                  << " failed: " << last_error.ToString();
    if (options.trace != nullptr) {
      int lane = options.trace->Lane(obs::kEnginePid, "recovery");
      options.trace->Instant(
          obs::kEnginePid, lane, "attempt-failed", "fault", sim->now(),
          {{"attempt", attempt}, {"error", last_error.message()}});
    }
    if (options.live.event_log != nullptr) {
      options.live.event_log->Append(
          sim->now(), "fault",
          {{"what", "attempt_failed"},
           {"attempt", attempt},
           {"error", last_error.message()}});
    }
  }
  return last_error;
}

StatusOr<RunStats> ExecuteJob(sim::Simulator* sim, sim::Cluster* cluster,
                              sim::SimFileSystem* fs,
                              const ir::Program& program,
                              const dataflow::LogicalGraph& graph,
                              const ExecutorOptions& options) {
  DesBackend backend(sim, cluster);
  return ExecuteJob(&backend, fs, program, graph, options);
}

MitosExecutor::MitosExecutor(sim::Simulator* sim, sim::Cluster* cluster,
                             sim::SimFileSystem* fs, ExecutorOptions options)
    : owned_des_(std::make_unique<DesBackend>(sim, cluster)),
      backend_(owned_des_.get()),
      fs_(fs),
      options_(options) {}

MitosExecutor::MitosExecutor(Backend* backend, sim::SimFileSystem* fs,
                             ExecutorOptions options)
    : backend_(backend), fs_(fs), options_(options) {}

StatusOr<RunStats> MitosExecutor::Run(const lang::Program& program) {
  StatusOr<ir::Program> ir_program = ir::CompileToIr(program);
  if (!ir_program.ok()) return ir_program.status();
  return RunIr(*ir_program);
}

StatusOr<RunStats> MitosExecutor::RunIr(const ir::Program& program) {
  MITOS_RETURN_IF_ERROR(ir::Verify(program));
  ir::Program optimized = program;
  if (options_.dead_code_elimination) {
    StatusOr<ir::DceResult> pruned = ir::EliminateDeadCode(optimized);
    if (!pruned.ok()) return pruned.status();
    optimized = std::move(pruned->program);
    MITOS_RETURN_IF_ERROR(ir::Verify(optimized));
  }
  if (options_.operator_fusion) {
    StatusOr<ir::FusionResult> fused = ir::FuseElementwise(optimized);
    if (!fused.ok()) return fused.status();
    optimized = std::move(fused->program);
    MITOS_RETURN_IF_ERROR(ir::Verify(optimized));
  }
  StatusOr<TranslateResult> translated =
      Translate(optimized, backend_->num_machines());
  if (!translated.ok()) return translated.status();
  return ExecuteJob(backend_, fs_, optimized, translated->graph, options_);
}

}  // namespace mitos::runtime
