// Translation of the SSA IR into a single (cyclic) dataflow job
// (paper Sec. 4.3).
//
// One dataflow node per assignment statement, one edge per variable
// reference, a condition node per conditional terminator, and conditional
// edges wherever producer and consumer live in different basic blocks.
// Global reduce/count statements expand into a parallel pre-aggregation
// node plus a parallelism-1 final node (the standard combiner pattern).
//
// Parallelism: wrapped-scalar ("singleton") operators get parallelism 1 —
// they form the cheap control-flow spine whose decisions race ahead of the
// heavy data path, which is what makes loop pipelining effective. Data
// operators get one instance per machine.
#ifndef MITOS_RUNTIME_TRANSLATOR_H_
#define MITOS_RUNTIME_TRANSLATOR_H_

#include <map>
#include <string>

#include "common/status.h"
#include "dataflow/graph.h"
#include "ir/ir.h"

namespace mitos::runtime {

struct TranslateResult {
  dataflow::LogicalGraph graph;
  // SSA variable id -> node producing it (final node for reduce/count).
  std::map<ir::VarId, dataflow::NodeId> var_node;
};

// `data_parallelism` is the instance count for data operators (normally the
// machine count).
StatusOr<TranslateResult> Translate(const ir::Program& program,
                                    int data_parallelism);

}  // namespace mitos::runtime

#endif  // MITOS_RUNTIME_TRANSLATOR_H_
