// Step templates: caching control-plane decisions across loop iterations.
//
// Most control-flow steps of a loop repeat the *structure* of the previous
// one: the same condition block decided the same way, appending the same
// chain of blocks. Following "Execution Templates: Caching Control Plane
// Decisions for Strong Scaling of Data Analytics" (see PAPERS.md), the
// runtime caches the per-step control decisions the first time a step shape
// occurs, validates that a new step matches the cached shape, and replays
// the cached decisions instead of recomputing them:
//   * the PathAuthority runs a StepTemplateTracker that stamps every path
//     position with a StepMeta (template generation + replayability);
//   * each BagOperatorHost keeps a HostStepTemplate that records the true
//     per-input longest-prefix lengths (Sec. 5.2.3) at two consecutive
//     occurrences of its block, classifies each input as loop-invariant or
//     loop-carried, and on later occurrences replays the predicted choices
//     after an O(period) validation instead of an O(path) backward scan.
//
// Validate-then-instantiate: a replay happens only when (a) the authority
// marked the step replayable — meaning the last kSteadyStepsBeforeReplay
// decisions at this block were identical in value and appended chain, with
// no divergence anywhere since (the tracker resets *all* steady counts on
// any mismatch, so nested-loop divergence and if-inside-loop flips
// invalidate globally); (b) the occurrence spacing equals the recorded
// period; and (c) the two most recent path segments of that period are
// block-for-block equal. Anything else falls back to the slow path, which
// is always correct. Faults/recovery invalidate trivially: each execution
// attempt builds fresh tracker and host templates.
#ifndef MITOS_RUNTIME_STEP_TEMPLATE_H_
#define MITOS_RUNTIME_STEP_TEMPLATE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "ir/ir.h"

namespace mitos::runtime {

// A step becomes replayable after this many consecutive identical
// occurrences beyond the first (record at the 1st, validate at the 2nd,
// replay from the 3rd).
inline constexpr int kSteadyStepsBeforeReplay = 2;

// Per-path-position template metadata, stamped by the PathAuthority when it
// appends a step's chain and read by every host through its local
// ControlFlowManager view.
struct StepMeta {
  // Template generation: bumped on every divergence (a condition block
  // deciding differently than last time, or a first-ever decision). Host
  // templates recorded under an older generation must re-record.
  int generation = 0;
  // True when the authority observed >= kSteadyStepsBeforeReplay
  // consecutive identical decisions at this step's block with no
  // divergence anywhere in between.
  bool replayable = false;
};

// Authority-side tracker: one per PathAuthority (and thus per execution
// attempt — recovery starts from a clean template state).
class StepTemplateTracker {
 public:
  // A condition block decided `value`, appending `chain`. Returns the meta
  // to stamp on every position of the appended chain.
  StepMeta OnStep(ir::BlockId block, bool value,
                  const std::vector<ir::BlockId>& chain);

  // Times a previously-recorded step shape was contradicted (excludes
  // first-ever decisions at a block, which merely start a template).
  int64_t invalidations() const { return invalidations_; }

 private:
  struct BlockHistory {
    bool value = false;
    std::vector<ir::BlockId> chain;
    int steady = 0;  // consecutive identical repeats since last divergence
  };
  std::map<ir::BlockId, BlockHistory> history_;
  int generation_ = 0;
  int64_t invalidations_ = 0;
};

// Host-side template for one operator instance: caches the input-bag
// choices of the latest occurrence of the host's block and, once two
// consecutive occurrences classified cleanly, predicts the next
// occurrence's choices by shifting loop-carried inputs forward one period.
class HostStepTemplate {
 public:
  // True when the occurrence at path position `pos` (0-based; the bag's
  // path_len is pos + 1) may be replayed, *given* that the caller also
  // verified the two most recent period-length path segments are equal.
  bool ReplayCandidate(int pos, const StepMeta& meta) const {
    return state_ == State::kReady && meta.replayable &&
           meta.generation == generation_ && pos - last_pos_ == period_;
  }

  int period() const { return period_; }

  // Fills the predicted per-input longest-prefix lengths for the occurrence
  // one period after the last recorded one. Only valid after
  // ReplayCandidate returned true.
  void PredictLengths(std::vector<int>* lengths) const;

  // Commits a successful replay at position `pos`: the predicted lengths
  // become the new recorded ones.
  void CommitReplay(int pos);

  // Slow-path observation: the occurrence at `pos` chose the true
  // per-input lengths `lengths`. Records, classifies against the previous
  // occurrence (invariant: unchanged; carried: advanced by exactly the
  // occurrence spacing), or re-records when classification fails.
  void Observe(int pos, const StepMeta& meta,
               const std::vector<int>& lengths);

 private:
  enum class State { kEmpty, kRecorded, kReady };
  enum class InputKind { kInvariant, kCarried };

  State state_ = State::kEmpty;
  int generation_ = 0;
  int last_pos_ = -1;
  int period_ = 0;
  std::vector<int> lengths_;      // per input, at the last occurrence
  std::vector<InputKind> kinds_;  // per input, valid when kReady
};

}  // namespace mitos::runtime

#endif  // MITOS_RUNTIME_STEP_TEMPLATE_H_
