// The execution-backend seam: everything the runtime (hosts, path
// authority, executor) needs from "the machines" — CPU execution, network
// transfers, disk I/O, a clock, and a quiescence barrier — behind one
// interface, so the same operator kernels, PathAuthority decisions, and
// step templates run on either substrate:
//
//   * DesBackend (this header) delegates to sim::Simulator + sim::Cluster:
//     the deterministic discrete-event oracle. Virtual time is the product;
//     byte-for-byte identical to the pre-seam runtime.
//   * ThreadsBackend (runtime/threads_backend.h) is real parallelism:
//     thread-per-machine with MPSC channels and wall-clock measurement.
//     Results are element-identical to the DES (differential-tested in
//     tests/runtime/backend_diff_test.cc); *time* is real.
//
// Callbacks passed to ExecCpu/Send/DiskIo/DiskRead always run "on the
// target machine": the DES runs everything on the one host thread, the
// threads backend runs them on the target machine's worker thread. Hosts
// are machine-confined, so this rule is what makes the same host code
// correct on both backends without locks in host.cc.
//
// DES-only escape hatches: simulator() and cluster() return nullptr on
// real-parallel backends. Fault handling and background timers (heartbeats,
// watchdog checks, snapshot cadence) require a simulator; callers gate
// those features on simulator() != nullptr.
#ifndef MITOS_RUNTIME_BACKEND_H_
#define MITOS_RUNTIME_BACKEND_H_

#include <functional>
#include <string>

#include "obs/live/event_log.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "sim/simulator.h"

namespace mitos::runtime {

class Backend {
 public:
  virtual ~Backend() = default;

  virtual int num_machines() const = 0;
  // Cost-model constants (chunk sizes, message header bytes, per-element
  // CPU). Real-parallel backends still consult chunk_elements and the
  // message-byte constants for chunking and byte accounting.
  virtual const sim::ClusterConfig& config() const = 0;

  // Current time in seconds: virtual time on the DES, wall-clock seconds
  // since backend construction on real-parallel backends.
  virtual double now() const = 0;
  // Time the last real (foreground) work finished; == now() on backends
  // without background timers.
  virtual double busy_until() const = 0;

  // Occupies one core of `machine` for `cpu_seconds` of *modelled* CPU,
  // then runs `done` on that machine. Real-parallel backends ignore the
  // modelled charge — `done` itself is the real work and its wall time is
  // what gets metered. `trace_label` names the core span when tracing.
  virtual void ExecCpu(int machine, double cpu_seconds,
                       std::function<void()> done,
                       std::string trace_label = {}) = 0;

  // Transfers `bytes` from `src` to `dst`; `done` runs on `dst` at
  // delivery. Per-(src,dst) FIFO: two sends from the same source to the
  // same destination deliver in order (chunks before their end-of-bag
  // marker).
  virtual void Send(int src, int dst, size_t bytes,
                    std::function<void()> done) = 0;

  // Disk write/read of `bytes` on `machine`; `done` runs there when the
  // I/O completes. `memory` models an in-memory dataset (no disk).
  virtual void DiskIo(int machine, size_t bytes, std::function<void()> done,
                      bool memory = false) = 0;

  // Like DiskIo but reports progress: `on_progress(i)` runs on `machine`
  // for each of `pieces` slices, in order — sources emit chunks at I/O
  // pace so downstream operators overlap with reading.
  virtual void DiskRead(int machine, size_t bytes, int pieces,
                        std::function<void(int)> on_progress,
                        bool memory = false) = 0;

  // Coordinator-side delayed call (job launch, modelled decision
  // overhead). Real-parallel backends run `fn` on machine 0 without the
  // modelled delay — callers that need a real delay (none today) must gate
  // on simulator().
  virtual void ScheduleAfter(double delay, std::function<void()> fn) = 0;

  // Runs `fn` at global quiescence (the superstep-barrier primitive).
  // Callbacks fire one at a time: each runs only when everything it
  // (transitively) caused has drained again.
  virtual void ScheduleWhenIdle(std::function<void()> fn) = 0;

  // Drives the backend until all work (and idle callbacks) drain. On the
  // DES this advances virtual time; on the threads backend it blocks the
  // calling thread until the machine threads go quiescent.
  virtual void Run() = 0;

  // Consistent copy of the resource counters (safe to call concurrently
  // with running work on real-parallel backends).
  virtual sim::ClusterMetrics MetricsSnapshot() const = 0;

  // Observability attachment points (both nullable).
  virtual void set_trace(obs::TraceRecorder* trace) = 0;
  virtual obs::TraceRecorder* trace() const = 0;
  virtual void set_event_log(obs::live::EventLog* log) = 0;
  virtual obs::live::EventLog* event_log() const = 0;

  // DES-only escape hatches (nullptr on real-parallel backends): fault
  // plans, background timers, and recovery epochs live on the simulator
  // and the simulated cluster.
  virtual sim::Simulator* simulator() { return nullptr; }
  virtual sim::Cluster* cluster() { return nullptr; }
};

// The discrete-event backend: a pure delegation shim over Simulator +
// Cluster. Runs through this shim are byte-identical to runs that used the
// pair directly (it adds no events, costs, or reordering).
class DesBackend : public Backend {
 public:
  DesBackend(sim::Simulator* sim, sim::Cluster* cluster)
      : sim_(sim), cluster_(cluster) {}

  int num_machines() const override { return cluster_->num_machines(); }
  const sim::ClusterConfig& config() const override {
    return cluster_->config();
  }
  double now() const override { return sim_->now(); }
  double busy_until() const override { return sim_->busy_until(); }

  void ExecCpu(int machine, double cpu_seconds, std::function<void()> done,
               std::string trace_label = {}) override {
    cluster_->ExecCpu(machine, cpu_seconds, std::move(done),
                      std::move(trace_label));
  }
  void Send(int src, int dst, size_t bytes,
            std::function<void()> done) override {
    cluster_->Send(src, dst, bytes, std::move(done));
  }
  void DiskIo(int machine, size_t bytes, std::function<void()> done,
              bool memory = false) override {
    cluster_->DiskIo(machine, bytes, std::move(done), memory);
  }
  void DiskRead(int machine, size_t bytes, int pieces,
                std::function<void(int)> on_progress,
                bool memory = false) override {
    cluster_->DiskRead(machine, bytes, pieces, std::move(on_progress),
                       memory);
  }
  void ScheduleAfter(double delay, std::function<void()> fn) override {
    sim_->ScheduleAfter(delay, std::move(fn));
  }
  void ScheduleWhenIdle(std::function<void()> fn) override {
    sim_->ScheduleWhenIdle(std::move(fn));
  }
  void Run() override { sim_->Run(); }

  sim::ClusterMetrics MetricsSnapshot() const override {
    return cluster_->metrics();
  }

  void set_trace(obs::TraceRecorder* trace) override {
    cluster_->set_trace(trace);
  }
  obs::TraceRecorder* trace() const override { return cluster_->trace(); }
  void set_event_log(obs::live::EventLog* log) override {
    cluster_->set_event_log(log);
  }
  obs::live::EventLog* event_log() const override {
    return cluster_->event_log();
  }

  sim::Simulator* simulator() override { return sim_; }
  sim::Cluster* cluster() override { return cluster_; }

 private:
  sim::Simulator* sim_;
  sim::Cluster* cluster_;
};

}  // namespace mitos::runtime

#endif  // MITOS_RUNTIME_BACKEND_H_
