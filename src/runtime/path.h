// Bag identifiers, the execution path, and per-machine control flow
// managers (paper Sec. 5.2.1).
//
// A bag identifier couples the logical operator that created the bag with
// the execution path up to its creation. Because the execution path is a
// single append-only sequence of basic blocks, a path prefix is fully
// described by its *length* — so BagId is just (node, prefix length), and
// the longest-prefix input-choice rule (Sec. 5.2.3) becomes a backwards
// scan for the last occurrence of a block.
//
// The PathAuthority owns the true path. Condition-node instances report
// decisions to it; it appends the chosen block (plus the chain of
// unconditionally-following blocks) and broadcasts the new length to every
// machine's ControlFlowManager over the simulated network — mirroring the
// paper's TCP broadcast between control flow managers. Each machine thus
// has a *lagged* view of the path; hosts react as their local manager
// advances.
#ifndef MITOS_RUNTIME_PATH_H_
#define MITOS_RUNTIME_PATH_H_

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "dataflow/graph.h"
#include "ir/ir.h"
#include "obs/live/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/backend.h"
#include "runtime/step_template.h"
#include "sim/cluster.h"

namespace mitos::runtime {

// Identifier of one bag: the logical operator that computes it plus the
// execution-path prefix (by length) at its creation (Sec. 5.2.1).
struct BagId {
  dataflow::NodeId node = -1;
  int path_len = 0;

  bool operator==(const BagId& other) const {
    return node == other.node && path_len == other.path_len;
  }
  std::string ToString() const {
    return "bag(node=" + std::to_string(node) +
           ", len=" + std::to_string(path_len) + ")";
  }
};

// The global execution path: an append-only sequence of basic blocks.
//
// Internally synchronized: the authority (the only writer) appends from
// whichever machine hosted the deciding condition node, while every other
// machine's manager reads concurrently — on the threads backend those are
// different OS threads. A shared_mutex keeps readers parallel; on the DES
// (single host thread) the uncontended locks cost nanoseconds and change
// nothing about the schedule.
class ExecutionPath {
 public:
  int size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return SizeLocked();
  }
  ir::BlockId at(int pos) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    MITOS_CHECK_GE(pos, 0);
    MITOS_CHECK_LT(pos, SizeLocked());
    return blocks_[static_cast<size_t>(pos)];
  }
  void Append(ir::BlockId block, StepMeta meta = {}) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    blocks_.push_back(block);
    meta_.push_back(meta);
  }

  // Step-template metadata stamped by the authority at append time
  // (runtime/step_template.h).
  StepMeta meta(int pos) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    MITOS_CHECK_GE(pos, 0);
    MITOS_CHECK_LT(pos, SizeLocked());
    return meta_[static_cast<size_t>(pos)];
  }

  bool complete() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return complete_;
  }
  void MarkComplete() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    complete_ = true;
  }

  // Length of the longest prefix with length <= max_len that ends with
  // `block`; 0 if none (Sec. 5.2.3's input-choice rule).
  int LongestPrefixEndingWith(ir::BlockId block, int max_len) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (int l = std::min(max_len, SizeLocked()); l >= 1; --l) {
      if (blocks_[static_cast<size_t>(l - 1)] == block) return l;
    }
    return 0;
  }

  // Block-for-block equality of the segments [a_start, a_start + len) and
  // [b_start, b_start + len); false when either is out of range.
  bool SegmentsEqual(int a_start, int b_start, int len) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (len < 0 || a_start < 0 || b_start < 0 ||
        a_start + len > SizeLocked() || b_start + len > SizeLocked()) {
      return false;
    }
    for (int k = 0; k < len; ++k) {
      if (blocks_[static_cast<size_t>(a_start + k)] !=
          blocks_[static_cast<size_t>(b_start + k)]) {
        return false;
      }
    }
    return true;
  }

  std::string ToString() const;

 private:
  int SizeLocked() const { return static_cast<int>(blocks_.size()); }

  mutable std::shared_mutex mu_;
  std::vector<ir::BlockId> blocks_;
  std::vector<StepMeta> meta_;
  bool complete_ = false;
};

// Per-machine view of the execution path. The underlying storage is shared
// (contents are identical everywhere); only the known length lags behind
// the authority, by exactly the broadcast's network latency.
class ControlFlowManager {
 public:
  explicit ControlFlowManager(const ExecutionPath* path) : path_(path) {}

  int known_len() const { return known_len_; }
  bool known_complete() const { return known_complete_; }
  const ExecutionPath& path() const { return *path_; }

  ir::BlockId block_at(int pos) const {
    MITOS_CHECK_LT(pos, known_len_);
    return path_->at(pos);
  }

  // Longest prefix <= max_len (and <= known length) ending with `block`.
  int LongestPrefixEndingWith(ir::BlockId block, int max_len) const {
    return path_->LongestPrefixEndingWith(block,
                                          std::min(max_len, known_len_));
  }

  // Step-template metadata of a known position; false when `pos` is not
  // yet known to this machine (hosts then take the slow path).
  bool step_meta(int pos, StepMeta* out) const {
    if (pos < 0 || pos >= known_len_) return false;
    *out = path_->meta(pos);
    return true;
  }

  // Segment equality restricted to the known path prefix (template
  // validation); false for anything not yet known here.
  bool SegmentsEqual(int a_start, int b_start, int len) const {
    if (a_start + len > known_len_ || b_start + len > known_len_) {
      return false;
    }
    return path_->SegmentsEqual(a_start, b_start, len);
  }

  // `fn(pos, block)` fires once per newly-known position, in order.
  void AddListener(std::function<void(int, ir::BlockId)> fn) {
    listeners_.push_back(std::move(fn));
  }
  // Fires once when the path is known to be complete.
  void AddCompletionListener(std::function<void()> fn) {
    completion_listeners_.push_back(std::move(fn));
  }

  // Delivery from the authority. Messages may arrive out of order (they
  // carry the target length); shorter-than-known deliveries are no-ops.
  // Re-entrant calls (a listener's side effects triggering another
  // delivery, e.g. a hot loop whose condition node fires synchronously)
  // are queued and drained by the outermost call, so listeners always
  // observe positions strictly in order.
  void AdvanceTo(int new_len, bool complete);

 private:
  const ExecutionPath* path_;
  int known_len_ = 0;
  bool known_complete_ = false;
  bool advancing_ = false;
  std::deque<std::pair<int, bool>> pending_;  // queued re-entrant advances
  std::vector<std::function<void(int, ir::BlockId)>> listeners_;
  std::vector<std::function<void()>> completion_listeners_;
};

// Owns the true execution path; serializes decisions and broadcasts.
class PathAuthority {
 public:
  struct Options {
    // When false, decision broadcasts wait for global quiescence (a
    // superstep barrier) — this is Flink-sim / "Mitos (not pipelined)".
    bool pipelining = true;
    // Extra latency charged per control-flow decision (e.g. the per-step
    // overhead of Flink's native iterations, FLINK-3322).
    double decision_overhead = 0.0;
    // Runaway-loop guard.
    int max_path_len = 1'000'000;
    // Step-template caching (runtime/step_template.h): stamp every path
    // position with template metadata and shrink the broadcast for
    // replayable steps to template_control_message_bytes (the receivers
    // validate against cached state instead of full decision metadata).
    bool step_templates = false;
    // Observability (both optional; see src/obs/). The recorder gets one
    // instant event per control-flow decision plus a per-step span on the
    // engine process; the registry gets one StepRecord per decision.
    obs::TraceRecorder* trace = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
    // Live observability (obs/live/, all optional). The event log gets one
    // "decision" record per control-flow decision, "step_begin"/"step_end"
    // records bracketing every step, and "template_invalidation" records
    // when a cached step shape is contradicted. `on_step` fires at every
    // broadcast (step_index = the completed 0-based decision, -1 for the
    // initial path seed) — the executor drives snapshots, the watchdog,
    // and progress reporting from it. Both are observational only.
    obs::live::EventLog* event_log = nullptr;
    std::function<void(int step_index, bool initial)> on_step;
    // Supplies the job's running operator-input element count, so step
    // records can report per-step element deltas (wired by the executor).
    std::function<int64_t()> elements_probe;
    // Active fault plan (nullptr when fault handling is off). With a plan,
    // remote path broadcasts are acknowledged by the receiving manager and
    // retried with exponential backoff until acked or retries exhaust.
    const sim::FaultPlan* faults = nullptr;
    // Fired right after every checkpoint_every-th decision's broadcast
    // (wired by the executor to mark finished bags durable).
    std::function<void()> on_checkpoint;
  };

  // `path` is owned by the caller (the job) and shared with every
  // ControlFlowManager; the authority is its only writer. `backend` is the
  // execution substrate decisions are broadcast over (runtime/backend.h).
  PathAuthority(const ir::Program* program, Backend* backend,
                ExecutionPath* path,
                std::vector<ControlFlowManager*> managers, Options options,
                std::function<void(Status)> on_error);
  ~PathAuthority();

  // Seeds the path with the entry block (plus its unconditional chain) and
  // broadcasts. Called once, at job start, from machine `machine`.
  void Start(int machine);

  // A condition node (in block `block`, on machine `machine`) evaluated the
  // occurrence whose bag has path length `at_len` and chose `value`.
  // Decisions are inherently sequential: at_len must equal the current path
  // length.
  void OnDecision(ir::BlockId block, int at_len, bool value, int machine);

  const ExecutionPath& path() const { return *path_; }
  int decisions() const { return decisions_; }
  // Times a cached step shape was contradicted by a decision (0 with
  // step templates off).
  int64_t template_invalidations() const {
    return tracker_.invalidations();
  }

 private:
  // Appends `block` and everything that unconditionally follows it; then
  // broadcasts the new length (possibly after a barrier). `initial` marks
  // the job-start seed of the path, which is not a superstep boundary:
  // no barrier, no per-decision overhead.
  void AppendChain(ir::BlockId block, int machine, bool initial = false);
  void Broadcast(int from_machine, bool initial);
  // Emits the per-step trace span and metrics StepRecord at broadcast time.
  void RecordStep(bool initial);
  // One acked/retried control send to `machine`'s manager (faults active).
  void SendControl(int from_machine, int machine, int new_len, bool complete,
                   int attempt);

  const ir::Program* program_;
  Backend* backend_;
  std::vector<ControlFlowManager*> managers_;
  Options options_;
  std::function<void(Status)> on_error_;
  ExecutionPath* path_;
  int decisions_ = 0;
  // Step-template state (inert when options_.step_templates is false).
  StepTemplateTracker tracker_;
  bool last_step_replayable_ = false;

  // Step-timeline state (only maintained when trace/metrics are attached).
  struct PendingStep {
    ir::BlockId block = ir::kNoBlock;
    bool value = false;
    double decision_time = 0;
    // When the step left the barrier (superstep engines) — equals
    // decision_time for pipelined engines. Splits barrier_wait (release -
    // decision) from decision_overhead (broadcast - release).
    double release_time = 0;
  };
  PendingStep pending_step_;
  // Acknowledged (path_len, machine) control deliveries (faults active).
  std::set<std::pair<int, int>> acked_;
  // Set false on destruction so queued background retry timers turn inert.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  double last_broadcast_time_ = 0;
  int64_t last_elements_ = 0;
  int64_t last_net_bytes_ = 0;
  int64_t last_disk_bytes_ = 0;
};

}  // namespace mitos::runtime

#endif  // MITOS_RUNTIME_PATH_H_
