// Step-level recovery bookkeeping (lineage over bag identifiers).
//
// The paper's bag identifiers — (operator, execution-path prefix) — double
// as a lineage record: because the path is append-only and the runtime is
// deterministic, a bag with the same identifier has the same contents in
// every attempt. Recovery therefore re-executes the job from the start of
// the path, but every bag instance that *survived* the failure (it finished
// on a machine whose state was never lost, or it was checkpointed to
// durable storage) is replayed: its kernel runs over the real data so the
// in-memory state is reconstructed exactly, but at zero CPU cost and
// memory-speed I/O — only genuinely lost bags pay their full cost again.
//
// The ledger lives outside the per-attempt Job so it persists across
// attempts; the executor wires it into the RuntimeContext hooks.
#ifndef MITOS_RUNTIME_RECOVERY_H_
#define MITOS_RUNTIME_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "dataflow/graph.h"

namespace mitos::runtime {

// One physical output bag: operator instance × execution-path prefix.
struct BagKey {
  dataflow::NodeId node = -1;
  int instance = 0;
  int path_len = 0;

  bool operator<(const BagKey& other) const {
    if (node != other.node) return node < other.node;
    if (instance != other.instance) return instance < other.instance;
    return path_len < other.path_len;
  }
};

class FaultRecoveryState {
 public:
  // Bag `key` finished on `machine` while it was in crash/restart epoch
  // `epoch`. Its cached output survives a later failure iff the machine is
  // still in that epoch (it never crashed in between).
  void OnBagFinished(const BagKey& key, int machine, int epoch) {
    finished_[key] = Location{machine, epoch};
  }

  // Checkpoint: everything finished so far becomes durable — it survives
  // any failure, including of the machine that produced it.
  void MarkAllDurable() {
    for (const auto& [key, loc] : finished_) durable_.insert(key);
    for (const auto& [key, loc] : survivors_) durable_.insert(key);
  }

  // True when `key`'s output already exists (survived or durable), so the
  // new attempt replays it instead of recomputing.
  bool IsReplay(const BagKey& key) const {
    return durable_.count(key) > 0 || survivors_.count(key) > 0;
  }

  // Folds the failed attempt into the survivor set: a finished bag
  // survives iff `machine_epoch(machine)` still equals the epoch it
  // finished in. Previously surviving bags are re-filtered too (the
  // machine holding them may have crashed since).
  void BeginNextAttempt(const std::function<int(int)>& machine_epoch) {
    for (const auto& [key, loc] : finished_) survivors_[key] = loc;
    finished_.clear();
    for (auto it = survivors_.begin(); it != survivors_.end();) {
      if (durable_.count(it->first) == 0 &&
          machine_epoch(it->second.machine) != it->second.epoch) {
        lost_.insert(it->first);
        it = survivors_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // True when `key` had finished in an earlier attempt but its output was
  // lost (its machine crashed and it was not durable) — the bags the
  // recomputed_bags metric counts.
  bool WasLost(const BagKey& key) const { return lost_.count(key) > 0; }

  int64_t num_durable() const {
    return static_cast<int64_t>(durable_.size());
  }
  int64_t num_survivors() const {
    return static_cast<int64_t>(survivors_.size());
  }

 private:
  struct Location {
    int machine = 0;
    int epoch = 0;
  };
  std::map<BagKey, Location> finished_;   // current attempt
  std::map<BagKey, Location> survivors_;  // carried from prior attempts
  std::set<BagKey> durable_;              // checkpointed — always survive
  std::set<BagKey> lost_;                 // finished once, then lost
};

}  // namespace mitos::runtime

#endif  // MITOS_RUNTIME_RECOVERY_H_
