// Naming convention for in-memory cached datasets (Spark-style RDD cache).
//
// The Spark baseline materializes intermediate bags into files named
// "mem:<id>"; sources and sinks on such files are charged at memory
// bandwidth instead of disk bandwidth (sim/cluster.h).
#ifndef MITOS_RUNTIME_SPARK_CACHE_H_
#define MITOS_RUNTIME_SPARK_CACHE_H_

#include <string>

namespace mitos::runtime {

inline constexpr char kCacheFilePrefix[] = "mem:";

inline bool IsCacheFile(const std::string& filename) {
  return filename.rfind(kCacheFilePrefix, 0) == 0;
}

// Canonical cache-file name: "mem:<stem>". Keeps every producer of cached
// datasets on the one naming convention IsCacheFile recognizes.
inline std::string CacheFileName(const std::string& stem) {
  return std::string(kCacheFilePrefix) + stem;
}

}  // namespace mitos::runtime

#endif  // MITOS_RUNTIME_SPARK_CACHE_H_
