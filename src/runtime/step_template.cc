#include "runtime/step_template.h"

namespace mitos::runtime {

StepMeta StepTemplateTracker::OnStep(ir::BlockId block, bool value,
                                     const std::vector<ir::BlockId>& chain) {
  auto it = history_.find(block);
  if (it != history_.end() && it->second.value == value &&
      it->second.chain == chain) {
    ++it->second.steady;
  } else {
    if (it != history_.end()) ++invalidations_;
    // Any divergence invalidates *every* template: steady counts restart
    // everywhere and the generation bump forces host templates to
    // re-record. This is deliberately coarse — it keeps replays sound
    // under nested loops with varying inner trip counts and if-inside-loop
    // branch flips, where the path segment between two occurrences of a
    // block can differ even though the block's own decision repeated.
    ++generation_;
    for (auto& [b, h] : history_) h.steady = 0;
    BlockHistory& h = history_[block];
    h.value = value;
    h.chain = chain;
    h.steady = 0;
  }
  return StepMeta{generation_,
                  history_[block].steady >= kSteadyStepsBeforeReplay};
}

void HostStepTemplate::PredictLengths(std::vector<int>* lengths) const {
  lengths->resize(lengths_.size());
  for (size_t i = 0; i < lengths_.size(); ++i) {
    (*lengths)[i] = kinds_[i] == InputKind::kCarried
                        ? lengths_[i] + period_
                        : lengths_[i];
  }
}

void HostStepTemplate::CommitReplay(int pos) {
  for (size_t i = 0; i < lengths_.size(); ++i) {
    if (kinds_[i] == InputKind::kCarried) lengths_[i] += period_;
  }
  last_pos_ = pos;
}

void HostStepTemplate::Observe(int pos, const StepMeta& meta,
                               const std::vector<int>& lengths) {
  if (state_ != State::kEmpty && meta.generation == generation_ &&
      pos > last_pos_ && lengths.size() == lengths_.size()) {
    // Classify each input against the previous occurrence. An input whose
    // chosen prefix length is unchanged is loop-invariant (its producer
    // did not re-occur in between); one whose length advanced by exactly
    // the occurrence spacing is loop-carried (its producer's latest
    // occurrence shifted with the path). Anything else has no stable
    // shape — start over from this occurrence.
    const int d = pos - last_pos_;
    std::vector<InputKind> kinds(lengths.size());
    bool classified = true;
    for (size_t i = 0; i < lengths.size(); ++i) {
      if (lengths[i] == lengths_[i]) {
        kinds[i] = InputKind::kInvariant;
      } else if (lengths_[i] > 0 && lengths[i] == lengths_[i] + d) {
        kinds[i] = InputKind::kCarried;
      } else {
        classified = false;
        break;
      }
    }
    if (classified) {
      state_ = State::kReady;
      period_ = d;
      kinds_ = std::move(kinds);
      last_pos_ = pos;
      lengths_ = lengths;
      return;
    }
  }
  // First observation, generation change, or classification failure:
  // re-record from scratch.
  state_ = State::kRecorded;
  generation_ = meta.generation;
  last_pos_ = pos;
  lengths_ = lengths;
  kinds_.clear();
  period_ = 0;
}

}  // namespace mitos::runtime
