#include "runtime/host.h"

#include <algorithm>
#include <utility>

#include "runtime/spark_cache.h"

namespace mitos::runtime {

namespace {

using dataflow::EdgeKind;
using dataflow::NodeKind;
using dataflow::ShuffleKey;

// Fixed CPU charge for open/close/finish bookkeeping, in units of
// per-element cost.
constexpr double kBookkeepingElements = 5.0;

// Bookkeeping charge for a bag instantiated from a step template: the
// bag-id resolution, input/output choice, and routing work is replayed
// from the cache, leaving only the validate-and-instantiate token.
constexpr double kTemplatedBookkeepingElements = 1.0;

}  // namespace

BagOperatorHost::BagOperatorHost(RuntimeContext* ctx,
                                 const dataflow::LogicalNode* node,
                                 int instance, int machine,
                                 ControlFlowManager* cfm)
    : ctx_(ctx),
      node_(node),
      instance_(instance),
      machine_(machine),
      cfm_(cfm),
      out_edges_(ctx->graph().routing(node->id)) {
  kernel_ = dataflow::MakeOperator(*node, ctx->columnar());
}

bool BagOperatorHost::IsSpecial() const { return kernel_ == nullptr; }

double BagOperatorHost::PerElementCost() const {
  return ctx_->backend()->config().cpu_per_element * node_->cost_factor;
}

double BagOperatorHost::ChunkCost(const Chunk& chunk) const {
  const sim::ClusterConfig& config = ctx_->backend()->config();
  return (config.cpu_per_chunk +
          static_cast<double>(chunk.SerializedSize()) * config.cpu_per_byte) *
         node_->cost_factor;
}

void BagOperatorHost::Init() {
  const dataflow::LogicalGraph& graph = ctx_->graph();

  // Inputs with expected marker counts for this instance.
  inputs_.clear();
  for (const dataflow::EdgeRef& edge : node_->inputs) {
    InputState state;
    state.edge = edge;
    const dataflow::LogicalNode& from = graph.node(edge.from);
    state.producer_block = from.block;
    switch (edge.kind) {
      case EdgeKind::kForward:
        state.expected_markers = instance_ < from.parallelism ? 1 : 0;
        break;
      case EdgeKind::kShuffle:
        state.expected_markers = from.parallelism;
        break;
      case EdgeKind::kGather:
        state.expected_markers = instance_ == 0 ? from.parallelism : 0;
        break;
      case EdgeKind::kBroadcast:
        state.expected_markers = 1;
        break;
    }
    inputs_.push_back(std::move(state));
  }

  // Out-edges come pre-resolved from the graph's shared routing table
  // (bound in the constructor).

  cfm_->AddListener(
      [this](int pos, ir::BlockId block) { OnPathAppend(pos, block); });
  cfm_->AddCompletionListener([this] { OnPathComplete(); });
}

// ----- path events -----

void BagOperatorHost::OnPathAppend(int pos, ir::BlockId block) {
  if (ctx_->failed()) return;
  // Existing conditional sends first so a bag created at this position
  // does not react to its own creation.
  AdvancePendingSends(block);

  // Create the new output bag BEFORE the eviction scan: its input choices
  // take references that protect cached bags it still needs (a Φ created at
  // this occurrence may choose a bag this very occurrence supersedes).
  if (block == node_->block) {
    OnBlockOccurrence(pos);
  }

  // Cached input bags from this producer block are superseded by the new
  // occurrence (no future output bag will choose them; Sec. 5.2.3).
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i].producer_block != block) continue;
    for (auto& [len, entry] : inputs_[i].bags) {
      if (len < pos + 1) entry.superseded = true;
    }
    MaybeEvict(i);
  }

  TryFeed();
}

void BagOperatorHost::OnPathComplete() {
  if (ctx_->failed()) return;
  // No further block can occur: pending conditional sends are dead.
  for (PendingSend& ps : pending_sends_) {
    if (ps.state == PendingSend::State::kPending) {
      ps.state = PendingSend::State::kDropped;
      for (const Chunk& chunk : ps.buffered) {
        ctx_->TrackMemory(-static_cast<int64_t>(chunk.SerializedSize()));
      }
      ps.buffered.clear();
    }
  }
  // Entries for unfinished bags stay (as kDropped) so later emissions still
  // find their gating state and discard cleanly.
  pending_sends_.remove_if([](const PendingSend& ps) {
    return ps.bag_finished && (ps.done ||
                               ps.state == PendingSend::State::kDropped);
  });
}

int BagOperatorHost::ChooseInput(int i, int len) const {
  const InputState& input = inputs_[static_cast<size_t>(i)];
  int max_len = len;
  // A Φ input produced later in the Φ's own block refers to the *previous*
  // occurrence (the Φ conceptually executes at the top of its block).
  if (node_->kind == NodeKind::kPhi &&
      input.producer_block == node_->block) {
    max_len = len - 1;
  }
  return cfm_->LongestPrefixEndingWith(input.producer_block, max_len);
}

std::vector<int> BagOperatorHost::ComputeInputLengths(int len) const {
  std::vector<int> lens(inputs_.size());
  for (size_t i = 0; i < inputs_.size(); ++i) {
    lens[i] = ChooseInput(static_cast<int>(i), len);
  }
  return lens;
}

void BagOperatorHost::OnBlockOccurrence(int pos) {
  const int path_len = pos + 1;
  if (!ctx_->step_templates()) {
    CreateOutBag(path_len);
    return;
  }
  StepMeta meta;
  if (!cfm_->step_meta(pos, &meta)) {
    // Cannot happen from a path listener (the position is known by
    // definition); stay safe and take the slow path.
    CreateOutBag(path_len);
    return;
  }
  const int period = step_template_.period();
  if (step_template_.ReplayCandidate(pos, meta) &&
      cfm_->SegmentsEqual(pos - period + 1, pos - 2 * period + 1, period)) {
    // Validate-then-instantiate: the authority vouched for the step shape
    // (meta.replayable), the spacing matches, and the last two
    // period-length path segments are block-for-block equal — so the
    // cached input classification predicts exactly what the backward
    // scans would compute.
    std::vector<int> lens;
    step_template_.PredictLengths(&lens);
    if (ctx_->validate_templates()) {
      const std::vector<int> truth = ComputeInputLengths(path_len);
      if (truth != lens) {
        std::string detail;
        for (size_t i = 0; i < lens.size(); ++i) {
          detail += (i ? "," : "") + std::to_string(lens[i]) + "!=" +
                    std::to_string(truth[i]);
        }
        ctx_->Fail(Status::Internal(
            "step-template replay mismatch for " + node_->name + "[" +
            std::to_string(instance_) + "] at path length " +
            std::to_string(path_len) + " (predicted!=true: " + detail +
            ")"));
        return;
      }
    }
    step_template_.CommitReplay(pos);
    ctx_->CountTemplateHit(node_->id, instance_, path_len);
    if (obs::TraceRecorder* tr = ctx_->trace()) {
      tr->Instant(obs::MachinePid(machine_), TraceLane(), "template-replay",
                  "template", ctx_->backend()->now(),
                  {{"path_len", path_len},
                   {"period", period},
                   {"saved_cpu",
                    2 * (kBookkeepingElements - kTemplatedBookkeepingElements) *
                        PerElementCost()}});
    }
    CreateOutBagFromLengths(path_len, lens, /*templated=*/true);
    return;
  }
  ctx_->CountTemplateMiss();
  const std::vector<int> lens = ComputeInputLengths(path_len);
  step_template_.Observe(pos, meta, lens);
  CreateOutBagFromLengths(path_len, lens, /*templated=*/false);
}

void BagOperatorHost::CreateOutBag(int path_len) {
  CreateOutBagFromLengths(path_len, ComputeInputLengths(path_len),
                          /*templated=*/false);
}

void BagOperatorHost::CreateOutBagFromLengths(int path_len,
                                              const std::vector<int>& lens,
                                              bool templated) {
  OutBag bag;
  bag.path_len = path_len;
  bag.templated = templated;
  // Recovery replay: this bag's output survived a failed attempt, so the
  // kernel re-runs over the real data (reconstructing state exactly) but
  // charges no CPU and uses memory-speed I/O.
  bag.replay = ctx_->IsReplayBag(node_->id, instance_, path_len);
  size_t n = inputs_.size();
  bag.chosen.assign(n, 0);
  bag.fed.assign(n, 0);
  bag.closed.assign(n, false);
  bag.reuse.assign(n, false);

  if (node_->kind == NodeKind::kPhi) {
    // Select the single input whose matching prefix is longest — the
    // "latest assignment" in sequential semantics (Sec. 5.2.3).
    int best_input = -1;
    int best_len = 0;
    for (size_t i = 0; i < n; ++i) {
      if (lens[i] > best_len) {
        best_len = lens[i];
        best_input = static_cast<int>(i);
      }
    }
    if (best_input < 0) {
      ctx_->Fail(Status::Internal("Φ " + node_->name +
                                  " has no available input bag at path "
                                  "length " +
                                  std::to_string(path_len)));
      return;
    }
    bag.chosen[static_cast<size_t>(best_input)] = best_len;
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (lens[i] == 0) {
        ctx_->Fail(Status::Internal(
            "operator " + node_->name + " input " + std::to_string(i) +
            " has no available bag (definition should dominate use)"));
        return;
      }
      bag.chosen[i] = lens[i];
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (bag.chosen[i] > 0) {
      ++inputs_[i].bags[bag.chosen[i]].refs;  // creates entry if absent
    }
  }

  // Conditional-output gating entries exist from creation so that even
  // empty bags deliver their end-of-bag markers when the path triggers the
  // edge (Sec. 5.2.4).
  for (size_t e = 0; e < out_edges_.size(); ++e) {
    if (!out_edges_[e].conditional) continue;
    PendingSend ps;
    ps.bag_len = path_len;
    ps.edge_index = static_cast<int>(e);
    pending_sends_.push_back(std::move(ps));
  }

  out_bags_.push_back(std::move(bag));
}

// ----- processing -----

int BagOperatorHost::TraceLane() {
  if (trace_lane_ < 0) {
    trace_lane_ = ctx_->trace()->Lane(
        obs::MachinePid(machine_),
        "op:" + node_->name + "[" + std::to_string(instance_) + "]");
  }
  return trace_lane_;
}

void BagOperatorHost::EnqueueWork(double cpu_seconds, const char* phase,
                                  std::function<void()> action) {
  ctx_->ChargeOpCpu(node_->id, cpu_seconds);
  work_.push_back(WorkItem{cpu_seconds, phase, std::move(action)});
  Pump();
}

void BagOperatorHost::Pump() {
  if (busy_ || work_.empty() || ctx_->failed()) return;
  busy_ = true;
  WorkItem item = std::move(work_.front());
  work_.pop_front();
  auto action = std::make_shared<std::function<void()>>(
      std::move(item.action));
  // Label the core span with "<op>.<phase>" when tracing (the string is
  // only built on the traced path).
  std::string label;
  if (ctx_->trace() != nullptr && item.cpu > 0) {
    label = node_->name + "." + item.phase;
  }
  ctx_->backend()->ExecCpu(
      machine_, item.cpu,
      [this, action] {
        busy_ = false;
        ctx_->NoteProgress();
        if (!ctx_->failed()) (*action)();
        Pump();
      },
      std::move(label));
}

void BagOperatorHost::TryFeed() {
  if (ctx_->failed() || out_bags_.empty()) return;
  OutBag& bag = out_bags_.front();
  if (bag.finish_enqueued) return;

  if (!bag.opened) {
    bag.opened = true;
    bag.t_open = ctx_->backend()->now();
    // Loop-invariant hoisting (Sec. 5.3): reuse state when the chosen bag
    // id on a reusable input is unchanged since the previous output bag.
    if (kernel_ && ctx_->hoisting() && has_prev_) {
      for (size_t i = 0; i < inputs_.size(); ++i) {
        bag.reuse[i] = kernel_->CanReuseInput(static_cast<int>(i)) &&
                       bag.chosen[i] > 0 &&
                       prev_chosen_[i] == bag.chosen[i];
        if (bag.reuse[i]) {
          ctx_->CountReuse();
          if (obs::TraceRecorder* tr = ctx_->trace()) {
            // Build-side state kept across steps (Sec. 5.3).
            tr->Instant(obs::MachinePid(machine_), TraceLane(),
                        "hoisted-reuse", "hoisting", bag.t_open,
                        {{"input", static_cast<int>(i)},
                         {"bag_len", bag.chosen[i]}});
          }
        }
      }
    }
    std::vector<bool> reuse = bag.reuse;
    const double open_elements = bag.templated ? kTemplatedBookkeepingElements
                                               : kBookkeepingElements;
    EnqueueWork(bag.replay ? 0 : open_elements * PerElementCost(),
                "open", [this, reuse] {
      if (kernel_) {
        for (size_t i = 0; i < reuse.size(); ++i) {
          if (kernel_->CanReuseInput(static_cast<int>(i))) {
            kernel_->SetReuseInput(static_cast<int>(i), reuse[i]);
          }
        }
        kernel_->Open();
      } else {
        special_values_.clear();
        special_data_.clear();
      }
    });
  }

  const int blocking = kernel_ ? kernel_->BlockingInput() : -1;
  const int bag_len = bag.path_len;

  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (bag.closed[i]) continue;
    if (blocking >= 0 && static_cast<int>(i) != blocking &&
        !bag.closed[static_cast<size_t>(blocking)]) {
      continue;  // wait for the build side
    }
    if (bag.reuse[i] || bag.chosen[i] == 0) {
      bag.closed[i] = true;
      EnqueueWork(0, "close", [this, i, bag_len] {
        if (kernel_) {
          kernel_->Close(static_cast<int>(i), [this, bag_len](Chunk&& out) {
            EmitChunk(bag_len, std::move(out));
          });
        }
      });
      continue;
    }
    InputBagEntry& entry = inputs_[i].bags[bag.chosen[i]];
    const int chosen_len = bag.chosen[i];
    while (bag.fed[i] < entry.chunks.size()) {
      size_t idx = bag.fed[i]++;
      bag.elements_in += static_cast<int64_t>(entry.chunks[idx].size());
      // Per-chunk charging (amortized dispatch + payload bytes) instead of
      // the old per-element model.
      double cpu = bag.replay ? 0 : ChunkCost(entry.chunks[idx]);
      EnqueueWork(cpu, "push", [this, i, chosen_len, idx, bag_len] {
        const Chunk& chunk = inputs_[i].bags.at(chosen_len).chunks[idx];
        auto emit = [this, bag_len](Chunk&& out) {
          EmitChunk(bag_len, std::move(out));
        };
        if (kernel_) {
          kernel_->Push(static_cast<int>(i), chunk, emit);
        } else {
          SpecialPush(static_cast<int>(i), chunk);
        }
      });
    }
    if (entry.markers == inputs_[i].expected_markers &&
        bag.fed[i] == entry.chunks.size()) {
      bag.closed[i] = true;
      EnqueueWork(0, "close", [this, i, bag_len] {
        if (kernel_) {
          kernel_->Close(static_cast<int>(i), [this, bag_len](Chunk&& out) {
            EmitChunk(bag_len, std::move(out));
          });
        }
      });
    }
  }

  bool all_closed = true;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (!bag.closed[i]) all_closed = false;
  }
  if (all_closed && !bag.finish_enqueued) {
    bag.finish_enqueued = true;
    EnqueueFinish(bag);
  }
}

void BagOperatorHost::EnqueueFinish(OutBag& bag) {
  const int bag_len = bag.path_len;
  double cpu = (bag.templated ? kTemplatedBookkeepingElements
                              : kBookkeepingElements) *
               PerElementCost();
  if (node_->kind == NodeKind::kBagLit) {
    cpu += static_cast<double>(node_->literal.size()) * PerElementCost();
  }
  if (bag.replay) cpu = 0;
  EnqueueWork(cpu, "finish", [this, bag_len] {
    if (kernel_) {
      kernel_->Finish([this, bag_len](Chunk&& out) {
        EmitChunk(bag_len, std::move(out));
      });
      FinalizeActiveBag();
    } else {
      SpecialFinish();
    }
  });
}

void BagOperatorHost::FlushShuffleBuffers(int bag_len) {
  for (size_t e = 0; e < out_edges_.size(); ++e) {
    auto it = shuffle_buffers_.find({bag_len, e});
    if (it == shuffle_buffers_.end()) continue;
    for (Chunk& chunk : it->second) {
      SendOnEdge(e, bag_len, std::move(chunk));
    }
    shuffle_buffers_.erase(it);
  }
}

void BagOperatorHost::FinalizeActiveBag() {
  if (out_bags_.empty()) {
    // A finish callback fired with no active bag — a host-protocol
    // violation; surface it instead of aborting the simulator.
    ctx_->Fail(Status::Internal(
        "operator " + node_->name + "[" + std::to_string(instance_) +
        "] finalized with no active output bag"));
    return;
  }
  OutBag& bag = out_bags_.front();
  const int bag_len = bag.path_len;

  if (ctx_->blocking_shuffles()) FlushShuffleBuffers(bag_len);

  for (size_t e = 0; e < out_edges_.size(); ++e) {
    if (!out_edges_[e].conditional) {
      SendMarkerOnEdge(e, bag_len);
      continue;
    }
    PendingSend* ps = FindPendingSend(bag_len, e);
    if (ps == nullptr) {
      ctx_->Fail(Status::Internal(
          "operator " + node_->name + "[" + std::to_string(instance_) +
          "] bag @" + std::to_string(bag_len) +
          " finished without gating state on conditional edge " +
          std::to_string(e)));
      return;
    }
    ps->bag_finished = true;
    if (ps->state == PendingSend::State::kSending) {
      SendMarkerOnEdge(e, bag_len);
      ps->done = true;
    }
  }
  pending_sends_.remove_if([](const PendingSend& ps) {
    return ps.bag_finished && (ps.done ||
                               ps.state == PendingSend::State::kDropped);
  });

  if (obs::TraceRecorder* tr = ctx_->trace()) {
    // One span per output bag, named by the paper's bag identifier
    // (operator × execution-path prefix length).
    tr->Span(obs::MachinePid(machine_), TraceLane(),
             node_->name + "@" + std::to_string(bag_len), "operator",
             bag.t_open, ctx_->backend()->now(),
             {{"elements_in", bag.elements_in}, {"path_len", bag_len}});
  }
  MITOS_VLOG(3) << node_->name << "[" << instance_ << "] finished bag @"
                << bag_len << " (" << bag.elements_in << " elements in)";
  prev_chosen_ = bag.chosen;
  has_prev_ = true;
  ctx_->CountBag(bag.elements_in);
  ctx_->OnBagFinished(node_->id, instance_, bag_len, bag.replay);
  ReleaseAndPop();
}

void BagOperatorHost::ReleaseAndPop() {
  OutBag& bag = out_bags_.front();
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (bag.chosen[i] > 0) {
      auto it = inputs_[i].bags.find(bag.chosen[i]);
      if (it == inputs_[i].bags.end()) {
        // The chosen input bag vanished while this bag still held a
        // reference — an eviction-accounting bug; fail with context.
        ctx_->Fail(Status::Internal(
            "operator " + node_->name + "[" + std::to_string(instance_) +
            "] released bag @" + std::to_string(bag.path_len) +
            " but its chosen input " + std::to_string(i) + " bag @" +
            std::to_string(bag.chosen[i]) + " was already evicted"));
        return;
      }
      --it->second.refs;
      MaybeEvict(i);
    }
  }
  out_bags_.pop_front();
  TryFeed();
}

void BagOperatorHost::MaybeEvict(size_t input_index) {
  if (!ctx_->discard_spent_bags()) return;
  auto& bags = inputs_[input_index].bags;
  for (auto it = bags.begin(); it != bags.end();) {
    if (it->second.superseded && it->second.refs == 0) {
      ctx_->TrackMemory(-it->second.bytes);
      it = bags.erase(it);
    } else {
      ++it;
    }
  }
}

// ----- deliveries -----

void BagOperatorHost::DeliverChunk(int input_index, int bag_len,
                                   Chunk chunk) {
  if (ctx_->failed()) return;
  ctx_->NoteProgress();
  ctx_->CountChunk(chunk.fallback());
  InputBagEntry& entry =
      inputs_[static_cast<size_t>(input_index)].bags[bag_len];
  int64_t bytes = static_cast<int64_t>(chunk.SerializedSize());
  entry.bytes += bytes;
  ctx_->TrackMemory(bytes);
  entry.chunks.push_back(std::move(chunk));
  TryFeed();
}

void BagOperatorHost::DeliverMarker(int input_index, int bag_len) {
  if (ctx_->failed()) return;
  ctx_->NoteProgress();
  InputBagEntry& entry =
      inputs_[static_cast<size_t>(input_index)].bags[bag_len];
  ++entry.markers;
  if (entry.markers >
      inputs_[static_cast<size_t>(input_index)].expected_markers) {
    // A producer double-counted an end-of-bag marker — a runtime protocol
    // violation, not a caller error; report it instead of aborting.
    ctx_->Fail(Status::Internal(
        node_->name + "[" + std::to_string(instance_) + "] input " +
        std::to_string(input_index) + " received " +
        std::to_string(entry.markers) + " markers for bag @" +
        std::to_string(bag_len) + ", expected at most " +
        std::to_string(
            inputs_[static_cast<size_t>(input_index)].expected_markers)));
    return;
  }
  TryFeed();
}

// ----- special (kernel-less) nodes -----

void BagOperatorHost::SpecialPush(int input, const Chunk& chunk) {
  switch (node_->kind) {
    case NodeKind::kCondition:
    case NodeKind::kReadFile:
      MITOS_CHECK_EQ(input, 0);
      chunk.AppendTo(&special_values_);
      break;
    case NodeKind::kWriteFile:
      if (input == 0) {
        chunk.AppendTo(&special_data_);
      } else {
        chunk.AppendTo(&special_values_);
      }
      break;
    default:
      MITOS_UNREACHABLE();
  }
}

void BagOperatorHost::SpecialFinish() {
  OutBag& bag = out_bags_.front();
  const int bag_len = bag.path_len;
  switch (node_->kind) {
    case NodeKind::kBagLit: {
      EmitChunk(bag_len, Chunk::OfDatums(node_->literal, ctx_->columnar()));
      FinalizeActiveBag();
      return;
    }
    case NodeKind::kCondition: {
      if (special_values_.size() != 1 || !special_values_[0].is_bool()) {
        ctx_->Fail(Status::InvalidArgument(
            "condition " + node_->name + " expected a one-element bool bag"
            ", got " + mitos::ToString(special_values_, 4)));
        return;
      }
      bool value = special_values_[0].boolean();
      ctx_->OnDecision(node_->block, bag_len, value, machine_);
      FinalizeActiveBag();
      return;
    }
    case NodeKind::kReadFile: {
      if (special_values_.size() != 1 || !special_values_[0].is_string()) {
        ctx_->Fail(Status::InvalidArgument(
            "readFile " + node_->name + " expected a one-element string "
            "filename bag, got " + mitos::ToString(special_values_, 4)));
        return;
      }
      StartFileRead(special_values_[0].str());
      return;
    }
    case NodeKind::kWriteFile: {
      FinishFileWrite();
      return;
    }
    default:
      MITOS_UNREACHABLE();
  }
}

void BagOperatorHost::StartFileRead(const std::string& filename) {
  StatusOr<DatumVector> data = ctx_->fs()->ReadPartition(
      filename, static_cast<size_t>(node_->parallelism),
      static_cast<size_t>(instance_));
  if (!data.ok()) {
    ctx_->Fail(data.status());
    return;
  }
  const int bag_len = out_bags_.front().path_len;
  const bool replay = out_bags_.front().replay;
  size_t bytes = std::max<size_t>(SerializedSize(*data), 1);
  size_t chunk_elements = ctx_->backend()->config().chunk_elements;
  // Columnarize the partition once, then cut zero-copy slices.
  Chunk all = Chunk::OfDatums(std::move(*data), ctx_->columnar());
  auto chunks = std::make_shared<ChunkVector>();
  for (size_t begin = 0; begin < all.size(); begin += chunk_elements) {
    size_t len = std::min(chunk_elements, all.size() - begin);
    chunks->push_back(all.Slice(begin, len));
  }
  if (chunks->empty()) chunks->emplace_back();  // empty partition
  int pieces = static_cast<int>(chunks->size());
  special_async_ = true;
  // Emit chunks at disk pace so downstream work overlaps with the read —
  // this is one of the two overlaps behind loop pipelining. In-memory
  // cached datasets (Spark RDD cache) read at memory speed.
  ctx_->backend()->DiskRead(
      machine_, bytes, pieces,
      [this, chunks, pieces, bag_len](int i) {
        if (ctx_->failed()) return;
        EmitChunk(bag_len, std::move((*chunks)[static_cast<size_t>(i)]));
        if (i == pieces - 1) {
          special_async_ = false;
          FinalizeActiveBag();
        }
      },
      IsCacheFile(filename) || replay);
}

void BagOperatorHost::FinishFileWrite() {
  if (special_values_.size() != 1 || !special_values_[0].is_string()) {
    ctx_->Fail(Status::InvalidArgument(
        "writeFile " + node_->name + " expected a one-element string "
        "filename bag, got " + mitos::ToString(special_values_, 4)));
    return;
  }
  const std::string filename = special_values_[0].str();
  const int bag_len = out_bags_.front().path_len;
  const bool replay = out_bags_.front().replay;
  ctx_->BeginFileWrite(filename, BagId{node_->id, bag_len});
  auto data = std::make_shared<DatumVector>(std::move(special_data_));
  special_data_.clear();
  size_t bytes = std::max<size_t>(SerializedSize(*data), 1);
  special_async_ = true;
  ctx_->backend()->DiskIo(
      machine_, bytes,
      [this, filename, data, bag_len] {
        if (ctx_->failed()) return;
        ctx_->AppendOutput(filename, instance_, bag_len, *data);
        special_async_ = false;
        FinalizeActiveBag();
      },
      IsCacheFile(filename) || replay);
}

// ----- emission -----

void BagOperatorHost::EmitChunk(int bag_len, Chunk&& chunk) {
  if (chunk.empty()) return;
  const size_t max_elems = ctx_->backend()->config().chunk_elements;
  const size_t total = chunk.size();
  if (total <= max_elems) {
    RoutePiece(bag_len, std::move(chunk));
    return;
  }
  // Split oversized emissions so consumers pipeline at chunk granularity.
  // Slices share the emitted buffer; no payload is copied.
  for (size_t begin = 0; begin < total; begin += max_elems) {
    RoutePiece(bag_len, chunk.Slice(begin, std::min(max_elems,
                                                    total - begin)));
  }
}

void BagOperatorHost::RoutePiece(int bag_len, Chunk piece) {
  for (size_t e = 0; e < out_edges_.size(); ++e) {
    // Move the shared handle on the last (or only) edge; earlier edges
    // copy it (a refcount bump, never a payload copy).
    const bool last = e + 1 == out_edges_.size();
    if (!out_edges_[e].conditional) {
      if (ctx_->blocking_shuffles() &&
          out_edges_[e].kind == EdgeKind::kShuffle) {
        ChunkVector& buffer = shuffle_buffers_[{bag_len, e}];
        if (last) {
          buffer.push_back(std::move(piece));
        } else {
          buffer.push_back(piece);
        }
      } else if (last) {
        SendOnEdge(e, bag_len, std::move(piece));
      } else {
        SendOnEdge(e, bag_len, piece);
      }
      continue;
    }
    PendingSend* ps = FindPendingSend(bag_len, e);
    if (ps == nullptr) {
      ctx_->Fail(Status::Internal(
          "operator " + node_->name + "[" + std::to_string(instance_) +
          "] emitted on conditional edge " + std::to_string(e) +
          " for bag @" + std::to_string(bag_len) +
          " without gating state"));
      return;
    }
    switch (ps->state) {
      case PendingSend::State::kSending:
        if (last) {
          SendOnEdge(e, bag_len, std::move(piece));
        } else {
          SendOnEdge(e, bag_len, piece);
        }
        break;
      case PendingSend::State::kPending:
        ctx_->TrackMemory(static_cast<int64_t>(piece.SerializedSize()));
        if (last) {
          ps->buffered.push_back(std::move(piece));
        } else {
          ps->buffered.push_back(piece);
        }
        break;
      case PendingSend::State::kDropped:
        break;
    }
  }
}

bool BagOperatorHost::PartitionChunk(const Chunk& chunk, size_t edge_index,
                                     ChunkVector* parts) {
  const OutEdgeInfo& edge = out_edges_[edge_index];
  const size_t par = static_cast<size_t>(edge.consumer_par);
  const bool by_key = edge.shuffle_key == ShuffleKey::kField0;
  const size_t n = chunk.size();
  parts->assign(par, Chunk());
  if (n == 0) return true;
  switch (chunk.rep()) {
    case Chunk::Rep::kInt64:
    case Chunk::Rep::kDouble: {
      if (by_key) {
        // Reachable from user programs (a keyed operation downstream of a
        // non-tuple bag); fail the job instead of aborting.
        ctx_->Fail(Status::InvalidArgument(
            "operator " + node_->name +
            " shuffles by key but emitted a non-tuple element: " +
            chunk.At(0).ToString()));
        return false;
      }
      if (chunk.rep() == Chunk::Rep::kInt64) {
        std::vector<std::vector<int64_t>> cols(par);
        const int64_t* in = chunk.i64();
        for (size_t i = 0; i < n; ++i) {
          cols[chunk.HashAt(i) % par].push_back(in[i]);
        }
        for (size_t p = 0; p < par; ++p) {
          if (!cols[p].empty()) {
            (*parts)[p] = Chunk::OfInt64(std::move(cols[p]));
          }
        }
      } else {
        std::vector<std::vector<double>> cols(par);
        const double* in = chunk.f64();
        for (size_t i = 0; i < n; ++i) {
          cols[chunk.HashAt(i) % par].push_back(in[i]);
        }
        for (size_t p = 0; p < par; ++p) {
          if (!cols[p].empty()) {
            (*parts)[p] = Chunk::OfDouble(std::move(cols[p]));
          }
        }
      }
      return true;
    }
    case Chunk::Rep::kInt64Pair: {
      std::vector<std::vector<int64_t>> keys(par);
      std::vector<std::vector<int64_t>> vals(par);
      const int64_t* ks = chunk.keys();
      const int64_t* vs = chunk.vals();
      for (size_t i = 0; i < n; ++i) {
        size_t h = by_key ? chunk.HashField0At(i) : chunk.HashAt(i);
        size_t p = h % par;
        keys[p].push_back(ks[i]);
        vals[p].push_back(vs[i]);
      }
      for (size_t p = 0; p < par; ++p) {
        if (!keys[p].empty()) {
          (*parts)[p] =
              Chunk::OfInt64Pairs(std::move(keys[p]), std::move(vals[p]));
        }
      }
      return true;
    }
    case Chunk::Rep::kDatums: {
      std::vector<DatumVector> boxed(par);
      const Datum* data = chunk.datums();
      for (size_t i = 0; i < n; ++i) {
        const Datum& element = data[i];
        size_t h;
        if (by_key) {
          if (!element.is_tuple() || element.size() < 1) {
            ctx_->Fail(Status::InvalidArgument(
                "operator " + node_->name +
                " shuffles by key but emitted a non-tuple element: " +
                element.ToString()));
            return false;
          }
          h = element.field(0).Hash();
        } else {
          h = element.Hash();
        }
        boxed[h % par].push_back(element);
      }
      for (size_t p = 0; p < par; ++p) {
        if (!boxed[p].empty()) {
          (*parts)[p] =
              Chunk::OfDatums(std::move(boxed[p]), ctx_->columnar());
        }
      }
      return true;
    }
  }
  return true;
}

void BagOperatorHost::SendOnEdge(size_t edge_index, int bag_len,
                                 Chunk chunk) {
  const OutEdgeInfo& edge = out_edges_[edge_index];
  switch (edge.kind) {
    case EdgeKind::kForward:
      SendChunkTo(edge, instance_, bag_len, std::move(chunk));
      break;
    case EdgeKind::kGather:
      SendChunkTo(edge, 0, bag_len, std::move(chunk));
      break;
    case EdgeKind::kBroadcast:
      // Every consumer receives the same shared handle: a broadcast costs
      // consumer_par refcount bumps, not consumer_par payload copies.
      for (int ci = 0; ci < edge.consumer_par; ++ci) {
        if (ci + 1 == edge.consumer_par) {
          SendChunkTo(edge, ci, bag_len, std::move(chunk));
        } else {
          SendChunkTo(edge, ci, bag_len, chunk);
        }
      }
      break;
    case EdgeKind::kShuffle: {
      ChunkVector parts;
      if (!PartitionChunk(chunk, edge_index, &parts)) return;
      for (int ci = 0; ci < edge.consumer_par; ++ci) {
        Chunk& part = parts[static_cast<size_t>(ci)];
        if (!part.empty()) {
          SendChunkTo(edge, ci, bag_len, std::move(part));
        }
      }
      break;
    }
  }
}

void BagOperatorHost::SendChunkTo(const OutEdgeInfo& edge,
                                  int consumer_instance, int bag_len,
                                  Chunk chunk) {
  size_t bytes = chunk.SerializedSize() +
                 ctx_->backend()->config().control_message_bytes;
  int dst = ctx_->MachineOf(edge.consumer, consumer_instance);
  BagOperatorHost* consumer = ctx_->host(edge.consumer, consumer_instance);
  int input_index = edge.input_index;
  // The chunk handle rides inside the completion callback: on both
  // backends the channel hop moves a pointer, never the payload.
  ctx_->backend()->Send(machine_, dst, bytes,
                        [consumer, input_index, bag_len,
                         chunk = std::move(chunk)]() mutable {
                          consumer->DeliverChunk(input_index, bag_len,
                                                 std::move(chunk));
                        });
}

void BagOperatorHost::SendMarkerOnEdge(size_t edge_index, int bag_len) {
  const OutEdgeInfo& edge = out_edges_[edge_index];
  std::vector<int> dests;
  switch (edge.kind) {
    case EdgeKind::kForward:
      dests = {instance_};
      break;
    case EdgeKind::kGather:
      dests = {0};
      break;
    case EdgeKind::kBroadcast:
    case EdgeKind::kShuffle:
      for (int ci = 0; ci < edge.consumer_par; ++ci) dests.push_back(ci);
      break;
  }
  size_t bytes = ctx_->backend()->config().control_message_bytes;
  for (int ci : dests) {
    int dst = ctx_->MachineOf(edge.consumer, ci);
    BagOperatorHost* consumer = ctx_->host(edge.consumer, ci);
    int input_index = edge.input_index;
    ctx_->backend()->Send(machine_, dst, bytes,
                          [consumer, input_index, bag_len] {
                            consumer->DeliverMarker(input_index, bag_len);
                          });
  }
}

BagOperatorHost::PendingSend* BagOperatorHost::FindPendingSend(
    int bag_len, size_t edge_index) {
  for (PendingSend& ps : pending_sends_) {
    if (ps.bag_len == bag_len &&
        ps.edge_index == static_cast<int>(edge_index)) {
      return &ps;
    }
  }
  return nullptr;
}

void BagOperatorHost::AdvancePendingSends(ir::BlockId block) {
  const ir::Cfg& cfg = ctx_->cfg();
  for (PendingSend& ps : pending_sends_) {
    if (ps.state != PendingSend::State::kPending) continue;
    const OutEdgeInfo& edge = out_edges_[static_cast<size_t>(ps.edge_index)];
    if (block == edge.consumer_block) {
      // Transmit: the path reached the consumer before this operator's
      // block re-occurred (Sec. 5.2.4).
      ps.state = PendingSend::State::kSending;
      for (Chunk& chunk : ps.buffered) {
        ctx_->TrackMemory(-static_cast<int64_t>(chunk.SerializedSize()));
        SendOnEdge(static_cast<size_t>(ps.edge_index), ps.bag_len,
                   std::move(chunk));
      }
      ps.buffered.clear();
      if (ps.bag_finished) {
        SendMarkerOnEdge(static_cast<size_t>(ps.edge_index), ps.bag_len);
        ps.done = true;
      }
    } else if (block == node_->block ||
               !cfg.CanReachAvoiding(block, edge.consumer_block,
                                     node_->block)) {
      // A newer bag supersedes this one on the edge, or the consumer can
      // no longer be reached without passing this operator again: discard
      // the partition (the paper's discard rule).
      ps.state = PendingSend::State::kDropped;
      for (const Chunk& chunk : ps.buffered) {
        ctx_->TrackMemory(-static_cast<int64_t>(chunk.SerializedSize()));
      }
      ps.buffered.clear();
    }
  }
  pending_sends_.remove_if([](const PendingSend& ps) {
    return ps.bag_finished && (ps.done ||
                               ps.state == PendingSend::State::kDropped);
  });
}

// ----- diagnostics -----

bool BagOperatorHost::Idle() const {
  return out_bags_.empty() && work_.empty() && !busy_ && !special_async_;
}

std::string BagOperatorHost::DebugState() const {
  std::string s = node_->name + "[" + std::to_string(instance_) + "]";
  s += " out_bags=" + std::to_string(out_bags_.size());
  if (!out_bags_.empty()) {
    const OutBag& bag = out_bags_.front();
    s += " front(len=" + std::to_string(bag.path_len);
    for (size_t i = 0; i < inputs_.size(); ++i) {
      s += ", in" + std::to_string(i) + "=" + std::to_string(bag.chosen[i]);
      s += bag.closed[i] ? "closed" : "open";
      auto it = inputs_[i].bags.find(bag.chosen[i]);
      if (it != inputs_[i].bags.end()) {
        s += "(" + std::to_string(it->second.chunks.size()) + "ch," +
             std::to_string(it->second.markers) + "/" +
             std::to_string(inputs_[i].expected_markers) + "mk)";
      }
    }
    s += ")";
  }
  s += busy_ ? " busy" : "";
  s += special_async_ ? " io" : "";
  return s;
}

}  // namespace mitos::runtime
