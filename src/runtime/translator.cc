#include "runtime/translator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace mitos::runtime {

namespace {

using dataflow::EdgeKind;
using dataflow::EdgeRef;
using dataflow::LogicalGraph;
using dataflow::LogicalNode;
using dataflow::NodeId;
using dataflow::NodeKind;
using dataflow::ShuffleKey;

double CostFactor(NodeKind kind) {
  switch (kind) {
    case NodeKind::kBagLit: return 0.2;
    case NodeKind::kReadFile: return 0.3;
    case NodeKind::kMap: return 1.0;
    case NodeKind::kFilter: return 0.8;
    case NodeKind::kFlatMap: return 1.2;
    case NodeKind::kReduceByKey: return 1.6;  // hash aggregate
    case NodeKind::kLocalReduce: return 1.0;
    case NodeKind::kFinalReduce: return 1.0;
    case NodeKind::kLocalCount: return 0.3;
    case NodeKind::kJoin: return 1.5;  // build insert / probe lookup
    case NodeKind::kUnion: return 0.3;
    case NodeKind::kDistinct: return 1.5;
    case NodeKind::kCombine2: return 0.5;
    case NodeKind::kPhi: return 0.3;
    case NodeKind::kWriteFile: return 0.5;
    case NodeKind::kCondition: return 0.2;
  }
  return 1.0;
}

class Translator {
 public:
  Translator(const ir::Program& program, int data_parallelism)
      : program_(program), data_par_(data_parallelism) {}

  StatusOr<TranslateResult> Run() {
    MITOS_CHECK_GT(data_par_, 0);
    // Pass 1: create nodes (parallelism resolved afterwards, because Φ
    // back-edge inputs reference nodes created later).
    for (ir::BlockId b = 0; b < program_.num_blocks(); ++b) {
      const ir::BasicBlock& block = program_.block(b);
      for (const ir::Stmt& stmt : block.stmts) {
        MITOS_RETURN_IF_ERROR(AddStmtNodes(b, stmt));
      }
      if (block.term.kind == ir::Terminator::Kind::kBranch) {
        AddConditionNode(b, block.term);
      }
    }
    // Pass 2: wire edges.
    for (const PendingEdge& pe : pending_edges_) {
      MITOS_RETURN_IF_ERROR(WireEdge(pe));
    }
    // Pass 3: resolve parallelism by fixpoint (cycles go through Φs).
    ResolveParallelism();
    // Pass 4: edge kinds that depend on final parallelism.
    MITOS_RETURN_IF_ERROR(FinalizeEdgeKinds());

    TranslateResult result;
    result.graph = std::move(graph_);
    result.var_node = std::move(var_node_);
    return result;
  }

 private:
  struct PendingEdge {
    NodeId to;
    int input_index;
    ir::VarId from_var;
  };

  LogicalNode& Node(NodeId id) { return graph_.nodes[static_cast<size_t>(id)]; }

  NodeId NewNode(NodeKind kind, ir::BlockId block, std::string name) {
    LogicalNode node;
    node.id = graph_.num_nodes();
    node.kind = kind;
    node.block = block;
    node.name = std::move(name);
    node.cost_factor = CostFactor(kind);
    graph_.nodes.push_back(std::move(node));
    return graph_.nodes.back().id;
  }

  void QueueEdge(NodeId to, int input_index, ir::VarId from_var) {
    pending_edges_.push_back(PendingEdge{to, input_index, from_var});
  }

  Status AddStmtNodes(ir::BlockId b, const ir::Stmt& stmt) {
    const std::string name =
        stmt.result != ir::kNoVar ? program_.var(stmt.result).name : "sink";
    const bool singleton =
        stmt.result != ir::kNoVar && program_.var(stmt.result).singleton;

    auto simple = [&](NodeKind kind) {
      NodeId id = NewNode(kind, b, name);
      Node(id).singleton = singleton;
      for (size_t i = 0; i < stmt.inputs.size(); ++i) {
        QueueEdge(id, static_cast<int>(i), stmt.inputs[i]);
      }
      if (stmt.result != ir::kNoVar) var_node_[stmt.result] = id;
      return id;
    };

    switch (stmt.op) {
      case ir::OpKind::kBagLit: {
        NodeId id = simple(NodeKind::kBagLit);
        Node(id).literal = stmt.bag_lit;
        return Status::Ok();
      }
      case ir::OpKind::kReadFile:
        simple(NodeKind::kReadFile);
        return Status::Ok();
      case ir::OpKind::kMap: {
        NodeId id = simple(NodeKind::kMap);
        Node(id).unary = stmt.unary;
        return Status::Ok();
      }
      case ir::OpKind::kFilter: {
        NodeId id = simple(NodeKind::kFilter);
        Node(id).pred = stmt.pred;
        return Status::Ok();
      }
      case ir::OpKind::kFlatMap: {
        NodeId id = simple(NodeKind::kFlatMap);
        Node(id).flat = stmt.flat;
        return Status::Ok();
      }
      case ir::OpKind::kReduceByKey: {
        NodeId id = simple(NodeKind::kReduceByKey);
        Node(id).binary = stmt.binary;
        return Status::Ok();
      }
      case ir::OpKind::kJoin:
        simple(NodeKind::kJoin);
        return Status::Ok();
      case ir::OpKind::kUnion:
        simple(NodeKind::kUnion);
        return Status::Ok();
      case ir::OpKind::kDistinct:
        simple(NodeKind::kDistinct);
        return Status::Ok();
      case ir::OpKind::kCombine2: {
        NodeId id = simple(NodeKind::kCombine2);
        Node(id).binary = stmt.binary;
        return Status::Ok();
      }
      case ir::OpKind::kPhi:
        simple(NodeKind::kPhi);
        return Status::Ok();
      case ir::OpKind::kWriteFile:
        simple(NodeKind::kWriteFile);
        return Status::Ok();
      case ir::OpKind::kReduce: {
        // Expand into localReduce (parallel pre-fold) + finalReduce.
        NodeId local = NewNode(NodeKind::kLocalReduce, b, name + "_partial");
        Node(local).binary = stmt.binary;
        QueueEdge(local, 0, stmt.inputs[0]);
        NodeId final_id = NewNode(NodeKind::kFinalReduce, b, name);
        Node(final_id).binary = stmt.binary;
        Node(final_id).singleton = true;
        Node(final_id).inputs.push_back(EdgeRef{
            local, 0, EdgeKind::kGather, ShuffleKey::kField0, false});
        var_node_[stmt.result] = final_id;
        return Status::Ok();
      }
      case ir::OpKind::kCount: {
        NodeId local = NewNode(NodeKind::kLocalCount, b, name + "_partial");
        QueueEdge(local, 0, stmt.inputs[0]);
        NodeId final_id = NewNode(NodeKind::kFinalReduce, b, name);
        Node(final_id).binary = lang::fns::SumInt64();
        Node(final_id).singleton = true;
        Node(final_id).inputs.push_back(EdgeRef{
            local, 0, EdgeKind::kGather, ShuffleKey::kField0, false});
        var_node_[stmt.result] = final_id;
        return Status::Ok();
      }
    }
    return Status::Internal("unknown IR op");
  }

  void AddConditionNode(ir::BlockId b, const ir::Terminator& term) {
    NodeId id = NewNode(NodeKind::kCondition, b,
                        "cond_" + program_.var(term.cond).name);
    Node(id).singleton = true;
    Node(id).branch_true = term.target;
    Node(id).branch_false = term.target_else;
    QueueEdge(id, 0, term.cond);
  }

  Status WireEdge(const PendingEdge& pe) {
    auto it = var_node_.find(pe.from_var);
    if (it == var_node_.end()) {
      return Status::Internal("translator: no node for variable " +
                              program_.var(pe.from_var).name);
    }
    EdgeRef edge;
    edge.from = it->second;
    edge.input_index = pe.input_index;
    LogicalNode& to = Node(pe.to);
    edge.conditional = Node(edge.from).block != to.block;
    // Kind refined in FinalizeEdgeKinds; record structural intent here.
    if (static_cast<size_t>(pe.input_index) >= to.inputs.size()) {
      to.inputs.resize(static_cast<size_t>(pe.input_index) + 1);
    }
    to.inputs[static_cast<size_t>(pe.input_index)] = edge;
    return Status::Ok();
  }

  void ResolveParallelism() {
    // Initial assignment: singletons and inherently-serial kinds are 1;
    // partitioned kinds are data_par_; element-wise kinds start unknown (0)
    // and inherit from their inputs.
    for (LogicalNode& node : graph_.nodes) {
      if (node.singleton) {
        node.parallelism = 1;
        continue;
      }
      switch (node.kind) {
        case NodeKind::kBagLit:
        case NodeKind::kFinalReduce:
        case NodeKind::kCombine2:
        case NodeKind::kCondition:
          node.parallelism = 1;
          break;
        case NodeKind::kReadFile:
        case NodeKind::kReduceByKey:
        case NodeKind::kJoin:
        case NodeKind::kDistinct:
          node.parallelism = data_par_;
          break;
        default:
          node.parallelism = 0;  // unknown; resolved below
          break;
      }
    }
    // Monotone fixpoint: inherit-from-inputs nodes take the max of their
    // inputs' parallelism and may still *grow* while cyclic inputs (Φ
    // back-edges) resolve — e.g. a Φ over an empty-literal init (par 1) and
    // a loop-carried big bag (par P) must end at P.
    std::vector<bool> adjustable(graph_.nodes.size());
    for (const LogicalNode& node : graph_.nodes) {
      adjustable[static_cast<size_t>(node.id)] = node.parallelism == 0;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (LogicalNode& node : graph_.nodes) {
        if (!adjustable[static_cast<size_t>(node.id)]) continue;
        int par = node.parallelism;
        for (const EdgeRef& edge : node.inputs) {
          par = std::max(par, Node(edge.from).parallelism);
        }
        if (par != node.parallelism) {
          node.parallelism = par;
          changed = true;
        }
      }
    }
    // Anything still unresolved (e.g. a Φ cycle with no grounded input —
    // cannot happen for verified IR, but stay safe) defaults to data_par_.
    for (LogicalNode& node : graph_.nodes) {
      if (node.parallelism == 0) node.parallelism = data_par_;
    }
  }

  Status FinalizeEdgeKinds() {
    for (LogicalNode& node : graph_.nodes) {
      for (size_t i = 0; i < node.inputs.size(); ++i) {
        EdgeRef& edge = node.inputs[i];
        const LogicalNode& from = Node(edge.from);
        switch (node.kind) {
          case NodeKind::kReduceByKey:
            edge.kind = EdgeKind::kShuffle;
            edge.shuffle_key = ShuffleKey::kField0;
            break;
          case NodeKind::kJoin:
            edge.kind = EdgeKind::kShuffle;
            edge.shuffle_key = ShuffleKey::kField0;
            break;
          case NodeKind::kDistinct:
            edge.kind = EdgeKind::kShuffle;
            edge.shuffle_key = ShuffleKey::kWholeElement;
            break;
          case NodeKind::kFinalReduce:
            edge.kind = EdgeKind::kGather;
            break;
          case NodeKind::kReadFile:
            // Filename metadata goes to every reader instance.
            if (from.parallelism != 1) {
              return Status::InvalidArgument(
                  "readFile filename must be a one-element bag "
                  "(parallelism-1 producer), got parallelism " +
                  std::to_string(from.parallelism));
            }
            edge.kind = EdgeKind::kBroadcast;
            break;
          case NodeKind::kWriteFile:
            if (i == 1) {  // filename input
              if (from.parallelism != 1) {
                return Status::InvalidArgument(
                    "writeFile filename must be a one-element bag");
              }
              edge.kind = EdgeKind::kBroadcast;
            } else {
              edge.kind = from.parallelism <= node.parallelism
                              ? EdgeKind::kForward
                              : EdgeKind::kGather;
            }
            break;
          default:
            edge.kind = from.parallelism <= node.parallelism
                            ? EdgeKind::kForward
                            : EdgeKind::kGather;
            break;
        }
      }
    }
    return Status::Ok();
  }

  const ir::Program& program_;
  int data_par_;
  LogicalGraph graph_;
  std::map<ir::VarId, NodeId> var_node_;
  std::vector<PendingEdge> pending_edges_;
};

}  // namespace

StatusOr<TranslateResult> Translate(const ir::Program& program,
                                    int data_parallelism) {
  Translator translator(program, data_parallelism);
  return translator.Run();
}

}  // namespace mitos::runtime
