#include "runtime/path.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace mitos::runtime {

std::string ExecutionPath::ToString() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (i > 0) out << ' ';
    out << blocks_[i];
  }
  out << (complete_ ? "] (complete)" : "]");
  return out.str();
}

void ControlFlowManager::AdvanceTo(int new_len, bool complete) {
  // A listener may synchronously cause another delivery (e.g. an operator
  // reacting to the new position completes the next decision with zero
  // intervening simulated work). Queue instead of recursing so the
  // outermost call drains everything and listeners see positions in order.
  pending_.emplace_back(new_len, complete);
  if (advancing_) return;
  advancing_ = true;
  while (!pending_.empty()) {
    auto [len, comp] = pending_.front();
    pending_.pop_front();
    while (known_len_ < std::min(len, path_->size())) {
      int pos = known_len_++;
      ir::BlockId block = path_->at(pos);
      for (auto& listener : listeners_) listener(pos, block);
    }
    if (comp && !known_complete_ && known_len_ == path_->size()) {
      known_complete_ = true;
      for (auto& listener : completion_listeners_) listener();
    }
  }
  advancing_ = false;
}

PathAuthority::PathAuthority(const ir::Program* program, Backend* backend,
                             ExecutionPath* path,
                             std::vector<ControlFlowManager*> managers,
                             Options options,
                             std::function<void(Status)> on_error)
    : program_(program),
      backend_(backend),
      managers_(std::move(managers)),
      options_(options),
      on_error_(std::move(on_error)),
      path_(path) {
  MITOS_CHECK(program != nullptr);
  MITOS_CHECK(backend != nullptr);
  MITOS_CHECK(path != nullptr);
  // Fault handling needs the simulator's background timers (ack-retry
  // backoff); it is rejected upstream for real-parallel backends.
  MITOS_CHECK(options_.faults == nullptr || backend->simulator() != nullptr);
}

PathAuthority::~PathAuthority() { *alive_ = false; }

void PathAuthority::Start(int machine) {
  if (path_->size() != 0) {
    // A non-empty path at job start means the caller reused the path
    // object across jobs — a wiring bug; report it instead of aborting.
    on_error_(Status::Internal(
        "PathAuthority::Start on a non-empty path (len " +
        std::to_string(path_->size()) + ")"));
    return;
  }
  AppendChain(program_->entry(), machine, /*initial=*/true);
}

void PathAuthority::OnDecision(ir::BlockId block, int at_len, bool value,
                               int machine) {
  if (path_->complete()) {
    on_error_(Status::Internal("decision after path completion"));
    return;
  }
  if (at_len != path_->size()) {
    on_error_(Status::Internal(
        "out-of-order control flow decision: path len " +
        std::to_string(path_->size()) + ", decision at " +
        std::to_string(at_len)));
    return;
  }
  const ir::Terminator& term = program_->block(block).term;
  if (term.kind != ir::Terminator::Kind::kBranch) {
    // A decision can only come from a condition node, which the translator
    // places in branch-terminated blocks — anything else means the plan the
    // runtime is executing disagrees with the IR it was built from.
    on_error_(Status::Internal(
        "control flow decision in block " + std::to_string(block) +
        " whose terminator is not a branch"));
    return;
  }
  ++decisions_;
  MITOS_VLOG(2) << "decision " << decisions_ - 1 << ": block " << block
                << " -> " << (value ? "true" : "false") << " (path len "
                << path_->size() << ", machine " << machine << ")";
  if (options_.trace != nullptr) {
    // One instant event per control-flow decision, on the machine whose
    // condition-node instance decided.
    int pid = obs::MachinePid(machine);
    options_.trace->Instant(
        pid, options_.trace->Lane(pid, "control-flow"), "decision",
        "control-flow", backend_->now(),
        {{"step", decisions_ - 1},
         {"block", block},
         {"value", value},
         {"path_len", at_len}});
  }
  if (options_.metrics != nullptr) options_.metrics->Inc("decisions");
  if (options_.event_log != nullptr) {
    options_.event_log->Append(backend_->now(), "decision",
                               {{"step", decisions_ - 1},
                                {"block", block},
                                {"value", value},
                                {"path_len", at_len},
                                {"machine", machine}});
  }
  const double now = backend_->now();
  pending_step_ = PendingStep{block, value, now, now};
  AppendChain(value ? term.target : term.target_else, machine);
}

void PathAuthority::RecordStep(bool initial) {
  const double now = backend_->now();
  const sim::ClusterMetrics cm = backend_->MetricsSnapshot();
  const int64_t elements =
      options_.elements_probe ? options_.elements_probe() : 0;
  if (!initial) {
    const int step = decisions_ - 1;
    // barrier_wait is the time the decision sat waiting for the superstep
    // barrier (zero for pipelined engines); decision_overhead is the
    // coordination cost charged after release (FLINK-3322-style).
    const double barrier_wait =
        pending_step_.release_time - pending_step_.decision_time;
    const double decision_overhead = now - pending_step_.release_time;
    if (options_.trace != nullptr) {
      // The step span covers everything since the previous broadcast: the
      // superstep in a barriered engine, and the (overlapping) slice of
      // work a pipelined engine finished while this decision raced ahead.
      options_.trace->Span(
          obs::kEnginePid, options_.trace->Lane(obs::kEnginePid, "steps"),
          "step" + std::to_string(step), "step", last_broadcast_time_, now,
          {{"block", pending_step_.block},
           {"value", pending_step_.value},
           {"path_len", path_->size()},
           {"barrier_wait", barrier_wait},
           {"decision_overhead", decision_overhead}});
    }
    if (options_.metrics != nullptr) {
      obs::StepRecord record;
      record.index = step;
      record.block = pending_step_.block;
      record.value = pending_step_.value;
      record.path_len = path_->size();
      record.decision_time = pending_step_.decision_time;
      record.broadcast_time = now;
      record.barrier_wait = barrier_wait;
      record.decision_overhead = decision_overhead;
      record.elements = elements - last_elements_;
      record.net_bytes = cm.network_bytes - last_net_bytes_;
      record.disk_bytes = cm.disk_bytes - last_disk_bytes_;
      options_.metrics->AddStep(record);
      options_.metrics->Observe("step_barrier_wait_seconds",
                                record.barrier_wait);
      options_.metrics->Observe("step_decision_overhead_seconds",
                                record.decision_overhead);
    }
    if (options_.event_log != nullptr) {
      options_.event_log->Append(
          now, "step_end",
          {{"step", step},
           {"block", pending_step_.block},
           {"value", pending_step_.value},
           {"path_len", path_->size()},
           {"barrier_wait", barrier_wait},
           {"decision_overhead", decision_overhead},
           {"elements", elements - last_elements_},
           {"net_bytes", cm.network_bytes - last_net_bytes_},
           {"disk_bytes", cm.disk_bytes - last_disk_bytes_}});
    }
  }
  last_broadcast_time_ = now;
  last_elements_ = elements;
  last_net_bytes_ = cm.network_bytes;
  last_disk_bytes_ = cm.disk_bytes;
  if (options_.event_log != nullptr && !path_->complete()) {
    // The next step starts at this broadcast: it runs until the next
    // decision's broadcast closes it with a matching step_end.
    options_.event_log->Append(
        now, "step_begin",
        {{"step", decisions_}, {"path_len", path_->size()}});
  }
  if (options_.on_step) options_.on_step(initial ? -1 : decisions_ - 1,
                                         initial);
}

void PathAuthority::AppendChain(ir::BlockId block, int machine,
                                bool initial) {
  // Collect the decided block and every block that follows unconditionally;
  // stop at a conditional branch (its condition node will decide later) or
  // at program exit.
  std::vector<ir::BlockId> chain;
  bool complete = false;
  ir::BlockId current = block;
  while (true) {
    if (path_->size() + static_cast<int>(chain.size()) >=
        options_.max_path_len) {
      on_error_(Status::FailedPrecondition(
          "execution path exceeded max_path_len (runaway loop?)"));
      return;
    }
    chain.push_back(current);
    const ir::Terminator& term = program_->block(current).term;
    if (term.kind == ir::Terminator::Kind::kJump) {
      current = term.target;
      continue;
    }
    if (term.kind == ir::Terminator::Kind::kExit) complete = true;
    break;
  }

  // Every position of a step's chain carries the same template metadata;
  // the initial (job-start) seed is never a cached step.
  StepMeta meta;
  if (options_.step_templates && !initial) {
    const int64_t invalidations_before = tracker_.invalidations();
    meta = tracker_.OnStep(pending_step_.block, pending_step_.value, chain);
    if (options_.event_log != nullptr &&
        tracker_.invalidations() > invalidations_before) {
      options_.event_log->Append(backend_->now(),
                                 "template_invalidation",
                                 {{"step", decisions_ - 1},
                                  {"block", pending_step_.block},
                                  {"value", pending_step_.value},
                                  {"path_len", path_->size()}});
    }
  }
  last_step_replayable_ = !initial && meta.replayable;
  for (ir::BlockId b : chain) path_->Append(b, meta);
  if (complete) path_->MarkComplete();
  Broadcast(machine, initial);
}

void PathAuthority::SendControl(int from_machine, int machine, int new_len,
                                bool complete, int attempt) {
  ControlFlowManager* manager = managers_[static_cast<size_t>(machine)];
  std::shared_ptr<bool> alive = alive_;
  backend_->Send(from_machine, machine,
                 backend_->config().control_message_bytes,
                 [this, alive, manager, from_machine, machine, new_len,
                  complete] {
                   if (!*alive) return;
                   // AdvanceTo is idempotent, so a duplicate delivery from
                   // a retransmitted broadcast is harmless.
                   manager->AdvanceTo(new_len, complete);
                   backend_->Send(machine, from_machine,
                                  backend_->config().control_message_bytes,
                                  [this, alive, new_len, machine] {
                                    if (!*alive) return;
                                    acked_.emplace(new_len, machine);
                                  });
                 });
  // Retry on an unacked broadcast with exponential backoff. Background:
  // the timer watches the run, it must not hold the superstep barrier.
  const double backoff =
      options_.faults->retry_backoff * static_cast<double>(1 << attempt);
  backend_->simulator()->ScheduleBackgroundAfter(
      backoff,
      [this, alive, from_machine, machine, new_len, complete, attempt] {
        if (!*alive) return;
        if (acked_.count({new_len, machine}) > 0) return;
        if (attempt + 1 > options_.faults->max_broadcast_retries) {
          on_error_(Status::Unavailable(
              "path broadcast to machine " + std::to_string(machine) +
              " (len " + std::to_string(new_len) + ") unacknowledged after " +
              std::to_string(attempt + 1) + " attempts"));
          return;
        }
        SendControl(from_machine, machine, new_len, complete, attempt + 1);
      });
}

void PathAuthority::Broadcast(int from_machine, bool initial) {
  const int new_len = path_->size();
  const bool complete = path_->complete();

  // A replayable step needs no decision metadata on the wire — receivers
  // validate against their cached template — so its broadcast shrinks to
  // the template acknowledgment size. Fault handling keeps full messages
  // (the ack/retry protocol carries the complete step either way).
  const bool templated = last_step_replayable_ && options_.faults == nullptr;

  auto do_broadcast = [this, new_len, complete, from_machine, initial,
                       templated] {
    if (options_.trace != nullptr || options_.metrics != nullptr ||
        options_.event_log != nullptr || options_.on_step) {
      RecordStep(initial);
    }
    if (templated && options_.metrics != nullptr) {
      options_.metrics->Inc("templated_broadcasts");
    }
    const size_t bytes = templated
                             ? backend_->config().template_control_message_bytes
                             : backend_->config().control_message_bytes;
    for (int m = 0; m < static_cast<int>(managers_.size()); ++m) {
      ControlFlowManager* manager = managers_[static_cast<size_t>(m)];
      if (m == from_machine) {
        if (backend_->simulator() != nullptr) {
          // DES: the local manager learns immediately (same virtual
          // instant, no event scheduled — byte-identical traces).
          manager->AdvanceTo(new_len, complete);
        } else {
          // Real-parallel backend: machine state is thread-confined, and
          // this fan-out may run on the driver (superstep idle callback)
          // or another machine's worker. Advancing the local manager
          // inline would touch from_machine's hosts while its worker can
          // already be delivering chunks triggered by the remote sends
          // below, so the local advance goes through from_machine's own
          // queue like everyone else's (zero-byte self-send).
          backend_->Send(from_machine, from_machine, 0,
                         [manager, new_len, complete] {
                           manager->AdvanceTo(new_len, complete);
                         });
        }
        continue;
      }
      if (options_.faults != nullptr) {
        SendControl(from_machine, m, new_len, complete, /*attempt=*/0);
        continue;
      }
      backend_->Send(from_machine, m, bytes,
                     [manager, new_len, complete] {
                       manager->AdvanceTo(new_len, complete);
                     });
    }
    if (!initial && options_.on_checkpoint &&
        options_.faults != nullptr && options_.faults->checkpoint_every > 0 &&
        decisions_ % options_.faults->checkpoint_every == 0) {
      options_.on_checkpoint();
    }
  };

  if (options_.pipelining || initial) {
    if (options_.decision_overhead > 0 && !initial) {
      backend_->ScheduleAfter(options_.decision_overhead, do_broadcast);
    } else {
      do_broadcast();
    }
  } else {
    // Superstep barrier: wait for global quiescence, then charge the
    // per-step overhead, then release the decision.
    double overhead = options_.decision_overhead;
    backend_->ScheduleWhenIdle([this, overhead, do_broadcast, initial] {
      if (!initial) pending_step_.release_time = backend_->now();
      if (overhead > 0) {
        backend_->ScheduleAfter(overhead, do_broadcast);
      } else {
        do_broadcast();
      }
    });
  }
}

}  // namespace mitos::runtime
