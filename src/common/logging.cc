#include "common/logging.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace mitos::internal_logging {

namespace {

int ParseLogLevel(const char* value) {
  if (value == nullptr || value[0] == '\0') return kWARNING;
  if (std::isdigit(static_cast<unsigned char>(value[0]))) {
    int level = std::atoi(value);
    if (level < kINFO) return kINFO;
    if (level > kFATAL) return kFATAL;
    return level;
  }
  char c =
      static_cast<char>(std::tolower(static_cast<unsigned char>(value[0])));
  switch (c) {
    case 'i': return kINFO;
    case 'w': return kWARNING;
    case 'e': return kERROR;
    case 'f': return kFATAL;
    default: return kWARNING;
  }
}

// The attached virtual clock (the simulator of the engine run in flight).
const void* g_clock_ctx = nullptr;
double (*g_clock_fn)(const void*) = nullptr;

}  // namespace

int MinLogLevel() {
  static const int level = ParseLogLevel(std::getenv("MITOS_LOG_LEVEL"));
  return level;
}

int VlogVerbosity() {
  static const int verbosity = [] {
    const char* value = std::getenv("MITOS_VLOG");
    return value == nullptr ? 0 : std::atoi(value);
  }();
  return verbosity;
}

void AttachLogClock(const void* ctx, double (*now)(const void*)) {
  g_clock_ctx = ctx;
  g_clock_fn = now;
}

void DetachLogClock(const void* ctx) {
  if (g_clock_ctx == ctx) {
    g_clock_ctx = nullptr;
    g_clock_fn = nullptr;
  }
}

bool VirtualNow(double* seconds) {
  if (g_clock_fn == nullptr) return false;
  *seconds = g_clock_fn(g_clock_ctx);
  return true;
}

LogMessage::LogMessage(const char* file, int line, Severity severity)
    : severity_(severity) {
  static const char kLetters[] = {'I', 'W', 'E', 'F'};
  stream_ << "[MITOS " << kLetters[severity];
  double now = 0;
  if (VirtualNow(&now)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.6fs", now);
    stream_ << buf;
  }
  // Basename only: full paths add noise.
  const char* base = std::strrchr(file, '/');
  stream_ << "] " << (base != nullptr ? base + 1 : file) << ':' << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::cerr << stream_.str() << std::endl;
  if (severity_ == kFATAL) std::abort();
}

}  // namespace mitos::internal_logging
