// Minimal JSON value tree + recursive-descent parser.
//
// The observability layer *emits* JSON by string concatenation (fixed
// formatting keeps exports byte-deterministic); this is the read side:
// bench baselines (obs/analysis/baseline.h) and tools/bench_diff parse
// previously-written files back. Scope is deliberately small — UTF-8
// passthrough, \uXXXX escapes decoded to UTF-8 (surrogate pairs included;
// unpaired surrogates become U+FFFD), doubles for all numbers — which
// covers everything our own writers produce and standard escaped output
// from other tools.
#ifndef MITOS_COMMON_JSON_H_
#define MITOS_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace mitos::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<Value>& array() const { return array_; }
  const std::map<std::string, Value>& object() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;
  // Convenience accessors with defaults (missing/mistyped -> fallback).
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  // Parses exactly one JSON document (trailing whitespace allowed).
  static StatusOr<Value> Parse(const std::string& text);

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

}  // namespace mitos::json

#endif  // MITOS_COMMON_JSON_H_
