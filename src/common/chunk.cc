#include "common/chunk.h"

#include <sstream>

namespace mitos {

namespace {

bool IsInt64Pair(const Datum& d) {
  return d.is_tuple() && d.size() == 2 && d.field(0).is_int64() &&
         d.field(1).is_int64();
}

}  // namespace

Chunk Chunk::OfDatums(DatumVector data, bool columnarize) {
  if (columnarize && !data.empty()) {
    // Single-pass homogeneity scan; the first mismatch aborts to fallback.
    const Datum::Kind k0 = data[0].kind();
    if (k0 == Datum::Kind::kInt64) {
      bool homogeneous = true;
      for (const Datum& d : data) {
        if (!d.is_int64()) {
          homogeneous = false;
          break;
        }
      }
      if (homogeneous) {
        std::vector<int64_t> col;
        col.reserve(data.size());
        for (const Datum& d : data) col.push_back(d.int64());
        return OfInt64(std::move(col));
      }
    } else if (k0 == Datum::Kind::kDouble) {
      bool homogeneous = true;
      for (const Datum& d : data) {
        if (!d.is_double()) {
          homogeneous = false;
          break;
        }
      }
      if (homogeneous) {
        std::vector<double> col;
        col.reserve(data.size());
        for (const Datum& d : data) col.push_back(d.dbl());
        return OfDouble(std::move(col));
      }
    } else if (IsInt64Pair(data[0])) {
      bool homogeneous = true;
      for (const Datum& d : data) {
        if (!IsInt64Pair(d)) {
          homogeneous = false;
          break;
        }
      }
      if (homogeneous) {
        std::vector<int64_t> keys;
        std::vector<int64_t> vals;
        keys.reserve(data.size());
        vals.reserve(data.size());
        for (const Datum& d : data) {
          keys.push_back(d.field(0).int64());
          vals.push_back(d.field(1).int64());
        }
        return OfInt64Pairs(std::move(keys), std::move(vals));
      }
    }
  }
  auto storage = std::make_shared<Storage>();
  storage->rep = Rep::kDatums;
  storage->datums = std::move(data);
  size_t n = storage->datums.size();
  return Chunk(std::move(storage), 0, n);
}

Chunk Chunk::OfInt64(std::vector<int64_t> values) {
  auto storage = std::make_shared<Storage>();
  storage->rep = Rep::kInt64;
  storage->i64 = std::move(values);
  size_t n = storage->i64.size();
  return Chunk(std::move(storage), 0, n);
}

Chunk Chunk::OfDouble(std::vector<double> values) {
  auto storage = std::make_shared<Storage>();
  storage->rep = Rep::kDouble;
  storage->f64 = std::move(values);
  size_t n = storage->f64.size();
  return Chunk(std::move(storage), 0, n);
}

Chunk Chunk::OfInt64Pairs(std::vector<int64_t> keys,
                          std::vector<int64_t> values) {
  MITOS_CHECK_EQ(keys.size(), values.size());
  auto storage = std::make_shared<Storage>();
  storage->rep = Rep::kInt64Pair;
  storage->i64 = std::move(keys);
  storage->i64b = std::move(values);
  size_t n = storage->i64.size();
  return Chunk(std::move(storage), 0, n);
}

Chunk Chunk::Slice(size_t begin, size_t len) const {
  MITOS_CHECK_LE(begin + len, size_);
  if (len == 0) return Chunk();
  return Chunk(storage_, offset_ + begin, len);
}

Datum Chunk::At(size_t i) const {
  MITOS_CHECK_LT(i, size_);
  switch (rep()) {
    case Rep::kInt64:
      return Datum::Int64(storage_->i64[offset_ + i]);
    case Rep::kDouble:
      return Datum::Double(storage_->f64[offset_ + i]);
    case Rep::kInt64Pair:
      return Datum::Pair(Datum::Int64(storage_->i64[offset_ + i]),
                         Datum::Int64(storage_->i64b[offset_ + i]));
    case Rep::kDatums:
      return storage_->datums[offset_ + i];
  }
  return Datum();
}

DatumVector Chunk::ToDatums() const {
  DatumVector out;
  AppendTo(&out);
  return out;
}

void Chunk::AppendTo(DatumVector* out) const {
  out->reserve(out->size() + size_);
  switch (rep()) {
    case Rep::kInt64:
      for (size_t i = 0; i < size_; ++i) {
        out->push_back(Datum::Int64(storage_->i64[offset_ + i]));
      }
      break;
    case Rep::kDouble:
      for (size_t i = 0; i < size_; ++i) {
        out->push_back(Datum::Double(storage_->f64[offset_ + i]));
      }
      break;
    case Rep::kInt64Pair:
      for (size_t i = 0; i < size_; ++i) {
        out->push_back(Datum::Pair(Datum::Int64(storage_->i64[offset_ + i]),
                                   Datum::Int64(storage_->i64b[offset_ + i])));
      }
      break;
    case Rep::kDatums:
      out->insert(out->end(), storage_->datums.begin() + offset_,
                  storage_->datums.begin() + offset_ + size_);
      break;
  }
}

size_t Chunk::SerializedSize() const {
  switch (rep()) {
    case Rep::kInt64:
    case Rep::kDouble:
      return 8 * size_;
    case Rep::kInt64Pair:
      // Tuple encoding: 4-byte field-count header + two 8-byte fields.
      return (4 + 8 + 8) * size_;
    case Rep::kDatums: {
      size_t total = 0;
      for (size_t i = 0; i < size_; ++i) {
        total += storage_->datums[offset_ + i].SerializedSize();
      }
      return total;
    }
  }
  return 0;
}

size_t Chunk::HashAt(size_t i) const {
  MITOS_CHECK_LT(i, size_);
  switch (rep()) {
    case Rep::kInt64:
      return HashInt64(storage_->i64[offset_ + i]);
    case Rep::kDouble:
      return At(i).Hash();
    case Rep::kInt64Pair:
      return HashInt64Pair(storage_->i64[offset_ + i],
                           storage_->i64b[offset_ + i]);
    case Rep::kDatums:
      return storage_->datums[offset_ + i].Hash();
  }
  return 0;
}

size_t Chunk::HashField0At(size_t i) const {
  MITOS_CHECK_LT(i, size_);
  switch (rep()) {
    case Rep::kInt64Pair:
      return HashInt64(storage_->i64[offset_ + i]);
    case Rep::kDatums:
      return storage_->datums[offset_ + i].field(0).Hash();
    default:
      return At(i).field(0).Hash();
  }
}

std::string Chunk::ToString(size_t limit) const {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < size_; ++i) {
    if (i > 0) out << ", ";
    if (i >= limit) {
      out << "... (" << size_ << " total)";
      break;
    }
    out << At(i).ToString();
  }
  out << ']';
  return out.str();
}

}  // namespace mitos
