// Hashing helpers shared across Mitos modules.
#ifndef MITOS_COMMON_HASH_H_
#define MITOS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace mitos {

// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

// SplitMix64 finalizer; a cheap high-quality mixer for integer keys.
inline uint64_t MixInt64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace mitos

#endif  // MITOS_COMMON_HASH_H_
