// Datum: the dynamic element type of Mitos bags.
//
// The paper's language (Emma) is embedded in Scala, where bag elements are
// arbitrary Scala values. Our C++ reproduction uses a small dynamic value
// model instead of templating the whole engine: a Datum is a null, int64,
// double, bool, string, or tuple of Datums. This is the idiomatic choice for
// a database-style engine (rows are runtime-typed) and keeps every module
// (operators, channels, files) monomorphic.
//
// Datums are cheap to copy: tuples are shared (immutable after creation).
// SerializedSize() feeds the simulator's network/disk cost model.
#ifndef MITOS_COMMON_DATUM_H_
#define MITOS_COMMON_DATUM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/logging.h"

namespace mitos {

class Datum;

// Element sequences appear everywhere (bags, chunks, files).
using DatumVector = std::vector<Datum>;

class Datum {
 public:
  enum class Kind { kNull = 0, kInt64, kDouble, kBool, kString, kTuple };

  // Null datum.
  Datum() : rep_(std::monostate{}) {}

  // Factories. Explicit names avoid implicit-conversion surprises
  // (e.g. bool vs int64 ambiguity).
  static Datum Int64(int64_t v) { return Datum(Rep(v)); }
  static Datum Double(double v) { return Datum(Rep(v)); }
  static Datum Bool(bool v) { return Datum(Rep(v)); }
  static Datum String(std::string v) { return Datum(Rep(std::move(v))); }
  static Datum Tuple(DatumVector fields);
  // Convenience for the ubiquitous (key, value) shape.
  static Datum Pair(Datum a, Datum b);

  Kind kind() const { return static_cast<Kind>(rep_.index()); }

  bool is_null() const { return kind() == Kind::kNull; }
  bool is_int64() const { return kind() == Kind::kInt64; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_tuple() const { return kind() == Kind::kTuple; }

  // Typed accessors; abort on kind mismatch (programming error).
  int64_t int64() const;
  double dbl() const;
  bool boolean() const;
  const std::string& str() const;
  const DatumVector& tuple() const;

  // Number of tuple fields; aborts unless tuple.
  size_t size() const { return tuple().size(); }
  // i-th tuple field; aborts unless tuple with i in range.
  const Datum& field(size_t i) const;

  // Numeric value as double (int64 or double kinds); aborts otherwise.
  double AsNumber() const;

  // Value equality across identical kinds; differing kinds are unequal
  // (no numeric coercion).
  bool operator==(const Datum& other) const;
  bool operator!=(const Datum& other) const { return !(*this == other); }
  // Total order (kind-major, then value); lets tests sort outputs
  // deterministically.
  bool operator<(const Datum& other) const;

  size_t Hash() const;

  // Modelled wire size in bytes (fixed 8 for numerics, length for strings,
  // sum + small header for tuples). Used by the cluster cost model.
  size_t SerializedSize() const;

  // Debug rendering, e.g. `(42, "page7", 1.5)`.
  std::string ToString() const;

 private:
  using TupleRep = std::shared_ptr<const DatumVector>;
  using Rep = std::variant<std::monostate, int64_t, double, bool, std::string,
                           TupleRep>;

  explicit Datum(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

// Functors for unordered containers keyed by Datum.
struct DatumHash {
  size_t operator()(const Datum& d) const { return d.Hash(); }
};
struct DatumEq {
  bool operator()(const Datum& a, const Datum& b) const { return a == b; }
};

// Total serialized size of a vector of datums.
size_t SerializedSize(const DatumVector& data);

// Renders up to `limit` elements, e.g. `[1, 2, 3, ...]`.
std::string ToString(const DatumVector& data, size_t limit = 16);

}  // namespace mitos

#endif  // MITOS_COMMON_DATUM_H_
