#include "common/datum.h"

#include <cstring>
#include <functional>
#include <sstream>

#include "common/hash.h"

namespace mitos {

Datum Datum::Tuple(DatumVector fields) {
  return Datum(Rep(std::make_shared<const DatumVector>(std::move(fields))));
}

Datum Datum::Pair(Datum a, Datum b) {
  DatumVector fields;
  fields.reserve(2);
  fields.push_back(std::move(a));
  fields.push_back(std::move(b));
  return Tuple(std::move(fields));
}

int64_t Datum::int64() const {
  MITOS_CHECK(is_int64()) << "not an int64: " << ToString();
  return std::get<int64_t>(rep_);
}

double Datum::dbl() const {
  MITOS_CHECK(is_double()) << "not a double: " << ToString();
  return std::get<double>(rep_);
}

bool Datum::boolean() const {
  MITOS_CHECK(is_bool()) << "not a bool: " << ToString();
  return std::get<bool>(rep_);
}

const std::string& Datum::str() const {
  MITOS_CHECK(is_string()) << "not a string: " << ToString();
  return std::get<std::string>(rep_);
}

const DatumVector& Datum::tuple() const {
  MITOS_CHECK(is_tuple()) << "not a tuple: " << ToString();
  return *std::get<TupleRep>(rep_);
}

const Datum& Datum::field(size_t i) const {
  const DatumVector& fields = tuple();
  MITOS_CHECK_LT(i, fields.size()) << "tuple field out of range";
  return fields[i];
}

double Datum::AsNumber() const {
  if (is_int64()) return static_cast<double>(std::get<int64_t>(rep_));
  if (is_double()) return std::get<double>(rep_);
  MITOS_CHECK(false) << "not numeric: " << ToString();
  return 0;
}

bool Datum::operator==(const Datum& other) const {
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case Kind::kNull:
      return true;
    case Kind::kInt64:
      return std::get<int64_t>(rep_) == std::get<int64_t>(other.rep_);
    case Kind::kDouble:
      return std::get<double>(rep_) == std::get<double>(other.rep_);
    case Kind::kBool:
      return std::get<bool>(rep_) == std::get<bool>(other.rep_);
    case Kind::kString:
      return std::get<std::string>(rep_) == std::get<std::string>(other.rep_);
    case Kind::kTuple: {
      const DatumVector& a = tuple();
      const DatumVector& b = other.tuple();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool Datum::operator<(const Datum& other) const {
  if (kind() != other.kind()) return kind() < other.kind();
  switch (kind()) {
    case Kind::kNull:
      return false;
    case Kind::kInt64:
      return std::get<int64_t>(rep_) < std::get<int64_t>(other.rep_);
    case Kind::kDouble:
      return std::get<double>(rep_) < std::get<double>(other.rep_);
    case Kind::kBool:
      return std::get<bool>(rep_) < std::get<bool>(other.rep_);
    case Kind::kString:
      return std::get<std::string>(rep_) < std::get<std::string>(other.rep_);
    case Kind::kTuple: {
      const DatumVector& a = tuple();
      const DatumVector& b = other.tuple();
      size_t n = a.size() < b.size() ? a.size() : b.size();
      for (size_t i = 0; i < n; ++i) {
        if (a[i] < b[i]) return true;
        if (b[i] < a[i]) return false;
      }
      return a.size() < b.size();
    }
  }
  return false;
}

size_t Datum::Hash() const {
  size_t seed = static_cast<size_t>(kind()) * 0x9e3779b97f4a7c15ULL;
  switch (kind()) {
    case Kind::kNull:
      return seed;
    case Kind::kInt64:
      return HashCombine(
          seed, MixInt64(static_cast<uint64_t>(std::get<int64_t>(rep_))));
    case Kind::kDouble: {
      double d = std::get<double>(rep_);
      // Normalize -0.0 to 0.0 so equal doubles hash equally.
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return HashCombine(seed, MixInt64(bits));
    }
    case Kind::kBool:
      return HashCombine(seed, std::get<bool>(rep_) ? 1 : 2);
    case Kind::kString:
      return HashCombine(seed,
                         std::hash<std::string>{}(std::get<std::string>(rep_)));
    case Kind::kTuple: {
      for (const Datum& f : tuple()) seed = HashCombine(seed, f.Hash());
      return seed;
    }
  }
  return seed;
}

size_t Datum::SerializedSize() const {
  switch (kind()) {
    case Kind::kNull:
      return 1;
    case Kind::kInt64:
    case Kind::kDouble:
      return 8;
    case Kind::kBool:
      return 1;
    case Kind::kString:
      return 4 + std::get<std::string>(rep_).size();
    case Kind::kTuple: {
      size_t total = 4;  // field-count header
      for (const Datum& f : tuple()) total += f.SerializedSize();
      return total;
    }
  }
  return 1;
}

std::string Datum::ToString() const {
  std::ostringstream out;
  switch (kind()) {
    case Kind::kNull:
      out << "null";
      break;
    case Kind::kInt64:
      out << std::get<int64_t>(rep_);
      break;
    case Kind::kDouble:
      out << std::get<double>(rep_);
      break;
    case Kind::kBool:
      out << (std::get<bool>(rep_) ? "true" : "false");
      break;
    case Kind::kString:
      out << '"' << std::get<std::string>(rep_) << '"';
      break;
    case Kind::kTuple: {
      out << '(';
      bool first = true;
      for (const Datum& f : tuple()) {
        if (!first) out << ", ";
        first = false;
        out << f.ToString();
      }
      out << ')';
      break;
    }
  }
  return out.str();
}

size_t SerializedSize(const DatumVector& data) {
  size_t total = 0;
  for (const Datum& d : data) total += d.SerializedSize();
  return total;
}

std::string ToString(const DatumVector& data, size_t limit) {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < data.size(); ++i) {
    if (i > 0) out << ", ";
    if (i >= limit) {
      out << "... (" << data.size() << " total)";
      break;
    }
    out << data[i].ToString();
  }
  out << ']';
  return out.str();
}

}  // namespace mitos
