#include "common/status.h"

namespace mitos {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace mitos
