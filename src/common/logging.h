// Minimal logging and invariant-checking utilities for Mitos.
//
// Following Google style we do not use exceptions in core paths. Invariant
// violations abort with a readable message; recoverable errors use
// mitos::Status (see status.h).
#ifndef MITOS_COMMON_LOGGING_H_
#define MITOS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mitos {
namespace internal_logging {

// Accumulates a message and aborts the process when destroyed. Used as the
// right-hand side of the MITOS_CHECK macros; never instantiate directly.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "[MITOS FATAL] " << file << ":" << line << " Check failed: "
            << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Enables `MITOS_CHECK(x) << "detail"` to compile in both branches of the
// ternary used below.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace mitos

// Aborts with a message when `condition` is false. Streams extra detail:
//   MITOS_CHECK(a == b) << "a=" << a;
#define MITOS_CHECK(condition)                                              \
  (condition) ? (void)0                                                     \
              : ::mitos::internal_logging::Voidify() &                      \
                    ::mitos::internal_logging::FatalMessage(__FILE__,       \
                                                            __LINE__,       \
                                                            #condition)     \
                        .stream()

#define MITOS_CHECK_EQ(a, b) MITOS_CHECK((a) == (b))
#define MITOS_CHECK_NE(a, b) MITOS_CHECK((a) != (b))
#define MITOS_CHECK_LT(a, b) MITOS_CHECK((a) < (b))
#define MITOS_CHECK_LE(a, b) MITOS_CHECK((a) <= (b))
#define MITOS_CHECK_GT(a, b) MITOS_CHECK((a) > (b))
#define MITOS_CHECK_GE(a, b) MITOS_CHECK((a) >= (b))

// Marks unreachable code paths.
#define MITOS_UNREACHABLE() \
  MITOS_CHECK(false) << "unreachable code reached"

#endif  // MITOS_COMMON_LOGGING_H_
