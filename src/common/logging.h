// Logging and invariant-checking utilities for Mitos.
//
// Following Google style we do not use exceptions in core paths. Invariant
// violations abort with a readable message; recoverable errors use
// mitos::Status (see status.h).
//
// Leveled diagnostics (all env-gated, default silent except WARNING+):
//   MITOS_LOG(INFO) << "...";     severities INFO, WARNING, ERROR, FATAL
//   MITOS_VLOG(2)   << "...";     verbose logging at level n
// Environment:
//   MITOS_LOG_LEVEL=info|warning|error|fatal (or 0-3): minimum severity
//       printed. Default: warning. FATAL always prints and aborts.
//   MITOS_VLOG=N: print MITOS_VLOG(n) for n <= N. Default 0 (off).
// When a simulator is attached (sim registers its clock via
// AttachLogClock; api::Run does this for every engine run), log lines are
// stamped with the *virtual* time, e.g. "[MITOS I 1.204s]".
#ifndef MITOS_COMMON_LOGGING_H_
#define MITOS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mitos {
namespace internal_logging {

// Severity values are macro-pasted: MITOS_LOG(INFO) -> kINFO.
enum Severity { kINFO = 0, kWARNING = 1, kERROR = 2, kFATAL = 3 };

// Minimum severity printed by MITOS_LOG, cached from MITOS_LOG_LEVEL.
int MinLogLevel();
// Verbosity for MITOS_VLOG, cached from MITOS_VLOG.
int VlogVerbosity();

// Virtual-clock hook: when attached, log lines carry virtual seconds.
// `now` must be a capture-free callable; `ctx` identifies the owner so a
// stale detach (from a different simulator) is a no-op.
void AttachLogClock(const void* ctx, double (*now)(const void*));
void DetachLogClock(const void* ctx);
// True when a clock is attached; *seconds receives the current virtual
// time.
bool VirtualNow(double* seconds);

// Accumulates one log line and writes it to stderr when destroyed;
// aborts for kFATAL.
class LogMessage {
 public:
  LogMessage(const char* file, int line, Severity severity);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  Severity severity_;
};

// Accumulates a message and aborts the process when destroyed. Used as the
// right-hand side of the MITOS_CHECK macros; never instantiate directly.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "[MITOS FATAL] " << file << ":" << line << " Check failed: "
            << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Enables `MITOS_CHECK(x) << "detail"` to compile in both branches of the
// ternary used below.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace mitos

// Aborts with a message when `condition` is false. Streams extra detail:
//   MITOS_CHECK(a == b) << "a=" << a;
#define MITOS_CHECK(condition)                                              \
  (condition) ? (void)0                                                     \
              : ::mitos::internal_logging::Voidify() &                      \
                    ::mitos::internal_logging::FatalMessage(__FILE__,       \
                                                            __LINE__,       \
                                                            #condition)     \
                        .stream()

#define MITOS_CHECK_EQ(a, b) MITOS_CHECK((a) == (b))
#define MITOS_CHECK_NE(a, b) MITOS_CHECK((a) != (b))
#define MITOS_CHECK_LT(a, b) MITOS_CHECK((a) < (b))
#define MITOS_CHECK_LE(a, b) MITOS_CHECK((a) <= (b))
#define MITOS_CHECK_GT(a, b) MITOS_CHECK((a) > (b))
#define MITOS_CHECK_GE(a, b) MITOS_CHECK((a) >= (b))

// Marks unreachable code paths.
#define MITOS_UNREACHABLE() \
  MITOS_CHECK(false) << "unreachable code reached"

// True when a MITOS_LOG(severity) statement would print.
#define MITOS_LOG_IS_ON(severity)                 \
  (::mitos::internal_logging::k##severity >=     \
   ::mitos::internal_logging::MinLogLevel())

// Leveled logging: MITOS_LOG(INFO) << "msg". The stream expression is not
// evaluated when the severity is below the threshold.
#define MITOS_LOG(severity)                                                 \
  !MITOS_LOG_IS_ON(severity)                                                \
      ? (void)0                                                             \
      : ::mitos::internal_logging::Voidify() &                              \
            ::mitos::internal_logging::LogMessage(                          \
                __FILE__, __LINE__,                                         \
                ::mitos::internal_logging::k##severity)                     \
                .stream()

#define MITOS_VLOG_IS_ON(n) \
  ((n) <= ::mitos::internal_logging::VlogVerbosity())

// Verbose logging: MITOS_VLOG(2) << "msg", printed when MITOS_VLOG >= 2.
#define MITOS_VLOG(n)                                                       \
  !MITOS_VLOG_IS_ON(n)                                                      \
      ? (void)0                                                             \
      : ::mitos::internal_logging::Voidify() &                              \
            ::mitos::internal_logging::LogMessage(                          \
                __FILE__, __LINE__, ::mitos::internal_logging::kINFO)       \
                .stream()

#endif  // MITOS_COMMON_LOGGING_H_
