// Error propagation for fallible Mitos APIs (no exceptions in core paths).
#ifndef MITOS_COMMON_STATUS_H_
#define MITOS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace mitos {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnimplemented,   // e.g. a program Flink's native iterations cannot express
  kFailedPrecondition,
  kInternal,
  kUnavailable,     // transient: a machine or resource was lost mid-run
};

// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

// A success-or-error result, modeled after absl::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error result, modeled after absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows
  // `return value;` and `return SomeStatus;` from functions returning
  // StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MITOS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MITOS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    MITOS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MITOS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mitos

// Propagates a non-OK status to the caller.
#define MITOS_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::mitos::Status _status = (expr);        \
    if (!_status.ok()) return _status;       \
  } while (0)

#endif  // MITOS_COMMON_STATUS_H_
