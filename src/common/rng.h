// Deterministic pseudo-random number generation for workload synthesis.
//
// All Mitos workload generators draw from this generator so that every
// experiment is reproducible bit-for-bit from its seed.
#ifndef MITOS_COMMON_RNG_H_
#define MITOS_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace mitos {

// SplitMix64: tiny, fast, and statistically solid for data generation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound).
  uint64_t NextBelow(uint64_t bound) {
    MITOS_CHECK_GT(bound, 0u);
    return Next() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    MITOS_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

}  // namespace mitos

#endif  // MITOS_COMMON_RNG_H_
