// Chunk: the batched unit of data movement on bag channels.
//
// A chunk is an immutable batch of bag elements behind a shared handle:
// copying a Chunk copies a pointer, so channel hops and multi-consumer
// fan-out never duplicate payload. Homogeneous batches — the common case in
// every figure workload and in most fuzzer programs — are stored as typed
// columns (contiguous int64/double buffers, struct-of-arrays for
// (int64, int64) pairs); anything else rides the boxed DatumVector fallback.
// Slice() produces zero-copy sub-views, which is how the runtime re-chunks
// oversized batches to the configured chunk size.
//
// Invariant: SerializedSize() and the Hash*At() helpers are representation-
// independent — a columnar chunk and its boxed equivalent report identical
// byte counts and route identically under hash partitioning. The simulator's
// cost model and the shuffle both depend on this.
#ifndef MITOS_COMMON_CHUNK_H_
#define MITOS_COMMON_CHUNK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/datum.h"
#include "common/hash.h"
#include "common/logging.h"

namespace mitos {

class Chunk {
 public:
  enum class Rep {
    kInt64,      // contiguous int64_t column
    kDouble,     // contiguous double column
    kInt64Pair,  // (int64, int64) tuples, struct-of-arrays
    kDatums,     // boxed fallback: arbitrary / mixed element types
  };

  // Empty chunk (columnar, zero elements).
  Chunk() = default;

  // Wraps a boxed vector. When `columnarize` is true (the default),
  // homogeneous int64 / double / (int64, int64) batches are converted to
  // typed columns; `columnarize=false` is the ablation switch that keeps
  // the pre-batching boxed plane end to end.
  static Chunk OfDatums(DatumVector data, bool columnarize = true);

  // Typed columns.
  static Chunk OfInt64(std::vector<int64_t> values);
  static Chunk OfDouble(std::vector<double> values);
  static Chunk OfInt64Pairs(std::vector<int64_t> keys,
                            std::vector<int64_t> values);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Rep rep() const { return storage_ ? storage_->rep : Rep::kInt64; }
  // True when this chunk rides the boxed fallback path.
  bool fallback() const { return storage_ && storage_->rep == Rep::kDatums; }

  // Zero-copy sub-view of [begin, begin + len).
  Chunk Slice(size_t begin, size_t len) const;

  // Typed column accessors; abort on rep mismatch. Pointers honor slicing
  // and are valid while any handle to the storage lives.
  const int64_t* i64() const {
    MITOS_CHECK(rep() == Rep::kInt64);
    return storage_->i64.data() + offset_;
  }
  const double* f64() const {
    MITOS_CHECK(rep() == Rep::kDouble);
    return storage_->f64.data() + offset_;
  }
  const int64_t* keys() const {
    MITOS_CHECK(rep() == Rep::kInt64Pair);
    return storage_->i64.data() + offset_;
  }
  const int64_t* vals() const {
    MITOS_CHECK(rep() == Rep::kInt64Pair);
    return storage_->i64b.data() + offset_;
  }
  const Datum* datums() const {
    MITOS_CHECK(rep() == Rep::kDatums);
    return storage_->datums.data() + offset_;
  }

  // i-th element, boxed. O(1); allocates for kInt64Pair.
  Datum At(size_t i) const;

  // Materializes to / appends onto a boxed vector.
  DatumVector ToDatums() const;
  void AppendTo(DatumVector* out) const;

  // Modelled wire size of the payload in bytes. Matches the element-wise
  // Datum encoding exactly (8 per numeric, 4+len per string, 4+fields per
  // tuple), so the cost model charges identical bytes on both paths.
  size_t SerializedSize() const;

  // Hash of element i under Datum::Hash's exact algorithm; shuffle routing
  // must not depend on the representation.
  size_t HashAt(size_t i) const;
  // Hash of field 0 of tuple element i (kField0 partitioning).
  size_t HashField0At(size_t i) const;

  // Debug rendering of up to `limit` elements.
  std::string ToString(size_t limit = 16) const;

 private:
  struct Storage {
    Rep rep = Rep::kDatums;
    std::vector<int64_t> i64;   // kInt64 column / kInt64Pair keys
    std::vector<int64_t> i64b;  // kInt64Pair values
    std::vector<double> f64;    // kDouble column
    DatumVector datums;         // kDatums fallback
  };

  Chunk(std::shared_ptr<const Storage> storage, size_t offset, size_t size)
      : storage_(std::move(storage)), offset_(offset), size_(size) {}

  static size_t HashInt64(int64_t v) {
    size_t seed =
        static_cast<size_t>(Datum::Kind::kInt64) * 0x9e3779b97f4a7c15ULL;
    return HashCombine(seed, MixInt64(static_cast<uint64_t>(v)));
  }
  static size_t HashInt64Pair(int64_t k, int64_t v) {
    size_t seed =
        static_cast<size_t>(Datum::Kind::kTuple) * 0x9e3779b97f4a7c15ULL;
    seed = HashCombine(seed, HashInt64(k));
    return HashCombine(seed, HashInt64(v));
  }

  std::shared_ptr<const Storage> storage_;
  size_t offset_ = 0;
  size_t size_ = 0;
};

using ChunkVector = std::vector<Chunk>;

}  // namespace mitos

#endif  // MITOS_COMMON_CHUNK_H_
