#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace mitos::json {

// File-local in spirit; a named class so Value's friend declaration binds.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Value> Run() {
    StatusOr<Value> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  StatusOr<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
        if (ConsumeLiteral("true")) return MakeBool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return MakeBool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value{};
        return Error("bad literal");
      default: return ParseNumber();
    }
  }

  static Value MakeBool(bool b) {
    Value v;
    v.kind_ = Value::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  StatusOr<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    double number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number " + token);
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.number_ = number;
    return v;
  }

  StatusOr<Value> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        Value v;
        v.kind_ = Value::Kind::kString;
        v.string_ = std::move(out);
        return v;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // ASCII only (all our writers emit); others become '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<Value> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    Value v;
    v.kind_ = Value::Kind::kArray;
    if (Consume(']')) return v;
    while (true) {
      StatusOr<Value> element = ParseValue();
      if (!element.ok()) return element;
      v.array_.push_back(std::move(*element));
      if (Consume(']')) return v;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  StatusOr<Value> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    Value v;
    v.kind_ = Value::Kind::kObject;
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      StatusOr<Value> key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':'");
      StatusOr<Value> member = ParseValue();
      if (!member.ok()) return member;
      v.object_[key->string()] = std::move(*member);
      if (Consume('}')) return v;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double Value::NumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string Value::StringOr(const std::string& key,
                            const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->string() : fallback;
}

StatusOr<Value> Value::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace mitos::json
