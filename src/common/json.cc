#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace mitos::json {

// File-local in spirit; a named class so Value's friend declaration binds.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Value> Run() {
    StatusOr<Value> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* word) {
    size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  StatusOr<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
        if (ConsumeLiteral("true")) return MakeBool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return MakeBool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value{};
        return Error("bad literal");
      default: return ParseNumber();
    }
  }

  static Value MakeBool(bool b) {
    Value v;
    v.kind_ = Value::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  StatusOr<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    double number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number " + token);
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.number_ = number;
    return v;
  }

  // Reads exactly four hex digits at pos_ into *code.
  bool ReadHex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      value <<= 4;
      if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f')
        value |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        value |= static_cast<unsigned>(h - 'A' + 10);
      else return false;
    }
    *code = value;
    return true;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  StatusOr<Value> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        Value v;
        v.kind_ = Value::Kind::kString;
        v.string_ = std::move(out);
        return v;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!ReadHex4(&code)) return Error("bad \\u escape");
          // Surrogate pair: a high surrogate must be followed by an
          // escaped low surrogate; together they name a code point above
          // the BMP. Unpaired surrogates decode to U+FFFD (replacement
          // character), matching what lenient JSON decoders emit.
          if (code >= 0xD800 && code <= 0xDBFF) {
            unsigned low = 0;
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              const size_t saved = pos_;
              pos_ += 2;
              if (!ReadHex4(&low)) return Error("bad \\u escape");
              if (low >= 0xDC00 && low <= 0xDFFF) {
                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
              } else {
                pos_ = saved;  // not a low surrogate; leave it for the loop
                code = 0xFFFD;
              }
            } else {
              code = 0xFFFD;
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            code = 0xFFFD;  // lone low surrogate
          }
          AppendUtf8(code, &out);
          break;
        }
        default: return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<Value> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    Value v;
    v.kind_ = Value::Kind::kArray;
    if (Consume(']')) return v;
    while (true) {
      StatusOr<Value> element = ParseValue();
      if (!element.ok()) return element;
      v.array_.push_back(std::move(*element));
      if (Consume(']')) return v;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  StatusOr<Value> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    Value v;
    v.kind_ = Value::Kind::kObject;
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      StatusOr<Value> key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':'");
      StatusOr<Value> member = ParseValue();
      if (!member.ok()) return member;
      v.object_[key->string()] = std::move(*member);
      if (Consume('}')) return v;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double Value::NumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string Value::StringOr(const std::string& key,
                            const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->string() : fallback;
}

StatusOr<Value> Value::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace mitos::json
