// Bag operator kernels: the pure data-processing logic of dataflow vertices.
//
// A kernel computes one output bag at a time: Open() starts a bag, Push()
// feeds an input chunk, Close() signals end of one input, Finish() signals
// all inputs done. Kernels emit output chunks through the provided callback
// and know nothing about the simulator, the network, or bag identifiers —
// the BagOperatorHost (runtime/host.h) wraps each instance and handles all
// coordination, exactly as in the paper's architecture (Fig. 2).
//
// Kernels are long-lived: the same instance serves every output bag of its
// operator across all iteration steps. This is what makes loop-invariant
// hoisting possible (paper Sec. 5.3): a kernel that supports state reuse
// (hash join build side) keeps its built state when the host tells it the
// corresponding input bag is unchanged.
//
// Data moves in batched Chunks (common/chunk.h). When a chunk is columnar
// and the user function carries a matching typed fast path
// (lang/functions.h), the hot kernels (map/filter/flatMap/reduce/
// reduceByKey/distinct) run tight loops over the raw columns; otherwise
// they fall back to the generic boxed-Datum path. Both paths are
// element-equivalent by construction and cross-checked by the fuzz harness.
#ifndef MITOS_DATAFLOW_OPERATORS_H_
#define MITOS_DATAFLOW_OPERATORS_H_

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/chunk.h"
#include "common/datum.h"
#include "dataflow/graph.h"
#include "lang/functions.h"

namespace mitos::dataflow {

class BagOperator {
 public:
  using EmitFn = std::function<void(Chunk&&)>;

  virtual ~BagOperator() = default;

  // Starts a new output bag. State for inputs marked reusable via
  // SetReuseInput(true) must be kept; everything else resets.
  virtual void Open() = 0;

  // Feeds a chunk of the chosen input bag on logical input `input`.
  virtual void Push(int input, const Chunk& chunk, const EmitFn& emit) = 0;

  // All data of logical input `input` has been fed for this bag.
  virtual void Close(int input, const EmitFn& emit);

  // All inputs closed; emit any remaining output for this bag.
  virtual void Finish(const EmitFn& emit) = 0;

  // Loop-invariant hoisting support (paper Sec. 5.3): true if the state
  // built from `input` can be kept across output bags.
  virtual bool CanReuseInput(int input) const;

  // Called by the host before Open(): when true, the next bag's `input` is
  // the same bag as the previous one and the kernel must keep its state.
  virtual void SetReuseInput(int input, bool reuse);

  // Input that must be fully fed before any other input (join build side);
  // -1 if none.
  virtual int BlockingInput() const;

  // Columnar-plane switch: when false (the ablation / pre-batching mode),
  // kernels never take typed fast paths and emit boxed chunks only.
  void set_columnar(bool on) { columnar_ = on; }

 protected:
  bool columnar() const { return columnar_; }
  // Emits `out` re-columnarized iff the columnar plane is on.
  void EmitDatums(DatumVector&& out, const EmitFn& emit) const {
    if (!out.empty()) emit(Chunk::OfDatums(std::move(out), columnar_));
  }

 private:
  bool columnar_ = true;
};

// Creates the kernel for `node`, wired to the given columnar mode.
// Source/sink/condition kinds (bagLit, readFile, writeFile, condition) are
// handled by the host itself and return null here.
std::unique_ptr<BagOperator> MakeOperator(const LogicalNode& node,
                                          bool columnar = true);

// ----- concrete kernels (exposed for unit tests) -----

class MapOp : public BagOperator {
 public:
  explicit MapOp(lang::UnaryFn fn) : fn_(std::move(fn)) {}
  void Open() override {}
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& emit) override;

 private:
  lang::UnaryFn fn_;
};

class FilterOp : public BagOperator {
 public:
  explicit FilterOp(lang::PredicateFn fn) : fn_(std::move(fn)) {}
  void Open() override {}
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& emit) override;

 private:
  lang::PredicateFn fn_;
};

class FlatMapOp : public BagOperator {
 public:
  explicit FlatMapOp(lang::FlatMapFn fn) : fn_(std::move(fn)) {}
  void Open() override {}
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& emit) override;

 private:
  lang::FlatMapFn fn_;
};

// Per-partition aggregation over (k, v) pairs; emits at Finish in
// first-seen key order (matching lang::ReduceByKeyKernel per partition).
// Values are buffered per key and folded in sorted order at Finish, so the
// result is independent of chunk arrival order — bags are *unordered*
// collections, and a canonical fold order is what makes re-executed
// (recovered) runs byte-identical even for non-associative-in-float
// combiners.
//
// Fast path: while every pushed chunk is an (int64, int64) column and the
// combiner has an i64 variant, keys and value lists stay in raw int64
// state; the first incompatible chunk degrades the state to the generic
// boxed form (int64 ordering and equality are identical in both domains,
// so results cannot differ).
class ReduceByKeyOp : public BagOperator {
 public:
  explicit ReduceByKeyOp(lang::BinaryFn combine)
      : combine_(std::move(combine)) {}
  void Open() override;
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& emit) override;

 private:
  void DegradeToGeneric();

  lang::BinaryFn combine_;
  bool typed_ = false;
  std::vector<int64_t> key_order64_;
  std::unordered_map<int64_t, std::vector<int64_t>> values64_;
  std::vector<Datum> key_order_;
  std::unordered_map<Datum, DatumVector, DatumHash, DatumEq> values_;
};

// Folds everything it sees; emits the (single) partial at Finish, or
// nothing when the input was empty. Used for both the local pre-fold and
// the final fold of a global reduce. Buffers and folds in sorted order at
// Finish (canonical order; see ReduceByKeyOp). Same typed/degrade scheme
// as ReduceByKeyOp, over plain int64 columns.
class ReduceOp : public BagOperator {
 public:
  explicit ReduceOp(lang::BinaryFn combine) : combine_(std::move(combine)) {}
  void Open() override;
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& emit) override;

 private:
  void DegradeToGeneric();

  lang::BinaryFn combine_;
  bool typed_ = false;
  std::vector<int64_t> values64_;
  DatumVector values_;
};

// Counts elements; emits one int64 at Finish (even for empty input).
class CountOp : public BagOperator {
 public:
  void Open() override { count_ = 0; }
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& emit) override;

 private:
  int64_t count_ = 0;
};

// Hash join: input 0 builds, input 1 probes; emits (k, build_v, probe_v).
// The build side supports loop-invariant state reuse (paper Sec. 5.3).
// Output tuples are width-3 and never columnar, so the kernel stays on the
// generic path.
class JoinOp : public BagOperator {
 public:
  void Open() override;
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& /*emit*/) override {}
  bool CanReuseInput(int input) const override { return input == 0; }
  void SetReuseInput(int input, bool reuse) override;
  int BlockingInput() const override { return 0; }

 private:
  bool reuse_build_ = false;
  std::unordered_map<Datum, DatumVector, DatumHash, DatumEq> table_;
};

// Multiset union: forwards both inputs (shared handle, no copy).
class UnionOp : public BagOperator {
 public:
  void Open() override {}
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& /*emit*/) override {}
};

// Per-partition duplicate elimination (inputs arrive hash-partitioned by
// whole element, so global distinctness holds). int64 columns keep a raw
// int64 seen-set; anything else degrades to the boxed set.
class DistinctOp : public BagOperator {
 public:
  void Open() override;
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& /*emit*/) override {}

 private:
  void DegradeToGeneric();

  bool typed_ = false;
  std::unordered_set<int64_t> seen64_;
  std::unordered_map<Datum, bool, DatumHash, DatumEq> seen_;
};

// f(a0, b0) over two one-element bags; emits nothing if either is empty.
class Combine2Op : public BagOperator {
 public:
  explicit Combine2Op(lang::BinaryFn fn) : fn_(std::move(fn)) {}
  void Open() override;
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& emit) override;

 private:
  lang::BinaryFn fn_;
  std::optional<Datum> a_;
  std::optional<Datum> b_;
};

// Φ: forwards whichever single input the host selected for this bag.
class PhiOp : public BagOperator {
 public:
  void Open() override {}
  void Push(int input, const Chunk& chunk, const EmitFn& emit) override;
  void Finish(const EmitFn& /*emit*/) override {}
};

}  // namespace mitos::dataflow

#endif  // MITOS_DATAFLOW_OPERATORS_H_
