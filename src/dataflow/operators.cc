#include "dataflow/operators.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mitos::dataflow {

namespace {

// Generic per-element iteration over any chunk representation. Boxed chunks
// iterate in place; columnar chunks box one element at a time.
template <typename Fn>
void ForEachDatum(const Chunk& chunk, Fn&& fn) {
  if (chunk.rep() == Chunk::Rep::kDatums) {
    const Datum* data = chunk.datums();
    for (size_t i = 0; i < chunk.size(); ++i) fn(data[i]);
  } else {
    for (size_t i = 0; i < chunk.size(); ++i) fn(chunk.At(i));
  }
}

}  // namespace

void BagOperator::Close(int input, const EmitFn& emit) {
  (void)input;
  (void)emit;
}

bool BagOperator::CanReuseInput(int input) const {
  (void)input;
  return false;
}

void BagOperator::SetReuseInput(int input, bool reuse) {
  (void)input;
  MITOS_CHECK(!reuse) << "operator does not support input state reuse";
}

int BagOperator::BlockingInput() const { return -1; }

void MapOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  const size_t n = chunk.size();
  if (columnar()) {
    switch (chunk.rep()) {
      case Chunk::Rep::kInt64:
        if (fn_.i64) {
          const int64_t* in = chunk.i64();
          std::vector<int64_t> out;
          out.reserve(n);
          for (size_t i = 0; i < n; ++i) out.push_back(fn_.i64(in[i]));
          if (n > 0) emit(Chunk::OfInt64(std::move(out)));
          return;
        }
        if (fn_.i64_to_pair) {
          const int64_t* in = chunk.i64();
          std::vector<int64_t> keys;
          std::vector<int64_t> vals;
          keys.reserve(n);
          vals.reserve(n);
          for (size_t i = 0; i < n; ++i) {
            lang::Int64Pair p = fn_.i64_to_pair(in[i]);
            keys.push_back(p.first);
            vals.push_back(p.second);
          }
          if (n > 0) emit(Chunk::OfInt64Pairs(std::move(keys), std::move(vals)));
          return;
        }
        break;
      case Chunk::Rep::kDouble:
        if (fn_.f64) {
          const double* in = chunk.f64();
          std::vector<double> out;
          out.reserve(n);
          for (size_t i = 0; i < n; ++i) out.push_back(fn_.f64(in[i]));
          if (n > 0) emit(Chunk::OfDouble(std::move(out)));
          return;
        }
        break;
      case Chunk::Rep::kInt64Pair:
        if (fn_.pair_to_i64) {
          const int64_t* keys = chunk.keys();
          const int64_t* vals = chunk.vals();
          std::vector<int64_t> out;
          out.reserve(n);
          for (size_t i = 0; i < n; ++i) {
            out.push_back(fn_.pair_to_i64(keys[i], vals[i]));
          }
          if (n > 0) emit(Chunk::OfInt64(std::move(out)));
          return;
        }
        if (fn_.pair_to_pair) {
          const int64_t* keys = chunk.keys();
          const int64_t* vals = chunk.vals();
          std::vector<int64_t> out_keys;
          std::vector<int64_t> out_vals;
          out_keys.reserve(n);
          out_vals.reserve(n);
          for (size_t i = 0; i < n; ++i) {
            lang::Int64Pair p = fn_.pair_to_pair(keys[i], vals[i]);
            out_keys.push_back(p.first);
            out_vals.push_back(p.second);
          }
          if (n > 0) {
            emit(Chunk::OfInt64Pairs(std::move(out_keys), std::move(out_vals)));
          }
          return;
        }
        break;
      case Chunk::Rep::kDatums:
        break;
    }
  }
  DatumVector out;
  out.reserve(n);
  ForEachDatum(chunk, [&](const Datum& x) { out.push_back(fn_(x)); });
  EmitDatums(std::move(out), emit);
}

void MapOp::Finish(const EmitFn& emit) { (void)emit; }

void FilterOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  const size_t n = chunk.size();
  if (columnar()) {
    if (chunk.rep() == Chunk::Rep::kInt64 && fn_.i64) {
      const int64_t* in = chunk.i64();
      std::vector<int64_t> out;
      for (size_t i = 0; i < n; ++i) {
        if (fn_.i64(in[i])) out.push_back(in[i]);
      }
      if (!out.empty()) emit(Chunk::OfInt64(std::move(out)));
      return;
    }
    if (chunk.rep() == Chunk::Rep::kInt64Pair && fn_.pair) {
      const int64_t* keys = chunk.keys();
      const int64_t* vals = chunk.vals();
      std::vector<int64_t> out_keys;
      std::vector<int64_t> out_vals;
      for (size_t i = 0; i < n; ++i) {
        if (fn_.pair(keys[i], vals[i])) {
          out_keys.push_back(keys[i]);
          out_vals.push_back(vals[i]);
        }
      }
      if (!out_keys.empty()) {
        emit(Chunk::OfInt64Pairs(std::move(out_keys), std::move(out_vals)));
      }
      return;
    }
  }
  DatumVector out;
  ForEachDatum(chunk, [&](const Datum& x) {
    if (fn_(x)) out.push_back(x);
  });
  EmitDatums(std::move(out), emit);
}

void FilterOp::Finish(const EmitFn& emit) { (void)emit; }

void FlatMapOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  if (columnar() && chunk.rep() == Chunk::Rep::kInt64 && fn_.i64) {
    const int64_t* in = chunk.i64();
    std::vector<int64_t> out;
    out.reserve(chunk.size());
    for (size_t i = 0; i < chunk.size(); ++i) fn_.i64(in[i], &out);
    if (!out.empty()) emit(Chunk::OfInt64(std::move(out)));
    return;
  }
  DatumVector out;
  ForEachDatum(chunk, [&](const Datum& x) {
    DatumVector pieces = fn_(x);
    out.insert(out.end(), std::make_move_iterator(pieces.begin()),
               std::make_move_iterator(pieces.end()));
  });
  EmitDatums(std::move(out), emit);
}

void FlatMapOp::Finish(const EmitFn& emit) { (void)emit; }

void ReduceByKeyOp::Open() {
  key_order_.clear();
  values_.clear();
  key_order64_.clear();
  values64_.clear();
  typed_ = columnar() && static_cast<bool>(combine_.i64);
}

void ReduceByKeyOp::DegradeToGeneric() {
  // Replay the typed state into the boxed state, preserving first-seen key
  // order. int64 equality and ordering agree across the two domains, so
  // this is a pure representation change.
  for (int64_t key : key_order64_) {
    Datum k = Datum::Int64(key);
    DatumVector& out = values_[k];
    for (int64_t v : values64_.at(key)) out.push_back(Datum::Int64(v));
    key_order_.push_back(std::move(k));
  }
  key_order64_.clear();
  values64_.clear();
  typed_ = false;
}

void ReduceByKeyOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  (void)emit;
  if (typed_) {
    if (chunk.rep() == Chunk::Rep::kInt64Pair) {
      const int64_t* keys = chunk.keys();
      const int64_t* vals = chunk.vals();
      for (size_t i = 0; i < chunk.size(); ++i) {
        auto it = values64_.find(keys[i]);
        if (it == values64_.end()) {
          values64_[keys[i]].push_back(vals[i]);
          key_order64_.push_back(keys[i]);
        } else {
          it->second.push_back(vals[i]);
        }
      }
      return;
    }
    DegradeToGeneric();
  }
  ForEachDatum(chunk, [&](const Datum& element) {
    MITOS_CHECK(element.is_tuple() && element.size() >= 2)
        << "reduceByKey input is not a (key, value) pair: "
        << element.ToString();
    const Datum& key = element.field(0);
    auto it = values_.find(key);
    if (it == values_.end()) {
      values_[key].push_back(element.field(1));
      key_order_.push_back(key);
    } else {
      it->second.push_back(element.field(1));
    }
  });
}

void ReduceByKeyOp::Finish(const EmitFn& emit) {
  if (typed_) {
    if (key_order64_.empty()) return;
    std::vector<int64_t> out_keys;
    std::vector<int64_t> out_vals;
    out_keys.reserve(key_order64_.size());
    out_vals.reserve(key_order64_.size());
    for (int64_t key : key_order64_) {
      // Canonical fold order (see class comment): sort buffered values so
      // chunk arrival order cannot change the result.
      std::vector<int64_t>& vals = values64_.at(key);
      std::sort(vals.begin(), vals.end());
      int64_t acc = vals.front();
      for (size_t i = 1; i < vals.size(); ++i) acc = combine_.i64(acc, vals[i]);
      out_keys.push_back(key);
      out_vals.push_back(acc);
    }
    emit(Chunk::OfInt64Pairs(std::move(out_keys), std::move(out_vals)));
    return;
  }
  if (key_order_.empty()) return;
  DatumVector out;
  out.reserve(key_order_.size());
  for (const Datum& key : key_order_) {
    // Canonical fold order: bags are unordered, so sort the buffered
    // values before combining — chunk arrival order (which pipelining,
    // shuffles, and recovery all perturb) then cannot change the result,
    // even for float sums.
    DatumVector& vals = values_.at(key);
    std::sort(vals.begin(), vals.end());
    Datum acc = vals.front();
    for (size_t i = 1; i < vals.size(); ++i) acc = combine_(acc, vals[i]);
    out.push_back(Datum::Pair(key, std::move(acc)));
  }
  EmitDatums(std::move(out), emit);
}

void ReduceOp::Open() {
  values_.clear();
  values64_.clear();
  typed_ = columnar() && static_cast<bool>(combine_.i64);
}

void ReduceOp::DegradeToGeneric() {
  for (int64_t v : values64_) values_.push_back(Datum::Int64(v));
  values64_.clear();
  typed_ = false;
}

void ReduceOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  (void)emit;
  if (typed_) {
    if (chunk.rep() == Chunk::Rep::kInt64) {
      const int64_t* in = chunk.i64();
      values64_.insert(values64_.end(), in, in + chunk.size());
      return;
    }
    DegradeToGeneric();
  }
  ForEachDatum(chunk, [&](const Datum& x) { values_.push_back(x); });
}

void ReduceOp::Finish(const EmitFn& emit) {
  if (typed_) {
    if (values64_.empty()) return;
    // Canonical fold order; int64 sort order matches Datum sort order.
    std::sort(values64_.begin(), values64_.end());
    int64_t acc = values64_.front();
    for (size_t i = 1; i < values64_.size(); ++i) {
      acc = combine_.i64(acc, values64_[i]);
    }
    emit(Chunk::OfInt64({acc}));
    return;
  }
  if (values_.empty()) return;
  // Canonical fold order (see ReduceByKeyOp::Finish).
  std::sort(values_.begin(), values_.end());
  Datum acc = values_.front();
  for (size_t i = 1; i < values_.size(); ++i) acc = combine_(acc, values_[i]);
  EmitDatums(DatumVector{std::move(acc)}, emit);
}

void CountOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  (void)emit;
  count_ += static_cast<int64_t>(chunk.size());
}

void CountOp::Finish(const EmitFn& emit) {
  if (columnar()) {
    emit(Chunk::OfInt64({count_}));
  } else {
    emit(Chunk::OfDatums(DatumVector{Datum::Int64(count_)}, false));
  }
}

void JoinOp::Open() {
  if (!reuse_build_) table_.clear();
}

void JoinOp::SetReuseInput(int input, bool reuse) {
  MITOS_CHECK_EQ(input, 0) << "only the build side supports reuse";
  reuse_build_ = reuse;
}

void JoinOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  if (input == 0) {
    ForEachDatum(chunk, [&](const Datum& element) {
      MITOS_CHECK(element.is_tuple() && element.size() >= 2)
          << "join build input is not a (key, value) pair";
      table_[element.field(0)].push_back(element.field(1));
    });
    return;
  }
  MITOS_CHECK_EQ(input, 1);
  DatumVector out;
  ForEachDatum(chunk, [&](const Datum& element) {
    MITOS_CHECK(element.is_tuple() && element.size() >= 2)
        << "join probe input is not a (key, value) pair";
    auto it = table_.find(element.field(0));
    if (it == table_.end()) return;
    for (const Datum& build_value : it->second) {
      out.push_back(
          Datum::Tuple({element.field(0), build_value, element.field(1)}));
    }
  });
  EmitDatums(std::move(out), emit);
}

void UnionOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  MITOS_CHECK(input == 0 || input == 1);
  emit(Chunk(chunk));  // shared handle: forwarding is a pointer copy
}

void DistinctOp::Open() {
  seen_.clear();
  seen64_.clear();
  typed_ = columnar();
}

void DistinctOp::DegradeToGeneric() {
  for (int64_t v : seen64_) seen_.emplace(Datum::Int64(v), true);
  seen64_.clear();
  typed_ = false;
}

void DistinctOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  if (typed_) {
    if (chunk.rep() == Chunk::Rep::kInt64) {
      const int64_t* in = chunk.i64();
      std::vector<int64_t> out;
      for (size_t i = 0; i < chunk.size(); ++i) {
        if (seen64_.insert(in[i]).second) out.push_back(in[i]);
      }
      if (!out.empty()) emit(Chunk::OfInt64(std::move(out)));
      return;
    }
    DegradeToGeneric();
  }
  DatumVector out;
  ForEachDatum(chunk, [&](const Datum& x) {
    if (seen_.emplace(x, true).second) out.push_back(x);
  });
  EmitDatums(std::move(out), emit);
}

void Combine2Op::Open() {
  a_.reset();
  b_.reset();
}

void Combine2Op::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  (void)emit;
  ForEachDatum(chunk, [&](const Datum& x) {
    if (input == 0) {
      MITOS_CHECK(!a_.has_value()) << "combine2 input 0 has >1 element";
      a_ = x;
    } else {
      MITOS_CHECK_EQ(input, 1);
      MITOS_CHECK(!b_.has_value()) << "combine2 input 1 has >1 element";
      b_ = x;
    }
  });
}

void Combine2Op::Finish(const EmitFn& emit) {
  if (a_.has_value() && b_.has_value()) {
    EmitDatums(DatumVector{fn_(*a_, *b_)}, emit);
  }
}

void PhiOp::Push(int input, const Chunk& chunk, const EmitFn& emit) {
  (void)input;  // the host feeds only the selected input
  emit(Chunk(chunk));  // shared handle: forwarding is a pointer copy
}

std::unique_ptr<BagOperator> MakeOperator(const LogicalNode& node,
                                          bool columnar) {
  std::unique_ptr<BagOperator> op;
  switch (node.kind) {
    case NodeKind::kMap:
      op = std::make_unique<MapOp>(node.unary);
      break;
    case NodeKind::kFilter:
      op = std::make_unique<FilterOp>(node.pred);
      break;
    case NodeKind::kFlatMap:
      op = std::make_unique<FlatMapOp>(node.flat);
      break;
    case NodeKind::kReduceByKey:
      op = std::make_unique<ReduceByKeyOp>(node.binary);
      break;
    case NodeKind::kLocalReduce:
    case NodeKind::kFinalReduce:
      op = std::make_unique<ReduceOp>(node.binary);
      break;
    case NodeKind::kLocalCount:
      op = std::make_unique<CountOp>();
      break;
    case NodeKind::kJoin:
      op = std::make_unique<JoinOp>();
      break;
    case NodeKind::kUnion:
      op = std::make_unique<UnionOp>();
      break;
    case NodeKind::kDistinct:
      op = std::make_unique<DistinctOp>();
      break;
    case NodeKind::kCombine2:
      op = std::make_unique<Combine2Op>(node.binary);
      break;
    case NodeKind::kPhi:
      op = std::make_unique<PhiOp>();
      break;
    case NodeKind::kBagLit:
    case NodeKind::kReadFile:
    case NodeKind::kWriteFile:
    case NodeKind::kCondition:
      return nullptr;  // handled by the host
  }
  if (op != nullptr) op->set_columnar(columnar);
  return op;
}

}  // namespace mitos::dataflow
