#include "dataflow/operators.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mitos::dataflow {

void BagOperator::Close(int input, const EmitFn& emit) {
  (void)input;
  (void)emit;
}

bool BagOperator::CanReuseInput(int input) const {
  (void)input;
  return false;
}

void BagOperator::SetReuseInput(int input, bool reuse) {
  (void)input;
  MITOS_CHECK(!reuse) << "operator does not support input state reuse";
}

int BagOperator::BlockingInput() const { return -1; }

void MapOp::Push(int input, const DatumVector& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  DatumVector out;
  out.reserve(chunk.size());
  for (const Datum& x : chunk) out.push_back(fn_(x));
  if (!out.empty()) emit(std::move(out));
}

void MapOp::Finish(const EmitFn& emit) { (void)emit; }

void FilterOp::Push(int input, const DatumVector& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  DatumVector out;
  for (const Datum& x : chunk) {
    if (fn_(x)) out.push_back(x);
  }
  if (!out.empty()) emit(std::move(out));
}

void FilterOp::Finish(const EmitFn& emit) { (void)emit; }

void FlatMapOp::Push(int input, const DatumVector& chunk,
                     const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  DatumVector out;
  for (const Datum& x : chunk) {
    DatumVector pieces = fn_(x);
    out.insert(out.end(), std::make_move_iterator(pieces.begin()),
               std::make_move_iterator(pieces.end()));
  }
  if (!out.empty()) emit(std::move(out));
}

void FlatMapOp::Finish(const EmitFn& emit) { (void)emit; }

void ReduceByKeyOp::Open() {
  key_order_.clear();
  values_.clear();
}

void ReduceByKeyOp::Push(int input, const DatumVector& chunk,
                         const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  (void)emit;
  for (const Datum& element : chunk) {
    MITOS_CHECK(element.is_tuple() && element.size() >= 2)
        << "reduceByKey input is not a (key, value) pair: "
        << element.ToString();
    const Datum& key = element.field(0);
    auto it = values_.find(key);
    if (it == values_.end()) {
      values_[key].push_back(element.field(1));
      key_order_.push_back(key);
    } else {
      it->second.push_back(element.field(1));
    }
  }
}

void ReduceByKeyOp::Finish(const EmitFn& emit) {
  if (key_order_.empty()) return;
  DatumVector out;
  out.reserve(key_order_.size());
  for (const Datum& key : key_order_) {
    // Canonical fold order: bags are unordered, so sort the buffered
    // values before combining — chunk arrival order (which pipelining,
    // shuffles, and recovery all perturb) then cannot change the result,
    // even for float sums.
    DatumVector& vals = values_.at(key);
    std::sort(vals.begin(), vals.end());
    Datum acc = vals.front();
    for (size_t i = 1; i < vals.size(); ++i) acc = combine_(acc, vals[i]);
    out.push_back(Datum::Pair(key, std::move(acc)));
  }
  emit(std::move(out));
}

void ReduceOp::Push(int input, const DatumVector& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  (void)emit;
  values_.insert(values_.end(), chunk.begin(), chunk.end());
}

void ReduceOp::Finish(const EmitFn& emit) {
  if (values_.empty()) return;
  // Canonical fold order (see ReduceByKeyOp::Finish).
  std::sort(values_.begin(), values_.end());
  Datum acc = values_.front();
  for (size_t i = 1; i < values_.size(); ++i) acc = combine_(acc, values_[i]);
  emit(DatumVector{std::move(acc)});
}

void CountOp::Push(int input, const DatumVector& chunk, const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  (void)emit;
  count_ += static_cast<int64_t>(chunk.size());
}

void CountOp::Finish(const EmitFn& emit) {
  emit(DatumVector{Datum::Int64(count_)});
}

void JoinOp::Open() {
  if (!reuse_build_) table_.clear();
}

void JoinOp::SetReuseInput(int input, bool reuse) {
  MITOS_CHECK_EQ(input, 0) << "only the build side supports reuse";
  reuse_build_ = reuse;
}

void JoinOp::Push(int input, const DatumVector& chunk, const EmitFn& emit) {
  if (input == 0) {
    for (const Datum& element : chunk) {
      MITOS_CHECK(element.is_tuple() && element.size() >= 2)
          << "join build input is not a (key, value) pair";
      table_[element.field(0)].push_back(element.field(1));
    }
    return;
  }
  MITOS_CHECK_EQ(input, 1);
  DatumVector out;
  for (const Datum& element : chunk) {
    MITOS_CHECK(element.is_tuple() && element.size() >= 2)
        << "join probe input is not a (key, value) pair";
    auto it = table_.find(element.field(0));
    if (it == table_.end()) continue;
    for (const Datum& build_value : it->second) {
      out.push_back(
          Datum::Tuple({element.field(0), build_value, element.field(1)}));
    }
  }
  if (!out.empty()) emit(std::move(out));
}

void UnionOp::Push(int input, const DatumVector& chunk, const EmitFn& emit) {
  MITOS_CHECK(input == 0 || input == 1);
  DatumVector out = chunk;
  emit(std::move(out));
}

void DistinctOp::Push(int input, const DatumVector& chunk,
                      const EmitFn& emit) {
  MITOS_CHECK_EQ(input, 0);
  DatumVector out;
  for (const Datum& x : chunk) {
    if (seen_.emplace(x, true).second) out.push_back(x);
  }
  if (!out.empty()) emit(std::move(out));
}

void Combine2Op::Open() {
  a_.reset();
  b_.reset();
}

void Combine2Op::Push(int input, const DatumVector& chunk,
                      const EmitFn& emit) {
  (void)emit;
  for (const Datum& x : chunk) {
    if (input == 0) {
      MITOS_CHECK(!a_.has_value()) << "combine2 input 0 has >1 element";
      a_ = x;
    } else {
      MITOS_CHECK_EQ(input, 1);
      MITOS_CHECK(!b_.has_value()) << "combine2 input 1 has >1 element";
      b_ = x;
    }
  }
}

void Combine2Op::Finish(const EmitFn& emit) {
  if (a_.has_value() && b_.has_value()) {
    emit(DatumVector{fn_(*a_, *b_)});
  }
}

void PhiOp::Push(int input, const DatumVector& chunk, const EmitFn& emit) {
  (void)input;  // the host feeds only the selected input
  DatumVector out = chunk;
  emit(std::move(out));
}

std::unique_ptr<BagOperator> MakeOperator(const LogicalNode& node) {
  switch (node.kind) {
    case NodeKind::kMap:
      return std::make_unique<MapOp>(node.unary);
    case NodeKind::kFilter:
      return std::make_unique<FilterOp>(node.pred);
    case NodeKind::kFlatMap:
      return std::make_unique<FlatMapOp>(node.flat);
    case NodeKind::kReduceByKey:
      return std::make_unique<ReduceByKeyOp>(node.binary);
    case NodeKind::kLocalReduce:
    case NodeKind::kFinalReduce:
      return std::make_unique<ReduceOp>(node.binary);
    case NodeKind::kLocalCount:
      return std::make_unique<CountOp>();
    case NodeKind::kJoin:
      return std::make_unique<JoinOp>();
    case NodeKind::kUnion:
      return std::make_unique<UnionOp>();
    case NodeKind::kDistinct:
      return std::make_unique<DistinctOp>();
    case NodeKind::kCombine2:
      return std::make_unique<Combine2Op>(node.binary);
    case NodeKind::kPhi:
      return std::make_unique<PhiOp>();
    case NodeKind::kBagLit:
    case NodeKind::kReadFile:
    case NodeKind::kWriteFile:
    case NodeKind::kCondition:
      return nullptr;  // handled by the host
  }
  return nullptr;
}

}  // namespace mitos::dataflow
