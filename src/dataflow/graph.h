// Logical dataflow graphs (a single — possibly cyclic — job).
//
// One node per SSA assignment statement, one edge per variable reference
// (paper Sec. 4.3), plus a condition node per conditional branch terminator
// (the blue/brown nodes of Figure 3b). Edges crossing basic blocks are
// *conditional*: whether they transmit a given bag is governed by the
// execution path (Sec. 5.2.4). Parallel reduce/count are expanded into a
// local (pre-aggregating) node plus a parallelism-1 final node.
#ifndef MITOS_DATAFLOW_GRAPH_H_
#define MITOS_DATAFLOW_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "common/datum.h"
#include "ir/ir.h"
#include "lang/functions.h"

namespace mitos::dataflow {

using NodeId = int;

enum class NodeKind {
  kBagLit,       // emits a literal bag
  kReadFile,     // input 0: filename (one-element bag); reads its partition
  kMap,
  kFilter,
  kFlatMap,
  kReduceByKey,  // input shuffled by field 0
  kLocalReduce,  // per-partition pre-fold (paper's `summed`, parallel part)
  kFinalReduce,  // folds the gathered partials (parallelism 1)
  kLocalCount,   // per-partition count
  kJoin,         // input 0 = build, input 1 = probe, both shuffled by key
  kUnion,
  kDistinct,     // input shuffled by whole element
  kCombine2,     // two one-element bags -> one element
  kPhi,          // runtime-selected identity (black nodes of Fig. 3b)
  kWriteFile,    // sink; input 0 = bag, input 1 = filename
  kCondition,    // evaluates a one-element bool bag; drives the path
};

const char* NodeKindName(NodeKind kind);

// How a logical edge fans out into physical edges.
enum class EdgeKind {
  kForward,    // instance i -> instance i (producer par <= consumer par)
  kShuffle,    // all-to-all, routed by hash
  kGather,     // all -> instance 0
  kBroadcast,  // instance 0 -> all (requires producer parallelism 1;
               // used for metadata such as file names)
};

const char* EdgeKindName(EdgeKind kind);

// What a shuffle hashes on.
enum class ShuffleKey {
  kField0,        // tuple field 0 (join / reduceByKey keys)
  kWholeElement,  // the element itself (distinct)
};

struct EdgeRef {
  NodeId from = -1;
  int input_index = -1;  // which logical input of the consumer
  EdgeKind kind = EdgeKind::kForward;
  ShuffleKey shuffle_key = ShuffleKey::kField0;
  // True when producer and consumer live in different basic blocks: the
  // runtime gates transmission on the execution path (Sec. 5.2.4).
  bool conditional = false;
};

struct LogicalNode {
  NodeId id = -1;
  NodeKind kind{};
  std::string name;            // SSA variable name (debugging / stats)
  ir::BlockId block = ir::kNoBlock;
  int parallelism = 1;
  bool singleton = false;      // one-element bag (wrapped scalar world)

  // Payloads.
  lang::UnaryFn unary;
  lang::PredicateFn pred;
  lang::FlatMapFn flat;
  lang::BinaryFn binary;
  DatumVector literal;

  // For kCondition: the block whose terminator this node decides, plus its
  // two successor blocks.
  ir::BlockId branch_true = ir::kNoBlock;
  ir::BlockId branch_false = ir::kNoBlock;

  std::vector<EdgeRef> inputs;

  // Relative per-element CPU cost (hash builds cost more than maps).
  double cost_factor = 1.0;
};

struct LogicalGraph {
  std::vector<LogicalNode> nodes;

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  const LogicalNode& node(NodeId id) const {
    return nodes[static_cast<size_t>(id)];
  }

  // Out-edges are derived from inputs; (consumer, input_index) pairs.
  struct OutEdge {
    NodeId to;
    int input_index;
  };
  std::vector<std::vector<OutEdge>> BuildOutEdges() const;

  // Pre-resolved routing/partitioning metadata for a producer's physical
  // out-edges: everything a host needs to emit without consulting the
  // consumer node again. Built once per graph, lazily, and shared by every
  // operator instance (the simulator is single-threaded; the cache is
  // `mutable` so a translated graph can stay const for the whole run).
  struct RoutingEdge {
    NodeId consumer;
    int input_index;
    EdgeKind kind;
    ShuffleKey shuffle_key;
    bool conditional;
    ir::BlockId consumer_block;
    int consumer_par;
  };
  const std::vector<RoutingEdge>& routing(NodeId producer) const;
  mutable std::vector<std::vector<RoutingEdge>> routing_cache_;
};

std::string ToString(const LogicalGraph& graph);

// GraphViz rendering in the style of the paper's Figure 3b: nodes grouped
// into basic-block clusters, Φ nodes filled black, condition nodes
// colored, conditional edges dashed. With `operator_cpu` (busy-CPU seconds
// per operator name, e.g. RunStats::operator_cpu from a profiled run),
// node labels carry the measured cost — the EXPLAIN back-fill.
std::string ToDot(const LogicalGraph& graph);
std::string ToDot(const LogicalGraph& graph,
                  const std::map<std::string, double>& operator_cpu);

}  // namespace mitos::dataflow

#endif  // MITOS_DATAFLOW_GRAPH_H_
