#include "dataflow/graph.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace mitos::dataflow {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kBagLit: return "bagLit";
    case NodeKind::kReadFile: return "readFile";
    case NodeKind::kMap: return "map";
    case NodeKind::kFilter: return "filter";
    case NodeKind::kFlatMap: return "flatMap";
    case NodeKind::kReduceByKey: return "reduceByKey";
    case NodeKind::kLocalReduce: return "localReduce";
    case NodeKind::kFinalReduce: return "finalReduce";
    case NodeKind::kLocalCount: return "localCount";
    case NodeKind::kJoin: return "join";
    case NodeKind::kUnion: return "union";
    case NodeKind::kDistinct: return "distinct";
    case NodeKind::kCombine2: return "combine2";
    case NodeKind::kPhi: return "phi";
    case NodeKind::kWriteFile: return "writeFile";
    case NodeKind::kCondition: return "condition";
  }
  return "?";
}

const char* EdgeKindName(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kForward: return "forward";
    case EdgeKind::kShuffle: return "shuffle";
    case EdgeKind::kGather: return "gather";
    case EdgeKind::kBroadcast: return "broadcast";
  }
  return "?";
}

std::vector<std::vector<LogicalGraph::OutEdge>>
LogicalGraph::BuildOutEdges() const {
  std::vector<std::vector<OutEdge>> out(nodes.size());
  for (const LogicalNode& node : nodes) {
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      const EdgeRef& edge = node.inputs[i];
      out[static_cast<size_t>(edge.from)].push_back(
          OutEdge{node.id, static_cast<int>(i)});
    }
  }
  return out;
}

const std::vector<LogicalGraph::RoutingEdge>& LogicalGraph::routing(
    NodeId producer) const {
  if (routing_cache_.size() != nodes.size()) {
    routing_cache_.assign(nodes.size(), {});
    for (const LogicalNode& consumer : nodes) {
      for (size_t i = 0; i < consumer.inputs.size(); ++i) {
        const EdgeRef& edge = consumer.inputs[i];
        routing_cache_[static_cast<size_t>(edge.from)].push_back(
            RoutingEdge{consumer.id, static_cast<int>(i), edge.kind,
                        edge.shuffle_key, edge.conditional, consumer.block,
                        consumer.parallelism});
      }
    }
  }
  return routing_cache_[static_cast<size_t>(producer)];
}

std::string ToString(const LogicalGraph& graph) {
  std::ostringstream out;
  for (const LogicalNode& node : graph.nodes) {
    out << node.id << ": " << node.name << " = " << NodeKindName(node.kind)
        << " [block " << node.block << ", par " << node.parallelism;
    if (node.singleton) out << ", singleton";
    out << "]";
    for (const EdgeRef& edge : node.inputs) {
      out << "  <-" << edge.from << " (" << EdgeKindName(edge.kind);
      if (edge.conditional) out << ", conditional";
      out << ")";
    }
    out << '\n';
  }
  return out.str();
}

std::string ToDot(const LogicalGraph& graph) {
  return ToDot(graph, {});
}

std::string ToDot(const LogicalGraph& graph,
                  const std::map<std::string, double>& operator_cpu) {
  std::ostringstream out;
  out << "digraph mitos {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  // Cluster nodes by basic block (the dotted rectangles of Fig. 3b).
  std::map<int, std::vector<const LogicalNode*>> by_block;
  for (const LogicalNode& node : graph.nodes) {
    by_block[node.block].push_back(&node);
  }
  for (const auto& [block, nodes] : by_block) {
    out << "  subgraph cluster_block" << block << " {\n"
        << "    label=\"block " << block << "\"; style=dotted;\n";
    for (const LogicalNode* node : nodes) {
      out << "    n" << node->id << " [label=\"" << node->name << "\\n"
          << NodeKindName(node->kind) << " x" << node->parallelism;
      if (auto it = operator_cpu.find(node->name);
          it != operator_cpu.end()) {
        char cost[48];
        std::snprintf(cost, sizeof(cost), "\\n%.4fs cpu", it->second);
        out << cost;
      }
      out << "\"";
      if (node->kind == NodeKind::kPhi) {
        out << ", style=filled, fillcolor=black, fontcolor=white";
      } else if (node->kind == NodeKind::kCondition) {
        out << ", style=filled, fillcolor=lightblue";
      } else if (node->singleton) {
        out << ", penwidth=0.5";
      } else {
        out << ", penwidth=2";
      }
      out << "];\n";
    }
    out << "  }\n";
  }
  for (const LogicalNode& node : graph.nodes) {
    for (const EdgeRef& edge : node.inputs) {
      out << "  n" << edge.from << " -> n" << node.id << " [label=\""
          << EdgeKindName(edge.kind) << "\"";
      if (edge.conditional) out << ", style=dashed, color=brown";
      out << "];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace mitos::dataflow
