#include "api/engine.h"

#include "baselines/flink.h"
#include "baselines/spark.h"
#include "common/logging.h"
#include "lang/interpreter.h"
#include "runtime/threads_backend.h"
#include "sim/simulator.h"

namespace mitos::api {

namespace {

// Stamps MITOS_LOG / MITOS_VLOG lines with this run's clock — virtual time
// under the DES, wall-clock seconds under the threads backend.
class ScopedLogClock {
 public:
  using ClockFn = double (*)(const void*);
  ScopedLogClock(const void* ctx, ClockFn fn) : ctx_(ctx) {
    internal_logging::AttachLogClock(ctx, fn);
  }
  ~ScopedLogClock() { internal_logging::DetachLogClock(ctx_); }
  ScopedLogClock(const ScopedLogClock&) = delete;
  ScopedLogClock& operator=(const ScopedLogClock&) = delete;

 private:
  const void* ctx_;
};

bool IsMitosEngine(EngineKind engine) {
  return engine == EngineKind::kMitos ||
         engine == EngineKind::kMitosNoPipelining ||
         engine == EngineKind::kMitosNoHoisting;
}

// Executor options shared by the DES and threads paths — the whole point of
// the backend seam is that the Mitos engine configuration is identical.
runtime::ExecutorOptions MitosOptions(EngineKind engine,
                                      const RunConfig& config,
                                      const sim::FaultPlan* faults) {
  runtime::ExecutorOptions options;
  options.pipelining = engine != EngineKind::kMitosNoPipelining;
  options.hoisting = engine != EngineKind::kMitosNoHoisting;
  options.launch_base = config.mitos_launch_base;
  options.launch_per_machine = config.mitos_launch_per_machine;
  options.max_path_len = config.max_path_len;
  options.operator_fusion = config.mitos_operator_fusion;
  options.step_templates = config.step_templates;
  options.columnar = config.columnar;
  options.trace = config.trace;
  options.metrics = config.metrics;
  options.live = config.live;
  options.faults = faults;
  return options;
}

// Run-level observability epilogue shared by every engine: the run span
// plus summary gauges mirroring RunStats.
void RecordRunSummary(const RunConfig& config, EngineKind engine,
                      double end_time, const runtime::RunStats& stats) {
  if (config.trace != nullptr) {
    config.trace->Span(obs::kEnginePid,
                       config.trace->Lane(obs::kEnginePid, "run"),
                       EngineKindName(engine), "run", 0.0, end_time,
                       {{"engine", EngineKindName(engine)},
                        {"machines", config.machines},
                        {"jobs", stats.jobs},
                        {"decisions", stats.decisions}});
  }
  if (config.metrics != nullptr) {
    obs::MetricsRegistry* mr = config.metrics;
    mr->Set("total_seconds", stats.total_seconds);
    mr->Set("launch_seconds", stats.launch_seconds);
    mr->Set("peak_buffered_bytes",
            static_cast<double>(stats.peak_buffered_bytes));
    mr->Set("network_bytes", static_cast<double>(stats.cluster.network_bytes));
    mr->Set("local_bytes", static_cast<double>(stats.cluster.local_bytes));
    mr->Set("disk_bytes", static_cast<double>(stats.cluster.disk_bytes));
    mr->Set("messages", static_cast<double>(stats.cluster.messages));
    mr->Set("cpu_seconds", stats.cluster.cpu_seconds);
    for (const auto& [name, cpu] : stats.operator_cpu) {
      mr->Set("operator_cpu/" + name, cpu);
    }
  }
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kReference: return "Reference";
    case EngineKind::kMitos: return "Mitos";
    case EngineKind::kMitosNoPipelining: return "Mitos (not pipelined)";
    case EngineKind::kMitosNoHoisting: return "Mitos (wo. hoisting)";
    case EngineKind::kFlink: return "Flink";
    case EngineKind::kFlinkSeparateJobs: return "Flink (separate jobs)";
    case EngineKind::kSpark: return "Spark";
    case EngineKind::kNaiad: return "Naiad";
    case EngineKind::kTensorFlow: return "TensorFlow";
  }
  return "?";
}

StatusOr<RunResult> Run(EngineKind engine, const lang::Program& program,
                        sim::SimFileSystem* fs, const RunConfig& config) {
  RunResult result;
  result.engine = engine;

  if (engine == EngineKind::kReference) {
    lang::Interpreter interpreter(fs);
    MITOS_RETURN_IF_ERROR(interpreter.Run(program));
    result.stats = runtime::RunStats{};
    result.stats.jobs = 0;
    return result;
  }

  // Fault handling: only the Mitos engines implement recovery.
  const sim::FaultPlan* faults =
      (config.faults != nullptr && !config.faults->empty()) ? config.faults
                                                            : nullptr;
  if (faults != nullptr) {
    if (!IsMitosEngine(engine)) {
      return Status::Unimplemented(
          std::string("fault injection requires a Mitos engine, got ") +
          EngineKindName(engine));
    }
    for (const sim::FaultPlan::Crash& crash : faults->crashes) {
      if (crash.machine < 0 || crash.machine >= config.machines) {
        return Status::InvalidArgument(
            "fault plan crashes machine " + std::to_string(crash.machine) +
            " but the cluster has " + std::to_string(config.machines));
      }
    }
    for (const sim::FaultPlan::Slowdown& slow : faults->slowdowns) {
      if (slow.machine < 0 || slow.machine >= config.machines) {
        return Status::InvalidArgument(
            "fault plan slows machine " + std::to_string(slow.machine) +
            " but the cluster has " + std::to_string(config.machines));
      }
    }
  }

  sim::ClusterConfig cluster_config = config.cluster;
  cluster_config.num_machines = config.machines;

  if (config.backend == BackendKind::kThreads) {
    // Real-parallel path: thread-per-machine, wall-clock time. The engine
    // configuration and operator kernels are exactly the DES ones — only
    // the substrate differs (see runtime/threads_backend.h).
    if (!IsMitosEngine(engine)) {
      return Status::Unimplemented(
          std::string("the threads backend supports the Mitos engines "
                      "only, got ") +
          EngineKindName(engine));
    }
    if (faults != nullptr) {
      return Status::Unimplemented(
          "fault injection requires the DES backend: fault plans are "
          "virtual-time schedules");
    }
    runtime::ThreadsBackend backend(cluster_config);
    backend.set_trace(config.trace);  // flips the recorder to wall clock
    backend.set_metrics(config.metrics);
    obs::live::EventLog* threads_elog = config.live.event_log;
    if (threads_elog != nullptr) {
      backend.set_event_log(threads_elog);
      threads_elog->Append(backend.now(), "run_begin",
                           {{"engine", EngineKindName(engine)},
                            {"machines", config.machines},
                            {"backend", "threads"}});
    }
    ScopedLogClock log_clock(&backend, [](const void* ctx) {
      return static_cast<const runtime::ThreadsBackend*>(ctx)->now();
    });
    MITOS_VLOG(1) << "run: engine=" << EngineKindName(engine)
                  << " machines=" << config.machines << " backend=threads";
    runtime::ExecutorOptions options =
        MitosOptions(engine, config, /*faults=*/nullptr);
    runtime::MitosExecutor executor(&backend, fs, options);
    StatusOr<runtime::RunStats> stats = executor.Run(program);
    if (!stats.ok()) return stats.status();
    result.stats = *stats;
    // Per-machine queue-depth peaks and task counts land in the registry
    // now that the workers are quiescent.
    backend.FlushMetrics();
    RecordRunSummary(config, engine, backend.busy_until(), result.stats);
    if (threads_elog != nullptr) {
      threads_elog->Append(backend.busy_until(), "run_end",
                           {{"engine", EngineKindName(engine)},
                            {"total_seconds", result.stats.total_seconds},
                            {"decisions", result.stats.decisions},
                            {"attempts", result.stats.attempts}});
      threads_elog->Flush();
    }
    return result;
  }

  sim::Simulator sim;
  sim::Cluster cluster(&sim, cluster_config);
  // Observability: resource spans are recorded by the cluster itself, so
  // attaching here covers every engine (including the multi-job baselines).
  cluster.set_trace(config.trace);
  obs::live::EventLog* elog = config.live.event_log;
  if (elog != nullptr) {
    // Attach before InstallFaultPlan so the plan's crash/restart/slowdown
    // timeline lands in the log as "fault" records.
    cluster.set_event_log(elog);
    elog->Append(sim.now(), "run_begin",
                 {{"engine", EngineKindName(engine)},
                  {"machines", config.machines}});
  }
  cluster.InstallFaultPlan(faults);
  ScopedLogClock log_clock(&sim, [](const void* ctx) {
    return static_cast<const sim::Simulator*>(ctx)->now();
  });
  MITOS_VLOG(1) << "run: engine=" << EngineKindName(engine)
                << " machines=" << config.machines;

  StatusOr<runtime::RunStats> stats =
      Status::Internal("unknown engine");
  switch (engine) {
    case EngineKind::kMitos:
    case EngineKind::kMitosNoPipelining:
    case EngineKind::kMitosNoHoisting: {
      runtime::ExecutorOptions options = MitosOptions(engine, config, faults);
      runtime::MitosExecutor executor(&sim, &cluster, fs, options);
      stats = executor.Run(program);
      break;
    }
    case EngineKind::kFlink:
    case EngineKind::kNaiad:
    case EngineKind::kTensorFlow: {
      baselines::FlinkOptions options;
      options.strict = engine == EngineKind::kFlink && config.flink_strict;
      options.step_overhead =
          engine == EngineKind::kFlink ? config.flink_step_overhead
          : engine == EngineKind::kNaiad ? config.naiad_step_overhead
                                         : config.tensorflow_step_overhead;
      options.metrics = config.metrics;
      stats = baselines::RunFlinkSim(&sim, &cluster, fs, program, options);
      break;
    }
    case EngineKind::kSpark:
    case EngineKind::kFlinkSeparateJobs: {
      baselines::SparkOptions options;
      if (engine == EngineKind::kSpark) {
        options.launch_base = config.spark_launch_base;
        options.launch_per_machine = config.spark_launch_per_machine;
      } else {
        options.launch_base = config.flink_jobs_launch_base;
        options.launch_per_machine = config.flink_jobs_launch_per_machine;
      }
      options.metrics = config.metrics;
      baselines::SparkDriver driver(&sim, &cluster, fs, options);
      stats = driver.Run(program);
      break;
    }
    case EngineKind::kReference:
      return Status::Internal("unreachable: reference handled above");
  }
  if (!stats.ok()) return stats.status();
  result.stats = *stats;
  // busy_until() is when real work finished; with live observability or
  // fault handling on, trailing background timers may have pushed now()
  // past it (they are equal otherwise).
  RecordRunSummary(config, engine, sim.busy_until(), result.stats);
  if (elog != nullptr) {
    elog->Append(sim.busy_until(), "run_end",
                 {{"engine", EngineKindName(engine)},
                  {"total_seconds", result.stats.total_seconds},
                  {"decisions", result.stats.decisions},
                  {"attempts", result.stats.attempts}});
    elog->Flush();
  }
  return result;
}

StatusOr<RunResult> Engine::Run(const lang::Program& program,
                                sim::SimFileSystem* fs) {
  StatusOr<RunResult> result = api::Run(kind_, program, fs, config_);
  if (result.ok()) {
    last_operator_cpu_ = result->stats.operator_cpu;
    has_profile_ = true;
  }
  return result;
}

StatusOr<obs::analysis::ExplainPlan> Engine::Explain(
    const lang::Program& program) const {
  obs::analysis::ExplainOptions options;
  options.machines = config_.machines;
  options.operator_fusion = config_.mitos_operator_fusion;
  if (has_profile_) options.operator_cpu = last_operator_cpu_;
  return obs::analysis::BuildExplain(program, options);
}

}  // namespace mitos::api
