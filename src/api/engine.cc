#include "api/engine.h"

#include "baselines/flink.h"
#include "baselines/spark.h"
#include "lang/interpreter.h"
#include "sim/simulator.h"

namespace mitos::api {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kReference: return "Reference";
    case EngineKind::kMitos: return "Mitos";
    case EngineKind::kMitosNoPipelining: return "Mitos (not pipelined)";
    case EngineKind::kMitosNoHoisting: return "Mitos (wo. hoisting)";
    case EngineKind::kFlink: return "Flink";
    case EngineKind::kFlinkSeparateJobs: return "Flink (separate jobs)";
    case EngineKind::kSpark: return "Spark";
    case EngineKind::kNaiad: return "Naiad";
    case EngineKind::kTensorFlow: return "TensorFlow";
  }
  return "?";
}

StatusOr<RunResult> Run(EngineKind engine, const lang::Program& program,
                        sim::SimFileSystem* fs, const RunConfig& config) {
  RunResult result;
  result.engine = engine;

  if (engine == EngineKind::kReference) {
    lang::Interpreter interpreter(fs);
    MITOS_RETURN_IF_ERROR(interpreter.Run(program));
    result.stats = runtime::RunStats{};
    result.stats.jobs = 0;
    return result;
  }

  sim::Simulator sim;
  sim::ClusterConfig cluster_config = config.cluster;
  cluster_config.num_machines = config.machines;
  sim::Cluster cluster(&sim, cluster_config);

  switch (engine) {
    case EngineKind::kMitos:
    case EngineKind::kMitosNoPipelining:
    case EngineKind::kMitosNoHoisting: {
      runtime::ExecutorOptions options;
      options.pipelining = engine != EngineKind::kMitosNoPipelining;
      options.hoisting = engine != EngineKind::kMitosNoHoisting;
      options.launch_base = config.mitos_launch_base;
      options.launch_per_machine = config.mitos_launch_per_machine;
      options.max_path_len = config.max_path_len;
      options.operator_fusion = config.mitos_operator_fusion;
      runtime::MitosExecutor executor(&sim, &cluster, fs, options);
      StatusOr<runtime::RunStats> stats = executor.Run(program);
      if (!stats.ok()) return stats.status();
      result.stats = *stats;
      return result;
    }
    case EngineKind::kFlink:
    case EngineKind::kNaiad:
    case EngineKind::kTensorFlow: {
      baselines::FlinkOptions options;
      options.strict = engine == EngineKind::kFlink && config.flink_strict;
      options.step_overhead =
          engine == EngineKind::kFlink ? config.flink_step_overhead
          : engine == EngineKind::kNaiad ? config.naiad_step_overhead
                                         : config.tensorflow_step_overhead;
      StatusOr<runtime::RunStats> stats =
          baselines::RunFlinkSim(&sim, &cluster, fs, program, options);
      if (!stats.ok()) return stats.status();
      result.stats = *stats;
      return result;
    }
    case EngineKind::kSpark:
    case EngineKind::kFlinkSeparateJobs: {
      baselines::SparkOptions options;
      if (engine == EngineKind::kSpark) {
        options.launch_base = config.spark_launch_base;
        options.launch_per_machine = config.spark_launch_per_machine;
      } else {
        options.launch_base = config.flink_jobs_launch_base;
        options.launch_per_machine = config.flink_jobs_launch_per_machine;
      }
      baselines::SparkDriver driver(&sim, &cluster, fs, options);
      StatusOr<runtime::RunStats> stats = driver.Run(program);
      if (!stats.ok()) return stats.status();
      result.stats = *stats;
      return result;
    }
    case EngineKind::kReference:
      break;  // handled above
  }
  return Status::Internal("unknown engine");
}

}  // namespace mitos::api
