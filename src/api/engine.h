// The Mitos public entry point: run an imperative data-analysis program
// under any of the engines the paper evaluates, on a configurable simulated
// cluster.
//
//   sim::SimFileSystem fs;
//   workloads::GenerateVisitLogs(&fs, {.days = 365});
//   lang::Program program = workloads::VisitCountProgram({.days = 365});
//   auto result = api::Run(api::EngineKind::kMitos, program, &fs,
//                          {.machines = 24});
//   std::cout << result->stats.total_seconds << "s\n";
#ifndef MITOS_API_ENGINE_H_
#define MITOS_API_ENGINE_H_

#include <map>
#include <string>
#include <utility>

#include "common/status.h"
#include "lang/ast.h"
#include "obs/analysis/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/executor.h"
#include "sim/cluster.h"
#include "sim/filesystem.h"

namespace mitos::api {

enum class EngineKind {
  // Sequential reference interpreter (no cluster; stats report zero time).
  kReference,
  // The paper's system: single cyclic dataflow job, pipelining + hoisting.
  kMitos,
  // Ablations (paper Sec. 6.5 / 6.6).
  kMitosNoPipelining,
  kMitosNoHoisting,
  // Flink-style native iterations: superstep barrier + per-step overhead.
  kFlink,
  // Per-step job launching with Flink constants (Fig. 7 "separate jobs").
  kFlinkSeparateJobs,
  // Spark-style driver loop: one job per action.
  kSpark,
  // Native-iteration systems for the Fig. 7 microbenchmark.
  kNaiad,
  kTensorFlow,
};

const char* EngineKindName(EngineKind kind);

// Execution substrate (runtime/backend.h). kDes is the deterministic
// discrete-event oracle (virtual time, byte-reproducible). kThreads is the
// real-parallel thread-pool backend: thread-per-machine, wall-clock time,
// element-identical results to the DES (differential-tested in
// tests/runtime/backend_diff_test.cc). kThreads supports the Mitos engines
// only and rejects fault plans; the watchdog and snapshot cadence (which
// need background virtual-time timers) are silently inert under it.
enum class BackendKind {
  kDes,
  kThreads,
};

struct RunConfig {
  int machines = 4;
  // Full cluster override; `machines` wins for num_machines.
  sim::ClusterConfig cluster;

  // Execution backend; see BackendKind.
  BackendKind backend = BackendKind::kDes;

  // Engine tuning (defaults reproduce the paper's regimes).
  // Fig. 7 calibration: Spark's measured per-step overhead in the paper is
  // ~0.5s at 3 machines and ~3s at 25 (log-log Figure 7), i.e. roughly
  // 0.1 + 0.115*machines per job; native-iteration engines sit at a flat
  // 5-50 ms per step.
  double flink_step_overhead = 0.040;
  double naiad_step_overhead = 0.008;
  double tensorflow_step_overhead = 0.015;
  double mitos_launch_base = 0.08;
  double mitos_launch_per_machine = 0.045;
  double spark_launch_base = 0.10;
  double spark_launch_per_machine = 0.115;
  double flink_jobs_launch_base = 0.09;
  double flink_jobs_launch_per_machine = 0.100;
  // Strict Flink expressiveness checking (see baselines/flink.h).
  bool flink_strict = false;
  // Elementwise operator fusion for the Mitos engines (ir/fusion.h).
  bool mitos_operator_fusion = false;
  // Step-template control-plane caching for the Mitos engines
  // (runtime/step_template.h): validated replay of per-step bag-id /
  // input-choice / routing decisions across structurally identical loop
  // iterations. On by default (it preserves results exactly and only
  // lowers per-step overhead); `mitos_run --step-templates=off` or this
  // flag disable it for ablations.
  bool step_templates = true;
  // Columnar chunk plane for the Mitos engines (common/chunk.h). Off keeps
  // every chunk a boxed DatumVector end to end — the pre-batching data
  // plane, used as the ablation / wall-clock-speedup baseline
  // (`mitos_run --columnar=off`). Results are element-identical either way.
  bool columnar = true;
  int max_path_len = 1'000'000;

  // Observability (src/obs/). Both optional and caller-owned: attach a
  // TraceRecorder to capture per-operator/per-resource spans and
  // control-flow instants in virtual time (export with
  // TraceRecorder::ToJson — Chrome trace-event format), and a
  // MetricsRegistry for counters/gauges/histograms plus the per-step
  // timeline. Null (default) keeps the whole layer disabled at zero cost:
  // the run's virtual time and RunStats are identical either way.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  // Live observability plane (obs/live/): a streaming event log (JSONL
  // records for steps, decisions, template activity, faults, recovery,
  // checkpoints), periodic in-run metrics snapshots, a step-level stall
  // watchdog, and a progress callback. All default-off and observational:
  // the run's virtual-time behavior (trace, stats, outputs) is
  // byte-identical with the plane on or off. The event log also receives
  // cluster-level fault records for every engine; snapshots, the watchdog,
  // and progress are wired for the Mitos engines.
  obs::live::LiveOptions live;

  // Deterministic fault injection (sim/fault.h). Caller-owned; null or an
  // empty plan leaves fault handling disabled and the run byte-identical
  // to one without fault support. Only the Mitos engines recover from
  // injected faults; other engines reject a non-empty plan with
  // kUnimplemented. Parse specs with sim::FaultPlan::Parse, e.g.
  // "crash=1@2.5+0.5; drop=0.01".
  const sim::FaultPlan* faults = nullptr;
};

struct RunResult {
  EngineKind engine;
  runtime::RunStats stats;
};

// Runs `program` against the datasets in `fs` (outputs are written there
// too). Each call uses a fresh simulator/cluster; virtual time starts at 0.
StatusOr<RunResult> Run(EngineKind engine, const lang::Program& program,
                        sim::SimFileSystem* fs, const RunConfig& config = {});

// Stateful engine handle: the same Run() entry point, plus plan EXPLAIN.
// Remembers the per-operator CPU profile of the most recent successful
// Run(), which Explain() back-fills into the exported plan — so
//
//   api::Engine engine(api::EngineKind::kMitos, {.machines = 8});
//   engine.Run(program, &fs);
//   std::cout << engine.Explain(program)->ToDot();
//
// prints the AST → SSA → dataflow plan with measured operator costs.
class Engine {
 public:
  explicit Engine(EngineKind kind, RunConfig config = {})
      : kind_(kind), config_(std::move(config)) {}

  EngineKind kind() const { return kind_; }
  const RunConfig& config() const { return config_; }

  StatusOr<RunResult> Run(const lang::Program& program,
                          sim::SimFileSystem* fs);

  // Compile-only: exports the plan this engine would execute (same IR
  // pipeline as the Mitos engines — DCE, optional fusion, translation).
  // Never advances virtual time. Costs are annotated when a prior Run()
  // profiled the program; pass `profile = nullptr` explicitly via
  // ExplainOptions to suppress.
  StatusOr<obs::analysis::ExplainPlan> Explain(
      const lang::Program& program) const;

 private:
  EngineKind kind_;
  RunConfig config_;
  bool has_profile_ = false;
  std::map<std::string, double> last_operator_cpu_;
};

}  // namespace mitos::api

#endif  // MITOS_API_ENGINE_H_
