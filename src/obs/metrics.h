// MetricsRegistry: counters, gauges, histograms, and the per-step
// control-flow timeline, populated during a run and exportable as JSON.
//
// Like the TraceRecorder this is purely observational — recording never
// charges virtual time — and call sites hold a nullable pointer, so the
// disabled path costs one branch. Recording and point lookups are
// internally synchronized (real-parallel backends record from machine
// worker threads); the bulk reference accessors (counters(), steps(), …)
// are for post-run, single-threaded consumption.
//
// The per-step timeline is the tabular twin of the trace's "step" spans:
// one record per control-flow decision with the decided block, the chosen
// branch, barrier-wait/broadcast latency, and the elements/bytes the
// cluster moved during the step. It quantifies the paper's Fig. 7 claim
// (per-step coordination overhead) and whether pipelining overlapped steps.
#ifndef MITOS_OBS_METRICS_H_
#define MITOS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mitos::obs {

// Fixed-boundary histogram: doubling buckets starting at kFirstBound.
// Tracks count/sum/min/max exactly; the buckets give the shape.
struct HistogramData {
  static constexpr int kNumBuckets = 44;
  static constexpr double kFirstBound = 1e-9;

  int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  // buckets[i] counts values <= kFirstBound * 2^i; the last bucket is a
  // catch-all for anything larger.
  std::vector<int64_t> buckets = std::vector<int64_t>(kNumBuckets, 0);

  void Observe(double value);
  double mean() const { return count == 0 ? 0 : sum / count; }

  // Quantile estimate from the buckets (q in [0,1]): linear interpolation
  // of the rank within the covering bucket, clamped to the exact [min, max]
  // observed. Deterministic for a given observation multiset, so exported
  // summaries (p50/p95/p99) stay byte-stable.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
};

// One control-flow step: a decision, its broadcast, and what moved.
struct StepRecord {
  int index = 0;        // 0-based decision index
  int block = 0;        // the block whose terminator decided
  bool value = false;   // branch taken
  int path_len = 0;     // execution-path length after the append
  double decision_time = 0;   // virtual time the condition node fired
  double broadcast_time = 0;  // virtual time the new length was broadcast
  double barrier_wait = 0;        // barrier release - decision time
  double decision_overhead = 0;   // broadcast - barrier release (coord cost)
  double launch_seconds = 0;  // per-step job launch (per-job engines)
  int64_t elements = 0;       // operator input elements during the step
  int64_t net_bytes = 0;      // network bytes moved during the step
  int64_t disk_bytes = 0;     // disk bytes moved during the step
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Inc(const std::string& name, int64_t delta = 1);
  void Set(const std::string& name, double value);
  void Observe(const std::string& name, double value);
  void AddStep(const StepRecord& step);

  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramData* histogram(const std::string& name) const;

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, HistogramData>& histograms() const {
    return histograms_;
  }
  const std::vector<StepRecord>& steps() const { return steps_; }

  // {"schema":1,"counters":{…},"gauges":{…},"histograms":{…},"steps":[…]}
  // — sorted keys, fixed number formatting: byte-deterministic. "schema"
  // versions the export shape (bumped on renames/removals only).
  std::string ToJson() const;

  // Human-readable per-step table (used by mitos_run --profile).
  std::string StepTableToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramData> histograms_;
  std::vector<StepRecord> steps_;
};

}  // namespace mitos::obs

#endif  // MITOS_OBS_METRICS_H_
