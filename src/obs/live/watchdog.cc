#include "obs/live/watchdog.h"

#include <algorithm>
#include <vector>

namespace mitos::obs::live {

StepWatchdog::StepWatchdog(sim::Simulator* sim, EventLog* log,
                           WatchdogConfig config)
    : sim_(sim), log_(log), config_(config) {}

StepWatchdog::~StepWatchdog() { *alive_ = false; }

void StepWatchdog::OnAttemptStart() {
  gaps_.clear();
  last_step_time_ = 0;
  last_step_index_ = -1;
  origin_set_ = false;
  completed_ = 0;
  // Invalidate checks armed by the previous attempt: their captured window
  // and step index belong to a timeline the recovery discarded.
  *alive_ = false;
  alive_ = std::make_shared<bool>(true);
}

double StepWatchdog::MedianGap() const {
  if (gaps_.empty()) return 0;
  std::vector<double> sorted(gaps_.begin(), gaps_.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

void StepWatchdog::OnStepCompleted(double vt, int step_index) {
  if (step_index >= 0) {
    if (origin_set_) {
      gaps_.push_back(vt - last_step_time_);
      while (static_cast<int>(gaps_.size()) > config_.window_steps) {
        gaps_.pop_front();
      }
    }
    ++completed_;
  }
  origin_set_ = true;
  last_step_time_ = vt;
  last_step_index_ = step_index;

  if (!config_.enabled || completed_ < config_.min_samples ||
      reports_ >= config_.max_reports) {
    return;
  }
  const double median = MedianGap();
  const double window =
      std::max(config_.min_window_seconds, config_.multiplier * median);
  Arm(window, median);
}

void StepWatchdog::Arm(double window, double median) {
  const int armed_step = last_step_index_;
  std::shared_ptr<bool> alive = alive_;
  sim_->ScheduleBackgroundAfter(
      window, [this, alive, armed_step, window, median] {
        if (!*alive) return;
        Check(armed_step, window, median);
      });
}

void StepWatchdog::Check(int armed_step, double window, double median) {
  if (last_step_index_ != armed_step) return;  // a newer step completed
  if (quiescent_ && quiescent_()) return;      // the job finished cleanly
  if (reports_ >= config_.max_reports) return;
  ++stalls_;
  ++reports_;
  if (log_ != nullptr) {
    TraceArgs args = {{"step", armed_step + 1},
                      {"last_step", armed_step},
                      {"silent_for", window},
                      {"median_gap", median},
                      {"report", reports_}};
    if (diagnose_) args.emplace_back("diagnosis", diagnose_());
    log_->Append(sim_->now(), "watchdog_stall", args);
    log_->Flush();
  }
  // Back off: a persistent stall re-reports with a doubled window until
  // max_reports, then the watchdog goes quiet and the queue can drain.
  if (reports_ < config_.max_reports) Arm(window * 2, median);
}

}  // namespace mitos::obs::live
