// StepWatchdog: step-level stall detection over the live event plane
// (DESIGN.md §10).
//
// The runtime reports every completed control-flow step; the watchdog
// keeps a rolling window of inter-step gaps and, after each step, arms a
// *background* simulator timer at
//     max(min_window_seconds, multiplier × median(recent gaps)).
// If the timer fires with no newer step completed and the job not yet
// quiescent, the watchdog emits a structured "watchdog_stall" record with
// an actionable diagnosis (the runtime wires a probe that lists the
// hosts/operators still holding work, machine states included — the same
// attribution the post-run straggler report uses). Detection then re-arms
// with a doubled window, up to max_reports per run.
//
// Arming uses ScheduleBackgroundAfter exclusively, so an enabled watchdog
// never holds the superstep barrier, never advances busy_until(), and
// leaves the virtual-time event stream byte-identical to a run without it
// (the zero-perturbation regression in tests/obs/live_test.cc).
//
// The rolling-median window (not a fixed threshold) is what keeps the
// watchdog silent across workloads whose step durations differ by orders
// of magnitude: it adapts to each run's own cadence and only fires when a
// step falls far outside that run's recent behavior. min_samples delays
// arming until a cadence exists (first steps include job launch and cold
// input reads), and min_window_seconds floors the window for
// sub-millisecond-step microbenchmarks.
#ifndef MITOS_OBS_LIVE_WATCHDOG_H_
#define MITOS_OBS_LIVE_WATCHDOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "obs/live/event_log.h"
#include "sim/simulator.h"

namespace mitos::obs::live {

// Plain-data watchdog thresholds (carried through RunConfig; the runtime
// wires the probes and constructs ONE StepWatchdog per run — it spans the
// fault-recovery attempt loop so max_reports is a genuine per-run cap).
struct WatchdogConfig {
  bool enabled = false;
  // Stall window = multiplier × rolling median inter-step gap.
  double multiplier = 8.0;
  // Floor on the stall window (seconds of virtual time).
  double min_window_seconds = 0.5;
  // Rolling window length (completed-step gaps).
  int window_steps = 16;
  // Completed steps required before the watchdog arms.
  int min_samples = 3;
  // Stall reports per run before the watchdog goes quiet.
  int max_reports = 4;
};

class StepWatchdog {
 public:
  StepWatchdog(sim::Simulator* sim, EventLog* log, WatchdogConfig config);
  ~StepWatchdog();
  StepWatchdog(const StepWatchdog&) = delete;
  StepWatchdog& operator=(const StepWatchdog&) = delete;

  // Probe returning a short human-readable list of what is behind
  // (non-idle hosts with machine/queue state). Wired by the executor.
  void set_diagnose(std::function<std::string()> fn) {
    diagnose_ = std::move(fn);
  }
  // Probe: true once the job completed or failed (checks become no-ops).
  void set_quiescent(std::function<bool()> fn) {
    quiescent_ = std::move(fn);
  }

  // A new execution attempt begins (fault recovery re-executes the job).
  // Clears the rolling gap window and timing origin — pre-fault inter-step
  // gaps must not mask (or falsely trigger) stalls in the re-execution —
  // and turns any timer still armed from the previous attempt inert.
  // reports_/stalls_ are preserved: max_reports caps the whole run.
  void OnAttemptStart();

  // A control-flow step completed at virtual time `vt`. `step_index` is
  // the 0-based decision index; pass -1 for the initial path seed (it
  // establishes the timing origin without recording a gap).
  void OnStepCompleted(double vt, int step_index);

  int64_t stalls() const { return stalls_; }
  const WatchdogConfig& config() const { return config_; }

 private:
  void Arm(double window, double armed_for_extra);
  void Check(int armed_step, double window, double median);
  double MedianGap() const;

  sim::Simulator* sim_;
  EventLog* log_;
  WatchdogConfig config_;
  std::function<std::string()> diagnose_;
  std::function<bool()> quiescent_;

  std::deque<double> gaps_;  // most recent window_steps inter-step gaps
  double last_step_time_ = 0;
  int last_step_index_ = -1;
  bool origin_set_ = false;
  int completed_ = 0;
  int64_t stalls_ = 0;
  int reports_ = 0;
  // Turns queued background checks inert once the watchdog is destroyed
  // (an attempt ended while its final check was still queued).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mitos::obs::live

#endif  // MITOS_OBS_LIVE_WATCHDOG_H_
