#include "obs/live/event_log.h"

#include <cstdio>

namespace mitos::obs::live {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

void EventLog::Append(double vt, const std::string& kind,
                      const TraceArgs& fields) {
  std::string body;
  for (const TraceArg& arg : fields) {
    body += ",\"" + JsonEscape(arg.key) + "\":";
    switch (arg.kind) {
      case TraceArg::Kind::kInt:
        body += std::to_string(arg.int_value);
        break;
      case TraceArg::Kind::kDouble:
        AppendDouble(&body, arg.double_value);
        break;
      case TraceArg::Kind::kString:
        body += '"' + JsonEscape(arg.string_value) + '"';
        break;
    }
  }
  AppendRaw(vt, kind, body.empty() ? body : body.substr(1));
}

void EventLog::AppendRaw(double vt, const std::string& kind,
                         const std::string& body) {
  std::string line = "{\"vt\":";
  AppendDouble(&line, vt);
  line += ",\"kind\":\"" + JsonEscape(kind) + '"';
  // The wall stamp is spliced in by Push under the lock so that record
  // order and stamp order agree under concurrent appends.
  const size_t wall_insert_pos = line.size();
  if (!body.empty()) line += ',' + body;
  line += "}\n";
  Push(std::move(line), kind, wall_insert_pos);
}

void EventLog::Push(std::string line, const std::string& kind,
                    size_t wall_insert_pos) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.wall_clock_ms) {
    int64_t wall_ms = options_.wall_clock_ms();
    if (wall_ms < last_wall_ms_) wall_ms = last_wall_ms_;
    last_wall_ms_ = wall_ms;
    line.insert(wall_insert_pos, ",\"wall_ms\":" + std::to_string(wall_ms));
  }
  ++appended_;
  ++kind_counts_[kind];
  buffered_.push_back(std::move(line));
  if (buffered_.size() <= options_.max_buffered) return;
  if (options_.sink) {
    FlushLocked();
    return;
  }
  buffered_.pop_front();
  ++dropped_;
}

void EventLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
}

void EventLog::FlushLocked() {
  if (!options_.sink || buffered_.empty()) return;
  std::string text;
  for (const std::string& line : buffered_) text += line;
  buffered_.clear();
  options_.sink(text);
}

int64_t EventLog::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

int64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t EventLog::buffered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffered_.size();
}

int64_t EventLog::CountKind(const std::string& kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kind_counts_.find(kind);
  return it == kind_counts_.end() ? 0 : it->second;
}

std::string EventLog::BufferedToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::string& line : buffered_) out += line;
  return out;
}

}  // namespace mitos::obs::live
