#include "obs/live/snapshot.h"

#include <cstdio>

namespace mitos::obs::live {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

SnapshotWriter::SnapshotWriter(const MetricsRegistry* metrics, EventLog* log,
                               SnapshotOptions options)
    : metrics_(metrics), log_(log), options_(options) {}

void SnapshotWriter::OnStepBoundary(double vt, int step_index) {
  if (!options_.enabled || !options_.at_step_boundaries) return;
  Emit(vt, "step", step_index);
}

void SnapshotWriter::OnTimerTick(double vt) {
  if (!options_.enabled) return;
  Emit(vt, "timer", -1);
}

void SnapshotWriter::OnRunEnd(double vt) {
  if (!options_.enabled) return;
  Emit(vt, "final", -1);
}

void SnapshotWriter::Emit(double vt, const char* reason, int step_index) {
  if (log_ == nullptr || metrics_ == nullptr) return;
  std::string body = "\"seq\":" + std::to_string(seq_++) + ",\"reason\":\"" +
                     reason + '"';
  if (step_index >= 0) body += ",\"step\":" + std::to_string(step_index);

  body += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : metrics_->counters()) {
    if (!first) body += ',';
    first = false;
    body += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  // Delta since the previous snapshot: only counters that moved, so a
  // tail consumer sees per-interval rates without diffing itself.
  body += "},\"deltas\":{";
  first = true;
  for (const auto& [name, value] : metrics_->counters()) {
    auto it = last_counters_.find(name);
    const int64_t delta = value - (it == last_counters_.end() ? 0
                                                              : it->second);
    if (delta == 0) continue;
    if (!first) body += ',';
    first = false;
    body += '"' + JsonEscape(name) + "\":" + std::to_string(delta);
  }
  body += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : metrics_->gauges()) {
    if (!first) body += ',';
    first = false;
    body += '"' + JsonEscape(name) + "\":";
    AppendDouble(&body, value);
  }
  body += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics_->histograms()) {
    if (!first) body += ',';
    first = false;
    body += '"' + JsonEscape(name) +
            "\":{\"count\":" + std::to_string(h.count) + ",\"p50\":";
    AppendDouble(&body, h.p50());
    body += ",\"p95\":";
    AppendDouble(&body, h.p95());
    body += ",\"p99\":";
    AppendDouble(&body, h.p99());
    body += '}';
  }
  body += "},\"steps\":" + std::to_string(metrics_->steps().size());

  last_counters_ = metrics_->counters();
  log_->AppendRaw(vt, "snapshot", body);
}

}  // namespace mitos::obs::live
