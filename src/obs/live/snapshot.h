// SnapshotWriter: periodic in-run metrics snapshots (DESIGN.md §10).
//
// While a job runs, the executor calls OnStepBoundary at every control-flow
// step and (when a cadence is configured) OnTimerTick every
// `every_virtual_seconds` of virtual time, driven by a *background*
// simulator timer — so snapshots observe the run without perturbing it.
// Each snapshot serializes the MetricsRegistry as one "snapshot" record in
// the EventLog: full counters plus the delta since the previous snapshot,
// gauges, histogram summaries (count/p50/p95/p99), and the step-timeline
// length. Dual timestamps come for free from the EventLog record shape
// (virtual "vt" always; "wall_ms" when a wall clock is wired).
#ifndef MITOS_OBS_LIVE_SNAPSHOT_H_
#define MITOS_OBS_LIVE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/live/event_log.h"
#include "obs/metrics.h"

namespace mitos::obs::live {

struct SnapshotOptions {
  bool enabled = false;
  // Virtual-time cadence of timer snapshots; <= 0 disables the timer and
  // keeps step-boundary snapshots only.
  double every_virtual_seconds = 0;
  // Snapshot at every control-flow step boundary.
  bool at_step_boundaries = true;
};

class SnapshotWriter {
 public:
  // `metrics` and `log` are caller-owned and must outlive the writer.
  SnapshotWriter(const MetricsRegistry* metrics, EventLog* log,
                 SnapshotOptions options);
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  // A control-flow step completed (step_index is the 0-based decision).
  void OnStepBoundary(double vt, int step_index);
  // The background cadence timer fired.
  void OnTimerTick(double vt);
  // Final snapshot at job completion (reason "final").
  void OnRunEnd(double vt);

  int64_t snapshots() const { return seq_; }
  const SnapshotOptions& options() const { return options_; }

 private:
  void Emit(double vt, const char* reason, int step_index);

  const MetricsRegistry* metrics_;
  EventLog* log_;
  SnapshotOptions options_;
  // Previous snapshot's counter values, for the delta section.
  std::map<std::string, int64_t> last_counters_;
  int64_t seq_ = 0;
};

}  // namespace mitos::obs::live

#endif  // MITOS_OBS_LIVE_SNAPSHOT_H_
