// EventLog: the bounded, streaming event sink behind `mitos_run
// --event-log=FILE` (DESIGN.md §10).
//
// Runtime components (PathAuthority, hosts, sim::Cluster, the fault
// machinery, the watchdog) append structured records as a run executes;
// each record serializes eagerly to one JSONL line so consumers can tail
// the file while the run is in flight. Like the TraceRecorder the log is
// purely observational: appending never schedules simulator work or
// charges virtual time, so an attached log leaves the virtual-time event
// stream byte-identical to a run without one (regression-tested in
// tests/obs/live_test.cc).
//
// Record shape (all JSON, one object per line):
//   {"vt":<virtual seconds>,"kind":"<kind>"[,"wall_ms":<unix ms>],<fields>}
// `wall_ms` appears only when a wall clock is wired (the CLI wires the
// system clock; tests leave it off for byte-deterministic output). The
// stamp is taken under the log's lock and clamped to never run backwards,
// so wall_ms is monotone non-decreasing in record order even when machine
// worker threads race to append (threads backend). Kinds
// emitted by the runtime: run_begin, run_end, step_begin, step_end,
// decision, template_hit, template_invalidation, fault, recovery,
// checkpoint, snapshot, watchdog_stall.
//
// The log is internally synchronized: on the real-parallel threads
// backend (runtime/threads_backend.h) machine worker threads append
// concurrently. Serialization happens outside the lock; only the buffer
// push and counters are guarded.
//
// Bounding: the log buffers at most `max_buffered` serialized records.
// With a sink wired, a full buffer flushes incrementally (oldest first);
// without one, the oldest record is dropped and counted, so a forgotten
// log can never grow without bound.
#ifndef MITOS_OBS_LIVE_EVENT_LOG_H_
#define MITOS_OBS_LIVE_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace mitos::obs::live {

class EventLog {
 public:
  struct Options {
    // Maximum serialized records held in memory before the log flushes
    // (sink wired) or drops the oldest (no sink).
    size_t max_buffered = 4096;
    // Receives flushed JSONL text (each call carries whole lines). Wired
    // by the CLI to an output stream; null keeps everything buffered.
    std::function<void(const std::string&)> sink;
    // Wall clock in unix milliseconds, stamped into every record as
    // "wall_ms". Null (the default) omits the field, keeping records
    // byte-deterministic functions of virtual time.
    std::function<int64_t()> wall_clock_ms;
  };

  EventLog() = default;
  explicit EventLog(Options options) : options_(std::move(options)) {}
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog() { Flush(); }

  // Appends one record at virtual time `vt`. Fields ride in the same
  // TraceArgs vector the trace recorder uses (int/double/string).
  void Append(double vt, const std::string& kind,
              const TraceArgs& fields = {});

  // Appends a record whose extra fields are pre-serialized JSON object
  // members ("\"a\":1,\"b\":2" — no braces). Used by SnapshotWriter,
  // whose payload nests objects beyond what TraceArgs expresses.
  void AppendRaw(double vt, const std::string& kind,
                 const std::string& body);

  // Pushes all buffered records to the sink (no-op without one).
  void Flush();

  int64_t appended() const;
  int64_t dropped() const;
  // Records of `kind` appended so far (counted even if later dropped).
  int64_t CountKind(const std::string& kind) const;

  size_t buffered() const;
  // Buffered (unflushed) records as JSONL text.
  std::string BufferedToJsonl() const;

 private:
  // `wall_insert_pos` is where a ",\"wall_ms\":N" member splices into
  // `line` (right after the kind); the stamp itself is taken under mu_ so
  // it is monotone in record order.
  void Push(std::string line, const std::string& kind,
            size_t wall_insert_pos);
  void FlushLocked();

  Options options_;
  mutable std::mutex mu_;
  std::deque<std::string> buffered_;
  std::map<std::string, int64_t> kind_counts_;
  int64_t appended_ = 0;
  int64_t dropped_ = 0;
  int64_t last_wall_ms_ = 0;  // clamp: wall_ms never runs backwards
};

}  // namespace mitos::obs::live

#endif  // MITOS_OBS_LIVE_EVENT_LOG_H_
