// Prometheus text exposition (format 0.0.4) over a MetricsRegistry,
// behind `mitos_run --metrics-format=prom` (DESIGN.md §10).
//
// Naming conventions:
//   * every family is prefixed "mitos_" and sanitized to
//     [a-zA-Z_][a-zA-Z0-9_]*;
//   * counters become "<name>_total" with TYPE counter;
//   * gauges keep their name with TYPE gauge — except gauge names of the
//     form "family/member" (e.g. "operator_cpu/counts.push"), which fold
//     into ONE labeled family: mitos_operator_cpu{op="counts.push"}. The
//     label key is "op", or "machine" for the threads backend's per-machine
//     "threads_*" families (threads_queue_depth_peak/m3 →
//     mitos_threads_queue_depth_peak{machine="3"});
//   * histograms export as TYPE summary: quantile-labeled samples for
//     p50/p95/p99 plus "<name>_sum" and "<name>_count";
//   * "mitos_backend_info{backend=...}" identifies the execution substrate
//     ("des" or "threads") the usual info-metric way (constant 1);
//   * "mitos_virtual_time_seconds" and "mitos_wall_time_seconds" carry the
//     run's end time in each clock domain — whichever does not apply to
//     the backend is 0, so scrapes of both backends share one schema.
//
// Output is byte-deterministic for a given registry (sorted families,
// %.9g numbers) and each family's # HELP/# TYPE header appears exactly
// once — ValidatePrometheusText enforces that structure for tests and the
// CI exposition smoke check.
#ifndef MITOS_OBS_LIVE_PROM_H_
#define MITOS_OBS_LIVE_PROM_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace mitos::obs::live {

// Run identity attached to an exposition: which backend executed and the
// end time in each clock domain (the one that does not apply stays 0).
struct PromRunInfo {
  std::string backend = "des";  // "des" or "threads"
  double virtual_seconds = 0;   // mitos_virtual_time_seconds
  double wall_seconds = 0;      // mitos_wall_time_seconds
};

// Renders `metrics` as Prometheus text exposition.
std::string ToPrometheusText(const MetricsRegistry& metrics,
                             const PromRunInfo& info);

// Legacy DES-run shape: `virtual_seconds` is the run's virtual end time.
// Equivalent to the overload above with backend="des", wall_seconds=0.
std::string ToPrometheusText(const MetricsRegistry& metrics,
                             double virtual_seconds);

// Structural validation of exposition text: every sample line parses as
// `name[{labels}] value`, names are legal, every sample belongs to a
// family announced by a preceding # HELP + # TYPE pair, no family is
// declared twice, and TYPE values are legal. Returns the first violation.
Status ValidatePrometheusText(const std::string& text);

}  // namespace mitos::obs::live

#endif  // MITOS_OBS_LIVE_PROM_H_
