// Prometheus text exposition (format 0.0.4) over a MetricsRegistry,
// behind `mitos_run --metrics-format=prom` (DESIGN.md §10).
//
// Naming conventions:
//   * every family is prefixed "mitos_" and sanitized to
//     [a-zA-Z_][a-zA-Z0-9_]*;
//   * counters become "<name>_total" with TYPE counter;
//   * gauges keep their name with TYPE gauge — except gauge names of the
//     form "family/member" (e.g. "operator_cpu/counts.push"), which fold
//     into ONE labeled family: mitos_operator_cpu{op="counts.push"};
//   * histograms export as TYPE summary: quantile-labeled samples for
//     p50/p95/p99 plus "<name>_sum" and "<name>_count";
//   * "mitos_virtual_time_seconds" carries the run's virtual end time so
//     scrapes of the DES and the future real-parallel backend share one
//     schema.
//
// Output is byte-deterministic for a given registry (sorted families,
// %.9g numbers) and each family's # HELP/# TYPE header appears exactly
// once — ValidatePrometheusText enforces that structure for tests and the
// CI exposition smoke check.
#ifndef MITOS_OBS_LIVE_PROM_H_
#define MITOS_OBS_LIVE_PROM_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace mitos::obs::live {

// Renders `metrics` as Prometheus text exposition. `virtual_seconds` is
// the run's virtual end time (mitos_virtual_time_seconds).
std::string ToPrometheusText(const MetricsRegistry& metrics,
                             double virtual_seconds);

// Structural validation of exposition text: every sample line parses as
// `name[{labels}] value`, names are legal, every sample belongs to a
// family announced by a preceding # HELP + # TYPE pair, no family is
// declared twice, and TYPE values are legal. Returns the first violation.
Status ValidatePrometheusText(const std::string& text);

}  // namespace mitos::obs::live

#endif  // MITOS_OBS_LIVE_PROM_H_
