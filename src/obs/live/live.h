// LiveOptions: the plain-data bundle that carries every live-observability
// feature through api::RunConfig and runtime::ExecutorOptions
// (DESIGN.md §10).
//
// The simulator and cluster are constructed inside api::Run, so callers
// cannot bind timers themselves; they describe what they want here and the
// executor instantiates the SnapshotWriter / StepWatchdog per job attempt,
// binding them to the run's simulator. Everything is observational: with
// any combination of these features enabled, the virtual-time event stream
// stays byte-identical to a run with them all off.
#ifndef MITOS_OBS_LIVE_LIVE_H_
#define MITOS_OBS_LIVE_LIVE_H_

#include <cstdint>
#include <functional>

#include "obs/live/event_log.h"
#include "obs/live/snapshot.h"
#include "obs/live/watchdog.h"

namespace mitos::obs::live {

// One live-status sample, pushed at every control-flow step boundary and
// once at job completion (`mitos_run --progress` renders it as a one-line
// ticker). All values are cumulative for the current attempt.
struct Progress {
  double virtual_time = 0;
  int step = 0;      // completed control-flow decisions
  int path_len = 0;  // execution-path length
  int attempt = 1;   // execution attempt (>1 during fault recovery)
  int64_t template_hits = 0;
  int64_t template_misses = 0;
  int64_t faults_seen = 0;  // dropped messages + machines currently down
  bool complete = false;
};

using ProgressFn = std::function<void(const Progress&)>;

struct LiveOptions {
  // Streaming event sink (caller-owned; null disables event logging).
  EventLog* event_log = nullptr;
  // In-run metrics snapshots (emitted into event_log; requires both
  // event_log and a MetricsRegistry to be attached).
  SnapshotOptions snapshots;
  // Step-level stall watchdog (stall records land in event_log).
  WatchdogConfig watchdog;
  // Live status callback; null disables progress reporting.
  ProgressFn progress;

  bool any() const {
    return event_log != nullptr || snapshots.enabled || watchdog.enabled ||
           static_cast<bool>(progress);
  }
};

}  // namespace mitos::obs::live

#endif  // MITOS_OBS_LIVE_LIVE_H_
