#include "obs/live/prom.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

namespace mitos::obs::live {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

// Metric-name charset: [a-zA-Z0-9_], anything else becomes '_'.
std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string EscapeHelp(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

// One exposition family: its # HELP/# TYPE header plus sample lines.
struct Family {
  std::string type;
  std::string help;
  std::vector<std::string> samples;
};

bool LegalMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& metrics,
                             const PromRunInfo& info) {
  std::map<std::string, Family> families;

  for (const auto& [name, value] : metrics.counters()) {
    const std::string family = "mitos_" + Sanitize(name) + "_total";
    Family& f = families[family];
    f.type = "counter";
    f.help = "Mitos counter " + EscapeHelp(name);
    std::string sample = family + ' ' + std::to_string(value);
    f.samples.push_back(std::move(sample));
  }

  auto add_gauge = [&families](const std::string& family,
                               const std::string& help,
                               const std::string& label_key,
                               const std::string& label_value, double value) {
    Family& f = families[family];
    f.type = "gauge";
    f.help = help;
    std::string sample = family;
    if (!label_value.empty()) {
      sample += '{' + label_key + "=\"" + EscapeLabelValue(label_value) +
                "\"}";
    }
    sample += ' ';
    AppendDouble(&sample, value);
    f.samples.push_back(std::move(sample));
  };

  for (const auto& [name, value] : metrics.gauges()) {
    // "family/member" gauges (operator_cpu/<name>) fold into one labeled
    // family so per-operator series share a # TYPE header. The threads
    // backend's per-machine gauges (threads_tasks/m3) label by machine
    // index instead of member name.
    const size_t slash = name.find('/');
    if (slash != std::string::npos && slash > 0 && slash + 1 < name.size()) {
      const std::string base = name.substr(0, slash);
      std::string member = name.substr(slash + 1);
      std::string label_key = "op";
      if (base.rfind("threads_", 0) == 0 && member.size() > 1 &&
          member[0] == 'm' &&
          member.find_first_not_of("0123456789", 1) == std::string::npos) {
        label_key = "machine";
        member.erase(0, 1);
      }
      add_gauge("mitos_" + Sanitize(base),
                "Mitos per-member gauge " + EscapeHelp(base), label_key,
                member, value);
      continue;
    }
    add_gauge("mitos_" + Sanitize(name), "Mitos gauge " + EscapeHelp(name),
              "", "", value);
  }
  add_gauge("mitos_backend_info",
            "Execution substrate of the run (constant 1)", "backend",
            info.backend, 1);
  add_gauge("mitos_virtual_time_seconds",
            "Virtual end time of the simulated run (0 on a wall-clock "
            "backend)",
            "", "", info.virtual_seconds);
  add_gauge("mitos_wall_time_seconds",
            "Wall-clock end time of the run (0 on the DES backend)", "", "",
            info.wall_seconds);

  for (const auto& [name, h] : metrics.histograms()) {
    const std::string family = "mitos_" + Sanitize(name);
    Family& f = families[family];
    f.type = "summary";
    f.help = "Mitos histogram " + EscapeHelp(name);
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", h.p50()}, {"0.95", h.p95()}, {"0.99", h.p99()}};
    for (const auto& [q, value] : quantiles) {
      std::string sample = family + "{quantile=\"" + q + "\"} ";
      AppendDouble(&sample, value);
      f.samples.push_back(std::move(sample));
    }
    std::string sum = family + "_sum ";
    AppendDouble(&sum, h.sum);
    f.samples.push_back(std::move(sum));
    f.samples.push_back(family + "_count " + std::to_string(h.count));
  }

  std::string out;
  for (const auto& [family, f] : families) {
    out += "# HELP " + family + ' ' + f.help + '\n';
    out += "# TYPE " + family + ' ' + f.type + '\n';
    for (const std::string& sample : f.samples) out += sample + '\n';
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& metrics,
                             double virtual_seconds) {
  PromRunInfo info;
  info.backend = "des";
  info.virtual_seconds = virtual_seconds;
  return ToPrometheusText(metrics, info);
}

Status ValidatePrometheusText(const std::string& text) {
  // family -> declared type; declaration order is enforced (HELP, then
  // TYPE, then samples) and re-declaration is a duplicate-family error.
  std::map<std::string, std::string> types;
  std::map<std::string, bool> helps;

  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    auto fail = [&line, line_no](const std::string& what) {
      return Status::InvalidArgument("prometheus text line " +
                                     std::to_string(line_no) + ": " + what +
                                     ": " + line);
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      const bool is_help = line.rfind("# HELP ", 0) == 0;
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      if (!is_help && !is_type) continue;  // plain comment
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      if (space == std::string::npos || space == 0) {
        return fail("malformed # HELP/# TYPE");
      }
      const std::string family = rest.substr(0, space);
      if (!LegalMetricName(family)) return fail("illegal metric name");
      if (is_help) {
        if (helps.count(family) > 0) return fail("duplicate # HELP");
        helps[family] = true;
        continue;
      }
      const std::string type = rest.substr(space + 1);
      if (type != "counter" && type != "gauge" && type != "summary" &&
          type != "histogram" && type != "untyped") {
        return fail("unknown TYPE");
      }
      if (types.count(family) > 0) {
        return fail("duplicate metric family");
      }
      types[family] = type;
      continue;
    }

    // Sample line: name[{labels}] value.
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail("sample without value");
    const std::string name = line.substr(0, name_end);
    if (!LegalMetricName(name)) return fail("illegal sample name");
    size_t value_begin = name_end;
    if (line[name_end] == '{') {
      // Scan past the label set, honoring quoted (escaped) values.
      bool in_quotes = false;
      size_t i = name_end + 1;
      for (; i < line.size(); ++i) {
        if (in_quotes) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == '"') {
            in_quotes = false;
          }
          continue;
        }
        if (line[i] == '"') in_quotes = true;
        if (line[i] == '}') break;
      }
      if (i >= line.size()) return fail("unterminated label set");
      value_begin = i + 1;
    }
    while (value_begin < line.size() && line[value_begin] == ' ') {
      ++value_begin;
    }
    if (value_begin >= line.size()) return fail("sample without value");
    const std::string value = line.substr(value_begin);
    char* parse_end = nullptr;
    std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() ||
        (*parse_end != '\0' && *parse_end != ' ')) {
      return fail("unparseable sample value");
    }

    // The sample must belong to an already-declared family — either the
    // exact family name or its summary/histogram _sum/_count series.
    std::string family = name;
    if (types.count(family) == 0) {
      for (const char* suffix : {"_sum", "_count", "_bucket"}) {
        if (EndsWith(name, suffix)) {
          const std::string base =
              name.substr(0, name.size() - std::string(suffix).size());
          if (types.count(base) > 0) {
            family = base;
            break;
          }
        }
      }
    }
    if (types.count(family) == 0) {
      return fail("sample precedes its # TYPE declaration");
    }
    if (helps.count(family) == 0) {
      return fail("sample family has no # HELP");
    }
  }
  return Status::Ok();
}

}  // namespace mitos::obs::live
