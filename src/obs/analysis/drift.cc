#include "obs/analysis/drift.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "common/json.h"

namespace mitos::obs::analysis {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

double Ratio(double wall, double virt) { return virt > 0 ? wall / virt : 0; }

void AppendMapJson(std::string* out, const char* key,
                   const std::map<std::string, double>& m) {
  *out += std::string(",\"") + key + "\":{";
  bool first = true;
  for (const auto& [name, seconds] : m) {
    if (!first) *out += ',';
    first = false;
    *out += '"' + JsonEscape(name) + "\":";
    AppendDouble(out, seconds);
  }
  *out += '}';
}

}  // namespace

DriftSide DriftSide::FromAnalysis(const RunAnalysis& analysis,
                                  std::string label) {
  DriftSide side;
  side.label = std::move(label);
  side.wall_clock = analysis.wall_clock;
  side.total_seconds = analysis.total_seconds;
  side.num_machines = analysis.num_machines;
  side.operator_busy = analysis.operator_busy;
  side.decomposition = analysis.decomposition;
  side.step_seconds.reserve(analysis.steps.size());
  for (const StepBreakdown& s : analysis.steps) {
    side.step_seconds.push_back(s.t_end - s.t_start);
  }
  return side;
}

StatusOr<DriftSide> DriftSide::FromReportJson(const std::string& json_text,
                                              std::string label) {
  StatusOr<json::Value> parsed = json::Value::Parse(json_text);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::InvalidArgument("report: top level must be an object");
  }
  DriftSide side;
  side.label = std::move(label);
  const std::string clock = parsed->StringOr("clock", "");
  if (clock != "virtual" && clock != "wall") {
    return Status::InvalidArgument(
        "report: missing \"clock\" field — not a mitos_run --report-out "
        "file (or written before drift support)");
  }
  side.wall_clock = clock == "wall";
  side.total_seconds = parsed->NumberOr("total_seconds", 0);
  side.num_machines = static_cast<int>(parsed->NumberOr("num_machines", 0));
  if (const json::Value* busy = parsed->Find("operator_busy");
      busy != nullptr && busy->is_object()) {
    for (const auto& [name, value] : busy->object()) {
      if (value.is_number()) side.operator_busy[name] = value.number();
    }
  }
  if (const json::Value* decomposition = parsed->Find("decomposition");
      decomposition != nullptr && decomposition->is_object()) {
    for (const auto& [kind, value] : decomposition->object()) {
      if (value.is_number()) side.decomposition[kind] = value.number();
    }
  }
  if (const json::Value* steps = parsed->Find("steps");
      steps != nullptr && steps->is_array()) {
    for (const json::Value& step : steps->array()) {
      if (!step.is_object()) continue;
      side.step_seconds.push_back(step.NumberOr("t_end", 0) -
                                  step.NumberOr("t_start", 0));
    }
  }
  return side;
}

StatusOr<DriftReport> BuildDriftReport(const DriftSide& a,
                                       const DriftSide& b) {
  if (a.wall_clock == b.wall_clock) {
    return Status::InvalidArgument(
        std::string("drift needs one virtual and one wall side; \"") +
        a.label + "\" and \"" + b.label + "\" are both " +
        (a.wall_clock ? "wall" : "virtual") + " clock");
  }
  const DriftSide& virt = a.wall_clock ? b : a;
  const DriftSide& wall = a.wall_clock ? a : b;

  DriftReport report;
  report.virtual_label = virt.label;
  report.wall_label = wall.label;
  report.virtual_total = virt.total_seconds;
  report.wall_total = wall.total_seconds;
  report.total_ratio = Ratio(wall.total_seconds, virt.total_seconds);
  report.virtual_decomposition = virt.decomposition;
  report.wall_decomposition = wall.decomposition;

  std::set<std::string> ops;
  for (const auto& [op, unused] : virt.operator_busy) ops.insert(op);
  for (const auto& [op, unused] : wall.operator_busy) ops.insert(op);
  for (const std::string& op : ops) {
    DriftReport::OperatorRow row;
    row.op = op;
    auto v = virt.operator_busy.find(op);
    auto w = wall.operator_busy.find(op);
    if (v != virt.operator_busy.end()) row.virtual_seconds = v->second;
    if (w != wall.operator_busy.end()) row.wall_seconds = w->second;
    row.in_both =
        v != virt.operator_busy.end() && w != wall.operator_busy.end();
    row.ratio = Ratio(row.wall_seconds, row.virtual_seconds);
    report.operators.push_back(std::move(row));
  }

  const size_t paired =
      std::min(virt.step_seconds.size(), wall.step_seconds.size());
  for (size_t i = 0; i < paired; ++i) {
    DriftReport::StepRow row;
    row.index = static_cast<int>(i);
    row.virtual_seconds = virt.step_seconds[i];
    row.wall_seconds = wall.step_seconds[i];
    row.ratio = Ratio(row.wall_seconds, row.virtual_seconds);
    report.steps.push_back(row);
  }
  report.unpaired_virtual_steps =
      static_cast<int>(virt.step_seconds.size() - paired);
  report.unpaired_wall_steps =
      static_cast<int>(wall.step_seconds.size() - paired);
  return report;
}

std::string DriftReport::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "drift report: %s (virtual) vs %s (wall)\n",
                virtual_label.c_str(), wall_label.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "total: %.4fs virtual, %.4fs wall, %.3fx wall/virtual\n",
                virtual_total, wall_total, total_ratio);
  out += buf;

  out += "\nper-operator busy seconds (all compute spans, every machine):\n";
  out += "    virtual       wall    ratio  operator\n";
  for (const OperatorRow& row : operators) {
    const char* note = row.in_both           ? ""
                       : row.wall_seconds > 0 ? "  (wall only)"
                                              : "  (virtual only)";
    std::snprintf(buf, sizeof(buf), "  %9.4fs %9.4fs  %6.3fx  %s%s\n",
                  row.virtual_seconds, row.wall_seconds, row.ratio,
                  row.op.c_str(), note);
    out += buf;
  }
  if (operators.empty()) out += "  (no operator spans on either side)\n";

  if (!steps.empty() || unpaired_virtual_steps > 0 ||
      unpaired_wall_steps > 0) {
    out += "\nper-step window seconds:\n";
    out += "  step    virtual       wall    ratio\n";
    for (const StepRow& row : steps) {
      std::snprintf(buf, sizeof(buf), "  %4d  %9.4fs %9.4fs  %6.3fx\n",
                    row.index, row.virtual_seconds, row.wall_seconds,
                    row.ratio);
      out += buf;
    }
    if (unpaired_virtual_steps > 0 || unpaired_wall_steps > 0) {
      std::snprintf(buf, sizeof(buf),
                    "  WARNING: step count mismatch (%d extra virtual, %d "
                    "extra wall) — did both runs execute the same program?\n",
                    unpaired_virtual_steps, unpaired_wall_steps);
      out += buf;
    }
  }

  out += "\ncritical-path decomposition (virtual | wall seconds):\n";
  std::set<std::string> kinds;
  for (const auto& [kind, unused] : virtual_decomposition) kinds.insert(kind);
  for (const auto& [kind, unused] : wall_decomposition) kinds.insert(kind);
  for (const std::string& kind : kinds) {
    auto v = virtual_decomposition.find(kind);
    auto w = wall_decomposition.find(kind);
    std::snprintf(buf, sizeof(buf), "  %9.4fs | %9.4fs  %s\n",
                  v != virtual_decomposition.end() ? v->second : 0.0,
                  w != wall_decomposition.end() ? w->second : 0.0,
                  kind.c_str());
    out += buf;
  }
  return out;
}

std::string DriftReport::ToJson() const {
  std::string out = "{\"virtual_label\":\"" + JsonEscape(virtual_label) +
                    "\",\"wall_label\":\"" + JsonEscape(wall_label) + "\"";
  out += ",\"virtual_total_seconds\":";
  AppendDouble(&out, virtual_total);
  out += ",\"wall_total_seconds\":";
  AppendDouble(&out, wall_total);
  out += ",\"total_ratio\":";
  AppendDouble(&out, total_ratio);

  out += ",\"operators\":[";
  bool first = true;
  for (const OperatorRow& row : operators) {
    if (!first) out += ',';
    first = false;
    out += "{\"op\":\"" + JsonEscape(row.op) + "\",\"virtual_seconds\":";
    AppendDouble(&out, row.virtual_seconds);
    out += ",\"wall_seconds\":";
    AppendDouble(&out, row.wall_seconds);
    out += ",\"ratio\":";
    AppendDouble(&out, row.ratio);
    out += std::string(",\"in_both\":") + (row.in_both ? "true" : "false");
    out += '}';
  }

  out += "],\"steps\":[";
  first = true;
  for (const StepRow& row : steps) {
    if (!first) out += ',';
    first = false;
    out += "{\"index\":" + std::to_string(row.index) +
           ",\"virtual_seconds\":";
    AppendDouble(&out, row.virtual_seconds);
    out += ",\"wall_seconds\":";
    AppendDouble(&out, row.wall_seconds);
    out += ",\"ratio\":";
    AppendDouble(&out, row.ratio);
    out += '}';
  }
  out += "],\"unpaired_virtual_steps\":" +
         std::to_string(unpaired_virtual_steps);
  out += ",\"unpaired_wall_steps\":" + std::to_string(unpaired_wall_steps);
  AppendMapJson(&out, "virtual_decomposition", virtual_decomposition);
  AppendMapJson(&out, "wall_decomposition", wall_decomposition);
  out += "}\n";
  return out;
}

}  // namespace mitos::obs::analysis
