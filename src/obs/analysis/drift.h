// DES-vs-real drift analysis: correlates a virtual-time run (DES backend)
// with a wall-clock run (threads backend) of the same program.
//
// The DES predicts where time goes from its cost model; the threads backend
// measures where it actually went on this host. Both runs produce the same
// RunAnalysis shape (obs/analysis/analysis.h) — one in virtual seconds, one
// in wall seconds — and this module reduces the pair to ratios:
//
//   * Per-operator: operator_busy (total busy seconds across all compute
//     spans) on each side, and wall/virtual per operator. A flat ratio
//     across operators means the model is well calibrated up to a constant
//     factor; an outlier operator is one whose modelled cost diverges from
//     its real kernel cost.
//   * Per-step: control-flow step window durations on each side. Divergence
//     here that per-operator ratios don't explain points at coordination
//     cost (queue waits, barrier convoys) rather than kernel cost.
//   * Totals and the critical-path decomposition of both sides, for the
//     headline "the simulation runs Nx faster/slower than real" number.
//
// Sides come either from in-process RunAnalysis results (mitos_run
// --drift-report runs both backends itself) or from previously written
// --report-out JSON files (tools/drift_diff), which carry a "clock" field
// identifying their time domain.
#ifndef MITOS_OBS_ANALYSIS_DRIFT_H_
#define MITOS_OBS_ANALYSIS_DRIFT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/analysis/analysis.h"

namespace mitos::obs::analysis {

// One backend's measurement of a program run, reduced to the quantities
// the drift report compares.
struct DriftSide {
  std::string label;        // e.g. "des", "threads", or a file name
  bool wall_clock = false;  // time domain of every number below
  double total_seconds = 0;
  int num_machines = 0;
  // Total busy seconds per operator across ALL compute spans (the
  // RunAnalysis::operator_busy calibration quantity).
  std::map<std::string, double> operator_busy;
  // Critical-path seconds by segment kind.
  std::map<std::string, double> decomposition;
  // Control-flow step window durations, in step order.
  std::vector<double> step_seconds;

  static DriftSide FromAnalysis(const RunAnalysis& analysis,
                                std::string label);
  // Parses a mitos_run --report-out JSON document. The file's "clock"
  // field ("virtual"/"wall") decides which side of the report it can be.
  static StatusOr<DriftSide> FromReportJson(const std::string& json_text,
                                            std::string label);
};

struct DriftReport {
  struct OperatorRow {
    std::string op;
    double virtual_seconds = 0;
    double wall_seconds = 0;
    // wall / virtual; 0 when the virtual side recorded no busy time for
    // this operator (ratio is then meaningless — check in_both).
    double ratio = 0;
    bool in_both = false;
  };
  struct StepRow {
    int index = 0;
    double virtual_seconds = 0;
    double wall_seconds = 0;
    double ratio = 0;  // wall / virtual
  };

  std::string virtual_label;
  std::string wall_label;
  double virtual_total = 0;
  double wall_total = 0;
  double total_ratio = 0;  // wall / virtual
  std::vector<OperatorRow> operators;  // sorted by operator name
  std::vector<StepRow> steps;          // paired by step index
  // Steps present on only one side (count mismatch — usually a sign the
  // two runs executed different programs or data).
  int unpaired_virtual_steps = 0;
  int unpaired_wall_steps = 0;
  // Both sides' critical-path decompositions, for the report footer.
  std::map<std::string, double> virtual_decomposition;
  std::map<std::string, double> wall_decomposition;

  // Human-readable report (mitos_run --drift-report, tools/drift_diff).
  std::string ToString() const;
  // Deterministic JSON (sorted keys, fixed number formatting).
  std::string ToJson() const;
};

// Builds the report from one virtual-clock side and one wall-clock side
// (in either order). Fails with InvalidArgument when both sides live in
// the same time domain — there is no drift to measure then.
StatusOr<DriftReport> BuildDriftReport(const DriftSide& a,
                                       const DriftSide& b);

}  // namespace mitos::obs::analysis

#endif  // MITOS_OBS_ANALYSIS_DRIFT_H_
