#include "obs/analysis/explain.h"

#include <cstdio>
#include <utility>

#include "ir/dce.h"
#include "ir/fusion.h"
#include "ir/ssa.h"
#include "ir/verify.h"
#include "runtime/translator.h"

namespace mitos::obs::analysis {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ExplainPlan::ToDot() const {
  return dataflow::ToDot(graph, operator_cpu);
}

std::string ExplainPlan::ToJson() const {
  std::string out = "{\"ast\":\"" + JsonEscape(ast) + "\"";
  out += ",\"ssa\":\"" + JsonEscape(ssa) + "\"";
  out += ",\"dataflow\":{\"nodes\":[";
  bool first = true;
  for (const dataflow::LogicalNode& node : graph.nodes) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(node.id);
    out += ",\"name\":\"" + JsonEscape(node.name) + "\"";
    out += ",\"kind\":\"";
    out += dataflow::NodeKindName(node.kind);
    out += "\",\"block\":" + std::to_string(node.block);
    out += ",\"parallelism\":" + std::to_string(node.parallelism);
    out += ",\"singleton\":";
    out += node.singleton ? "true" : "false";
    out += ",\"cost_factor\":";
    AppendDouble(&out, node.cost_factor);
    if (auto it = operator_cpu.find(node.name); it != operator_cpu.end()) {
      out += ",\"cpu_seconds\":";
      AppendDouble(&out, it->second);
    }
    out += '}';
  }
  out += "],\"edges\":[";
  first = true;
  for (const dataflow::LogicalNode& node : graph.nodes) {
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      const dataflow::EdgeRef& edge = node.inputs[i];
      if (!first) out += ',';
      first = false;
      out += "{\"from\":" + std::to_string(edge.from);
      out += ",\"to\":" + std::to_string(node.id);
      out += ",\"input\":" + std::to_string(i);
      out += ",\"kind\":\"";
      out += dataflow::EdgeKindName(edge.kind);
      out += "\",\"conditional\":";
      out += edge.conditional ? "true" : "false";
      out += '}';
    }
  }
  out += "]}}\n";
  return out;
}

StatusOr<ExplainPlan> BuildExplain(const lang::Program& program,
                                   const ExplainOptions& options) {
  StatusOr<ir::Program> compiled = ir::CompileToIr(program);
  if (!compiled.ok()) return compiled.status();
  ir::Program optimized = std::move(*compiled);
  MITOS_RETURN_IF_ERROR(ir::Verify(optimized));
  if (options.dead_code_elimination) {
    StatusOr<ir::DceResult> pruned = ir::EliminateDeadCode(optimized);
    if (!pruned.ok()) return pruned.status();
    optimized = std::move(pruned->program);
    MITOS_RETURN_IF_ERROR(ir::Verify(optimized));
  }
  if (options.operator_fusion) {
    StatusOr<ir::FusionResult> fused = ir::FuseElementwise(optimized);
    if (!fused.ok()) return fused.status();
    optimized = std::move(fused->program);
    MITOS_RETURN_IF_ERROR(ir::Verify(optimized));
  }
  StatusOr<runtime::TranslateResult> translated =
      runtime::Translate(optimized, options.machines);
  if (!translated.ok()) return translated.status();

  ExplainPlan plan;
  plan.ast = lang::ToString(program);
  plan.ssa = ir::ToString(optimized);
  plan.graph = std::move(translated->graph);
  plan.operator_cpu = options.operator_cpu;
  return plan;
}

}  // namespace mitos::obs::analysis
