#include "obs/analysis/baseline.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/json.h"

namespace mitos::obs::analysis {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string BaselineFile::ToJson() const {
  std::string out = "{\"schema\":" + std::to_string(schema) + ",";
  out += "\"figure\":\"" + JsonEscape(figure) + "\",";
  out += "\"entries\":[\n";
  bool first = true;
  for (const BaselineEntry& entry : entries) {
    if (!first) out += ",\n";
    first = false;
    out += " {\"key\":\"" + JsonEscape(entry.key) + "\"";
    out += ",\"engine\":\"" + JsonEscape(entry.engine) + "\"";
    out += ",\"machines\":" + std::to_string(entry.machines);
    out += ",\"total_seconds\":";
    AppendDouble(&out, entry.total_seconds);
    out += ",\"decomposition\":{";
    bool first_kind = true;
    for (const auto& [kind, seconds] : entry.decomposition) {
      if (!first_kind) out += ',';
      first_kind = false;
      out += '"' + JsonEscape(kind) + "\":";
      AppendDouble(&out, seconds);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

StatusOr<BaselineFile> BaselineFile::Parse(const std::string& json_text) {
  StatusOr<json::Value> parsed = json::Value::Parse(json_text);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::InvalidArgument("baseline: top level must be an object");
  }
  BaselineFile file;
  file.schema = static_cast<int>(parsed->NumberOr("schema", 0));
  file.figure = parsed->StringOr("figure", "");
  const json::Value* entries = parsed->Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Status::InvalidArgument("baseline: missing \"entries\" array");
  }
  for (const json::Value& item : entries->array()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("baseline: entry must be an object");
    }
    BaselineEntry entry;
    entry.key = item.StringOr("key", "");
    if (entry.key.empty()) {
      return Status::InvalidArgument("baseline: entry without a key");
    }
    entry.engine = item.StringOr("engine", "");
    entry.machines = static_cast<int>(item.NumberOr("machines", 0));
    if (const json::Value* decomposition = item.Find("decomposition");
        decomposition != nullptr && decomposition->is_object()) {
      for (const auto& [kind, value] : decomposition->object()) {
        if (value.is_number()) entry.decomposition[kind] = value.number();
      }
    }
    // Wall-clock benches (bench/micro_threads_wallclock.cc) record one
    // templates-off and one templates-on measurement per run instead of a
    // single total. Expand those into "<key>/off" and "<key>/on" entries
    // so Compare() can match them key by key.
    if (item.Find("total_seconds") == nullptr &&
        item.Find("off_seconds") != nullptr &&
        item.Find("on_seconds") != nullptr) {
      BaselineEntry on = entry;
      entry.key += "/off";
      entry.total_seconds = item.NumberOr("off_seconds", 0);
      on.key += "/on";
      on.total_seconds = item.NumberOr("on_seconds", 0);
      file.entries.push_back(std::move(entry));
      file.entries.push_back(std::move(on));
      continue;
    }
    entry.total_seconds = item.NumberOr("total_seconds", 0);
    file.entries.push_back(std::move(entry));
  }
  return file;
}

StatusOr<BaselineFile> BaselineFile::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

BaselineDiff Compare(const BaselineFile& base, const BaselineFile& current,
                     double threshold) {
  BaselineDiff diff;
  std::map<std::string, const BaselineEntry*> current_by_key;
  for (const BaselineEntry& entry : current.entries) {
    current_by_key[entry.key] = &entry;
  }
  std::map<std::string, const BaselineEntry*> base_by_key;
  for (const BaselineEntry& entry : base.entries) {
    base_by_key[entry.key] = &entry;
  }

  for (const BaselineEntry& entry : base.entries) {
    auto it = current_by_key.find(entry.key);
    if (it == current_by_key.end()) {
      diff.missing.push_back(entry.key);
      continue;
    }
    BaselineDiff::Row row;
    row.key = entry.key;
    row.base_seconds = entry.total_seconds;
    row.current_seconds = it->second->total_seconds;
    row.ratio = entry.total_seconds > 0
                    ? row.current_seconds / entry.total_seconds
                    : 1;
    row.regression = row.ratio > 1 + threshold;
    row.improvement = row.ratio < 1 - threshold;
    diff.regressions += row.regression ? 1 : 0;
    diff.improvements += row.improvement ? 1 : 0;
    diff.rows.push_back(std::move(row));
  }
  for (const BaselineEntry& entry : current.entries) {
    if (base_by_key.find(entry.key) == base_by_key.end()) {
      diff.added.push_back(entry.key);
    }
  }
  return diff;
}

std::string BaselineDiff::ToString() const {
  std::string out;
  char buf[256];
  out += "       base    current    ratio  run\n";
  for (const Row& row : rows) {
    const char* mark = row.regression ? " REGRESSED"
                       : row.improvement ? " improved"
                                         : "";
    std::snprintf(buf, sizeof(buf), "  %9.4fs %9.4fs  %6.3fx  %s%s\n",
                  row.base_seconds, row.current_seconds, row.ratio,
                  row.key.c_str(), mark);
    out += buf;
  }
  for (const std::string& key : missing) {
    out += "  MISSING from current run: " + key + "\n";
  }
  for (const std::string& key : added) {
    out += "  new (not in baseline): " + key + "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "  %zu runs compared, %d regressions, %d improvements\n",
                rows.size(), regressions, improvements);
  out += buf;
  return out;
}

}  // namespace mitos::obs::analysis
