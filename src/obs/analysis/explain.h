// Plan EXPLAIN: a deterministic export of the full compilation pipeline —
// imperative AST → SSA IR → logical dataflow graph — as DOT or JSON, with
// per-operator cost annotations back-filled from a profiled run.
//
// The compile pipeline mirrors runtime::MitosExecutor::RunIr exactly
// (Verify → dead-code elimination → optional fusion → Translate), so the
// plan shown is the plan the Mitos engines execute. Costs come from
// RunStats::operator_cpu (busy-CPU seconds per operator); EXPLAIN without
// a profile shows the plan with static annotations only.
//
// Exposed as api::Engine::Explain() and `mitos_run --explain[=dot|json]`.
#ifndef MITOS_OBS_ANALYSIS_EXPLAIN_H_
#define MITOS_OBS_ANALYSIS_EXPLAIN_H_

#include <map>
#include <string>

#include "common/status.h"
#include "dataflow/graph.h"
#include "ir/ir.h"
#include "lang/ast.h"

namespace mitos::obs::analysis {

struct ExplainOptions {
  // Instance count for data-parallel operators (normally the machine
  // count); part of the plan, so part of EXPLAIN.
  int machines = 4;
  // Match the executing engine's IR pipeline.
  bool dead_code_elimination = true;
  bool operator_fusion = false;
  // Busy-CPU seconds per operator name from a profiled run
  // (RunStats::operator_cpu); empty = no cost back-fill.
  std::map<std::string, double> operator_cpu;
};

struct ExplainPlan {
  std::string ast;  // lang::ToString of the source program
  std::string ssa;  // ir::ToString after the optimization pipeline
  dataflow::LogicalGraph graph;
  std::map<std::string, double> operator_cpu;  // back-filled costs

  // GraphViz rendering of the dataflow graph, cost-annotated.
  std::string ToDot() const;
  // The whole pipeline as one deterministic JSON document:
  // {"ast": "...", "ssa": "...", "dataflow": {"nodes": […], "edges": […]}}.
  std::string ToJson() const;
};

StatusOr<ExplainPlan> BuildExplain(const lang::Program& program,
                                   const ExplainOptions& options = {});

}  // namespace mitos::obs::analysis

#endif  // MITOS_OBS_ANALYSIS_EXPLAIN_H_
