#include "obs/analysis/analysis.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace mitos::obs::analysis {

namespace {

constexpr double kEps = 1e-12;

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

// A resource or operator span lifted out of the trace.
struct Span {
  double start = 0;
  double end = 0;
  int machine = -1;
  const TraceEvent* event = nullptr;
  size_t seq = 0;  // insertion index: the deterministic tie-breaker
};

// A coordination interval the control-flow timeline explains.
struct Window {
  double start = 0;
  double end = 0;
};

double Overlap(double a0, double a1, double b0, double b1) {
  double lo = std::max(a0, b0);
  double hi = std::min(a1, b1);
  return hi > lo ? hi - lo : 0;
}

const char* KindOfCat(const std::string& cat) {
  if (cat == "sim") return kCompute;
  if (cat == "core") return kCompute;  // wall-clock kernel exec (threads)
  if (cat == "net") return kNetwork;
  if (cat == "disk") return kDisk;
  return nullptr;
}

// "<op>.<phase>" -> "<op>"; names without a phase pass through.
std::string OperatorOfLabel(const std::string& label) {
  size_t dot = label.rfind('.');
  return dot == std::string::npos ? label : label.substr(0, dot);
}

// "op:<name>[<i>]" -> (<name>, <i>); returns false for other lanes.
bool ParseOperatorLane(const std::string& lane, std::string* name,
                       int* instance) {
  if (lane.rfind("op:", 0) != 0) return false;
  size_t open = lane.rfind('[');
  if (open == std::string::npos || lane.back() != ']') return false;
  *name = lane.substr(3, open - 3);
  *instance = std::atoi(lane.substr(open + 1, lane.size() - open - 2).c_str());
  return true;
}

class Analyzer {
 public:
  Analyzer(const TraceRecorder& trace, const MetricsRegistry* metrics)
      : trace_(trace), metrics_(metrics) {}

  RunAnalysis Run() {
    result_.wall_clock = trace_.clock() == TraceClock::kWall;
    CollectSpans();
    BuildCoordinationWindows();
    SweepCriticalPath();
    AttributeBags();
    ComputeStepBreakdowns();
    ComputeSkew();
    for (const CriticalSegment& seg : result_.critical_path) {
      result_.decomposition[seg.kind] += seg.seconds();
    }
    return std::move(result_);
  }

 private:
  void CollectSpans() {
    int max_machine = -1;
    for (const auto& [pid, name] : trace_.process_names()) {
      (void)name;
      max_machine = std::max(max_machine, pid - 1);
    }
    size_t seq = 0;
    for (const TraceEvent& event : trace_.events()) {
      const size_t my_seq = seq++;
      if (event.phase == 'i' && std::string(event.cat) == "template") {
        ++result_.template_hits;
        for (const TraceArg& arg : event.args) {
          if (arg.key == "saved_cpu") {
            result_.template_saved_seconds += arg.double_value;
          }
        }
        continue;
      }
      if (event.phase != 'X') continue;
      const double end = event.ts + event.dur;
      if (event.pid == kEnginePid) {
        if (std::string(event.cat) == "run") {
          run_end_ = std::max(run_end_, end);
        } else if (std::string(event.cat) == "job" && event.name == "launch") {
          launch_windows_.push_back({event.ts, end});
        } else if (std::string(event.cat) == "quiesce") {
          // The threads driver waiting for worker quiescence: the wall
          // analogue of the DES superstep barrier.
          barrier_windows_.push_back({event.ts, end});
        }
        continue;
      }
      const int machine = event.pid - 1;
      max_machine = std::max(max_machine, machine);
      if (std::string(event.cat) == "operator") {
        op_spans_.push_back({event.ts, end, machine, &event, my_seq});
        continue;
      }
      if (std::string(event.cat) == "queue") {
        // Enqueue→dequeue wait of one task (threads backend); classifies
        // idle gaps, never carries work itself.
        if (event.dur > 0) queue_windows_.push_back({event.ts, end});
        continue;
      }
      if (std::string(event.cat) == "idle") continue;  // the complement
      const char* kind = KindOfCat(event.cat);
      if (kind == nullptr || event.dur <= 0) continue;
      if (kind == kCompute) {
        result_.operator_busy[OperatorOfLabel(event.name)] += event.dur;
      }
      work_spans_.push_back({event.ts, end, machine, &event, my_seq});
      work_end_ = std::max(work_end_, end);
    }
    result_.num_machines = max_machine + 1;
    result_.total_seconds = run_end_ > 0 ? run_end_ : work_end_;
    // Within [0, total], the backward sweep must not chase trailing
    // background noise past the run span, so clamp the sweep start.
    sweep_end_ = result_.total_seconds;
  }

  void BuildCoordinationWindows() {
    if (metrics_ == nullptr) return;
    for (const StepRecord& step : metrics_->steps()) {
      const double release = step.broadcast_time - step.decision_overhead;
      if (step.barrier_wait > 0) {
        barrier_windows_.push_back({release - step.barrier_wait, release});
      }
      if (step.decision_overhead > 0) {
        broadcast_windows_.push_back({release, step.broadcast_time});
      }
    }
  }

  // Splits the idle gap [a, b] against the coordination windows, most
  // specific first: barrier-wait, then decision-broadcast, then job launch,
  // then queue-wait (wall-clock traces); anything unexplained is
  // straggler/idle slack.
  void ClassifyGap(double a, double b) {
    struct Piece {
      double start, end;
    };
    std::vector<Piece> uncovered = {{a, b}};
    struct Layer {
      const std::vector<Window>* windows;
      const char* kind;
    };
    const Layer layers[] = {{&barrier_windows_, kBarrierWait},
                            {&broadcast_windows_, kDecisionBroadcast},
                            {&launch_windows_, kLaunch},
                            {&queue_windows_, kQueueWait}};
    for (const Layer& layer : layers) {
      std::vector<Piece> next;
      for (const Piece& piece : uncovered) {
        std::vector<Piece> remaining = {piece};
        for (const Window& w : *layer.windows) {
          std::vector<Piece> split;
          for (const Piece& r : remaining) {
            double lo = std::max(r.start, w.start);
            double hi = std::min(r.end, w.end);
            if (hi <= lo + kEps) {
              split.push_back(r);
              continue;
            }
            Emit(lo, hi, layer.kind);
            if (lo > r.start + kEps) split.push_back({r.start, lo});
            if (r.end > hi + kEps) split.push_back({hi, r.end});
          }
          remaining = std::move(split);
        }
        next.insert(next.end(), remaining.begin(), remaining.end());
      }
      uncovered = std::move(next);
    }
    for (const Piece& piece : uncovered) {
      if (piece.end > piece.start + kEps) Emit(piece.start, piece.end, kSlack);
    }
  }

  void Emit(double start, double end, const char* kind, int machine = -1,
            std::string detail = {}) {
    CriticalSegment seg;
    seg.t_start = start;
    seg.t_end = end;
    seg.kind = kind;
    seg.machine = machine;
    seg.detail = std::move(detail);
    result_.critical_path.push_back(std::move(seg));
  }

  // Backward "last finisher" sweep: from the run's end, repeatedly jump to
  // the latest-ending work span at or before the cursor, attribute it, and
  // continue from its start; gaps go through ClassifyGap. Ties on end time
  // break deterministically (latest start, then insertion order).
  void SweepCriticalPath() {
    std::vector<Span> sorted = work_spans_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Span& x, const Span& y) {
                       if (x.end != y.end) return x.end < y.end;
                       if (x.start != y.start) return x.start < y.start;
                       return x.seq < y.seq;
                     });
    double cursor = sweep_end_;
    size_t hi = sorted.size();
    while (cursor > kEps) {
      while (hi > 0 && sorted[hi - 1].end > cursor + kEps) --hi;
      if (hi == 0) {
        ClassifyGap(0, cursor);
        break;
      }
      const Span& span = sorted[hi - 1];
      if (span.end < cursor - kEps) ClassifyGap(span.end, cursor);
      const char* kind = KindOfCat(span.event->cat);
      Emit(span.start, span.end, kind, span.machine, span.event->name);
      cursor = span.start;
    }
    std::stable_sort(result_.critical_path.begin(),
                     result_.critical_path.end(),
                     [](const CriticalSegment& x, const CriticalSegment& y) {
                       if (x.t_start != y.t_start) return x.t_start < y.t_start;
                       return x.t_end < y.t_end;
                     });
  }

  // Attributes critical compute segments to operators (by span label) and
  // to bag identifiers: the enclosing "<op>@<path_len>" operator span on
  // the same machine with the largest overlap.
  void AttributeBags() {
    for (CriticalSegment& seg : result_.critical_path) {
      if (seg.kind != kCompute && seg.kind != kNetwork &&
          seg.kind != kDisk) {
        continue;
      }
      if (seg.kind == kCompute) {
        result_.by_operator[OperatorOfLabel(seg.detail)] += seg.seconds();
      }
      const Span* best = nullptr;
      double best_overlap = 0;
      for (const Span& op : op_spans_) {
        if (op.machine != seg.machine) continue;
        double o = Overlap(seg.t_start, seg.t_end, op.start, op.end);
        if (o <= best_overlap + kEps) {
          // Prefer more overlap; on a tie, the tighter (shorter) span.
          if (best == nullptr || o < best_overlap - kEps) continue;
          double best_len = best->end - best->start;
          double op_len = op.end - op.start;
          if (op_len >= best_len) continue;
        }
        best = &op;
        best_overlap = o;
      }
      if (best != nullptr && best_overlap > kEps) {
        seg.bag = best->event->name;
        result_.by_bag[seg.bag] += seg.seconds();
      }
    }
  }

  // Step windows: previous broadcast -> this broadcast (the trace's "step"
  // spans use the same convention); the first window starts at 0.
  std::vector<Window> StepWindows() const {
    std::vector<Window> windows;
    if (metrics_ == nullptr) return windows;
    double prev = 0;
    for (const StepRecord& step : metrics_->steps()) {
      windows.push_back({prev, step.broadcast_time});
      prev = step.broadcast_time;
    }
    return windows;
  }

  void ComputeStepBreakdowns() {
    const std::vector<Window> windows = StepWindows();
    for (size_t i = 0; i < windows.size(); ++i) {
      StepBreakdown row;
      row.index = static_cast<int>(i);
      row.t_start = windows[i].start;
      row.t_end = windows[i].end;
      for (const CriticalSegment& seg : result_.critical_path) {
        double o = Overlap(seg.t_start, seg.t_end, row.t_start, row.t_end);
        if (o <= 0) continue;
        if (seg.kind == kCompute) row.compute += o;
        else if (seg.kind == kNetwork) row.network += o;
        else if (seg.kind == kDisk) row.disk += o;
        else if (seg.kind == kBarrierWait) row.barrier_wait += o;
        else if (seg.kind == kDecisionBroadcast) row.broadcast += o;
        else if (seg.kind == kLaunch) row.launch += o;
        else if (seg.kind == kQueueWait) row.queue_wait += o;
        else row.slack += o;
      }
      result_.steps.push_back(row);
    }
  }

  // Busy-CPU seconds of `machine` inside [a, b]; "sim" (virtual) and
  // "core" (wall) spans both count as compute.
  double BusyIn(int machine, double a, double b) const {
    double busy = 0;
    for (const Span& span : work_spans_) {
      if (span.machine != machine) continue;
      if (KindOfCat(span.event->cat) != kCompute) continue;
      busy += Overlap(span.start, span.end, a, b);
    }
    return busy;
  }

  // Dominant operator instance on `machine` in [a, b]: the operator-bag
  // span with the largest overlap; falls back to compute labels when no
  // operator span covers the window.
  void DominantOperator(int machine, double a, double b, std::string* op,
                        int* instance) const {
    const Span* best = nullptr;
    double best_overlap = 0;
    for (const Span& span : op_spans_) {
      if (span.machine != machine) continue;
      double o = Overlap(span.start, span.end, a, b);
      if (o > best_overlap + kEps) {
        best = &span;
        best_overlap = o;
      }
    }
    if (best != nullptr) {
      std::string lane = trace_.LaneName(best->event->pid, best->event->tid);
      if (ParseOperatorLane(lane, op, instance)) return;
      *op = best->event->name;
      *instance = -1;
      return;
    }
    std::map<std::string, double> by_label;
    for (const Span& span : work_spans_) {
      if (span.machine != machine) continue;
      if (KindOfCat(span.event->cat) != kCompute) continue;
      double o = Overlap(span.start, span.end, a, b);
      if (o > 0) by_label[OperatorOfLabel(span.event->name)] += o;
    }
    double best_busy = 0;
    for (const auto& [label, busy] : by_label) {
      if (busy > best_busy) {
        best_busy = busy;
        *op = label;
      }
    }
    *instance = -1;
  }

  void ComputeSkew() {
    const int machines = result_.num_machines;
    if (machines <= 0) return;
    result_.machine_busy.assign(static_cast<size_t>(machines), 0.0);
    for (const Span& span : work_spans_) {
      if (KindOfCat(span.event->cat) != kCompute) continue;
      result_.machine_busy[static_cast<size_t>(span.machine)] +=
          span.end - span.start;
    }
    double total = 0, max_busy = 0;
    for (int m = 0; m < machines; ++m) {
      double busy = result_.machine_busy[static_cast<size_t>(m)];
      total += busy;
      if (busy > max_busy) {
        max_busy = busy;
        result_.busiest_machine = m;
      }
    }
    double mean = total / machines;
    result_.busy_imbalance = mean > 0 ? max_busy / mean : 1;

    const std::vector<Window> windows = StepWindows();
    for (size_t i = 0; i < windows.size(); ++i) {
      StepSkew row;
      row.index = static_cast<int>(i);
      row.t_start = windows[i].start;
      row.t_end = windows[i].end;
      row.busy.assign(static_cast<size_t>(machines), 0.0);
      double sum = 0;
      for (int m = 0; m < machines; ++m) {
        double busy = BusyIn(m, row.t_start, row.t_end);
        row.busy[static_cast<size_t>(m)] = busy;
        sum += busy;
        if (busy > row.max_busy) {
          row.max_busy = busy;
          row.straggler = m;
        }
      }
      row.mean_busy = sum / machines;
      row.imbalance = row.mean_busy > 0 ? row.max_busy / row.mean_busy : 1;
      row.slack = row.max_busy - row.mean_busy;
      if (row.straggler >= 0) {
        DominantOperator(row.straggler, row.t_start, row.t_end, &row.op,
                         &row.instance);
      }
      result_.skew.push_back(std::move(row));
    }
  }

  const TraceRecorder& trace_;
  const MetricsRegistry* metrics_;
  RunAnalysis result_;

  std::vector<Span> work_spans_;
  std::vector<Span> op_spans_;
  std::vector<Window> launch_windows_;
  std::vector<Window> barrier_windows_;
  std::vector<Window> broadcast_windows_;
  std::vector<Window> queue_windows_;
  double run_end_ = 0;
  double work_end_ = 0;
  double sweep_end_ = 0;
};

}  // namespace

double RunAnalysis::DecompositionSeconds(const std::string& kind) const {
  auto it = decomposition.find(kind);
  return it == decomposition.end() ? 0 : it->second;
}

std::string RunAnalysis::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "=== critical-path report ===\n"
                "%s time: %.4fs over %d machines\n"
                "decomposition of the critical path:\n",
                wall_clock ? "wall" : "virtual", total_seconds,
                num_machines);
  out += buf;
  const char* kinds[] = {kCompute,           kNetwork, kDisk,
                         kBarrierWait,       kDecisionBroadcast,
                         kLaunch,            kQueueWait, kSlack};
  for (const char* kind : kinds) {
    double seconds = DecompositionSeconds(kind);
    double share = total_seconds > 0 ? 100.0 * seconds / total_seconds : 0;
    std::snprintf(buf, sizeof(buf), "  %-20s %10.4fs  %5.1f%%\n", kind,
                  seconds, share);
    out += buf;
  }

  // Top operators / bags by critical-path share, largest first.
  auto top = [&](const std::map<std::string, double>& table,
                 const char* title) {
    if (table.empty()) return;
    std::vector<std::pair<double, std::string>> rows;
    for (const auto& [name, seconds] : table) {
      rows.emplace_back(seconds, name);
    }
    std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
      if (x.first != y.first) return x.first > y.first;
      return x.second < y.second;
    });
    out += title;
    for (size_t i = 0; i < rows.size() && i < 10; ++i) {
      std::snprintf(buf, sizeof(buf), "  %10.4fs  %s\n", rows[i].first,
                    rows[i].second.c_str());
      out += buf;
    }
  };
  top(by_operator, "top operators on the critical path:\n");
  top(by_bag, "top bags (operator × path-prefix) on the critical path:\n");

  if (template_hits > 0) {
    std::snprintf(buf, sizeof(buf),
                  "step templates: %lld replayed bag(s), ~%.6fs of "
                  "control-plane CPU saved\n",
                  static_cast<long long>(template_hits),
                  template_saved_seconds);
    out += buf;
  }

  if (!steps.empty()) {
    out +=
        "per-step critical path (s):\n"
        "  step   compute   network      disk   barrier "
        "broadcast     queue     slack\n";
    const size_t kMaxRows = 40;
    for (size_t i = 0; i < steps.size() && i < kMaxRows; ++i) {
      const StepBreakdown& s = steps[i];
      std::snprintf(buf, sizeof(buf),
                    "  %4d %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f\n",
                    s.index, s.compute, s.network, s.disk, s.barrier_wait,
                    s.broadcast, s.queue_wait, s.slack);
      out += buf;
    }
    if (steps.size() > kMaxRows) {
      std::snprintf(buf, sizeof(buf), "  … %zu more steps (see JSON)\n",
                    steps.size() - kMaxRows);
      out += buf;
    }
  }

  if (!machine_busy.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "skew: busy-CPU imbalance %.3f (busiest m%d)\n",
                  busy_imbalance, busiest_machine);
    out += buf;
    for (size_t m = 0; m < machine_busy.size(); ++m) {
      std::snprintf(buf, sizeof(buf), "  m%-3zu %10.4fs busy\n", m,
                    machine_busy[m]);
      out += buf;
    }
  }
  if (!skew.empty()) {
    out +=
        "per-step stragglers:\n"
        "  step straggler imbalance     slack  responsible\n";
    const size_t kMaxRows = 40;
    for (size_t i = 0; i < skew.size() && i < kMaxRows; ++i) {
      const StepSkew& s = skew[i];
      std::string who = s.op;
      if (s.instance >= 0) who += "[" + std::to_string(s.instance) + "]";
      std::snprintf(buf, sizeof(buf), "  %4d %9d %9.3f %8.4fs  %s\n",
                    s.index, s.straggler, s.imbalance, s.slack, who.c_str());
      out += buf;
    }
    if (skew.size() > kMaxRows) {
      std::snprintf(buf, sizeof(buf), "  … %zu more steps (see JSON)\n",
                    skew.size() - kMaxRows);
      out += buf;
    }
  }
  return out;
}

std::string RunAnalysis::ToJson() const {
  std::string out = "{\"total_seconds\":";
  AppendDouble(&out, total_seconds);
  out += ",\"num_machines\":" + std::to_string(num_machines);
  out += ",\"clock\":\"";
  out += wall_clock ? "wall" : "virtual";
  out += "\",\"template_hits\":" + std::to_string(template_hits);
  out += ",\"template_saved_seconds\":";
  AppendDouble(&out, template_saved_seconds);

  out += ",\"decomposition\":{";
  bool first = true;
  for (const auto& [kind, seconds] : decomposition) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(kind) + "\":";
    AppendDouble(&out, seconds);
  }
  out += "},\"by_operator\":{";
  first = true;
  for (const auto& [name, seconds] : by_operator) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":";
    AppendDouble(&out, seconds);
  }
  out += "},\"by_bag\":{";
  first = true;
  for (const auto& [name, seconds] : by_bag) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":";
    AppendDouble(&out, seconds);
  }
  out += "},\"operator_busy\":{";
  first = true;
  for (const auto& [name, seconds] : operator_busy) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":";
    AppendDouble(&out, seconds);
  }

  out += "},\"critical_path\":[";
  first = true;
  for (const CriticalSegment& seg : critical_path) {
    if (!first) out += ',';
    first = false;
    out += "{\"t_start\":";
    AppendDouble(&out, seg.t_start);
    out += ",\"t_end\":";
    AppendDouble(&out, seg.t_end);
    out += ",\"kind\":\"" + JsonEscape(seg.kind) + "\"";
    out += ",\"machine\":" + std::to_string(seg.machine);
    if (!seg.detail.empty()) {
      out += ",\"detail\":\"" + JsonEscape(seg.detail) + "\"";
    }
    if (!seg.bag.empty()) out += ",\"bag\":\"" + JsonEscape(seg.bag) + "\"";
    out += '}';
  }

  out += "],\"steps\":[";
  first = true;
  for (const StepBreakdown& s : steps) {
    if (!first) out += ',';
    first = false;
    out += "{\"index\":" + std::to_string(s.index) + ",\"t_start\":";
    AppendDouble(&out, s.t_start);
    out += ",\"t_end\":";
    AppendDouble(&out, s.t_end);
    out += ",\"compute\":";
    AppendDouble(&out, s.compute);
    out += ",\"network\":";
    AppendDouble(&out, s.network);
    out += ",\"disk\":";
    AppendDouble(&out, s.disk);
    out += ",\"barrier_wait\":";
    AppendDouble(&out, s.barrier_wait);
    out += ",\"broadcast\":";
    AppendDouble(&out, s.broadcast);
    out += ",\"launch\":";
    AppendDouble(&out, s.launch);
    out += ",\"queue_wait\":";
    AppendDouble(&out, s.queue_wait);
    out += ",\"slack\":";
    AppendDouble(&out, s.slack);
    out += '}';
  }

  out += "],\"skew\":{\"machine_busy\":[";
  first = true;
  for (double busy : machine_busy) {
    if (!first) out += ',';
    first = false;
    AppendDouble(&out, busy);
  }
  out += "],\"imbalance\":";
  AppendDouble(&out, busy_imbalance);
  out += ",\"busiest\":" + std::to_string(busiest_machine);
  out += ",\"steps\":[";
  first = true;
  for (const StepSkew& s : skew) {
    if (!first) out += ',';
    first = false;
    out += "{\"index\":" + std::to_string(s.index) +
           ",\"straggler\":" + std::to_string(s.straggler) +
           ",\"imbalance\":";
    AppendDouble(&out, s.imbalance);
    out += ",\"slack\":";
    AppendDouble(&out, s.slack);
    out += ",\"op\":\"" + JsonEscape(s.op) + "\"";
    out += ",\"instance\":" + std::to_string(s.instance);
    out += '}';
  }
  out += "]}}\n";
  return out;
}

RunAnalysis Analyze(const TraceRecorder& trace,
                    const MetricsRegistry* metrics) {
  return Analyzer(trace, metrics).Run();
}

}  // namespace mitos::obs::analysis
