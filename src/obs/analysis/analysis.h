// Post-run performance diagnosis over recorded observability data.
//
// PR 1 captures *what happened* (TraceRecorder spans in virtual time, the
// MetricsRegistry step timeline); this layer answers *why the run took as
// long as it did*:
//
//   * Critical path — the chain of CPU/NIC/disk spans that bounds virtual
//     completion time, found by a deterministic backward "last finisher"
//     sweep: from the end of the run, repeatedly jump to the latest-ending
//     resource span, attribute it, and continue from its start. Gaps
//     between spans are classified against the control-flow timeline into
//     barrier-wait, decision-broadcast, job-launch, or straggler slack.
//     Each compute segment is attributed to the operator (span label
//     "<op>.<phase>") and, where an enclosing operator-bag span exists, to
//     the paper's bag identifier "<op>@<path_len>" (operator ×
//     execution-path prefix).
//   * Per-step breakdown — the same decomposition sliced by control-flow
//     step windows (previous broadcast -> this broadcast), which is what
//     shows barrier/decision time collapsing when loop pipelining is on.
//   * Skew & straggler attribution — per-machine busy-CPU seconds per step,
//     the imbalance factor (max/mean), and the operator instance
//     responsible for the slowest machine's load.
//
// The same decomposition works over wall-clock traces from the threads
// backend (TraceClock::kWall): "core" spans are compute, per-task "queue"
// spans classify idle gaps as queue-wait, and the driver's "quiesce" spans
// are barrier waits. RunAnalysis::wall_clock labels which domain the
// numbers live in; obs/analysis/drift.h correlates one of each.
//
// The analyzer is purely observational: it only reads recorded data after
// the run, so virtual time is byte-identical with and without it (the same
// invariant the recorder itself upholds; regression-tested in
// tests/obs/analysis_test.cc).
#ifndef MITOS_OBS_ANALYSIS_ANALYSIS_H_
#define MITOS_OBS_ANALYSIS_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mitos::obs::analysis {

// Segment kinds used in CriticalSegment::kind and the decomposition map.
inline constexpr const char kCompute[] = "compute";
inline constexpr const char kNetwork[] = "network";
inline constexpr const char kDisk[] = "disk";
inline constexpr const char kBarrierWait[] = "barrier-wait";
inline constexpr const char kDecisionBroadcast[] = "decision-broadcast";
inline constexpr const char kLaunch[] = "launch";
// Wall-clock only (threads backend): critical time a task spent between
// enqueue and dequeue on some machine's MPSC queue ("queue" spans).
inline constexpr const char kQueueWait[] = "queue-wait";
inline constexpr const char kSlack[] = "slack";

// One contiguous piece of the critical path, in virtual time.
struct CriticalSegment {
  double t_start = 0;
  double t_end = 0;
  std::string kind;    // one of the constants above
  int machine = -1;    // -1 for engine-level segments (barrier, launch, …)
  std::string detail;  // span name: "<op>.<phase>", "send→m3", "disk read"…
  std::string bag;     // "<op>@<path_len>" when attributable, else empty

  double seconds() const { return t_end - t_start; }
};

// Critical-path decomposition of one control-flow step window.
struct StepBreakdown {
  int index = 0;
  double t_start = 0;
  double t_end = 0;
  // Seconds of critical path inside the window, by kind.
  double compute = 0;
  double network = 0;
  double disk = 0;
  double barrier_wait = 0;
  double broadcast = 0;
  double launch = 0;
  double queue_wait = 0;  // wall-clock traces only
  double slack = 0;
};

// Load-imbalance diagnosis of one control-flow step window.
struct StepSkew {
  int index = 0;
  double t_start = 0;
  double t_end = 0;
  std::vector<double> busy;  // busy-CPU seconds per machine in the window
  double mean_busy = 0;
  double max_busy = 0;
  int straggler = -1;     // machine with max busy (-1: window had no work)
  double imbalance = 1;   // max/mean (1.0 = perfectly balanced)
  double slack = 0;       // max - mean: time the stragglers cost the step
  std::string op;         // dominant operator on the straggler
  int instance = -1;      // its partition (instance index), -1 if unknown
};

struct RunAnalysis {
  double total_seconds = 0;
  int num_machines = 0;
  // True when the trace was recorded in wall-clock mode (threads backend);
  // every quantity below is then wall seconds instead of virtual seconds.
  bool wall_clock = false;

  // The critical path in time order; contiguous from 0 to total_seconds.
  std::vector<CriticalSegment> critical_path;
  // Seconds per segment kind; sums to total_seconds.
  std::map<std::string, double> decomposition;
  // Critical-path seconds attributed per operator and per bag identifier.
  std::map<std::string, double> by_operator;
  std::map<std::string, double> by_bag;
  // TOTAL busy seconds per operator across ALL compute spans on every
  // machine (not just the critical path). This is the calibration quantity
  // the drift report correlates across backends: the DES side is modelled
  // operator cost, the threads side is measured kernel wall time.
  std::map<std::string, double> operator_busy;

  // Present only when a MetricsRegistry with a step timeline was supplied.
  std::vector<StepBreakdown> steps;
  std::vector<StepSkew> skew;

  // Whole-run per-machine busy-CPU seconds and the overall imbalance.
  std::vector<double> machine_busy;
  double busy_imbalance = 1;
  int busiest_machine = -1;

  // Step-template cache (cat "template" instants): bags instantiated from
  // a cached step template and the control-plane CPU those replays saved
  // (attributed here because saved time never shows up on the critical
  // path — the decomposition only contains time that was actually spent).
  int64_t template_hits = 0;
  double template_saved_seconds = 0;

  double DecompositionSeconds(const std::string& kind) const;

  // Human-readable report (mitos_run --report).
  std::string ToString() const;
  // Deterministic JSON (sorted keys, fixed number formatting).
  std::string ToJson() const;
};

// Analyzes a completed run from its recorded trace (and, optionally, its
// metrics registry — required for the per-step breakdown and skew tables).
// Purely a function of the recorded data; never touches the simulator.
RunAnalysis Analyze(const TraceRecorder& trace,
                    const MetricsRegistry* metrics = nullptr);

}  // namespace mitos::obs::analysis

#endif  // MITOS_OBS_ANALYSIS_ANALYSIS_H_
