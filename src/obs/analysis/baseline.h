// Bench-regression baselines: the schema behind the BENCH_fig*.json files.
//
// Each figure benchmark (bench/fig*.cc, via bench_util's --baseline-out
// flag) emits one baseline file: per benchmark run, the virtual-time total
// plus the critical-path decomposition from the post-run analyzer. The
// files are byte-deterministic — virtual time does not depend on the host —
// so a committed baseline diffs cleanly against a fresh CI run.
//
// tools/bench_diff compares two baseline files with Compare() and exits
// non-zero when any run's virtual time regressed beyond the threshold.
#ifndef MITOS_OBS_ANALYSIS_BASELINE_H_
#define MITOS_OBS_ANALYSIS_BASELINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace mitos::obs::analysis {

struct BaselineEntry {
  // Stable identity of one benchmark run within a figure:
  // "<figure>/<run_index>/<engine>/<machines>m". Run order inside a figure
  // binary is fixed, so keys match across builds.
  std::string key;
  std::string engine;
  int machines = 0;
  double total_seconds = 0;
  // Critical-path seconds by segment kind (analysis.h constants).
  std::map<std::string, double> decomposition;
};

struct BaselineFile {
  // Export-shape version. Writers stamp kSchemaVersion; Parse accepts
  // files without the field (schema 0, the pre-versioned shape) so
  // committed baselines keep loading. tools/bench_diff reports both
  // sides' versions when they differ.
  static constexpr int kSchemaVersion = 1;
  int schema = kSchemaVersion;
  std::string figure;
  std::vector<BaselineEntry> entries;

  std::string ToJson() const;  // deterministic
  // Also accepts the wall-clock bench shape (entries carrying
  // "off_seconds"/"on_seconds" instead of "total_seconds", as written by
  // bench/micro_threads_wallclock.cc): each such entry expands into two
  // entries keyed "<key>/off" and "<key>/on".
  static StatusOr<BaselineFile> Parse(const std::string& json_text);
  static StatusOr<BaselineFile> Load(const std::string& path);
};

struct BaselineDiff {
  struct Row {
    std::string key;
    double base_seconds = 0;
    double current_seconds = 0;
    double ratio = 1;  // current / base
    bool regression = false;
    bool improvement = false;
  };
  std::vector<Row> rows;
  // Keys present in the base but absent from the current run (a shrunk
  // bench counts as a failure) / new keys the baseline doesn't know yet.
  std::vector<std::string> missing;
  std::vector<std::string> added;
  int regressions = 0;
  int improvements = 0;

  bool failed() const { return regressions > 0 || !missing.empty(); }
  std::string ToString() const;
};

// Compares virtual-time totals entry by entry. A run regressed when
// current > base * (1 + threshold); improved when current < base *
// (1 - threshold). Decompositions ride along in the report for diagnosis
// but never trip the check on their own.
BaselineDiff Compare(const BaselineFile& base, const BaselineFile& current,
                     double threshold = 0.10);

}  // namespace mitos::obs::analysis

#endif  // MITOS_OBS_ANALYSIS_BASELINE_H_
