// Execution tracing: timestamped spans and instant events in *virtual
// simulator time*, exported as Chrome trace-event JSON (loadable in
// Perfetto or chrome://tracing).
//
// The recorder is purely observational: recording an event never schedules
// simulator work or charges virtual time, so an attached recorder changes
// nothing about a run except that it remembers what happened. Call sites
// hold a `TraceRecorder*` that is nullptr when tracing is disabled — the
// null check is the entire cost of the disabled path.
//
// Trace coordinates:
//   * pid — one "process" per simulated machine (machine m -> pid m+1) plus
//     a synthetic engine process (pid 0) holding the run span, the per-step
//     control-flow timeline, and global counters.
//   * tid — one lane per serial resource inside a machine: cores ("cpu0"…),
//     NICs ("nic-out"), disks ("disk"), the control-flow manager
//     ("control-flow"), and one lane per operator instance
//     ("op:<name>[i]"). Lanes are registered on first use via Lane().
//
// Span categories used by the engine:
//   "sim"       — core occupancy (named by operator phase when known)
//   "net"       — NIC transfer spans
//   "disk"      — disk/memory I/O spans
//   "core"      — wall-clock kernel execution on the threads backend
//   "queue"     — enqueue→dequeue wait of one task (threads backend)
//   "idle"      — a worker thread blocked on its empty queue
//   "quiesce"   — the driver waiting for quiescence (threads backend)
//   "operator"  — one span per output bag, named "<op>@<path_len>" (the
//                 paper's bag identifier: operator × execution-path prefix)
//   "step"      — one span per control-flow step on the engine process
//   "control-flow" — instant events, one per control-flow decision
//   "hoisting"  — instant events for build-side state kept across steps
//   "run"/"job" — run- and job-level spans
//
// Determinism: events are stored in insertion order and the simulator is
// deterministic, so two identical runs export byte-identical JSON (this is
// a regression test, tests/obs/trace_test.cc).
#ifndef MITOS_OBS_TRACE_H_
#define MITOS_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mitos::obs {

// Engine process id; simulated machine m maps to pid m+1.
inline constexpr int kEnginePid = 0;
constexpr int MachinePid(int machine) { return machine + 1; }

// Which clock the recorded timestamps belong to. The DES records virtual
// simulator seconds (the default); the real-parallel threads backend
// switches its recorder to kWall, where timestamps are wall-clock seconds
// since backend construction. The clock is metadata only — switching it
// never changes how events are recorded, and kVirtual exports stay
// byte-identical to pre-clock builds (the zero-perturbation invariant).
enum class TraceClock { kVirtual, kWall };

// One key/value argument attached to an event (the Chrome "args" object).
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  TraceArg(std::string k, int64_t v)
      : key(std::move(k)), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string k, int v)
      : key(std::move(k)), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string k, size_t v)
      : key(std::move(k)),
        kind(Kind::kInt),
        int_value(static_cast<int64_t>(v)) {}
  TraceArg(std::string k, double v)
      : key(std::move(k)), kind(Kind::kDouble), double_value(v) {}
  TraceArg(std::string k, bool v)
      : key(std::move(k)), kind(Kind::kInt), int_value(v ? 1 : 0) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), string_value(std::move(v)) {}
  TraceArg(std::string k, const char* v)
      : key(std::move(k)), kind(Kind::kString), string_value(v) {}

  std::string key;
  Kind kind;
  int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
};

using TraceArgs = std::vector<TraceArg>;

struct TraceEvent {
  char phase = 'X';  // 'X' span, 'i' instant, 'C' counter
  int pid = 0;
  int tid = 0;
  double ts = 0;   // virtual seconds
  double dur = 0;  // virtual seconds (spans only)
  std::string name;
  const char* cat = "";
  TraceArgs args;
};

// Recording methods are internally synchronized (the real-parallel threads
// backend records from machine worker threads); the bulk accessors
// (events(), process_names()) return references and are meant for
// post-run, single-threaded consumption.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Returns the tid of lane `name` in process `pid`, registering it on
  // first use. Tids are assigned per process in registration order (which
  // the deterministic simulator makes reproducible).
  int Lane(int pid, const std::string& name);

  // Display name for a process ("engine", "machine3", …).
  void SetProcessName(int pid, const std::string& name);

  // A completed span [t_start, t_end] on (pid, tid).
  void Span(int pid, int tid, std::string name, const char* cat,
            double t_start, double t_end, TraceArgs args = {});

  // A zero-duration marker at time t on (pid, tid).
  void Instant(int pid, int tid, std::string name, const char* cat, double t,
               TraceArgs args = {});

  // A sampled counter value at time t (rendered as a track in Perfetto).
  void Counter(int pid, std::string name, double t, double value);

  // Clock domain of the recorded timestamps (default kVirtual). The
  // threads backend flips this to kWall when it attaches; consumers (the
  // analyzer, the drift report) read it to label their output.
  void set_clock(TraceClock clock);
  TraceClock clock() const;

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t num_events() const;
  const std::map<int, std::string>& process_names() const {
    return process_names_;
  }
  // Registered display name of lane (pid, tid); empty when unknown. The
  // post-run analyzer (obs/analysis/) uses this to attribute spans back to
  // operator instances ("op:<name>[i]") and resources ("cpu0", "nic-out").
  const std::string& LaneName(int pid, int tid) const;

  // Counts events matching (phase, cat); either filter may be 0/nullptr
  // for "any". Convenience for tests and the --profile report.
  int64_t CountEvents(char phase, const char* cat) const;

  // Chrome trace-event JSON: {"displayTimeUnit":…, "traceEvents":[…]}.
  // Timestamps are exported in microseconds. Byte-deterministic for a
  // given recording sequence. A kWall recorder additionally carries
  // {"otherData":{"clock":"wall"}}; kVirtual output is byte-identical to
  // pre-clock builds.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  TraceClock clock_ = TraceClock::kVirtual;
  std::map<std::pair<int, std::string>, int> lanes_;
  std::map<int, int> next_tid_;
  std::map<std::pair<int, int>, std::string> lane_names_;
  std::map<int, std::string> process_names_;
  std::vector<TraceEvent> events_;
};

}  // namespace mitos::obs

#endif  // MITOS_OBS_TRACE_H_
