#include "obs/metrics.h"

#include <cstdio>
#include <mutex>

namespace mitos::obs {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

void HistogramData::Observe(double value) {
  if (count == 0 || value < min) min = value;
  if (count == 0 || value > max) max = value;
  ++count;
  sum += value;
  double bound = kFirstBound;
  int i = 0;
  while (i < kNumBuckets - 1 && value > bound) {
    bound *= 2;
    ++i;
  }
  ++buckets[static_cast<size_t>(i)];
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0;
  if (q <= 0) return min;
  if (q >= 1) return max;
  // Rank of the requested quantile among `count` observations (1-based).
  const double rank = q * static_cast<double>(count);
  int64_t cumulative = 0;
  double lower = 0;
  double bound = kFirstBound;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t n = buckets[static_cast<size_t>(i)];
    if (cumulative + n >= rank && n > 0) {
      // Interpolate the rank's position inside [lower, bound]. The last
      // bucket is a catch-all; its effective upper edge is the observed max.
      double upper = i == kNumBuckets - 1 ? max : bound;
      double fraction =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(n);
      double value = lower + fraction * (upper - lower);
      if (value < min) value = min;
      if (value > max) value = max;
      return value;
    }
    cumulative += n;
    lower = bound;
    if (i < kNumBuckets - 1) bound *= 2;
  }
  return max;
}

void MetricsRegistry::Inc(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::Set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Observe(value);
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const HistogramData* MetricsRegistry::histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  // "schema" versions the export shape for downstream consumers
  // (tools/bench_diff, dashboards); bump it when a key is renamed or
  // removed, not when new keys appear.
  std::string out = "{\"schema\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":";
    AppendDouble(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"sum\":";
    AppendDouble(&out, h.sum);
    out += ",\"min\":";
    AppendDouble(&out, h.min);
    out += ",\"max\":";
    AppendDouble(&out, h.max);
    out += ",\"p50\":";
    AppendDouble(&out, h.p50());
    out += ",\"p95\":";
    AppendDouble(&out, h.p95());
    out += ",\"p99\":";
    AppendDouble(&out, h.p99());
    // Sparse bucket encoding: [bucket_index, count] pairs.
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < HistogramData::kNumBuckets; ++i) {
      int64_t n = h.buckets[static_cast<size_t>(i)];
      if (n == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '[' + std::to_string(i) + ',' + std::to_string(n) + ']';
    }
    out += "]}";
  }
  out += "},\"steps\":[";
  first = true;
  for (const StepRecord& s : steps_) {
    if (!first) out += ',';
    first = false;
    out += "{\"index\":" + std::to_string(s.index) +
           ",\"block\":" + std::to_string(s.block) +
           ",\"value\":" + (s.value ? "true" : "false") +
           ",\"path_len\":" + std::to_string(s.path_len) +
           ",\"decision_time\":";
    AppendDouble(&out, s.decision_time);
    out += ",\"broadcast_time\":";
    AppendDouble(&out, s.broadcast_time);
    out += ",\"barrier_wait\":";
    AppendDouble(&out, s.barrier_wait);
    out += ",\"decision_overhead\":";
    AppendDouble(&out, s.decision_overhead);
    out += ",\"launch_seconds\":";
    AppendDouble(&out, s.launch_seconds);
    out += ",\"elements\":" + std::to_string(s.elements) +
           ",\"net_bytes\":" + std::to_string(s.net_bytes) +
           ",\"disk_bytes\":" + std::to_string(s.disk_bytes) + '}';
  }
  out += "]}\n";
  return out;
}

std::string MetricsRegistry::StepTableToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      "  step block branch  decision_t      wait  elements  net_bytes "
      "disk_bytes\n";
  char buf[160];
  for (const StepRecord& s : steps_) {
    std::snprintf(buf, sizeof(buf),
                  "  %4d %5d %6s %10.4fs %8.4fs %9lld %10lld %10lld\n",
                  s.index, s.block, s.value ? "true" : "false",
                  s.decision_time, s.barrier_wait,
                  static_cast<long long>(s.elements),
                  static_cast<long long>(s.net_bytes),
                  static_cast<long long>(s.disk_bytes));
    out += buf;
  }
  return out;
}

void MetricsRegistry::AddStep(const StepRecord& step) {
  std::lock_guard<std::mutex> lock(mu_);
  steps_.push_back(step);
}

}  // namespace mitos::obs
