#include "obs/trace.h"

#include <cstdio>
#include <mutex>

namespace mitos::obs {

namespace {

// JSON string escaping (control characters, quotes, backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Microsecond timestamps with nanosecond resolution; fixed-point printf
// formatting keeps the export byte-deterministic.
void AppendMicros(std::string* out, double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  *out += buf;
}

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

void AppendArgs(std::string* out, const TraceArgs& args) {
  *out += "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) *out += ',';
    const TraceArg& a = args[i];
    *out += '"';
    *out += JsonEscape(a.key);
    *out += "\":";
    switch (a.kind) {
      case TraceArg::Kind::kInt:
        *out += std::to_string(a.int_value);
        break;
      case TraceArg::Kind::kDouble:
        AppendDouble(out, a.double_value);
        break;
      case TraceArg::Kind::kString:
        *out += '"';
        *out += JsonEscape(a.string_value);
        *out += '"';
        break;
    }
  }
  *out += '}';
}

}  // namespace

int TraceRecorder::Lane(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(pid, name);
  auto it = lanes_.find(key);
  if (it != lanes_.end()) return it->second;
  int tid = next_tid_[pid]++;
  lanes_.emplace(std::move(key), tid);
  lane_names_[{pid, tid}] = name;
  return tid;
}

const std::string& TraceRecorder::LaneName(int pid, int tid) const {
  std::lock_guard<std::mutex> lock(mu_);
  static const std::string kEmpty;
  auto it = lane_names_.find({pid, tid});
  return it == lane_names_.end() ? kEmpty : it->second;
}

void TraceRecorder::set_clock(TraceClock clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock;
}

TraceClock TraceRecorder::clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

void TraceRecorder::SetProcessName(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_names_[pid] = name;
}

void TraceRecorder::Span(int pid, int tid, std::string name, const char* cat,
                         double t_start, double t_end, TraceArgs args) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.phase = 'X';
  event.pid = pid;
  event.tid = tid;
  event.ts = t_start;
  event.dur = t_end >= t_start ? t_end - t_start : 0;
  event.name = std::move(name);
  event.cat = cat;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void TraceRecorder::Instant(int pid, int tid, std::string name,
                            const char* cat, double t, TraceArgs args) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.phase = 'i';
  event.pid = pid;
  event.tid = tid;
  event.ts = t;
  event.name = std::move(name);
  event.cat = cat;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void TraceRecorder::Counter(int pid, std::string name, double t,
                            double value) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.phase = 'C';
  event.pid = pid;
  event.tid = 0;
  event.ts = t;
  event.name = std::move(name);
  event.cat = "counter";
  event.args.emplace_back("value", value);
  events_.push_back(std::move(event));
}

int64_t TraceRecorder::CountEvents(char phase, const char* cat) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  std::string want = cat == nullptr ? "" : cat;
  for (const TraceEvent& e : events_) {
    if (phase != 0 && e.phase != phase) continue;
    if (!want.empty() && want != e.cat) continue;
    ++n;
  }
  return n;
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 96 + 256);
  // The clock marker rides in "otherData" ONLY for wall-clock recordings,
  // so virtual-time exports stay byte-identical to pre-clock builds.
  out += "{\"displayTimeUnit\":\"ms\",";
  if (clock_ == TraceClock::kWall) {
    out += "\"otherData\":{\"clock\":\"wall\"},";
  }
  out += "\"traceEvents\":[\n";
  bool first = true;
  auto separator = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata first: process and thread names (sorted — std::map order).
  for (const auto& [pid, name] : process_names_) {
    separator();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
           JsonEscape(name) + "\"}}";
  }
  for (const auto& [key, name] : lane_names_) {
    separator();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
           ",\"tid\":" + std::to_string(key.second) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           JsonEscape(name) + "\"}}";
    // Preserve registration order as the display order.
    separator();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
           ",\"tid\":" + std::to_string(key.second) +
           ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
           std::to_string(key.second) + "}}";
  }

  for (const TraceEvent& e : events_) {
    separator();
    out += "{\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":" + std::to_string(e.pid) +
           ",\"tid\":" + std::to_string(e.tid) + ",\"ts\":";
    AppendMicros(&out, e.ts);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      AppendMicros(&out, e.dur);
    }
    if (e.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"name\":\"" + JsonEscape(e.name) + "\"";
    if (e.cat != nullptr && e.cat[0] != '\0') {
      out += ",\"cat\":\"" + JsonEscape(e.cat) + "\"";
    }
    out += ',';
    AppendArgs(&out, e.args);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

}  // namespace mitos::obs
