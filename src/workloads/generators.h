// Synthetic dataset generators (the paper generated random inputs with
// uniformly distributed visits, Sec. 6.1). All generators are seeded and
// deterministic.
#ifndef MITOS_WORKLOADS_GENERATORS_H_
#define MITOS_WORKLOADS_GENERATORS_H_

#include <cstdint>
#include <string>

#include "sim/filesystem.h"

namespace mitos::workloads {

struct VisitLogSpec {
  int days = 365;
  int64_t entries_per_day = 10'000;
  int64_t num_pages = 1'000;
  std::string prefix = "pageVisitLog";
  uint64_t seed = 42;
};

// Writes `prefix`1 .. `prefix`<days>, each a bag of uniformly random
// page ids in [0, num_pages).
void GenerateVisitLogs(sim::SimFileSystem* fs, const VisitLogSpec& spec);

struct PageTypeSpec {
  int64_t num_pages = 1'000;
  int64_t num_types = 4;
  std::string file = "pageTypes";
  uint64_t seed = 7;
  // Padding bytes per row (a string field), to scale the dataset's size
  // independently of the page count — used by the Fig. 8 sweep.
  int64_t padding_bytes = 0;
};

// Writes (page, type) pairs for every page (plus optional padding field:
// (page, type, pad)). field(0)=page, field(1)=type always hold.
void GeneratePageTypes(sim::SimFileSystem* fs, const PageTypeSpec& spec);

struct GraphSpec {
  int64_t num_vertices = 1'000;
  int64_t num_edges = 10'000;
  uint64_t seed = 11;
};

// Writes "vertices" (int64 ids 0..n-1) and "edges" ((src, dst) pairs,
// uniformly random, self-loops allowed; every vertex gets at least one
// outgoing edge so 1/out-degree is defined).
void GenerateGraph(sim::SimFileSystem* fs, const GraphSpec& spec);

struct PointsSpec {
  int64_t num_points = 10'000;
  int64_t num_clusters = 4;
  uint64_t seed = 13;
};

// Writes "points" ((pid, x, y) around num_clusters Gaussian-ish blobs) and
// "centroids" (num_clusters random initial centroids (cid, x, y)).
void GeneratePoints(sim::SimFileSystem* fs, const PointsSpec& spec);

}  // namespace mitos::workloads

#endif  // MITOS_WORKLOADS_GENERATORS_H_
