// Canonical workload programs from the paper, expressed in the imperative
// language. Shared by tests, examples, and the benchmark harness.
#ifndef MITOS_WORKLOADS_PROGRAMS_H_
#define MITOS_WORKLOADS_PROGRAMS_H_

#include <cstdint>
#include <string>

#include "lang/ast.h"

namespace mitos::workloads {

// The paper's running example (Sec. 2): per-day visit counts over a year of
// page-visit logs, optionally comparing consecutive days (the if inside the
// loop) and optionally joining a loop-invariant pageTypes dataset.
struct VisitCountOptions {
  int days = 365;
  // Compare consecutive days (join + abs-diff + sum + writeFile in an if).
  bool with_diffs = true;
  // Join the loop-invariant pageTypes dataset and keep type-0 pages only
  // (paper Sec. 2 extension; exercises loop-invariant hoisting).
  bool with_page_types = false;
  // When with_diffs is false, write the raw counts per day instead.
  std::string log_prefix = "pageVisitLog";
  std::string page_types_file = "pageTypes";
  std::string out_prefix = "diff";
};

lang::Program VisitCountProgram(const VisitCountOptions& options);

// A trivial loop with minimal per-step data: isolates the per-iteration
// coordination overhead (paper Sec. 6.4, Figure 7).
lang::Program StepOverheadProgram(int steps);

// PageRank over a static edge list — an iterative task whose per-step join
// against the (loop-invariant) adjacency data exercises hoisting. Files:
// "vertices" (int64 ids), "edges" (pairs (src, dst)). Writes "ranks".
struct PageRankOptions {
  int iterations = 10;
  int64_t num_vertices = 0;  // required (for the 1/n terms)
  double damping = 0.85;
  // When > 0, iterate until the summed absolute rank change drops below
  // this threshold (a double-valued, data-dependent loop condition) —
  // `iterations` then acts as a safety cap.
  double convergence_epsilon = 0;
};

lang::Program PageRankProgram(const PageRankOptions& options);

// K-means over 2-d points with a fixed iteration count. Files: "points"
// (tuples (pid, x, y)), "centroids" (tuples (cid, x, y)). Writes
// "centroids_out". The point set is the loop-invariant join build side.
struct KMeansOptions {
  int iterations = 10;
};

lang::Program KMeansProgram(const KMeansOptions& options);

// Connected components by label propagation (one of the paper's motivating
// iterative graph tasks, Sec. 1) — iterates UNTIL CONVERGENCE: the loop
// condition depends on data computed inside the loop (the number of labels
// that changed), not on a fixed counter. The (undirected) adjacency is the
// loop-invariant join build side. Files: "vertices", "edges". Writes
// "components" ((vertex, component) pairs keyed by smallest member id).
lang::Program ConnectedComponentsProgram();

}  // namespace mitos::workloads

#endif  // MITOS_WORKLOADS_PROGRAMS_H_
