#include "workloads/programs.h"

#include <cmath>

#include "common/logging.h"
#include "lang/builder.h"

namespace mitos::workloads {

namespace {

using lang::Add;
using lang::Concat;
using lang::LitInt;
using lang::LitString;
using lang::ProgramBuilder;
using lang::Var;
namespace fns = lang::fns;

}  // namespace

lang::Program VisitCountProgram(const VisitCountOptions& options) {
  MITOS_CHECK_GT(options.days, 0);
  ProgramBuilder pb;
  if (options.with_page_types) {
    pb.Assign("pageTypes", lang::ReadFile(LitString(options.page_types_file)));
  }
  if (options.with_diffs) {
    pb.Assign("yesterdayCounts", lang::BagLit({}));
  }
  pb.Assign("day", LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("visits",
                  lang::ReadFile(Concat(LitString(options.log_prefix),
                                        Var("day"))));
        if (options.with_page_types) {
          // (visits join pageTypes).filter(type == 0): the pageTypes bag is
          // the loop-invariant build side (paper Sec. 2 / 5.3).
          pb.Assign("keyedVisits",
                    lang::Map(Var("visits"), fns::PairWithOne()));
          pb.Assign("taggedVisits",
                    lang::Join(Var("pageTypes"), Var("keyedVisits")));
          // (page, type, 1) -> keep type 0, rebuild (page, 1).
          pb.Assign("filteredVisits",
                    lang::Filter(Var("taggedVisits"),
                                 fns::FieldEquals(1, Datum::Int64(0))));
          pb.Assign("visitPairs",
                    lang::Map(Var("filteredVisits"),
                              {"dropType", [](const Datum& t) {
                                 return Datum::Pair(t.field(0), t.field(2));
                               }}));
        } else {
          pb.Assign("visitPairs", lang::Map(Var("visits"),
                                            fns::PairWithOne()));
        }
        pb.Assign("counts",
                  lang::ReduceByKey(Var("visitPairs"), fns::SumInt64()));
        if (options.with_diffs) {
          pb.If(lang::Ne(Var("day"), LitInt(1)), [&] {
            pb.Assign("joinedYesterday",
                      lang::Join(Var("yesterdayCounts"), Var("counts")));
            pb.Assign("diffs", lang::Map(Var("joinedYesterday"),
                                         fns::AbsDiffFields12()));
            pb.Assign("summed",
                      lang::Reduce(Var("diffs"), fns::SumInt64()));
            pb.WriteFile(Var("summed"),
                         Concat(LitString(options.out_prefix), Var("day")));
          });
          pb.Assign("yesterdayCounts", Var("counts"));
        } else {
          pb.WriteFile(Var("counts"),
                       Concat(LitString(options.out_prefix), Var("day")));
        }
        pb.Assign("day", Add(Var("day"), LitInt(1)));
      },
      lang::Le(Var("day"), LitInt(options.days)));
  return pb.Build();
}

lang::Program StepOverheadProgram(int steps) {
  MITOS_CHECK_GT(steps, 0);
  ProgramBuilder pb;
  // One tiny bag operation per step, with the loop condition depending on
  // the bag: the work is negligible, so the marginal time per step is the
  // per-iteration coordination overhead (Fig. 7). Keeping the loop state in
  // a bag (not a driver scalar) is what forces systems without native
  // iterations to pay a job launch per step — Spark must collect() the
  // state to evaluate the condition.
  pb.Assign("state", lang::BagLit({Datum::Int64(0)}));
  pb.While(lang::Lt(lang::ScalarFromBag(Var("state")), LitInt(steps)), [&] {
    pb.Assign("state", lang::Map(Var("state"), fns::AddInt64(1)));
  });
  pb.WriteFile(Var("state"), LitString("steps_done"));
  return pb.Build();
}

lang::Program PageRankProgram(const PageRankOptions& options) {
  MITOS_CHECK_GT(options.num_vertices, 0);
  const double n = static_cast<double>(options.num_vertices);
  const double base = (1.0 - options.damping) / n;
  const double damping = options.damping;

  ProgramBuilder pb;
  pb.Assign("vertices", lang::ReadFile(LitString("vertices")));
  pb.Assign("edges", lang::ReadFile(LitString("edges")));
  // Out-degrees: (src, deg).
  pb.Assign("degrees",
            lang::ReduceByKey(lang::Map(Var("edges"),
                                        {"srcOne", [](const Datum& e) {
                                           return Datum::Pair(e.field(0),
                                                              Datum::Int64(1));
                                         }}),
                              fns::SumInt64()));
  // (src, deg, dst) -> (src, (dst, 1/deg)): loop-invariant adjacency with
  // contribution weights.
  pb.Assign("adjacency",
            lang::Map(lang::Join(Var("degrees"), Var("edges")),
                      {"withInvDeg", [](const Datum& t) {
                         double inv =
                             1.0 / static_cast<double>(t.field(1).int64());
                         return Datum::Pair(
                             t.field(0),
                             Datum::Pair(t.field(2), Datum::Double(inv)));
                       }}));
  // (v, 0.0) for every vertex so pages without in-links keep a rank.
  pb.Assign("zeroRanks", lang::Map(Var("vertices"),
                                   {"zeroRank", [](const Datum& v) {
                                      return Datum::Pair(v, Datum::Double(0));
                                    }}));
  pb.Assign("ranks", lang::Map(Var("vertices"),
                               {"initRank", [n](const Datum& v) {
                                  return Datum::Pair(v,
                                                     Datum::Double(1.0 / n));
                                }}));
  pb.Assign("iter", LitInt(0));
  const bool until_convergence = options.convergence_epsilon > 0;
  if (until_convergence) {
    pb.Assign("delta", lang::LitDouble(1.0));  // enter the loop
  }
  lang::ExprPtr condition =
      until_convergence
          ? lang::And(lang::Gt(Var("delta"),
                               lang::LitDouble(options.convergence_epsilon)),
                      lang::Lt(Var("iter"), LitInt(options.iterations)))
          : lang::Lt(Var("iter"), LitInt(options.iterations));
  pb.While(condition, [&] {
    // Join the invariant adjacency (build side, hoisted) with the current
    // ranks: (src, (dst, w), rank) -> (dst, rank * w).
    pb.Assign("contribs",
              lang::Map(lang::Join(Var("adjacency"), Var("ranks")),
                        {"contrib", [](const Datum& t) {
                           const Datum& dw = t.field(1);
                           double c = t.field(2).dbl() * dw.field(1).dbl();
                           return Datum::Pair(dw.field(0), Datum::Double(c));
                         }}));
    pb.Assign("summedContribs",
              lang::ReduceByKey(lang::Union(Var("contribs"), Var("zeroRanks")),
                                fns::SumDouble()));
    pb.Assign("newRanks",
              lang::Map(Var("summedContribs"),
                        {"applyDamping", [base, damping](const Datum& p) {
                           return Datum::Pair(
                               p.field(0),
                               Datum::Double(base +
                                             damping * p.field(1).dbl()));
                         }}));
    if (until_convergence) {
      // Summed absolute rank movement: the convergence criterion.
      pb.Assign("movement",
                lang::Map(lang::Join(Var("ranks"), Var("newRanks")),
                          {"absDelta", [](const Datum& t) {
                             double d = t.field(1).dbl() - t.field(2).dbl();
                             return Datum::Double(d < 0 ? -d : d);
                           }}));
      pb.Assign("delta",
                lang::ScalarFromBag(lang::Reduce(
                    lang::Union(Var("movement"),
                                lang::BagLit({Datum::Double(0)})),
                    fns::SumDouble())));
    }
    pb.Assign("ranks", Var("newRanks"));
    pb.Assign("iter", Add(Var("iter"), LitInt(1)));
  });
  pb.WriteFile(Var("ranks"), LitString("ranks"));
  return pb.Build();
}

lang::Program KMeansProgram(const KMeansOptions& options) {
  ProgramBuilder pb;
  // Points keyed by a constant so a hash join emulates the broadcast of
  // centroids to every point: the (large) point set is the loop-invariant
  // build side and stays hoisted across iterations.
  pb.Assign("points", lang::ReadFile(LitString("points")));
  pb.Assign("keyedPoints", lang::Map(Var("points"),
                                     {"key0", [](const Datum& p) {
                                        return Datum::Pair(Datum::Int64(0), p);
                                      }}));
  pb.Assign("centroids", lang::ReadFile(LitString("centroids")));
  pb.Assign("iter", LitInt(0));
  pb.While(lang::Lt(Var("iter"), LitInt(options.iterations)), [&] {
    pb.Assign("keyedCentroids", lang::Map(Var("centroids"),
                                          {"key0", [](const Datum& c) {
                                             return Datum::Pair(
                                                 Datum::Int64(0), c);
                                           }}));
    // (0, point, centroid) for every pair.
    pb.Assign("pairs", lang::Join(Var("keyedPoints"),
                                  Var("keyedCentroids")));
    // (pid, (dist, cid, px, py)).
    pb.Assign("assignments",
              lang::Map(Var("pairs"), {"distance", [](const Datum& t) {
                          const Datum& p = t.field(1);
                          const Datum& c = t.field(2);
                          double dx = p.field(1).dbl() - c.field(1).dbl();
                          double dy = p.field(2).dbl() - c.field(2).dbl();
                          return Datum::Pair(
                              p.field(0),
                              Datum::Tuple({Datum::Double(dx * dx + dy * dy),
                                            c.field(0), p.field(1),
                                            p.field(2)}));
                        }}));
    pb.Assign("best",
              lang::ReduceByKey(Var("assignments"),
                                {"minByDist", [](const Datum& a,
                                                 const Datum& b) {
                                   return a.field(0).dbl() <=
                                                  b.field(0).dbl()
                                              ? a
                                              : b;
                                 }}));
    // (cid, (sum_x, sum_y, count)).
    pb.Assign("clusterSums",
              lang::ReduceByKey(
                  lang::Map(Var("best"),
                            {"toClusterTriple", [](const Datum& p) {
                               const Datum& v = p.field(1);
                               return Datum::Pair(
                                   v.field(1),
                                   Datum::Tuple({v.field(2), v.field(3),
                                                 Datum::Int64(1)}));
                             }}),
                  {"sumTriples", [](const Datum& a, const Datum& b) {
                     return Datum::Tuple(
                         {Datum::Double(a.field(0).dbl() + b.field(0).dbl()),
                          Datum::Double(a.field(1).dbl() + b.field(1).dbl()),
                          Datum::Int64(a.field(2).int64() +
                                       b.field(2).int64())});
                   }}));
    pb.Assign("centroids",
              lang::Map(Var("clusterSums"), {"average", [](const Datum& p) {
                          const Datum& s = p.field(1);
                          double cnt =
                              static_cast<double>(s.field(2).int64());
                          return Datum::Tuple(
                              {p.field(0),
                               Datum::Double(s.field(0).dbl() / cnt),
                               Datum::Double(s.field(1).dbl() / cnt)});
                        }}));
    pb.Assign("iter", Add(Var("iter"), LitInt(1)));
  });
  pb.WriteFile(Var("centroids"), LitString("centroids_out"));
  return pb.Build();
}

lang::Program ConnectedComponentsProgram() {
  ProgramBuilder pb;
  pb.Assign("vertices", lang::ReadFile(LitString("vertices")));
  pb.Assign("edges", lang::ReadFile(LitString("edges")));
  // Undirected adjacency: both directions of every edge. Loop-invariant.
  pb.Assign("adjacency",
            lang::FlatMap(Var("edges"), {"bothDirections", [](const Datum& e) {
                            return DatumVector{
                                Datum::Pair(e.field(0), e.field(1)),
                                Datum::Pair(e.field(1), e.field(0))};
                          }}));
  // Every vertex starts in its own component.
  pb.Assign("labels", lang::Map(Var("vertices"), {"selfLabel",
                                                  [](const Datum& v) {
                                                    return Datum::Pair(v, v);
                                                  }}));
  lang::BinaryFn min_label = {"minInt64", [](const Datum& a, const Datum& b) {
                                return a.int64() <= b.int64() ? a : b;
                              }};
  pb.Assign("changes", lang::BagLit({Datum::Int64(1)}));  // enter the loop
  pb.While(lang::Gt(lang::ScalarFromBag(Var("changes")), LitInt(0)), [&] {
    // Propagate labels along edges: (v, neighbor, label) -> (neighbor,
    // label). The adjacency is the hoisted build side.
    pb.Assign("messages",
              lang::Map(lang::Join(Var("adjacency"), Var("labels")),
                        {"toNeighbor", [](const Datum& t) {
                           return Datum::Pair(t.field(1), t.field(2));
                         }}));
    pb.Assign("newLabels",
              lang::ReduceByKey(lang::Union(Var("messages"), Var("labels")),
                                min_label));
    // Count label changes to decide convergence: (v, old, new).
    pb.Assign("diffs",
              lang::Filter(lang::Join(Var("labels"), Var("newLabels")),
                           {"changed", [](const Datum& t) {
                              return !(t.field(1) == t.field(2));
                            }}));
    pb.Assign("changes", lang::Count(Var("diffs")));
    pb.Assign("labels", Var("newLabels"));
  });
  pb.WriteFile(Var("labels"), LitString("components"));
  return pb.Build();
}

}  // namespace mitos::workloads
