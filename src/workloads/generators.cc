#include "workloads/generators.h"

#include <string>

#include "common/logging.h"
#include "common/rng.h"

namespace mitos::workloads {

void GenerateVisitLogs(sim::SimFileSystem* fs, const VisitLogSpec& spec) {
  MITOS_CHECK_GT(spec.days, 0);
  MITOS_CHECK_GT(spec.num_pages, 0);
  Rng rng(spec.seed);
  for (int day = 1; day <= spec.days; ++day) {
    DatumVector entries;
    entries.reserve(static_cast<size_t>(spec.entries_per_day));
    for (int64_t i = 0; i < spec.entries_per_day; ++i) {
      entries.push_back(Datum::Int64(static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(spec.num_pages)))));
    }
    fs->Write(spec.prefix + std::to_string(day), std::move(entries));
  }
}

void GeneratePageTypes(sim::SimFileSystem* fs, const PageTypeSpec& spec) {
  MITOS_CHECK_GT(spec.num_pages, 0);
  MITOS_CHECK_GT(spec.num_types, 0);
  Rng rng(spec.seed);
  DatumVector rows;
  rows.reserve(static_cast<size_t>(spec.num_pages));
  std::string padding(static_cast<size_t>(spec.padding_bytes), 'x');
  for (int64_t page = 0; page < spec.num_pages; ++page) {
    int64_t type = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(spec.num_types)));
    if (spec.padding_bytes > 0) {
      rows.push_back(Datum::Tuple({Datum::Int64(page), Datum::Int64(type),
                                   Datum::String(padding)}));
    } else {
      rows.push_back(Datum::Pair(Datum::Int64(page), Datum::Int64(type)));
    }
  }
  fs->Write(spec.file, std::move(rows));
}

void GenerateGraph(sim::SimFileSystem* fs, const GraphSpec& spec) {
  MITOS_CHECK_GT(spec.num_vertices, 0);
  MITOS_CHECK_GE(spec.num_edges, spec.num_vertices)
      << "need at least one outgoing edge per vertex";
  Rng rng(spec.seed);
  DatumVector vertices;
  vertices.reserve(static_cast<size_t>(spec.num_vertices));
  for (int64_t v = 0; v < spec.num_vertices; ++v) {
    vertices.push_back(Datum::Int64(v));
  }
  fs->Write("vertices", std::move(vertices));

  DatumVector edges;
  edges.reserve(static_cast<size_t>(spec.num_edges));
  // One guaranteed out-edge per vertex, the rest uniform.
  for (int64_t v = 0; v < spec.num_vertices; ++v) {
    int64_t dst = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(spec.num_vertices)));
    edges.push_back(Datum::Pair(Datum::Int64(v), Datum::Int64(dst)));
  }
  for (int64_t e = spec.num_vertices; e < spec.num_edges; ++e) {
    int64_t src = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(spec.num_vertices)));
    int64_t dst = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(spec.num_vertices)));
    edges.push_back(Datum::Pair(Datum::Int64(src), Datum::Int64(dst)));
  }
  fs->Write("edges", std::move(edges));
}

void GeneratePoints(sim::SimFileSystem* fs, const PointsSpec& spec) {
  MITOS_CHECK_GT(spec.num_points, 0);
  MITOS_CHECK_GT(spec.num_clusters, 0);
  Rng rng(spec.seed);
  // Blob centers on a coarse grid.
  std::vector<std::pair<double, double>> centers;
  for (int64_t c = 0; c < spec.num_clusters; ++c) {
    centers.emplace_back(rng.NextDouble() * 100.0, rng.NextDouble() * 100.0);
  }
  DatumVector points;
  points.reserve(static_cast<size_t>(spec.num_points));
  for (int64_t p = 0; p < spec.num_points; ++p) {
    const auto& [cx, cy] =
        centers[static_cast<size_t>(rng.NextBelow(
            static_cast<uint64_t>(spec.num_clusters)))];
    // Uniform square noise around the blob center is enough structure.
    double x = cx + (rng.NextDouble() - 0.5) * 10.0;
    double y = cy + (rng.NextDouble() - 0.5) * 10.0;
    points.push_back(Datum::Tuple(
        {Datum::Int64(p), Datum::Double(x), Datum::Double(y)}));
  }
  fs->Write("points", std::move(points));

  // Initial centroids near distinct blob centers (offset so the algorithm
  // still has work to do) — random initialization tends to collapse
  // clusters on toy data.
  DatumVector centroids;
  for (int64_t c = 0; c < spec.num_clusters; ++c) {
    const auto& [cx, cy] = centers[static_cast<size_t>(c)];
    centroids.push_back(Datum::Tuple(
        {Datum::Int64(c), Datum::Double(cx + 3.0), Datum::Double(cy - 3.0)}));
  }
  fs->Write("centroids", std::move(centroids));
}

}  // namespace mitos::workloads
