// Flink-style native iterations and other native-iteration baselines
// (Naiad, TensorFlow) for the paper's comparisons.
//
// Flink's native (bulk) iterations execute the whole loop inside a single
// dataflow job with a synchronization barrier between supersteps — no loop
// pipelining — and a well-documented per-superstep overhead (FLINK-3322,
// paper footnote 4). They support loop-invariant hoisting. Their
// *expressiveness* is restricted (paper Sec. 2): no nested loops, no if
// inside the loop body, no reading/writing files inside the iteration.
//
// This module reproduces that behaviour on top of the Mitos machinery: the
// superstep barrier is the runtime with pipelining disabled plus a
// per-decision overhead; the expressiveness restrictions are enforced by a
// static check. Programs that fail the check must fall back to launching a
// job per step ("Flink (separate jobs)" in Fig. 7), which is the Spark
// driver with Flink launch constants.
#ifndef MITOS_BASELINES_FLINK_H_
#define MITOS_BASELINES_FLINK_H_

#include "common/status.h"
#include "lang/ast.h"
#include "runtime/executor.h"
#include "sim/cluster.h"
#include "sim/filesystem.h"
#include "sim/simulator.h"

namespace mitos::baselines {

// Returns OK when `program` fits Flink's native-iteration model; otherwise
// Unimplemented with the first offending construct.
Status CheckNativeIterationExpressible(const lang::Program& program);

struct FlinkOptions {
  // Per-superstep synchronization overhead (FLINK-3322-style).
  double step_overhead = 0.030;
  // When true, programs outside the native-iteration fragment are rejected
  // with Unimplemented (callers then fall back to per-step jobs). When
  // false, they run anyway — this mirrors the paper's own evaluation, which
  // reports "Flink" numbers for Visit Count despite the restrictions, and
  // keeps the comparison about *performance* (barrier vs pipelining).
  bool strict = false;
  // Optional metrics registry (src/obs/); tracing rides on the recorder
  // attached to the cluster.
  obs::MetricsRegistry* metrics = nullptr;
};

// Runs `program` as one barriered native-iteration job.
StatusOr<runtime::RunStats> RunFlinkSim(sim::Simulator* sim,
                                        sim::Cluster* cluster,
                                        sim::SimFileSystem* fs,
                                        const lang::Program& program,
                                        const FlinkOptions& options = {});

}  // namespace mitos::baselines

#endif  // MITOS_BASELINES_FLINK_H_
