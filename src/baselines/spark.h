// Spark-style baseline: imperative control flow in the driver, one dataflow
// job per action (paper Sec. 1/6: "Spark launches a new dataflow job for
// every iteration step, incurring a high overhead").
//
// The driver interprets control flow sequentially in "driver code" (plain
// C++, free in virtual time). Bag assignments are lazy and build RDD-style
// lineage; an *action* (writeFile, or collecting a bag value into a driver
// scalar/condition) compiles the required lineage into a straight-line
// dataflow job and runs it on the simulated cluster, paying the per-job
// launch overhead (base + per-machine, hence linear in the machine count —
// Fig. 7). Named bags computed by a job are materialized into the in-memory
// RDD cache so later jobs re-read instead of recomputing — but operators
// (and their join hash tables) die with each job, so there is no
// loop-invariant hoisting (Fig. 8) and no pipelining across steps.
//
// The same driver with different launch constants models "Flink (separate
// jobs)" from Fig. 7.
#ifndef MITOS_BASELINES_SPARK_H_
#define MITOS_BASELINES_SPARK_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "lang/ast.h"
#include "runtime/executor.h"
#include "sim/cluster.h"
#include "sim/filesystem.h"
#include "sim/simulator.h"

namespace mitos::baselines {

struct SparkOptions {
  // Per-job launch overhead: base + per_machine * machines.
  double launch_base = 0.10;
  double launch_per_machine = 0.115;
  // Guard against runaway driver loops.
  int64_t max_driver_iterations = 10'000'000;
  // Optional metrics registry (src/obs/); tracing rides on the recorder
  // attached to the cluster.
  obs::MetricsRegistry* metrics = nullptr;
};

class SparkDriver {
 public:
  SparkDriver(sim::Simulator* sim, sim::Cluster* cluster,
              sim::SimFileSystem* fs, SparkOptions options = {});

  SparkDriver(const SparkDriver&) = delete;
  SparkDriver& operator=(const SparkDriver&) = delete;

  // Interprets `program`; outputs land in the file system. Cache files
  // ("mem:*") are removed afterwards.
  StatusOr<runtime::RunStats> Run(const lang::Program& program);

 private:
  // Lineage is a lang::Expr tree whose leaves are readFile/bagLit nodes and
  // whose variable references have been substituted away. Shared subtrees
  // (the same assignment referenced twice) share Expr nodes, which is what
  // the cache map keys on.
  using Lineage = lang::ExprPtr;

  StatusOr<Datum> EvalScalar(const lang::Expr& expr);
  StatusOr<bool> EvalCondition(const lang::Expr& expr);
  StatusOr<std::string> EvalFilename(const lang::Expr& expr);
  // Substitutes bag variables with their lineage; evaluates embedded scalar
  // expressions (file names, wrapped scalars) eagerly in the driver.
  StatusOr<Lineage> ResolveBag(const lang::Expr& expr);

  Status RunStmts(const lang::StmtList& stmts);
  Status RunStmt(const lang::Stmt& stmt);

  // Runs one job computing `action` and writing it to `sink_file`; also
  // materializes every named, not-yet-cached bag used by the job into the
  // RDD cache. Collect actions write to a cache file and read it back.
  Status RunJob(const Lineage& action, const std::string& sink_file);
  // Collects a (one-element) bag into the driver.
  StatusOr<DatumVector> Collect(const Lineage& lineage);

  // Returns true when `lineage` is a leaf that needs no caching (literal,
  // plain file read, or an existing cache read).
  static bool IsLeaf(const lang::Expr& expr);

  sim::Simulator* sim_;
  sim::Cluster* cluster_;
  sim::SimFileSystem* fs_;
  SparkOptions options_;

  std::map<std::string, Datum> scalar_env_;
  std::map<std::string, Lineage> bag_env_;
  // Materialized lineage nodes -> cache file name.
  std::map<const lang::Expr*, std::string> cached_;
  // Named bags awaiting materialization by the next job.
  std::map<const lang::Expr*, std::string> pending_cache_names_;
  // Keeps every node used as a cache key alive: the maps above key on raw
  // pointers, and a freed node's address could be reused by a fresh one.
  std::vector<Lineage> cache_key_keepalive_;

  int64_t next_cache_id_ = 0;
  int64_t driver_iterations_ = 0;
  runtime::RunStats stats_;
};

}  // namespace mitos::baselines

#endif  // MITOS_BASELINES_SPARK_H_
