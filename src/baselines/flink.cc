#include "baselines/flink.h"

namespace mitos::baselines {

namespace {

using lang::Expr;
using lang::ExprKind;
using lang::ExprPtr;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

bool ExprContainsFileIo(const ExprPtr& expr) {
  if (!expr) return false;
  if (expr->kind == ExprKind::kReadFile) return true;
  return ExprContainsFileIo(expr->a) || ExprContainsFileIo(expr->b);
}

Status CheckLoopBody(const StmtList& stmts) {
  for (const StmtPtr& stmt : stmts) {
    switch (stmt->kind) {
      case StmtKind::kAssign:
        if (ExprContainsFileIo(stmt->expr)) {
          return Status::Unimplemented(
              "Flink native iterations do not support reading files inside "
              "the loop body");
        }
        break;
      case StmtKind::kWriteFile:
        return Status::Unimplemented(
            "Flink native iterations do not support writing files inside "
            "the loop body");
      case StmtKind::kIf:
        return Status::Unimplemented(
            "Flink native iterations do not support if statements inside "
            "the loop body");
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        return Status::Unimplemented(
            "Flink native iterations do not support nested loops");
    }
  }
  return Status::Ok();
}

Status CheckStmts(const StmtList& stmts) {
  for (const StmtPtr& stmt : stmts) {
    switch (stmt->kind) {
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        MITOS_RETURN_IF_ERROR(CheckLoopBody(stmt->body));
        break;
      case StmtKind::kIf:
        MITOS_RETURN_IF_ERROR(CheckStmts(stmt->body));
        MITOS_RETURN_IF_ERROR(CheckStmts(stmt->else_body));
        break;
      default:
        break;
    }
  }
  return Status::Ok();
}

}  // namespace

Status CheckNativeIterationExpressible(const lang::Program& program) {
  return CheckStmts(program.stmts);
}

StatusOr<runtime::RunStats> RunFlinkSim(sim::Simulator* sim,
                                        sim::Cluster* cluster,
                                        sim::SimFileSystem* fs,
                                        const lang::Program& program,
                                        const FlinkOptions& options) {
  if (options.strict) {
    MITOS_RETURN_IF_ERROR(CheckNativeIterationExpressible(program));
  }
  runtime::ExecutorOptions exec;
  exec.pipelining = false;  // superstep barrier between iterations
  exec.hoisting = true;     // Flink supports loop-invariant hoisting
  exec.decision_overhead = options.step_overhead;
  exec.metrics = options.metrics;
  runtime::MitosExecutor executor(sim, cluster, fs, exec);
  return executor.Run(program);
}

}  // namespace mitos::baselines
