#include "baselines/spark.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "ir/ssa.h"
#include "ir/verify.h"
#include "lang/scalar_ops.h"
#include "runtime/spark_cache.h"
#include "runtime/translator.h"

namespace mitos::baselines {

namespace {

using lang::Expr;
using lang::ExprKind;
using lang::ExprPtr;
using lang::StmtKind;
using lang::StmtList;
using lang::StmtPtr;

}  // namespace

SparkDriver::SparkDriver(sim::Simulator* sim, sim::Cluster* cluster,
                         sim::SimFileSystem* fs, SparkOptions options)
    : sim_(sim), cluster_(cluster), fs_(fs), options_(options) {
  MITOS_CHECK(sim && cluster && fs);
}

bool SparkDriver::IsLeaf(const Expr& expr) {
  return expr.kind == ExprKind::kBagLit ||
         expr.kind == ExprKind::kReadFile;
}

StatusOr<runtime::RunStats> SparkDriver::Run(const lang::Program& program) {
  double t0 = sim_->now();
  stats_ = runtime::RunStats{};
  stats_.jobs = 0;
  scalar_env_.clear();
  bag_env_.clear();
  cached_.clear();
  pending_cache_names_.clear();
  cache_key_keepalive_.clear();

  MITOS_RETURN_IF_ERROR(RunStmts(program.stmts));

  // Drop the RDD cache.
  for (const std::string& name : fs_->ListFiles()) {
    if (runtime::IsCacheFile(name)) fs_->Remove(name);
  }
  stats_.total_seconds = sim_->now() - t0;
  return stats_;
}

Status SparkDriver::RunStmts(const StmtList& stmts) {
  for (const StmtPtr& stmt : stmts) {
    MITOS_RETURN_IF_ERROR(RunStmt(*stmt));
  }
  return Status::Ok();
}

Status SparkDriver::RunStmt(const lang::Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kAssign: {
      const Expr& rhs = *stmt.expr;
      bool is_bag = lang::IsBagExprKind(rhs.kind) ||
                    (rhs.kind == ExprKind::kVarRef &&
                     bag_env_.count(rhs.var) > 0);
      if (is_bag) {
        StatusOr<Lineage> lineage = ResolveBag(rhs);
        if (!lineage.ok()) return lineage.status();
        bag_env_[stmt.var] = std::move(lineage).value();
      } else {
        StatusOr<Datum> value = EvalScalar(rhs);
        if (!value.ok()) return value.status();
        scalar_env_[stmt.var] = std::move(value).value();
      }
      return Status::Ok();
    }
    case StmtKind::kWhile: {
      while (true) {
        StatusOr<bool> cond = EvalCondition(*stmt.expr);
        if (!cond.ok()) return cond.status();
        if (!*cond) break;
        if (++driver_iterations_ > options_.max_driver_iterations) {
          return Status::FailedPrecondition("driver loop limit exceeded");
        }
        MITOS_RETURN_IF_ERROR(RunStmts(stmt.body));
      }
      return Status::Ok();
    }
    case StmtKind::kDoWhile: {
      while (true) {
        if (++driver_iterations_ > options_.max_driver_iterations) {
          return Status::FailedPrecondition("driver loop limit exceeded");
        }
        MITOS_RETURN_IF_ERROR(RunStmts(stmt.body));
        StatusOr<bool> cond = EvalCondition(*stmt.expr);
        if (!cond.ok()) return cond.status();
        if (!*cond) break;
      }
      return Status::Ok();
    }
    case StmtKind::kIf: {
      StatusOr<bool> cond = EvalCondition(*stmt.expr);
      if (!cond.ok()) return cond.status();
      return RunStmts(*cond ? stmt.body : stmt.else_body);
    }
    case StmtKind::kWriteFile: {
      StatusOr<std::string> filename = EvalFilename(*stmt.filename);
      if (!filename.ok()) return filename.status();
      StatusOr<Lineage> lineage = ResolveBag(*stmt.expr);
      if (!lineage.ok()) return lineage.status();
      // Overwrite semantics: the job's sink instances append.
      fs_->Remove(*filename);
      return RunJob(*lineage, *filename);
    }
  }
  return Status::Internal("unknown statement kind");
}

StatusOr<Datum> SparkDriver::EvalScalar(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLit:
      return expr.lit;
    case ExprKind::kVarRef: {
      auto it = scalar_env_.find(expr.var);
      if (it == scalar_env_.end()) {
        return Status::InvalidArgument("undefined driver scalar: " +
                                       expr.var);
      }
      return it->second;
    }
    case ExprKind::kBinOp: {
      StatusOr<Datum> a = EvalScalar(*expr.a);
      if (!a.ok()) return a.status();
      StatusOr<Datum> b = EvalScalar(*expr.b);
      if (!b.ok()) return b.status();
      return lang::ApplyBinOp(expr.binop, *a, *b);
    }
    case ExprKind::kNot: {
      StatusOr<Datum> a = EvalScalar(*expr.a);
      if (!a.ok()) return a.status();
      if (!a->is_bool()) return Status::InvalidArgument("'!' on non-bool");
      return Datum::Bool(!a->boolean());
    }
    case ExprKind::kScalarFromBag: {
      // Spark-style: collect() the bag into the driver (a real job).
      StatusOr<Lineage> lineage = ResolveBag(*expr.a);
      if (!lineage.ok()) return lineage.status();
      StatusOr<DatumVector> data = Collect(*lineage);
      if (!data.ok()) return data.status();
      if (data->size() != 1) {
        return Status::InvalidArgument(
            "collect for scalarOf expected exactly 1 element, got " +
            std::to_string(data->size()));
      }
      return (*data)[0];
    }
    default:
      return Status::InvalidArgument("expected a scalar expression: " +
                                     lang::ToString(expr));
  }
}

StatusOr<bool> SparkDriver::EvalCondition(const Expr& expr) {
  bool is_bag = lang::IsBagExprKind(expr.kind) ||
                (expr.kind == ExprKind::kVarRef &&
                 bag_env_.count(expr.var) > 0);
  Datum value;
  if (is_bag) {
    StatusOr<Lineage> lineage = ResolveBag(expr);
    if (!lineage.ok()) return lineage.status();
    StatusOr<DatumVector> data = Collect(*lineage);
    if (!data.ok()) return data.status();
    if (data->size() != 1) {
      return Status::InvalidArgument("bag condition must have 1 element");
    }
    value = (*data)[0];
  } else {
    StatusOr<Datum> scalar = EvalScalar(expr);
    if (!scalar.ok()) return scalar.status();
    value = *scalar;
  }
  if (!value.is_bool()) {
    return Status::InvalidArgument("condition is not boolean");
  }
  return value.boolean();
}

StatusOr<std::string> SparkDriver::EvalFilename(const Expr& expr) {
  bool is_bag = lang::IsBagExprKind(expr.kind) ||
                (expr.kind == ExprKind::kVarRef &&
                 bag_env_.count(expr.var) > 0);
  Datum value;
  if (is_bag) {
    StatusOr<Lineage> lineage = ResolveBag(expr);
    if (!lineage.ok()) return lineage.status();
    StatusOr<DatumVector> data = Collect(*lineage);
    if (!data.ok()) return data.status();
    if (data->size() != 1) {
      return Status::InvalidArgument("bag filename must have 1 element");
    }
    value = (*data)[0];
  } else {
    StatusOr<Datum> scalar = EvalScalar(expr);
    if (!scalar.ok()) return scalar.status();
    value = *scalar;
  }
  if (!value.is_string()) {
    return Status::InvalidArgument("filename is not a string");
  }
  return value.str();
}

StatusOr<SparkDriver::Lineage> SparkDriver::ResolveBag(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kVarRef: {
      auto it = bag_env_.find(expr.var);
      if (it == bag_env_.end()) {
        return Status::InvalidArgument("undefined RDD variable: " + expr.var);
      }
      // Named, non-trivial lineage gets a cache slot so the next job
      // referencing it re-reads instead of recomputing (RDD .cache()).
      const Expr* node = it->second.get();
      if (!IsLeaf(*node) && cached_.find(node) == cached_.end() &&
          pending_cache_names_.find(node) == pending_cache_names_.end()) {
        pending_cache_names_[node] = runtime::CacheFileName(
            "rdd" + std::to_string(next_cache_id_++) + "_" + expr.var);
        cache_key_keepalive_.push_back(it->second);
      }
      return it->second;
    }
    case ExprKind::kBagLit:
      return lang::BagLit(expr.bag_lit);
    case ExprKind::kFromScalar: {
      StatusOr<Datum> value = EvalScalar(*expr.a);
      if (!value.ok()) return value.status();
      return lang::BagLit({*value});
    }
    case ExprKind::kReadFile: {
      // File names evaluate eagerly in the driver (like sc.textFile).
      StatusOr<std::string> filename = EvalFilename(*expr.a);
      if (!filename.ok()) return filename.status();
      return lang::ReadFile(lang::LitString(*filename));
    }
    case ExprKind::kMap: {
      StatusOr<Lineage> in = ResolveBag(*expr.a);
      if (!in.ok()) return in.status();
      return lang::Map(std::move(in).value(), expr.unary);
    }
    case ExprKind::kFilter: {
      StatusOr<Lineage> in = ResolveBag(*expr.a);
      if (!in.ok()) return in.status();
      return lang::Filter(std::move(in).value(), expr.pred);
    }
    case ExprKind::kFlatMap: {
      StatusOr<Lineage> in = ResolveBag(*expr.a);
      if (!in.ok()) return in.status();
      return lang::FlatMap(std::move(in).value(), expr.flat);
    }
    case ExprKind::kReduceByKey: {
      StatusOr<Lineage> in = ResolveBag(*expr.a);
      if (!in.ok()) return in.status();
      return lang::ReduceByKey(std::move(in).value(), expr.binary);
    }
    case ExprKind::kReduce: {
      StatusOr<Lineage> in = ResolveBag(*expr.a);
      if (!in.ok()) return in.status();
      return lang::Reduce(std::move(in).value(), expr.binary);
    }
    case ExprKind::kDistinct: {
      StatusOr<Lineage> in = ResolveBag(*expr.a);
      if (!in.ok()) return in.status();
      return lang::Distinct(std::move(in).value());
    }
    case ExprKind::kCount: {
      StatusOr<Lineage> in = ResolveBag(*expr.a);
      if (!in.ok()) return in.status();
      return lang::Count(std::move(in).value());
    }
    case ExprKind::kJoin: {
      StatusOr<Lineage> a = ResolveBag(*expr.a);
      if (!a.ok()) return a.status();
      StatusOr<Lineage> b = ResolveBag(*expr.b);
      if (!b.ok()) return b.status();
      return lang::Join(std::move(a).value(), std::move(b).value());
    }
    case ExprKind::kUnion: {
      StatusOr<Lineage> a = ResolveBag(*expr.a);
      if (!a.ok()) return a.status();
      StatusOr<Lineage> b = ResolveBag(*expr.b);
      if (!b.ok()) return b.status();
      return lang::Union(std::move(a).value(), std::move(b).value());
    }
    case ExprKind::kCombine2: {
      StatusOr<Lineage> a = ResolveBag(*expr.a);
      if (!a.ok()) return a.status();
      StatusOr<Lineage> b = ResolveBag(*expr.b);
      if (!b.ok()) return b.status();
      return lang::Combine2(std::move(a).value(), std::move(b).value(),
                            expr.binary);
    }
    case ExprKind::kScalarFromBag:
      // As a bag operand this is just the one-element bag itself.
      return ResolveBag(*expr.a);
    default:
      return Status::InvalidArgument("expected a bag expression: " +
                                     lang::ToString(expr));
  }
}

Status SparkDriver::RunJob(const Lineage& action,
                           const std::string& sink_file) {
  // Emit the lineage DAG as a straight-line program; shared subtrees emit
  // once, cached nodes become cache reads.
  lang::Program job;
  std::map<const Expr*, std::string> names;
  int temp_counter = 0;
  std::vector<std::pair<const Expr*, std::string>> materialized;

  std::function<StatusOr<std::string>(const Lineage&)> emit =
      [&](const Lineage& node) -> StatusOr<std::string> {
    auto found = names.find(node.get());
    if (found != names.end()) return found->second;

    std::string name = "_rdd" + std::to_string(temp_counter++);
    auto cached = cached_.find(node.get());
    if (cached != cached_.end()) {
      job.stmts.push_back(
          lang::Assign(name, lang::ReadFile(lang::LitString(cached->second))));
      names[node.get()] = name;
      return name;
    }

    // Rebuild the node with children replaced by variable references.
    ExprPtr rebuilt;
    const Expr& e = *node;
    switch (e.kind) {
      case ExprKind::kBagLit:
        rebuilt = lang::BagLit(e.bag_lit);
        break;
      case ExprKind::kReadFile:
        rebuilt = lang::ReadFile(e.a);  // already a literal filename
        break;
      case ExprKind::kMap:
      case ExprKind::kFilter:
      case ExprKind::kFlatMap:
      case ExprKind::kReduceByKey:
      case ExprKind::kReduce:
      case ExprKind::kDistinct:
      case ExprKind::kCount: {
        StatusOr<std::string> in = emit(e.a);
        if (!in.ok()) return in.status();
        ExprPtr in_ref = lang::Var(*in);
        switch (e.kind) {
          case ExprKind::kMap:
            rebuilt = lang::Map(in_ref, e.unary);
            break;
          case ExprKind::kFilter:
            rebuilt = lang::Filter(in_ref, e.pred);
            break;
          case ExprKind::kFlatMap:
            rebuilt = lang::FlatMap(in_ref, e.flat);
            break;
          case ExprKind::kReduceByKey:
            rebuilt = lang::ReduceByKey(in_ref, e.binary);
            break;
          case ExprKind::kReduce:
            rebuilt = lang::Reduce(in_ref, e.binary);
            break;
          case ExprKind::kDistinct:
            rebuilt = lang::Distinct(in_ref);
            break;
          default:
            rebuilt = lang::Count(in_ref);
            break;
        }
        break;
      }
      case ExprKind::kJoin:
      case ExprKind::kUnion:
      case ExprKind::kCombine2: {
        StatusOr<std::string> a = emit(e.a);
        if (!a.ok()) return a.status();
        StatusOr<std::string> b = emit(e.b);
        if (!b.ok()) return b.status();
        if (e.kind == ExprKind::kJoin) {
          rebuilt = lang::Join(lang::Var(*a), lang::Var(*b));
        } else if (e.kind == ExprKind::kUnion) {
          rebuilt = lang::Union(lang::Var(*a), lang::Var(*b));
        } else {
          rebuilt = lang::Combine2(lang::Var(*a), lang::Var(*b), e.binary);
        }
        break;
      }
      default:
        return Status::Internal("unexpected lineage node: " +
                                lang::ToString(e));
    }
    job.stmts.push_back(lang::Assign(name, rebuilt));
    names[node.get()] = name;

    // Materialize named bags computed by this job into the RDD cache.
    auto pending = pending_cache_names_.find(node.get());
    if (pending != pending_cache_names_.end()) {
      job.stmts.push_back(lang::WriteFile(
          lang::Var(name), lang::LitString(pending->second)));
      materialized.emplace_back(node.get(), pending->second);
    }
    return name;
  };

  StatusOr<std::string> action_var = emit(action);
  if (!action_var.ok()) return action_var.status();
  job.stmts.push_back(
      lang::WriteFile(lang::Var(*action_var), lang::LitString(sink_file)));

  StatusOr<ir::Program> ir_program = ir::CompileToIr(job);
  if (!ir_program.ok()) return ir_program.status();
  MITOS_RETURN_IF_ERROR(ir::Verify(*ir_program));
  StatusOr<runtime::TranslateResult> translated =
      runtime::Translate(*ir_program, cluster_->num_machines());
  if (!translated.ok()) return translated.status();

  runtime::ExecutorOptions exec_options;
  exec_options.launch_base = options_.launch_base;
  exec_options.launch_per_machine = options_.launch_per_machine;
  exec_options.metrics = options_.metrics;
  // Spark executes jobs as stages: shuffle outputs materialize before the
  // next stage starts.
  exec_options.blocking_shuffles = true;
  StatusOr<runtime::RunStats> job_stats = runtime::ExecuteJob(
      sim_, cluster_, fs_, *ir_program, translated->graph, exec_options);
  if (!job_stats.ok()) return job_stats.status();

  stats_.jobs += 1;
  stats_.launch_seconds += job_stats->launch_seconds;
  stats_.bags += job_stats->bags;
  stats_.elements += job_stats->elements;
  stats_.hoisted_reuses += job_stats->hoisted_reuses;
  for (const auto& [name, cpu] : job_stats->operator_cpu) {
    stats_.operator_cpu[name] += cpu;
  }
  stats_.cluster.messages += job_stats->cluster.messages;
  stats_.cluster.network_bytes += job_stats->cluster.network_bytes;
  stats_.cluster.local_bytes += job_stats->cluster.local_bytes;
  stats_.cluster.disk_bytes += job_stats->cluster.disk_bytes;
  stats_.cluster.cpu_seconds += job_stats->cluster.cpu_seconds;

  for (const auto& [node, cache_file] : materialized) {
    cached_[node] = cache_file;
    pending_cache_names_.erase(node);
  }
  return Status::Ok();
}

StatusOr<DatumVector> SparkDriver::Collect(const Lineage& lineage) {
  std::string file = runtime::CacheFileName(
      "collect" + std::to_string(next_cache_id_++));
  MITOS_RETURN_IF_ERROR(RunJob(lineage, file));
  StatusOr<DatumVector> data = fs_->Read(file);
  fs_->Remove(file);
  return data;
}

}  // namespace mitos::baselines
