// Umbrella header: everything a downstream user of Mitos-C++ needs.
//
//   #include "mitos.h"
//
//   mitos::lang::ProgramBuilder pb;            // write the program
//   ...
//   mitos::sim::SimFileSystem fs;              // stage inputs
//   auto result = mitos::api::Run(             // run it
//       mitos::api::EngineKind::kMitos, pb.Build(), &fs, {.machines = 24});
//
// Individual headers remain includable for finer-grained dependencies; see
// README.md for the module map.
#ifndef MITOS_MITOS_H_
#define MITOS_MITOS_H_

#include "api/engine.h"
#include "common/datum.h"
#include "common/status.h"
#include "lang/ast.h"
#include "lang/builder.h"
#include "lang/functions.h"
#include "lang/interpreter.h"
#include "sim/filesystem.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

#endif  // MITOS_MITOS_H_
