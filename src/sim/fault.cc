#include "sim/fault.h"

#include <cstdio>
#include <cstdlib>

namespace mitos::sim {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseInt(const std::string& s, int* out) {
  double d;
  if (!ParseDouble(s, &d)) return false;
  *out = static_cast<int>(d);
  return static_cast<double>(*out) == d;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::string FaultPlan::ToString() const {
  std::string out;
  auto add = [&out](const std::string& piece) {
    if (!out.empty()) out += "; ";
    out += piece;
  };
  for (const Crash& c : crashes) {
    std::string piece = "crash=" + std::to_string(c.machine) + "@" +
                        FormatDouble(c.at);
    if (c.restart_after >= 0) piece += "+" + FormatDouble(c.restart_after);
    add(piece);
  }
  if (drop_probability > 0) {
    add("drop=" + FormatDouble(drop_probability) + "@" +
        std::to_string(drop_seed));
  }
  for (const Slowdown& s : slowdowns) {
    std::string piece = "slow=" + std::to_string(s.machine) + "x" +
                        FormatDouble(s.multiplier);
    if (s.from > 0 || s.until != kForever) {
      piece += "@" + FormatDouble(s.from);
      if (s.until != kForever) piece += ":" + FormatDouble(s.until);
    }
    add(piece);
  }
  if (checkpoint_every > 0) add("ckpt=" + std::to_string(checkpoint_every));
  return out;
}

StatusOr<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    std::string piece = Trim(spec.substr(begin, end - begin));
    begin = end + 1;
    if (piece.empty()) continue;
    size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec clause without '=': " +
                                     piece);
    }
    std::string key = Trim(piece.substr(0, eq));
    std::string value = Trim(piece.substr(eq + 1));
    if (key == "crash") {
      // M@T[+R]
      size_t at = value.find('@');
      if (at == std::string::npos) {
        return Status::InvalidArgument("crash expects M@T[+R]: " + value);
      }
      Crash crash;
      std::string times = value.substr(at + 1);
      size_t plus = times.find('+');
      std::string t_str =
          plus == std::string::npos ? times : times.substr(0, plus);
      if (!ParseInt(value.substr(0, at), &crash.machine) ||
          !ParseDouble(t_str, &crash.at) || crash.machine < 0 ||
          crash.at < 0) {
        return Status::InvalidArgument("crash expects M@T[+R]: " + value);
      }
      if (plus != std::string::npos &&
          (!ParseDouble(times.substr(plus + 1), &crash.restart_after) ||
           crash.restart_after < 0)) {
        return Status::InvalidArgument("crash expects M@T[+R]: " + value);
      }
      plan.crashes.push_back(crash);
    } else if (key == "drop") {
      // P[@SEED]
      size_t at = value.find('@');
      std::string p_str =
          at == std::string::npos ? value : value.substr(0, at);
      if (!ParseDouble(p_str, &plan.drop_probability) ||
          plan.drop_probability < 0 || plan.drop_probability > 1) {
        return Status::InvalidArgument("drop expects P[@SEED] with P in "
                                       "[0,1]: " + value);
      }
      if (at != std::string::npos) {
        int seed;
        if (!ParseInt(value.substr(at + 1), &seed) || seed < 0) {
          return Status::InvalidArgument("drop expects P[@SEED]: " + value);
        }
        plan.drop_seed = static_cast<uint64_t>(seed);
      }
    } else if (key == "slow") {
      // MxF[@FROM[:UNTIL]]
      size_t x = value.find('x');
      size_t at = value.find('@');
      std::string f_str = at == std::string::npos
                              ? value.substr(x == std::string::npos
                                                 ? value.size()
                                                 : x + 1)
                              : value.substr(x + 1, at - x - 1);
      Slowdown slow;
      if (x == std::string::npos || (at != std::string::npos && at < x) ||
          !ParseInt(value.substr(0, x), &slow.machine) ||
          !ParseDouble(f_str, &slow.multiplier) || slow.machine < 0 ||
          slow.multiplier < 1.0) {
        return Status::InvalidArgument(
            "slow expects MxF[@FROM[:UNTIL]] with F >= 1: " + value);
      }
      if (at != std::string::npos) {
        std::string window = value.substr(at + 1);
        size_t colon = window.find(':');
        std::string from_str = colon == std::string::npos
                                   ? window
                                   : window.substr(0, colon);
        if (!ParseDouble(from_str, &slow.from) || slow.from < 0) {
          return Status::InvalidArgument(
              "slow expects MxF[@FROM[:UNTIL]]: " + value);
        }
        if (colon != std::string::npos &&
            (!ParseDouble(window.substr(colon + 1), &slow.until) ||
             slow.until <= slow.from)) {
          return Status::InvalidArgument(
              "slow expects MxF[@FROM[:UNTIL]] with UNTIL > FROM: " +
              value);
        }
      }
      plan.slowdowns.push_back(slow);
    } else if (key == "hb") {
      // I/T
      size_t slash = value.find('/');
      if (slash == std::string::npos ||
          !ParseDouble(value.substr(0, slash), &plan.heartbeat_interval) ||
          !ParseDouble(value.substr(slash + 1), &plan.heartbeat_timeout) ||
          plan.heartbeat_interval <= 0 || plan.heartbeat_timeout <= 0) {
        return Status::InvalidArgument("hb expects I/T: " + value);
      }
    } else if (key == "stall") {
      if (!ParseDouble(value, &plan.stall_timeout) ||
          plan.stall_timeout <= 0) {
        return Status::InvalidArgument("stall expects a positive duration: " +
                                       value);
      }
    } else if (key == "retry") {
      // B/N
      size_t slash = value.find('/');
      if (slash == std::string::npos ||
          !ParseDouble(value.substr(0, slash), &plan.retry_backoff) ||
          !ParseInt(value.substr(slash + 1), &plan.max_broadcast_retries) ||
          plan.retry_backoff <= 0 || plan.max_broadcast_retries < 0) {
        return Status::InvalidArgument("retry expects B/N: " + value);
      }
    } else if (key == "rto") {
      if (!ParseDouble(value, &plan.retransmit_delay) ||
          plan.retransmit_delay <= 0) {
        return Status::InvalidArgument("rto expects a positive duration: " +
                                       value);
      }
    } else if (key == "ckpt") {
      if (!ParseInt(value, &plan.checkpoint_every) ||
          plan.checkpoint_every < 0) {
        return Status::InvalidArgument("ckpt expects a non-negative step "
                                       "count: " + value);
      }
    } else if (key == "attempts") {
      if (!ParseInt(value, &plan.max_attempts) || plan.max_attempts < 1) {
        return Status::InvalidArgument("attempts expects a positive count: " +
                                       value);
      }
    } else {
      return Status::InvalidArgument("unknown fault spec key: " + key);
    }
  }
  return plan;
}

}  // namespace mitos::sim
