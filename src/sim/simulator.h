// Deterministic discrete-event simulator: the substrate replacing the
// paper's physical 26-machine cluster.
//
// All engines (Mitos, the Spark/Flink/Naiad/TensorFlow baselines) execute
// real operator code over real data, but *when* things happen is virtual
// time, advanced by this event queue. Determinism: ties in time are broken
// by insertion sequence number, so a given program + configuration always
// produces the same schedule, byte counts, and results.
#ifndef MITOS_SIM_SIMULATOR_H_
#define MITOS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace mitos::sim {

// Virtual time in seconds.
using SimTime = double;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute virtual time `time` (>= now).
  void Schedule(SimTime time, std::function<void()> fn) {
    MITOS_CHECK_GE(time, now_);
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }

  // Schedules `fn` after a relative delay.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    Schedule(now_ + delay, std::move(fn));
  }

  // Runs `fn` the next time the event queue drains completely. This is the
  // simulator-level barrier primitive: superstep engines (Flink-sim,
  // Mitos-without-pipelining) defer control-flow decisions until global
  // quiescence with it. Callbacks fire one at a time: each runs only when
  // everything it (transitively) scheduled has drained again.
  void ScheduleWhenIdle(std::function<void()> fn) {
    idle_callbacks_.push_back(std::move(fn));
  }

  // Processes events until both the queue and the idle-callback list are
  // exhausted. Returns the final virtual time.
  SimTime Run() {
    while (true) {
      if (!queue_.empty()) {
        // const_cast: std::priority_queue exposes only const top(); moving
        // the callback out before pop avoids a copy and is safe because the
        // element is popped immediately.
        Event& top = const_cast<Event&>(queue_.top());
        MITOS_CHECK_GE(top.time, now_);
        now_ = top.time;
        std::function<void()> fn = std::move(top.fn);
        queue_.pop();
        ++events_processed_;
        fn();
      } else if (!idle_callbacks_.empty()) {
        std::function<void()> fn = std::move(idle_callbacks_.front());
        idle_callbacks_.erase(idle_callbacks_.begin());
        ++barriers_fired_;
        fn();
      } else {
        break;
      }
    }
    return now_;
  }

  int64_t events_processed() const { return events_processed_; }
  int64_t barriers_fired() const { return barriers_fired_; }
  bool idle() const { return queue_.empty() && idle_callbacks_.empty(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::function<void()>> idle_callbacks_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
  int64_t barriers_fired_ = 0;
};

}  // namespace mitos::sim

#endif  // MITOS_SIM_SIMULATOR_H_
