// Deterministic discrete-event simulator: the substrate replacing the
// paper's physical 26-machine cluster.
//
// All engines (Mitos, the Spark/Flink/Naiad/TensorFlow baselines) execute
// real operator code over real data, but *when* things happen is virtual
// time, advanced by this event queue. Determinism: ties in time are broken
// by insertion sequence number, so a given program + configuration always
// produces the same schedule, byte counts, and results.
#ifndef MITOS_SIM_SIMULATOR_H_
#define MITOS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace mitos::sim {

// Virtual time in seconds.
using SimTime = double;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute virtual time `time` (>= now).
  void Schedule(SimTime time, std::function<void()> fn) {
    MITOS_CHECK_GE(time, now_);
    queue_.push(Event{time, next_seq_++, std::move(fn), false});
    ++foreground_pending_;
  }

  // Schedules `fn` after a relative delay.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    Schedule(now_ + delay, std::move(fn));
  }

  // Background events: timers (heartbeats, retransmission timeouts) that
  // observe the run without being part of its work. They interleave with
  // foreground events in time order, but do NOT hold back the idle barrier
  // (ScheduleWhenIdle) and do NOT advance busy_until(). A run with zero
  // background events behaves exactly as before they existed.
  void ScheduleBackground(SimTime time, std::function<void()> fn) {
    MITOS_CHECK_GE(time, now_);
    queue_.push(Event{time, next_seq_++, std::move(fn), true});
  }

  void ScheduleBackgroundAfter(SimTime delay, std::function<void()> fn) {
    ScheduleBackground(now_ + delay, std::move(fn));
  }

  // Runs `fn` the next time the event queue drains completely. This is the
  // simulator-level barrier primitive: superstep engines (Flink-sim,
  // Mitos-without-pipelining) defer control-flow decisions until global
  // quiescence with it. Callbacks fire one at a time: each runs only when
  // everything it (transitively) scheduled has drained again.
  void ScheduleWhenIdle(std::function<void()> fn) {
    idle_callbacks_.push_back(std::move(fn));
  }

  // Processes events until the queue (foreground AND background) and the
  // idle-callback list are all exhausted. Returns the final virtual time.
  //
  // Ordering: while foreground work is pending, the earliest event runs
  // (background timers interleave in time order). At foreground quiescence
  // the idle barrier fires — even if background timers are still queued —
  // and only a fully background queue drains last. With no background
  // events this is exactly the original drain loop.
  SimTime Run() {
    while (true) {
      if (foreground_pending_ > 0) {
        RunTop();
      } else if (!idle_callbacks_.empty()) {
        std::function<void()> fn = std::move(idle_callbacks_.front());
        idle_callbacks_.erase(idle_callbacks_.begin());
        ++barriers_fired_;
        busy_until_ = now_;
        fn();
      } else if (!queue_.empty()) {
        RunTop();
      } else {
        break;
      }
    }
    return now_;
  }

  int64_t events_processed() const { return events_processed_; }
  int64_t barriers_fired() const { return barriers_fired_; }
  bool idle() const { return queue_.empty() && idle_callbacks_.empty(); }

  // Virtual time of the last foreground event or idle callback: the time
  // real work finished, excluding trailing background timers. Equals now()
  // when no background events exist.
  SimTime busy_until() const { return busy_until_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool background;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void RunTop() {
    // const_cast: std::priority_queue exposes only const top(); moving
    // the callback out before pop avoids a copy and is safe because the
    // element is popped immediately.
    Event& top = const_cast<Event&>(queue_.top());
    MITOS_CHECK_GE(top.time, now_);
    now_ = top.time;
    std::function<void()> fn = std::move(top.fn);
    bool background = top.background;
    queue_.pop();
    if (!background) {
      --foreground_pending_;
      busy_until_ = now_;
    }
    ++events_processed_;
    fn();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::function<void()>> idle_callbacks_;
  SimTime now_ = 0;
  SimTime busy_until_ = 0;
  uint64_t next_seq_ = 0;
  int64_t foreground_pending_ = 0;
  int64_t events_processed_ = 0;
  int64_t barriers_fired_ = 0;
};

}  // namespace mitos::sim

#endif  // MITOS_SIM_SIMULATOR_H_
