#include "sim/cluster.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace mitos::sim {

Cluster::Cluster(Simulator* sim, const ClusterConfig& config)
    : sim_(sim), config_(config) {
  MITOS_CHECK(sim != nullptr);
  MITOS_CHECK_GT(config.num_machines, 0);
  MITOS_CHECK_GT(config.cores_per_machine, 0);
  size_t n = static_cast<size_t>(config.num_machines);
  core_free_.assign(
      n, std::vector<SimTime>(static_cast<size_t>(config.cores_per_machine),
                              0.0));
  nic_out_free_.assign(n, 0.0);
  nic_in_free_.assign(n, 0.0);
  disk_free_.assign(n, 0.0);
  local_last_arrival_.assign(n, 0.0);
}

Cluster::CoreSlot Cluster::AcquireCore(int machine, double duration) {
  std::vector<SimTime>& cores = core_free_[static_cast<size_t>(machine)];
  auto it = std::min_element(cores.begin(), cores.end());
  SimTime start = std::max(sim_->now(), *it);
  *it = start + duration;
  return CoreSlot{static_cast<int>(it - cores.begin()), start, *it};
}

void Cluster::ExecCpu(int machine, double cpu_seconds,
                      std::function<void()> done, std::string trace_label) {
  MITOS_CHECK_GE(machine, 0);
  MITOS_CHECK_LT(machine, num_machines());
  MITOS_CHECK_GE(cpu_seconds, 0.0);
  metrics_.cpu_seconds += cpu_seconds;
  CoreSlot slot = AcquireCore(machine, cpu_seconds);
  if (trace_ != nullptr && cpu_seconds > 0) {
    int pid = obs::MachinePid(machine);
    int tid = trace_->Lane(pid, "cpu" + std::to_string(slot.core));
    trace_->Span(pid, tid,
                 trace_label.empty() ? "cpu" : std::move(trace_label), "sim",
                 slot.start, slot.finish);
  }
  sim_->Schedule(slot.finish, std::move(done));
}

void Cluster::Send(int src, int dst, size_t bytes,
                   std::function<void()> done) {
  MITOS_CHECK_GE(src, 0);
  MITOS_CHECK_LT(src, num_machines());
  MITOS_CHECK_GE(dst, 0);
  MITOS_CHECK_LT(dst, num_machines());
  if (src == dst) {
    metrics_.local_bytes += static_cast<int64_t>(bytes);
    SimTime arrive = sim_->now() + config_.local_latency +
                     static_cast<double>(bytes) / config_.local_bandwidth;
    // Deliveries must be FIFO per channel (a small end-of-bag marker must
    // not overtake the data chunk sent before it).
    SimTime& last = local_last_arrival_[static_cast<size_t>(src)];
    arrive = std::max(arrive, last);
    last = arrive;
    sim_->Schedule(arrive, std::move(done));
    return;
  }
  metrics_.messages += 1;
  metrics_.network_bytes += static_cast<int64_t>(bytes);
  double wire_time = static_cast<double>(bytes) / config_.net_bandwidth;
  // Sender NIC occupancy, then latency, then receiver NIC occupancy.
  SimTime& out_free = nic_out_free_[static_cast<size_t>(src)];
  SimTime tx_start = std::max(sim_->now(), out_free);
  SimTime sent = tx_start + wire_time;
  out_free = sent;
  SimTime& in_free = nic_in_free_[static_cast<size_t>(dst)];
  SimTime arrive = std::max(sent + config_.net_latency, in_free);
  in_free = arrive;
  if (trace_ != nullptr) {
    int pid = obs::MachinePid(src);
    trace_->Span(pid, trace_->Lane(pid, "nic-out"),
                 "send→m" + std::to_string(dst), "net", tx_start, sent,
                 {{"bytes", bytes}, {"dst", dst}});
  }
  sim_->Schedule(arrive, std::move(done));
}

void Cluster::DiskIo(int machine, size_t bytes, std::function<void()> done,
                     bool memory) {
  MITOS_CHECK_GE(machine, 0);
  MITOS_CHECK_LT(machine, num_machines());
  if (memory) {
    SimTime finish = sim_->now() +
                     static_cast<double>(bytes) / config_.memory_bandwidth;
    if (trace_ != nullptr) {
      int pid = obs::MachinePid(machine);
      trace_->Span(pid, trace_->Lane(pid, "mem"), "mem write", "disk",
                   sim_->now(), finish, {{"bytes", bytes}});
    }
    sim_->Schedule(finish, std::move(done));
    return;
  }
  metrics_.disk_bytes += static_cast<int64_t>(bytes);
  SimTime& free = disk_free_[static_cast<size_t>(machine)];
  SimTime start = std::max(sim_->now(), free);
  SimTime finish = start + static_cast<double>(bytes) / config_.disk_bandwidth;
  free = finish;
  if (trace_ != nullptr) {
    int pid = obs::MachinePid(machine);
    trace_->Span(pid, trace_->Lane(pid, "disk"), "disk write", "disk",
                 start, finish, {{"bytes", bytes}});
  }
  sim_->Schedule(finish, std::move(done));
}

void Cluster::DiskRead(int machine, size_t bytes, int pieces,
                       std::function<void(int)> on_progress, bool memory) {
  MITOS_CHECK_GT(pieces, 0);
  double bandwidth = config_.disk_bandwidth;
  SimTime start = sim_->now();
  if (memory) {
    bandwidth = config_.memory_bandwidth;
  } else {
    metrics_.disk_bytes += static_cast<int64_t>(bytes);
    SimTime& free = disk_free_[static_cast<size_t>(machine)];
    start = std::max(sim_->now(), free);
  }
  double per_piece = static_cast<double>(bytes) / bandwidth / pieces;
  if (trace_ != nullptr) {
    int pid = obs::MachinePid(machine);
    trace_->Span(pid, trace_->Lane(pid, memory ? "mem" : "disk"),
                 memory ? "mem read" : "disk read", "disk", start,
                 start + per_piece * pieces,
                 {{"bytes", bytes}, {"pieces", pieces}});
  }
  // Capture on_progress by shared copy; schedule one event per piece at
  // read pace so consumers overlap with the read.
  auto progress =
      std::make_shared<std::function<void(int)>>(std::move(on_progress));
  for (int i = 0; i < pieces; ++i) {
    SimTime t = start + per_piece * (i + 1);
    sim_->Schedule(t, [progress, i] { (*progress)(i); });
  }
  if (!memory) {
    disk_free_[static_cast<size_t>(machine)] = start + per_piece * pieces;
  }
}

}  // namespace mitos::sim
