#include "sim/cluster.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace mitos::sim {

namespace {
constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();
}  // namespace

Cluster::Cluster(Simulator* sim, const ClusterConfig& config)
    : sim_(sim), config_(config) {
  MITOS_CHECK(sim != nullptr);
  MITOS_CHECK_GT(config.num_machines, 0);
  MITOS_CHECK_GT(config.cores_per_machine, 0);
  size_t n = static_cast<size_t>(config.num_machines);
  core_free_.assign(
      n, std::vector<SimTime>(static_cast<size_t>(config.cores_per_machine),
                              0.0));
  nic_out_free_.assign(n, 0.0);
  nic_in_free_.assign(n, 0.0);
  disk_free_.assign(n, 0.0);
  local_last_arrival_.assign(n, 0.0);
}

// ----- fault state -----

void Cluster::InstallFaultPlan(const FaultPlan* plan) {
  if (plan == nullptr || plan->empty()) {
    faults_ = nullptr;
    return;
  }
  faults_ = plan;
  size_t n = static_cast<size_t>(config_.num_machines);
  transitions_.assign(n, {});
  clock_epoch_.assign(n, 0);
  for (const FaultPlan::Crash& crash : plan->crashes) {
    MITOS_CHECK_GE(crash.machine, 0);
    MITOS_CHECK_LT(crash.machine, config_.num_machines);
    auto& t = transitions_[static_cast<size_t>(crash.machine)];
    t.push_back(crash.at);
    if (crash.restart_after >= 0) t.push_back(crash.at + crash.restart_after);
  }
  for (auto& t : transitions_) std::sort(t.begin(), t.end());
  for (const FaultPlan::Slowdown& slow : plan->slowdowns) {
    MITOS_CHECK_GE(slow.machine, 0);
    MITOS_CHECK_LT(slow.machine, config_.num_machines);
  }
  drop_rng_ = Rng(plan->drop_seed);
  if (trace_ != nullptr) {
    // The failure timeline is known up front; record it so traces show the
    // crash/restart instants alongside the work they disrupt.
    for (const FaultPlan::Crash& crash : plan->crashes) {
      int pid = obs::MachinePid(crash.machine);
      int tid = trace_->Lane(pid, "fault");
      trace_->Instant(pid, tid, "crash", "fault", crash.at,
                      {{"machine", crash.machine}});
      if (crash.restart_after >= 0) {
        trace_->Instant(pid, tid, "restart", "fault",
                        crash.at + crash.restart_after,
                        {{"machine", crash.machine}});
      }
    }
  }
  if (event_log_ != nullptr) {
    // Same timeline for live consumers. The records carry the *scheduled*
    // virtual times (possibly in the future of the append), which lets a
    // tail show upcoming injected failures; consumers sort by "vt".
    for (const FaultPlan::Crash& crash : plan->crashes) {
      event_log_->Append(crash.at, "fault",
                         {{"what", "crash"}, {"machine", crash.machine}});
      if (crash.restart_after >= 0) {
        event_log_->Append(crash.at + crash.restart_after, "fault",
                           {{"what", "restart"},
                            {"machine", crash.machine}});
      }
    }
    for (const FaultPlan::Slowdown& slow : plan->slowdowns) {
      obs::TraceArgs args = {{"what", "slowdown"},
                             {"machine", slow.machine},
                             {"multiplier", slow.multiplier},
                             {"from", slow.from}};
      if (slow.until != FaultPlan::kForever) {
        args.emplace_back("until", slow.until);
      }
      event_log_->Append(slow.from, "fault", args);
    }
  }
}

int Cluster::EpochAt(int machine, SimTime t) const {
  const auto& trans = transitions_[static_cast<size_t>(machine)];
  return static_cast<int>(
      std::upper_bound(trans.begin(), trans.end(), t) - trans.begin());
}

bool Cluster::machine_up(int machine) const {
  if (faults_ == nullptr) return true;
  return machine_epoch(machine) % 2 == 0;
}

int Cluster::machine_epoch(int machine) const {
  if (faults_ == nullptr) return 0;
  return EpochAt(machine, sim_->now());
}

SimTime Cluster::machine_up_time(int machine) const {
  if (machine_up(machine)) return sim_->now();
  const auto& trans = transitions_[static_cast<size_t>(machine)];
  int epoch = machine_epoch(machine);
  // Down: the next transition (if any) is the restart.
  if (static_cast<size_t>(epoch) < trans.size()) {
    return trans[static_cast<size_t>(epoch)];
  }
  return kNever;
}

SimTime Cluster::machine_down_since(int machine) const {
  if (machine_up(machine)) return -1;
  const auto& trans = transitions_[static_cast<size_t>(machine)];
  int epoch = machine_epoch(machine);
  return trans[static_cast<size_t>(epoch - 1)];
}

void Cluster::RefreshFaultView(int machine) {
  if (faults_ == nullptr) return;
  int epoch = machine_epoch(machine);
  size_t m = static_cast<size_t>(machine);
  if (clock_epoch_[m] == epoch) return;
  // The machine restarted since the clocks were last touched: it comes
  // back with idle cores, NIC, and disk.
  clock_epoch_[m] = epoch;
  std::fill(core_free_[m].begin(), core_free_[m].end(), 0.0);
  nic_out_free_[m] = 0.0;
  nic_in_free_[m] = 0.0;
  disk_free_[m] = 0.0;
  local_last_arrival_[m] = 0.0;
}

// ----- resources -----

Cluster::CoreSlot Cluster::AcquireCore(int machine, double duration) {
  std::vector<SimTime>& cores = core_free_[static_cast<size_t>(machine)];
  auto it = std::min_element(cores.begin(), cores.end());
  SimTime start = std::max(sim_->now(), *it);
  *it = start + duration;
  return CoreSlot{static_cast<int>(it - cores.begin()), start, *it};
}

void Cluster::ExecCpu(int machine, double cpu_seconds,
                      std::function<void()> done, std::string trace_label) {
  MITOS_CHECK_GE(machine, 0);
  MITOS_CHECK_LT(machine, num_machines());
  MITOS_CHECK_GE(cpu_seconds, 0.0);
  if (faults_ != nullptr) {
    RefreshFaultView(machine);
    if (!machine_up(machine)) return;  // work issued on a dead machine
    cpu_seconds *= faults_->SlowdownFor(machine, sim_->now());
  }
  metrics_.cpu_seconds += cpu_seconds;
  CoreSlot slot = AcquireCore(machine, cpu_seconds);
  if (trace_ != nullptr && cpu_seconds > 0) {
    int pid = obs::MachinePid(machine);
    int tid = trace_->Lane(pid, "cpu" + std::to_string(slot.core));
    trace_->Span(pid, tid,
                 trace_label.empty() ? "cpu" : std::move(trace_label), "sim",
                 slot.start, slot.finish);
  }
  if (faults_ != nullptr) {
    // The completion is dropped if the machine crashed mid-execution.
    int epoch = machine_epoch(machine);
    auto fn = std::make_shared<std::function<void()>>(std::move(done));
    sim_->Schedule(slot.finish, [this, machine, epoch, fn] {
      if (machine_epoch(machine) == epoch) (*fn)();
    });
    return;
  }
  sim_->Schedule(slot.finish, std::move(done));
}

void Cluster::Send(int src, int dst, size_t bytes,
                   std::function<void()> done) {
  MITOS_CHECK_GE(src, 0);
  MITOS_CHECK_LT(src, num_machines());
  MITOS_CHECK_GE(dst, 0);
  MITOS_CHECK_LT(dst, num_machines());
  if (src == dst) {
    if (faults_ != nullptr) {
      RefreshFaultView(src);
      if (!machine_up(src)) return;
    }
    metrics_.local_bytes += static_cast<int64_t>(bytes);
    SimTime arrive = sim_->now() + config_.local_latency +
                     static_cast<double>(bytes) / config_.local_bandwidth;
    // Deliveries must be FIFO per channel (a small end-of-bag marker must
    // not overtake the data chunk sent before it).
    SimTime& last = local_last_arrival_[static_cast<size_t>(src)];
    arrive = std::max(arrive, last);
    last = arrive;
    if (faults_ != nullptr) {
      int epoch = machine_epoch(src);
      auto fn = std::make_shared<std::function<void()>>(std::move(done));
      sim_->Schedule(arrive, [this, src, epoch, fn] {
        if (machine_epoch(src) == epoch) (*fn)();
      });
      return;
    }
    sim_->Schedule(arrive, std::move(done));
    return;
  }
  if (faults_ != nullptr) {
    RefreshFaultView(src);
    RefreshFaultView(dst);
    if (!machine_up(src)) return;  // sender is dead; nothing leaves
  }
  SendRemote(src, dst, bytes, std::move(done));
}

void Cluster::SendRemote(int src, int dst, size_t bytes,
                         std::function<void()> done) {
  metrics_.messages += 1;
  metrics_.network_bytes += static_cast<int64_t>(bytes);
  double wire_time = static_cast<double>(bytes) / config_.net_bandwidth;
  // Sender NIC occupancy, then latency, then receiver NIC occupancy.
  SimTime& out_free = nic_out_free_[static_cast<size_t>(src)];
  SimTime tx_start = std::max(sim_->now(), out_free);
  SimTime sent = tx_start + wire_time;
  if (faults_ != nullptr && faults_->drop_probability > 0) {
    // Transmissions can be lost on the wire: the sender's NIC time is
    // spent, nothing reaches the receiver. Model TCP: retransmit after a
    // timeout, give up (losing the message) only after max_retransmits
    // attempts. The whole chain is resolved here, synchronously — the drop
    // decisions come from a seeded RNG, so nothing depends on future
    // events — which keeps delivery FIFO per receiver: the receiver-NIC
    // slot below is claimed in original send order, so a retransmitted
    // chunk can never be overtaken by a message sent after it (e.g. its
    // own end-of-bag marker).
    int tries = 0;
    while (drop_rng_.NextDouble() < faults_->drop_probability) {
      metrics_.dropped_messages += 1;
      if (trace_ != nullptr) {
        int pid = obs::MachinePid(src);
        trace_->Instant(pid, trace_->Lane(pid, "nic-out"), "drop", "fault",
                        sent, {{"dst", dst}, {"try", tries}});
      }
      if (event_log_ != nullptr) {
        event_log_->Append(sent, "fault",
                           {{"what", "drop"},
                            {"src", src},
                            {"dst", dst},
                            {"try", tries}});
      }
      if (tries >= faults_->max_retransmits) {  // message lost for good
        out_free = sent;
        return;
      }
      ++tries;
      // Timeout detection, then the retransmission occupies the NIC again.
      tx_start = sent + config_.net_latency + faults_->retransmit_delay;
      sent = tx_start + wire_time;
      metrics_.messages += 1;
      metrics_.network_bytes += static_cast<int64_t>(bytes);
    }
    if (EpochAt(src, sent) != machine_epoch(src)) {
      // The sender dies before the (re)transmission completes.
      out_free = sent;
      return;
    }
  }
  out_free = sent;
  SimTime& in_free = nic_in_free_[static_cast<size_t>(dst)];
  SimTime arrive = std::max(sent + config_.net_latency, in_free);
  in_free = arrive;
  if (trace_ != nullptr) {
    int pid = obs::MachinePid(src);
    trace_->Span(pid, trace_->Lane(pid, "nic-out"),
                 "send→m" + std::to_string(dst), "net", tx_start, sent,
                 {{"bytes", bytes}, {"dst", dst}});
  }
  if (faults_ != nullptr) {
    // In-flight deliveries die with the receiver: drop if it crashed (or
    // crashed and restarted) between transmission and arrival — and a
    // receiver that is down for the whole flight (same odd epoch at both
    // ends) never gets the message either.
    int epoch = machine_epoch(dst);
    auto fn = std::make_shared<std::function<void()>>(std::move(done));
    sim_->Schedule(arrive, [this, dst, epoch, fn] {
      if (machine_epoch(dst) == epoch && machine_up(dst)) (*fn)();
    });
    return;
  }
  sim_->Schedule(arrive, std::move(done));
}

void Cluster::DiskIo(int machine, size_t bytes, std::function<void()> done,
                     bool memory) {
  MITOS_CHECK_GE(machine, 0);
  MITOS_CHECK_LT(machine, num_machines());
  int epoch = 0;
  if (faults_ != nullptr) {
    RefreshFaultView(machine);
    if (!machine_up(machine)) return;
    epoch = machine_epoch(machine);
  }
  SimTime finish;
  if (memory) {
    finish = sim_->now() +
             static_cast<double>(bytes) / config_.memory_bandwidth;
    if (trace_ != nullptr) {
      int pid = obs::MachinePid(machine);
      trace_->Span(pid, trace_->Lane(pid, "mem"), "mem write", "disk",
                   sim_->now(), finish, {{"bytes", bytes}});
    }
  } else {
    metrics_.disk_bytes += static_cast<int64_t>(bytes);
    SimTime& free = disk_free_[static_cast<size_t>(machine)];
    SimTime start = std::max(sim_->now(), free);
    finish = start + static_cast<double>(bytes) / config_.disk_bandwidth;
    free = finish;
    if (trace_ != nullptr) {
      int pid = obs::MachinePid(machine);
      trace_->Span(pid, trace_->Lane(pid, "disk"), "disk write", "disk",
                   start, finish, {{"bytes", bytes}});
    }
  }
  if (faults_ != nullptr) {
    auto fn = std::make_shared<std::function<void()>>(std::move(done));
    sim_->Schedule(finish, [this, machine, epoch, fn] {
      if (machine_epoch(machine) == epoch) (*fn)();
    });
    return;
  }
  sim_->Schedule(finish, std::move(done));
}

void Cluster::DiskRead(int machine, size_t bytes, int pieces,
                       std::function<void(int)> on_progress, bool memory) {
  MITOS_CHECK_GT(pieces, 0);
  int epoch = 0;
  if (faults_ != nullptr) {
    RefreshFaultView(machine);
    if (!machine_up(machine)) return;
    epoch = machine_epoch(machine);
  }
  double bandwidth = config_.disk_bandwidth;
  SimTime start = sim_->now();
  if (memory) {
    bandwidth = config_.memory_bandwidth;
  } else {
    metrics_.disk_bytes += static_cast<int64_t>(bytes);
    SimTime& free = disk_free_[static_cast<size_t>(machine)];
    start = std::max(sim_->now(), free);
  }
  double per_piece = static_cast<double>(bytes) / bandwidth / pieces;
  if (trace_ != nullptr) {
    int pid = obs::MachinePid(machine);
    trace_->Span(pid, trace_->Lane(pid, memory ? "mem" : "disk"),
                 memory ? "mem read" : "disk read", "disk", start,
                 start + per_piece * pieces,
                 {{"bytes", bytes}, {"pieces", pieces}});
  }
  // Capture on_progress by shared copy; schedule one event per piece at
  // read pace so consumers overlap with the read.
  auto progress =
      std::make_shared<std::function<void(int)>>(std::move(on_progress));
  const bool guarded = faults_ != nullptr;
  for (int i = 0; i < pieces; ++i) {
    SimTime t = start + per_piece * (i + 1);
    if (guarded) {
      sim_->Schedule(t, [this, machine, epoch, progress, i] {
        if (machine_epoch(machine) == epoch) (*progress)(i);
      });
    } else {
      sim_->Schedule(t, [progress, i] { (*progress)(i); });
    }
  }
  if (!memory) {
    disk_free_[static_cast<size_t>(machine)] = start + per_piece * pieces;
  }
}

}  // namespace mitos::sim
