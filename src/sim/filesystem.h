// SimFileSystem: the reproduction's stand-in for HDFS.
//
// A named file is an ordered vector of Datums. Files are shared by every
// simulated machine (like a distributed file system); the *time* cost of
// reading/writing is charged by the cluster model (sim/cluster.h), not here.
// Sources read contiguous partitions so that P reader instances split a file
// exactly the way parallel input splits do.
#ifndef MITOS_SIM_FILESYSTEM_H_
#define MITOS_SIM_FILESYSTEM_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/datum.h"
#include "common/status.h"

namespace mitos::sim {

// Half-open element range [begin, end) of partition `part` out of `parts`
// for a file of `n` elements. Ranges are contiguous and cover [0, n).
std::pair<size_t, size_t> PartitionRange(size_t n, size_t parts, size_t part);

class SimFileSystem {
 public:
  SimFileSystem() = default;

  // Creates or overwrites `name`.
  void Write(const std::string& name, DatumVector data);

  // Appends to `name`, creating it if absent. Used by distributed sinks
  // whose instances each contribute a partition.
  void Append(const std::string& name, const DatumVector& data);

  bool Exists(const std::string& name) const;

  // Full contents; NotFound if absent.
  StatusOr<DatumVector> Read(const std::string& name) const;

  // Contents of one partition; NotFound if absent.
  StatusOr<DatumVector> ReadPartition(const std::string& name, size_t parts,
                                      size_t part) const;

  // Modelled size in bytes (for the disk/network cost model); 0 if absent.
  size_t FileBytes(const std::string& name) const;

  // Number of elements; 0 if absent.
  size_t FileElements(const std::string& name) const;

  std::vector<std::string> ListFiles() const;

  void Remove(const std::string& name) { files_.erase(name); }
  void Clear() { files_.clear(); }

 private:
  struct File {
    DatumVector data;
    size_t bytes = 0;
  };

  std::map<std::string, File> files_;
};

}  // namespace mitos::sim

#endif  // MITOS_SIM_FILESYSTEM_H_
