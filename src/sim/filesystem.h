// SimFileSystem: the reproduction's stand-in for HDFS.
//
// A named file is an ordered vector of Datums. Files are shared by every
// machine (like a distributed file system); the *time* cost of
// reading/writing is charged by the execution backend, not here. All
// operations are internally synchronized: on the real-parallel threads
// backend (runtime/threads_backend.h) every machine thread reads and
// writes the shared store concurrently.
// Sources read contiguous partitions so that P reader instances split a file
// exactly the way parallel input splits do.
#ifndef MITOS_SIM_FILESYSTEM_H_
#define MITOS_SIM_FILESYSTEM_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/datum.h"
#include "common/status.h"

namespace mitos::sim {

// Half-open element range [begin, end) of partition `part` out of `parts`
// for a file of `n` elements. Ranges are contiguous and cover [0, n).
std::pair<size_t, size_t> PartitionRange(size_t n, size_t parts, size_t part);

class SimFileSystem {
 public:
  SimFileSystem() = default;
  // Copyable: benches snapshot a pre-seeded filesystem per engine run.
  SimFileSystem(const SimFileSystem& other);
  SimFileSystem& operator=(const SimFileSystem& other);

  // Creates or overwrites `name`.
  void Write(const std::string& name, DatumVector data);

  // Appends to `name`, creating it if absent. Used by distributed sinks
  // whose instances each contribute a partition.
  void Append(const std::string& name, const DatumVector& data);

  bool Exists(const std::string& name) const;

  // Full contents; NotFound if absent.
  StatusOr<DatumVector> Read(const std::string& name) const;

  // Contents of one partition; NotFound if absent.
  StatusOr<DatumVector> ReadPartition(const std::string& name, size_t parts,
                                      size_t part) const;

  // Modelled size in bytes (for the disk/network cost model); 0 if absent.
  size_t FileBytes(const std::string& name) const;

  // Number of elements; 0 if absent.
  size_t FileElements(const std::string& name) const;

  std::vector<std::string> ListFiles() const;

  void Remove(const std::string& name);
  void Clear();

 private:
  struct File {
    DatumVector data;
    size_t bytes = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, File> files_;
};

}  // namespace mitos::sim

#endif  // MITOS_SIM_FILESYSTEM_H_
