#include "sim/filesystem.h"

#include <utility>

#include "common/logging.h"

namespace mitos::sim {

std::pair<size_t, size_t> PartitionRange(size_t n, size_t parts,
                                         size_t part) {
  MITOS_CHECK_GT(parts, 0u);
  MITOS_CHECK_LT(part, parts);
  // First (n % parts) partitions get one extra element.
  size_t base = n / parts;
  size_t extra = n % parts;
  size_t begin = part * base + (part < extra ? part : extra);
  size_t len = base + (part < extra ? 1 : 0);
  return {begin, begin + len};
}

void SimFileSystem::Write(const std::string& name, DatumVector data) {
  File& f = files_[name];
  f.bytes = SerializedSize(data);
  f.data = std::move(data);
}

void SimFileSystem::Append(const std::string& name, const DatumVector& data) {
  File& f = files_[name];
  f.bytes += SerializedSize(data);
  f.data.insert(f.data.end(), data.begin(), data.end());
}

bool SimFileSystem::Exists(const std::string& name) const {
  return files_.find(name) != files_.end();
}

StatusOr<DatumVector> SimFileSystem::Read(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return it->second.data;
}

StatusOr<DatumVector> SimFileSystem::ReadPartition(const std::string& name,
                                                   size_t parts,
                                                   size_t part) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  auto [begin, end] = PartitionRange(it->second.data.size(), parts, part);
  return DatumVector(it->second.data.begin() + begin,
                     it->second.data.begin() + end);
}

size_t SimFileSystem::FileBytes(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.bytes;
}

size_t SimFileSystem::FileElements(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.data.size();
}

std::vector<std::string> SimFileSystem::ListFiles() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;
}

}  // namespace mitos::sim
