#include "sim/filesystem.h"

#include <mutex>
#include <utility>

#include "common/logging.h"

namespace mitos::sim {

std::pair<size_t, size_t> PartitionRange(size_t n, size_t parts,
                                         size_t part) {
  MITOS_CHECK_GT(parts, 0u);
  MITOS_CHECK_LT(part, parts);
  // First (n % parts) partitions get one extra element.
  size_t base = n / parts;
  size_t extra = n % parts;
  size_t begin = part * base + (part < extra ? part : extra);
  size_t len = base + (part < extra ? 1 : 0);
  return {begin, begin + len};
}

SimFileSystem::SimFileSystem(const SimFileSystem& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  files_ = other.files_;
}

SimFileSystem& SimFileSystem::operator=(const SimFileSystem& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  files_ = other.files_;
  return *this;
}

void SimFileSystem::Write(const std::string& name, DatumVector data) {
  std::lock_guard<std::mutex> lock(mu_);
  File& f = files_[name];
  f.bytes = SerializedSize(data);
  f.data = std::move(data);
}

void SimFileSystem::Append(const std::string& name, const DatumVector& data) {
  std::lock_guard<std::mutex> lock(mu_);
  File& f = files_[name];
  f.bytes += SerializedSize(data);
  f.data.insert(f.data.end(), data.begin(), data.end());
}

bool SimFileSystem::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.find(name) != files_.end();
}

StatusOr<DatumVector> SimFileSystem::Read(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return it->second.data;
}

StatusOr<DatumVector> SimFileSystem::ReadPartition(const std::string& name,
                                                   size_t parts,
                                                   size_t part) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  auto [begin, end] = PartitionRange(it->second.data.size(), parts, part);
  return DatumVector(it->second.data.begin() + begin,
                     it->second.data.begin() + end);
}

size_t SimFileSystem::FileBytes(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.bytes;
}

size_t SimFileSystem::FileElements(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.data.size();
}

std::vector<std::string> SimFileSystem::ListFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;
}

void SimFileSystem::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(name);
}

void SimFileSystem::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
}

}  // namespace mitos::sim
