// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan describes everything that goes wrong during a run, up front:
// machine crashes at fixed virtual times (with optional restart), seeded
// per-message drop probabilities on remote links, and per-machine CPU
// slowdowns. Because the plan is data (not events) and the drop decisions
// come from a seeded common/rng.h generator, a given (program, cluster,
// plan) triple always produces the same failure timeline, the same
// recovery, and the same results — fault runs are as reproducible as
// fault-free ones.
//
// The cluster consults the plan lazily: machine up/down state and the
// restart epoch are pure functions of virtual time over each machine's
// sorted crash/restart transition list, so installing a plan schedules no
// events and an empty plan changes nothing at all.
#ifndef MITOS_SIM_FAULT_H_
#define MITOS_SIM_FAULT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace mitos::sim {

struct FaultPlan {
  static constexpr double kForever =
      std::numeric_limits<double>::infinity();

  // Machine `machine` crashes at virtual time `at`, losing all in-flight
  // deliveries, queued work, and cached state. With `restart_after` >= 0 it
  // comes back (empty) that many seconds later; < 0 means gone for good.
  struct Crash {
    int machine = 0;
    double at = 0;
    double restart_after = -1;
  };

  // Machine `machine` executes CPU work `multiplier` times slower
  // (straggler model) while virtual time is in [from, until). The default
  // window covers the whole run; a mid-run `from` models a machine that
  // degrades (thermal throttling, a noisy neighbor arriving) — the regime
  // the step-level watchdog (obs/live/watchdog.h) is tested against.
  struct Slowdown {
    int machine = 0;
    double multiplier = 1.0;
    double from = 0;
    double until = kForever;
  };

  std::vector<Crash> crashes;
  std::vector<Slowdown> slowdowns;

  // Each remote message transmission is dropped with this probability,
  // decided by a SplitMix64 stream seeded with `drop_seed`. Dropped
  // messages are retransmitted (TCP model) after `retransmit_delay`
  // seconds, up to `max_retransmits` attempts per message.
  double drop_probability = 0;
  uint64_t drop_seed = 17;
  double retransmit_delay = 0.005;
  int max_retransmits = 16;

  // Runtime-side failure detection: the coordinator declares a machine lost
  // when it has been down for `heartbeat_timeout` seconds (checked every
  // `heartbeat_interval`), and declares the attempt stuck when no progress
  // (delivery or completed CPU slice) happened for `stall_timeout` seconds.
  double heartbeat_interval = 0.05;
  double heartbeat_timeout = 0.25;
  double stall_timeout = 2.0;

  // Control-broadcast ack/retry: an unacknowledged path broadcast is
  // retried with exponential backoff starting at `retry_backoff`, at most
  // `max_broadcast_retries` times before the authority gives up.
  double retry_backoff = 0.05;
  int max_broadcast_retries = 6;

  // Recovery policy. 0 = pure lineage recovery (recompute lost bags from
  // surviving upstream cached bags); k > 0 additionally checkpoints every
  // finished bag to durable storage at every k-th control-flow decision.
  int checkpoint_every = 0;
  // Re-execution attempts before the job reports the failure.
  int max_attempts = 8;

  // True when the plan injects nothing (no crashes, drops, or slowdowns);
  // an empty plan leaves every code path byte-identical to no plan at all.
  bool empty() const {
    return crashes.empty() && slowdowns.empty() && drop_probability <= 0;
  }

  // CPU multiplier for `machine` at virtual time `t` (1.0 when no
  // slowdown window covers `t`). Overlapping windows multiply.
  double SlowdownFor(int machine, double t) const {
    double multiplier = 1.0;
    for (const Slowdown& s : slowdowns) {
      if (s.machine == machine && t >= s.from && t < s.until) {
        multiplier *= s.multiplier;
      }
    }
    return multiplier;
  }

  // Round-trippable textual form in the Parse grammar.
  std::string ToString() const;

  // Parses a semicolon-separated spec (whitespace tolerated):
  //   crash=M@T[+R]   machine M crashes at time T, restarts after R
  //   drop=P[@SEED]   drop probability P, optional RNG seed
  //   slow=MxF[@FROM[:UNTIL]]  machine M runs CPU F times slower, over the
  //                   virtual-time window [FROM, UNTIL) (whole run when
  //                   omitted)
  //   hb=I/T          heartbeat interval I, timeout T
  //   stall=S         progress-stall timeout
  //   retry=B/N       broadcast retry backoff B, max retries N
  //   rto=D           retransmit delay for dropped messages
  //   ckpt=K          checkpoint every K control-flow decisions
  //   attempts=N      max re-execution attempts
  // Example: "crash=1@2.5+0.5; drop=0.01@7; slow=3x2"
  static StatusOr<FaultPlan> Parse(const std::string& spec);
};

}  // namespace mitos::sim

#endif  // MITOS_SIM_FAULT_H_
