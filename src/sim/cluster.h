// Simulated cluster: machines with cores, NICs, and disks.
//
// Calibration targets the paper's testbed (Sec. 6.1): 26 machines, 2×8-core
// Opteron 6128, Gigabit Ethernet, 4×1TB disks, HDFS. Absolute constants
// matter less than their ratios — the evaluation shapes (job-launch
// overhead linear in machine count, shuffle costs, pipelining overlap)
// derive from the model structure.
#ifndef MITOS_SIM_CLUSTER_H_
#define MITOS_SIM_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/live/event_log.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace mitos::sim {

struct ClusterConfig {
  int num_machines = 4;
  int cores_per_machine = 16;

  // Per-element CPU cost of one operator visit (seconds), multiplied by the
  // operator's cost factor (hash builds cost more than maps). Calibrated to
  // JVM dataflow engines (~0.5M element-visits/sec/core), which is what the
  // paper's systems are. Since the batched data plane, this rate is charged
  // per chunk rather than per element (see cpu_per_chunk/cpu_per_byte); it
  // still prices the fixed open/close/finish bookkeeping, which is counted
  // in element-units.
  double cpu_per_element = 1.5e-6;

  // Batched data plane: a kernel visit is charged per delivered chunk as
  //   cpu_per_chunk + payload_bytes * cpu_per_byte
  // (times the operator's cost factor). cpu_per_chunk amortizes dispatch
  // bookkeeping (two element-units); cpu_per_byte is calibrated so a full
  // default chunk of int64s (chunk_elements * 8 bytes) costs exactly what
  // the old per-element model charged — full-chunk virtual timings are
  // preserved, while tiny chunks now pay a visible dispatch overhead (the
  // chunk-size ablation measures precisely this).
  double cpu_per_chunk = 2.0 * 1.5e-6;
  double cpu_per_byte = (2048.0 - 2.0) * 1.5e-6 / (2048.0 * 8.0);

  // Network: per-message latency plus endpoint (NIC) occupancy at
  // bytes/bandwidth. Gigabit Ethernet ~ 125 MB/s.
  double net_latency = 0.4e-3;
  double net_bandwidth = 125e6;

  // Same-machine transfers (no NIC occupancy).
  double local_latency = 15e-6;
  double local_bandwidth = 8e9;

  // Aggregate disk bandwidth per machine (the paper's nodes had 4 disks).
  double disk_bandwidth = 300e6;

  // In-memory dataset bandwidth (Spark-style RDD cache reads/writes).
  double memory_bandwidth = 8e9;

  // Fixed modelled size of control messages and chunk headers (bytes).
  size_t control_message_bytes = 64;

  // Size of a path broadcast for a template-replayable control-flow step
  // (Execution-Templates-style: receivers already hold the step's decision
  // metadata and only need a validate-and-advance token).
  size_t template_control_message_bytes = 16;

  // Elements per pipeline chunk.
  size_t chunk_elements = 2048;
};

struct ClusterMetrics {
  int64_t messages = 0;          // network messages (remote only)
  int64_t network_bytes = 0;     // bytes over the (remote) network
  int64_t local_bytes = 0;       // same-machine transfer bytes
  int64_t disk_bytes = 0;
  double cpu_seconds = 0;        // total busy CPU time across machines
  int64_t elements_processed = 0;
  int64_t dropped_messages = 0;  // fault-injected transmission losses
};

// Resource model over the simulator. All operations are asynchronous:
// callers pass a completion callback which runs at the modelled finish time.
class Cluster {
 public:
  Cluster(Simulator* sim, const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_machines() const { return config_.num_machines; }
  const ClusterConfig& config() const { return config_; }
  Simulator* sim() { return sim_; }

  // Attaches an execution-trace recorder; nullptr (the default) disables
  // tracing entirely. Recording is observational only — it never changes
  // the schedule, costs, or results of a run.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  obs::TraceRecorder* trace() const { return trace_; }

  // Attaches a streaming event log (obs/live/); nullptr disables it. Like
  // the recorder it is purely observational: the cluster appends fault
  // records (drops, the crash/restart timeline) without changing the run.
  void set_event_log(obs::live::EventLog* log) { event_log_ = log; }
  obs::live::EventLog* event_log() const { return event_log_; }

  // Installs a fault plan (caller-owned; may be nullptr). A null or empty
  // plan disables fault handling entirely — every operation then behaves
  // byte-identically to a cluster without fault support. With a plan
  // installed, Send/ExecCpu/DiskIo/DiskRead consult machine up/down state:
  // work issued on a down machine is lost, completions whose machine
  // crashed in between are dropped, remote messages may be dropped (and
  // retransmitted) per the seeded RNG, and slow machines stretch CPU time.
  void InstallFaultPlan(const FaultPlan* plan);
  const FaultPlan* fault_plan() const { return faults_; }

  // Fault-state queries (pure functions of virtual time over the plan's
  // crash/restart transitions; trivially "up forever" without a plan).
  bool machine_up(int machine) const;
  // Number of crash/restart transitions machine has been through at `now`
  // (even = up, odd = down). A changed epoch means all state was lost.
  int machine_epoch(int machine) const;
  // Earliest time >= now at which the machine is (back) up; +infinity if it
  // never restarts.
  SimTime machine_up_time(int machine) const;
  // Time of the crash that took the machine down (only valid while down).
  SimTime machine_down_since(int machine) const;

  // Occupies one core of `machine` for `cpu_seconds`, starting no earlier
  // than now. `done` runs at completion. `trace_label` names the core span
  // in the execution trace (ignored without a recorder; pass the operator
  // phase, e.g. "counts.push").
  void ExecCpu(int machine, double cpu_seconds, std::function<void()> done,
               std::string trace_label = {});

  // Transfers `bytes` from `src` to `dst`. Remote transfers occupy both
  // NICs and pay latency; local transfers pay only a small latency plus
  // memory-bandwidth time. `done` runs at delivery.
  void Send(int src, int dst, size_t bytes, std::function<void()> done);

  // Occupies `machine`'s disk for bytes/disk_bandwidth. With `memory` set,
  // models an in-memory dataset instead: memory bandwidth, no disk
  // occupancy (Spark RDD cache).
  void DiskIo(int machine, size_t bytes, std::function<void()> done,
              bool memory = false);

  // Like DiskIo but reports intermediate progress: `on_progress(i)` runs
  // when the i-th of `pieces` equal slices has been read — sources use this
  // to emit chunks at disk pace, which is what lets downstream operators
  // overlap with reading (loop pipelining).
  void DiskRead(int machine, size_t bytes, int pieces,
                std::function<void(int)> on_progress, bool memory = false);

  ClusterMetrics& metrics() { return metrics_; }
  const ClusterMetrics& metrics() const { return metrics_; }

 private:
  struct CoreSlot {
    int core;
    SimTime start;
    SimTime finish;
  };
  // Earliest-available slot on a set of serial resources (cores).
  CoreSlot AcquireCore(int machine, double duration);

  // Lazily resets `machine`'s resource clocks after a restart (its cores,
  // NIC, and disk come back idle). No-op without an epoch change.
  void RefreshFaultView(int machine);
  // A cross-machine transmission, including any retransmits after drops.
  void SendRemote(int src, int dst, size_t bytes, std::function<void()> done);
  int EpochAt(int machine, SimTime t) const;

  Simulator* sim_;
  ClusterConfig config_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::live::EventLog* event_log_ = nullptr;
  // core_free_[m][c]: time when core c of machine m becomes free.
  std::vector<std::vector<SimTime>> core_free_;
  std::vector<SimTime> nic_out_free_;
  std::vector<SimTime> nic_in_free_;
  std::vector<SimTime> disk_free_;
  std::vector<SimTime> local_last_arrival_;  // FIFO clamp for loopback
  ClusterMetrics metrics_;

  // Fault state (all inert when faults_ == nullptr).
  const FaultPlan* faults_ = nullptr;
  // Per machine: sorted crash/restart transition times.
  std::vector<std::vector<SimTime>> transitions_;
  // Epoch the resource clocks were last reset for (RefreshFaultView).
  std::vector<int> clock_epoch_;
  Rng drop_rng_{0};
};

}  // namespace mitos::sim

#endif  // MITOS_SIM_CLUSTER_H_
