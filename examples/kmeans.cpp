// K-means clustering: an iterative machine-learning task (paper Sec. 1
// names it as a commonly occurring iterative workload). The point set is
// the loop-invariant join build side, so the per-iteration hash table is
// hoisted across steps in Mitos.
//
// Build & run:  ./build/examples/kmeans
#include <cstdio>

#include "api/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

int main() {
  using namespace mitos;

  sim::SimFileSystem fs;
  workloads::GeneratePoints(&fs, {.num_points = 3'000, .num_clusters = 4});

  lang::Program program = workloads::KMeansProgram({.iterations = 12});

  auto mitos_result =
      api::Run(api::EngineKind::kMitos, program, &fs, {.machines = 8});
  if (!mitos_result.ok()) {
    std::printf("error: %s\n", mitos_result.status().ToString().c_str());
    return 1;
  }

  auto centroids = fs.Read("centroids_out");
  std::printf("--- final centroids ---\n");
  for (const Datum& c : *centroids) {
    std::printf("  cluster %lld: (%.2f, %.2f)\n",
                static_cast<long long>(c.field(0).int64()),
                c.field(1).dbl(), c.field(2).dbl());
  }
  std::printf("\nMitos: %s\n", mitos_result->stats.ToString().c_str());

  // Compare against the Spark-style execution: every iteration needs a
  // collect-free action chain, i.e. a fresh job.
  sim::SimFileSystem fs_spark;
  workloads::GeneratePoints(&fs_spark,
                            {.num_points = 3'000, .num_clusters = 4});
  auto spark_result = api::Run(api::EngineKind::kSpark, program, &fs_spark,
                               {.machines = 8});
  if (spark_result.ok()) {
    std::printf("Spark: %s\n", spark_result->stats.ToString().c_str());
    std::printf("Mitos is %.1fx faster (single job vs %d jobs)\n",
                spark_result->stats.total_seconds /
                    mitos_result->stats.total_seconds,
                spark_result->stats.jobs);
  }
  return 0;
}
