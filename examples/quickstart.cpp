// Quickstart: write an imperative dataflow program, run it with Mitos.
//
// The program is the paper's introductory example (Sec. 2): compute
// per-page visit counts for each day of logs — an ordinary imperative loop
// that reads a different file in every iteration, which Flink's native
// iterations cannot express and which costs Spark a job launch per day.
// Mitos compiles the whole loop into ONE cyclic dataflow job.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "api/engine.h"
#include "lang/builder.h"
#include "workloads/generators.h"

namespace {

using namespace mitos;  // example code; library code never does this

lang::Program BuildVisitCount(int days) {
  using namespace mitos::lang;
  ProgramBuilder pb;
  pb.Assign("day", LitInt(1));
  pb.DoWhile(
      [&] {
        // visits = readFile("pageVisitLog" + day)        // page ids
        pb.Assign("visits",
                  ReadFile(Concat(LitString("pageVisitLog"), Var("day"))));
        // counts = visits.map(x => (x,1)).reduceByKey(_+_)
        pb.Assign("counts", ReduceByKey(Map(Var("visits"), fns::PairWithOne()),
                                        fns::SumInt64()));
        // counts.writeFile("counts" + day)
        pb.WriteFile(Var("counts"), Concat(LitString("counts"), Var("day")));
        pb.Assign("day", Add(Var("day"), LitInt(1)));
      },
      lang::Le(Var("day"), LitInt(days)));
  return pb.Build();
}

}  // namespace

int main() {
  constexpr int kDays = 5;

  // 1. Synthesize input logs into the simulated file system.
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(
      &fs, {.days = kDays, .entries_per_day = 5'000, .num_pages = 50});

  // 2. Build the imperative program.
  lang::Program program = BuildVisitCount(kDays);
  std::printf("--- program ---\n%s\n", lang::ToString(program).c_str());

  // 3. Run it under Mitos on an 8-machine simulated cluster.
  auto result = api::Run(api::EngineKind::kMitos, program, &fs,
                         {.machines = 8});
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the outputs and the run statistics.
  std::printf("--- outputs ---\n");
  for (int day = 1; day <= kDays; ++day) {
    std::string name = "counts" + std::to_string(day);
    auto data = fs.Read(name);
    std::printf("%s: %zu pages, e.g. %s\n", name.c_str(), data->size(),
                mitos::ToString(*data, 3).c_str());
  }
  std::printf("--- stats ---\n%s\n", result->stats.ToString().c_str());
  std::printf("single dataflow job, %d control-flow decisions for %d days\n",
              result->stats.decisions, kDays);
  return 0;
}
