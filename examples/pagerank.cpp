// PageRank: an iterative graph algorithm with a loop-invariant adjacency
// join — the classic beneficiary of loop-invariant hoisting (paper
// Sec. 5.3: "any iterative graph algorithm that joins with a static dataset
// containing the graph edges").
//
// Also dumps the SSA intermediate representation (paper Fig. 3a style) and
// the translated dataflow graph so you can see the compilation pipeline.
//
// Build & run:  ./build/examples/pagerank
#include <algorithm>
#include <cstdio>

#include "api/engine.h"
#include "ir/ssa.h"
#include "runtime/translator.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

int main() {
  using namespace mitos;

  sim::SimFileSystem fs;
  workloads::GenerateGraph(&fs, {.num_vertices = 200, .num_edges = 1'500});

  lang::Program program = workloads::PageRankProgram(
      {.iterations = 15, .num_vertices = 200});

  // Show the compilation pipeline: imperative -> SSA -> dataflow job.
  auto ir = ir::CompileToIr(program);
  if (!ir.ok()) {
    std::printf("compile error: %s\n", ir.status().ToString().c_str());
    return 1;
  }
  std::printf("--- SSA IR (paper Fig. 3a style) ---\n%s\n",
              ir::ToString(*ir).c_str());
  auto translated = runtime::Translate(*ir, 4);
  std::printf("--- dataflow job (one node per assignment) ---\n%s\n",
              dataflow::ToString(translated->graph).c_str());

  auto result =
      api::Run(api::EngineKind::kMitos, program, &fs, {.machines = 4});
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  auto ranks = fs.Read("ranks");
  DatumVector sorted = *ranks;
  std::sort(sorted.begin(), sorted.end(), [](const Datum& a, const Datum& b) {
    return a.field(1).dbl() > b.field(1).dbl();
  });
  std::printf("--- top 5 pages by rank ---\n");
  for (size_t i = 0; i < 5 && i < sorted.size(); ++i) {
    std::printf("  page %lld: %.6f\n",
                static_cast<long long>(sorted[i].field(0).int64()),
                sorted[i].field(1).dbl());
  }
  double total = 0;
  for (const Datum& r : *ranks) total += r.field(1).dbl();
  std::printf("rank mass: %.4f (should stay ~1.0)\n", total);
  std::printf("stats: %s\n", result->stats.ToString().c_str());
  return 0;
}
