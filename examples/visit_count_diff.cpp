// The paper's full running example (Sec. 2): per-day visit counts with
// consecutive-day comparison (an if inside the loop) and a loop-invariant
// pageTypes join — run under every engine, demonstrating that
//   * all engines compute identical results,
//   * only Mitos combines imperative ease-of-use with native-iteration
//     performance (Flink's native iterations reject the program in strict
//     mode; Spark pays a job per day; Mitos runs one job and hoists the
//     pageTypes hash table).
//
// Build & run:  ./build/examples/visit_count_diff
#include <cstdio>

#include "api/engine.h"
#include "baselines/flink.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

int main() {
  using namespace mitos;
  constexpr int kDays = 10;
  constexpr int kMachines = 8;

  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(
      &inputs, {.days = kDays, .entries_per_day = 20'000, .num_pages = 500});
  workloads::GeneratePageTypes(&inputs, {.num_pages = 500, .num_types = 4});

  lang::Program program = workloads::VisitCountProgram(
      {.days = kDays, .with_diffs = true, .with_page_types = true});

  // Flink's native iterations cannot express this program (file I/O and an
  // if inside the loop):
  Status expressible = baselines::CheckNativeIterationExpressible(program);
  std::printf("Flink native-iteration check: %s\n\n",
              expressible.ToString().c_str());

  std::printf("%-24s %12s %8s %10s\n", "engine", "time (s)", "jobs",
              "decisions");
  for (auto engine :
       {api::EngineKind::kSpark, api::EngineKind::kFlink,
        api::EngineKind::kMitosNoHoisting, api::EngineKind::kMitos}) {
    sim::SimFileSystem fs = inputs;
    auto result = api::Run(engine, program, &fs, {.machines = kMachines});
    if (!result.ok()) {
      std::printf("%-24s error: %s\n", api::EngineKindName(engine),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-24s %12.2f %8d %10d\n", api::EngineKindName(engine),
                result->stats.total_seconds, result->stats.jobs,
                result->stats.decisions);
  }

  // Show a result: the day-to-day difference totals.
  sim::SimFileSystem fs = inputs;
  auto result = api::Run(api::EngineKind::kMitos, program, &fs,
                         {.machines = kMachines});
  if (result.ok()) {
    std::printf("\nday-over-day visit-count differences:\n");
    for (int day = 2; day <= kDays; ++day) {
      auto diff = fs.Read("diff" + std::to_string(day));
      if (diff.ok() && !diff->empty()) {
        std::printf("  day %2d: %s\n", day, (*diff)[0].ToString().c_str());
      }
    }
  }
  return 0;
}
