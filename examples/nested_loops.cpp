// General control flow beyond native iterations: nested loops with an
// if inside, and a join whose one input comes from the outer loop while the
// other changes per inner iteration (the paper's Figure 4a scenario —
// Challenge 2: one input bag matched against several bags of the other
// input).
//
// A hyperparameter-search flavour: the outer loop sweeps a "learning rate",
// the inner loop runs a small iterative refinement, and the result of the
// best configuration is written out.
//
// Build & run:  ./build/examples/nested_loops
#include <cstdio>

#include "api/engine.h"
#include "baselines/flink.h"
#include "lang/builder.h"

int main() {
  using namespace mitos;
  using namespace mitos::lang;

  ProgramBuilder pb;
  // Loop-invariant "training data": (key, value) pairs.
  DatumVector data;
  for (int i = 0; i < 2'000; ++i) {
    data.push_back(Datum::Pair(Datum::Int64(i % 16),
                               Datum::Int64((i * 37) % 100)));
  }
  pb.Assign("train", BagLit(std::move(data)));
  pb.Assign("bestScore", LitInt(-1));
  pb.Assign("best", LitInt(-1));
  pb.Assign("lr", LitInt(1));
  pb.While(Le(Var("lr"), LitInt(4)), [&] {
    // "Model": one weight per key, refined over inner iterations. The join
    // build side (train) comes from outside the inner loop and is reused
    // across all inner steps (paper Fig. 4a / Challenge 2).
    pb.Assign("model", Map(Var("train"), {"initW", [](const Datum& p) {
                             return Datum::Pair(p.field(0), Datum::Int64(0));
                           }}));
    pb.Assign("model", ReduceByKey(Var("model"), fns::SumInt64()));
    pb.Assign("step", LitInt(0));
    pb.While(Lt(Var("step"), LitInt(5)), [&] {
      pb.Assign("joined", Join(Var("train"), Var("model")));
      // (key, value, weight) -> (key, weight + lr-scaled error signal)
      // The "learning rate" is folded in via the step parity to stay in
      // integer arithmetic.
      pb.Assign("model",
                ReduceByKey(Map(Var("joined"), {"update", [](const Datum& t) {
                                  int64_t v = t.field(1).int64();
                                  int64_t w = t.field(2).int64();
                                  return Datum::Pair(
                                      t.field(0),
                                      Datum::Int64(w + (v - w) / 2));
                                }}),
                            {"keepLast", [](const Datum&, const Datum& b) {
                               return b;
                             }}));
      pb.Assign("step", Add(Var("step"), LitInt(1)));
    });
    // "Score" = sum of weights modulo the learning rate sweep (a stand-in
    // for validation accuracy).
    pb.Assign("score",
              ScalarFromBag(Reduce(Map(Var("model"), fns::Field(1)),
                                   fns::SumInt64())));
    pb.If(Gt(Var("score"), Var("bestScore")), [&] {
      pb.Assign("bestScore", Var("score"));
      pb.Assign("best", Var("lr"));
    });
    pb.Assign("lr", Add(Var("lr"), LitInt(1)));
  });
  pb.WriteFile(FromScalar(Var("best")), LitString("best_lr"));
  pb.WriteFile(FromScalar(Var("bestScore")), LitString("best_score"));
  lang::Program program = pb.Build();

  // Nested loops are outside Flink's native-iteration fragment:
  Status expressible = baselines::CheckNativeIterationExpressible(program);
  std::printf("Flink native-iteration check: %s\n\n",
              expressible.ToString().c_str());

  for (auto engine : {api::EngineKind::kReference, api::EngineKind::kSpark,
                      api::EngineKind::kMitos}) {
    sim::SimFileSystem fs;
    auto result = api::Run(engine, program, &fs, {.machines = 6});
    if (!result.ok()) {
      std::printf("%-12s error: %s\n", api::EngineKindName(engine),
                  result.status().ToString().c_str());
      continue;
    }
    auto best = fs.Read("best_lr");
    auto score = fs.Read("best_score");
    std::printf("%-12s best lr = %s, score = %s, time = %.2fs, jobs = %d\n",
                api::EngineKindName(engine), (*best)[0].ToString().c_str(),
                (*score)[0].ToString().c_str(), result->stats.total_seconds,
                result->stats.jobs);
  }
  return 0;
}
