// Simulated annealing: the paper's Sec. 1 example of an if statement inside
// a loop ("Programs may contain if statements inside loops, such as in
// simulated annealing").
//
// A toy combinatorial optimization: choose a subset of item classes
// maximizing the summed value. Each step toggles one class (picked from
// the step counter, so the run is reproducible); an if *inside the loop*
// accepts the candidate when it improves the score — or unconditionally on
// a fixed "temperature" schedule, the annealing escape hatch. The
// acceptance condition depends on data computed in the same iteration, so
// every step has a data-dependent control flow decision.
//
// Build & run:  ./build/examples/simulated_annealing
#include <cstdio>

#include "mitos.h"

int main() {
  using namespace mitos;
  using namespace mitos::lang;

  // Items: (class, value); values are a mix of positive and negative.
  DatumVector items;
  for (int i = 0; i < 1'000; ++i) {
    items.push_back(Datum::Pair(Datum::Int64(i % 10),
                                Datum::Int64((i * 13) % 97 - 40)));
  }

  ProgramBuilder pb;
  pb.Assign("items", BagLit(std::move(items)));
  // Per-class value sums: loop-invariant, hoisted join build side.
  pb.Assign("classSums", ReduceByKey(Var("items"), fns::SumInt64()));
  // Current selection as a bag of (class, 1) pairs: start with all classes.
  {
    DatumVector all;
    for (int64_t c = 0; c < 10; ++c) {
      all.push_back(Datum::Pair(Datum::Int64(c), Datum::Int64(1)));
    }
    pb.Assign("selection", BagLit(std::move(all)));
  }
  pb.Assign("curScore", LitInt(-1'000'000));
  pb.Assign("bestScore", LitInt(-1'000'000));
  pb.Assign("step", LitInt(0));
  pb.While(Lt(Var("step"), LitInt(60)), [&] {
    // Toggle the class (step*7 mod 10): parity trick — union the flip into
    // the selection and keep classes appearing an odd number of times.
    pb.Assign("flipClass", Mod(Mul(Var("step"), LitInt(7)), LitInt(10)));
    pb.Assign("flipBag", Map(FromScalar(Var("flipClass")),
                             fns::PairWithOne()));
    pb.Assign("candidate",
              Map(Filter(ReduceByKey(Union(Var("selection"), Var("flipBag")),
                                     fns::SumInt64()),
                         {"odd", [](const Datum& p) {
                            return p.field(1).int64() % 2 == 1;
                          }}),
                  {"normalize", [](const Datum& p) {
                     return Datum::Pair(p.field(0), Datum::Int64(1));
                   }}));
    // Candidate score: sum of the selected classes' sums (the classSums
    // hash table is built once and probed every step).
    pb.Assign("scoreBag",
              Reduce(Union(Map(Join(Var("classSums"), Var("candidate")),
                               fns::Field(1)),
                           BagLit({Datum::Int64(0)})),
                     fns::SumInt64()));
    pb.Assign("score", ScalarFromBag(Var("scoreBag")));
    // Accept on improvement, or unconditionally every 13th step (the
    // deterministic stand-in for the annealing temperature).
    pb.If(Or(Gt(Var("score"), Var("curScore")),
             Eq(Mod(Var("step"), LitInt(13)), LitInt(0))),
          [&] {
            pb.Assign("selection", Var("candidate"));
            pb.Assign("curScore", Var("score"));
          });
    pb.If(Gt(Var("curScore"), Var("bestScore")), [&] {
      pb.Assign("bestScore", Var("curScore"));
      pb.Assign("bestSelection", Var("selection"));
    });
    pb.Assign("step", Add(Var("step"), LitInt(1)));
  });
  pb.WriteFile(Var("selection"), LitString("final_selection"));
  pb.WriteFile(FromScalar(Var("bestScore")), LitString("best_score"));
  lang::Program program = pb.Build();

  for (auto engine : {api::EngineKind::kReference, api::EngineKind::kMitos}) {
    sim::SimFileSystem fs;
    auto result = api::Run(engine, program, &fs, {.machines = 4});
    if (!result.ok()) {
      std::printf("%-10s error: %s\n", api::EngineKindName(engine),
                  result.status().ToString().c_str());
      return 1;
    }
    auto best = fs.Read("best_score");
    auto selection = fs.Read("final_selection");
    std::printf("%-10s best score %s, final selection of %zu classes",
                api::EngineKindName(engine), (*best)[0].ToString().c_str(),
                selection->size());
    if (engine == api::EngineKind::kMitos) {
      std::printf("  (%d control-flow decisions, 1 job)",
                  result->stats.decisions);
    }
    std::printf("\n");
  }
  return 0;
}
