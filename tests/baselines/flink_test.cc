#include "baselines/flink.h"

#include <gtest/gtest.h>

#include "lang/builder.h"
#include "workloads/programs.h"

namespace mitos::baselines {
namespace {

using lang::ProgramBuilder;

TEST(FlinkExpressibilityTest, PlainLoopIsExpressible) {
  ProgramBuilder pb;
  pb.Assign("b", lang::BagLit({Datum::Int64(1)}));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("b", lang::Map(lang::Var("b"), lang::fns::AddInt64(1)));
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("b"), lang::LitString("out"));
  EXPECT_TRUE(CheckNativeIterationExpressible(pb.Build()).ok());
}

TEST(FlinkExpressibilityTest, NestedLoopsRejected) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("j", lang::LitInt(0));
    pb.While(lang::Lt(lang::Var("j"), lang::LitInt(3)), [&] {
      pb.Assign("j", lang::Add(lang::Var("j"), lang::LitInt(1)));
    });
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  Status status = CheckNativeIterationExpressible(pb.Build());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_NE(status.message().find("nested"), std::string::npos);
}

TEST(FlinkExpressibilityTest, IfInsideLoopRejected) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.If(lang::Eq(lang::Var("i"), lang::LitInt(1)), [&] {});
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  Status status = CheckNativeIterationExpressible(pb.Build());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("if"), std::string::npos);
}

TEST(FlinkExpressibilityTest, FileReadInsideLoopRejected) {
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(3)), [&] {
    pb.Assign("d", lang::ReadFile(lang::Concat(lang::LitString("f"),
                                               lang::Var("i"))));
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  Status status = CheckNativeIterationExpressible(pb.Build());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("reading"), std::string::npos);
}

TEST(FlinkExpressibilityTest, FileWriteInsideLoopRejected) {
  ProgramBuilder pb;
  pb.Assign("b", lang::BagLit({Datum::Int64(1)}));
  pb.Assign("i", lang::LitInt(0));
  pb.DoWhile(
      [&] {
        pb.WriteFile(lang::Var("b"), lang::LitString("out"));
        pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
      },
      lang::Lt(lang::Var("i"), lang::LitInt(3)));
  Status status = CheckNativeIterationExpressible(pb.Build());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("writing"), std::string::npos);
}

TEST(FlinkExpressibilityTest, ControlFlowOutsideLoopsIsFine) {
  ProgramBuilder pb;
  pb.Assign("c", lang::LitBool(true));
  pb.Assign("b", lang::BagLit({Datum::Int64(1)}));
  pb.If(lang::Var("c"),
        [&] { pb.Assign("b", lang::ReadFile(lang::LitString("f"))); },
        [&] { pb.WriteFile(lang::Var("b"), lang::LitString("g")); });
  EXPECT_TRUE(CheckNativeIterationExpressible(pb.Build()).ok());
}

TEST(FlinkExpressibilityTest, PaperProgramsClassifiedCorrectly) {
  // The paper's running example is outside the fragment (Sec. 2)...
  EXPECT_FALSE(CheckNativeIterationExpressible(
                   workloads::VisitCountProgram({.days = 3}))
                   .ok());
  // ...while PageRank and k-means (fixed-iteration loops over in-job data)
  // fit native iterations.
  EXPECT_TRUE(CheckNativeIterationExpressible(
                  workloads::PageRankProgram(
                      {.iterations = 3, .num_vertices = 10}))
                  .ok());
  EXPECT_TRUE(CheckNativeIterationExpressible(
                  workloads::KMeansProgram({.iterations = 3}))
                  .ok());
}

TEST(FlinkSimTest, StrictModeRejects) {
  sim::Simulator sim;
  sim::ClusterConfig config;
  config.num_machines = 2;
  sim::Cluster cluster(&sim, config);
  sim::SimFileSystem fs;
  fs.Write("f1", {Datum::Int64(1)});
  ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("d", lang::ReadFile(lang::Concat(lang::LitString("f"),
                                                   lang::Var("i"))));
        pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
      },
      lang::Lt(lang::Var("i"), lang::LitInt(2)));
  FlinkOptions options;
  options.strict = true;
  auto stats = RunFlinkSim(&sim, &cluster, &fs, pb.Build(), options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnimplemented);
}

TEST(FlinkSimTest, PerStepOverheadChargedPerDecision) {
  auto run_with_overhead = [&](double overhead) {
    sim::Simulator sim;
    sim::ClusterConfig config;
    config.num_machines = 2;
    sim::Cluster cluster(&sim, config);
    sim::SimFileSystem fs;
    FlinkOptions options;
    options.step_overhead = overhead;
    auto stats = RunFlinkSim(&sim, &cluster, &fs,
                             workloads::StepOverheadProgram(10), options);
    MITOS_CHECK(stats.ok()) << stats.status().ToString();
    return stats->total_seconds;
  };
  double cheap = run_with_overhead(0.001);
  double pricey = run_with_overhead(0.101);
  // 11 decisions (10 true + 1 false) at +100 ms each; the initial path
  // broadcast at job start is not a superstep boundary and charges nothing.
  EXPECT_NEAR(pricey - cheap, 11 * 0.1, 0.02);
}

}  // namespace
}  // namespace mitos::baselines
