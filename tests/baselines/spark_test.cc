#include "baselines/spark.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "lang/builder.h"
#include "runtime/spark_cache.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::baselines {
namespace {

DatumVector Ints(std::initializer_list<int64_t> values) {
  DatumVector out;
  for (int64_t v : values) out.push_back(Datum::Int64(v));
  return out;
}

DatumVector Sorted(DatumVector v) {
  std::sort(v.begin(), v.end(),
            [](const Datum& a, const Datum& b) { return a < b; });
  return v;
}

class SparkDriverTest : public ::testing::Test {
 protected:
  StatusOr<runtime::RunStats> RunProgram(const lang::Program& program) {
    sim_ = std::make_unique<sim::Simulator>();
    sim::ClusterConfig config;
    config.num_machines = 2;
    cluster_ = std::make_unique<sim::Cluster>(sim_.get(), config);
    SparkDriver driver(sim_.get(), cluster_.get(), &fs_, options_);
    return driver.Run(program);
  }

  sim::SimFileSystem fs_;
  SparkOptions options_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Cluster> cluster_;
};

TEST_F(SparkDriverTest, OneJobPerAction) {
  fs_.Write("in", Ints({1, 2, 3}));
  lang::ProgramBuilder pb;
  pb.Assign("a", lang::ReadFile(lang::LitString("in")));
  pb.WriteFile(lang::Var("a"), lang::LitString("out1"));
  pb.WriteFile(lang::Map(lang::Var("a"), lang::fns::AddInt64(1)),
               lang::LitString("out2"));
  auto stats = RunProgram(pb.Build());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->jobs, 2);
  // Partitions land in completion order: compare as multisets.
  EXPECT_EQ(Sorted(*fs_.Read("out1")), Ints({1, 2, 3}));
  EXPECT_EQ(Sorted(*fs_.Read("out2")), Ints({2, 3, 4}));
}

TEST_F(SparkDriverTest, CachedBagIsNotRecomputed) {
  fs_.Write("in", Ints({1, 2, 3, 4, 5, 6}));
  // An "expensive" chain assigned to a named variable and consumed by two
  // actions: the second job must read the cache, not re-run the chain.
  lang::ProgramBuilder pb;
  pb.Assign("raw", lang::ReadFile(lang::LitString("in")));
  pb.Assign("expensive",
            lang::ReduceByKey(lang::Map(lang::Var("raw"),
                                        lang::fns::PairWithOne()),
                              lang::fns::SumInt64()));
  pb.WriteFile(lang::Var("expensive"), lang::LitString("out1"));
  pb.WriteFile(lang::Var("expensive"), lang::LitString("out2"));
  auto stats = RunProgram(pb.Build());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->jobs, 2);
  // Outputs identical.
  EXPECT_EQ(Sorted(*fs_.Read("out1")), Sorted(*fs_.Read("out2")));
  // Only the first job reads the raw input from disk (6 elements + the
  // second job's cache read of 6 pairs): well under two full recomputes of
  // the map+reduce chain.
  // 1st job: read 6, map 6, rbk 6 (+cache write). 2nd: cache read 6.
  EXPECT_LE(stats->elements, 44);
}

TEST_F(SparkDriverTest, CacheFilesAreRemovedAfterRun) {
  fs_.Write("in", Ints({1}));
  lang::ProgramBuilder pb;
  pb.Assign("a", lang::Map(lang::ReadFile(lang::LitString("in")),
                           lang::fns::AddInt64(1)));
  pb.WriteFile(lang::Var("a"), lang::LitString("out"));
  pb.WriteFile(lang::Var("a"), lang::LitString("out_b"));
  auto stats = RunProgram(pb.Build());
  ASSERT_TRUE(stats.ok());
  for (const std::string& name : fs_.ListFiles()) {
    EXPECT_FALSE(runtime::IsCacheFile(name)) << name;
  }
}

TEST_F(SparkDriverTest, ScalarConditionsRunInDriverForFree) {
  // A loop whose condition is a plain driver scalar: no job per test.
  lang::ProgramBuilder pb;
  pb.Assign("b", lang::BagLit(Ints({5})));
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("i"), lang::LitInt(100)), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  pb.WriteFile(lang::Var("b"), lang::LitString("out"));
  auto stats = RunProgram(pb.Build());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->jobs, 1);  // only the final writeFile
}

TEST_F(SparkDriverTest, BagConditionCollectsPerEvaluation) {
  lang::Program program = workloads::StepOverheadProgram(4);
  auto stats = RunProgram(program);
  ASSERT_TRUE(stats.ok());
  // Condition evaluated 5 times (4 true + 1 false) -> 5 collect jobs,
  // plus the final writeFile.
  EXPECT_EQ(stats->jobs, 6);
}

TEST_F(SparkDriverTest, PerJobLaunchOverheadAccumulates) {
  fs_.Write("in", Ints({1}));
  lang::ProgramBuilder pb;
  pb.Assign("a", lang::ReadFile(lang::LitString("in")));
  pb.Assign("day", lang::LitInt(0));
  pb.While(lang::Lt(lang::Var("day"), lang::LitInt(5)), [&] {
    pb.WriteFile(lang::Var("a"),
                 lang::Concat(lang::LitString("out"), lang::Var("day")));
    pb.Assign("day", lang::Add(lang::Var("day"), lang::LitInt(1)));
  });
  auto stats = RunProgram(pb.Build());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->jobs, 5);
  double per_job = options_.launch_base + options_.launch_per_machine * 2;
  EXPECT_GE(stats->total_seconds, 5 * per_job);
}

TEST_F(SparkDriverTest, NoHoistingAcrossJobs) {
  // Joins rebuild per job: the hoisted-reuse counter stays zero even
  // though the build side is loop-invariant.
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&fs_, {.days = 3, .entries_per_day = 50,
                                      .num_pages = 10});
  workloads::GeneratePageTypes(&fs_, {.num_pages = 10, .num_types = 2});
  lang::Program program = workloads::VisitCountProgram(
      {.days = 3, .with_page_types = true});
  auto stats = RunProgram(program);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->hoisted_reuses, 0);
}

TEST_F(SparkDriverTest, MissingInputFailsCleanly) {
  lang::ProgramBuilder pb;
  pb.Assign("a", lang::ReadFile(lang::LitString("missing")));
  pb.WriteFile(lang::Var("a"), lang::LitString("out"));
  auto stats = RunProgram(pb.Build());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST_F(SparkDriverTest, DriverLoopGuard) {
  options_.max_driver_iterations = 10;
  lang::ProgramBuilder pb;
  pb.Assign("i", lang::LitInt(0));
  pb.While(lang::LitBool(true), [&] {
    pb.Assign("i", lang::Add(lang::Var("i"), lang::LitInt(1)));
  });
  auto stats = RunProgram(pb.Build());
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mitos::baselines
