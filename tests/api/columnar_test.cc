// Engine-level contract of the batched data plane: the columnar plane and
// the boxed ablation plane (RunConfig::columnar = false) are
// element-identical on every backend, and the chunk counters flow from the
// executor into RunStats, the metrics registry, and the Prometheus
// exposition.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "api/engine.h"
#include "lang/parser.h"
#include "obs/live/prom.h"
#include "obs/metrics.h"
#include "sim/filesystem.h"

namespace mitos::api {
namespace {

// Ints, int pairs, strings, and string-keyed pairs: the program crosses the
// typed fast path (map/filter/reduceByKey over int columns) and the boxed
// fallback (string ops, string-keyed reduceByKey) in one run.
constexpr char kMixedProgram[] = R"(
v0 = bagOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10);
v1 = bagOf(("a", 1), ("bb", 2), ("a", 3), ("ccc", 4), ("bb", 5));
v2 = bagOf("x", "yy", "zzz", "x", "yy");
i = 0;
do {
  v0 = v0.map(addInt64(1));
  v3 = v0.filter(gtInt64(5));
  v4 = v3.map(pairWithOne).reduceByKey(sumInt64);
  v5 = v1.reduceByKey(sumInt64);
  v6 = v2.map(strTag(7)).filter(strLenGt(2));
  i = (i + 1);
} while ((i < 3));
v7 = v2.map(strLen);
write(v0, "out_ints");
write(v4, "out_pairs");
write(v5, "out_strkeyed");
write(v6, "out_strs");
write(v7, "out_lens");
)";

struct Outcome {
  runtime::RunStats stats;
  std::map<std::string, DatumVector> files;
};

Outcome RunMixed(BackendKind backend, bool columnar,
                 obs::MetricsRegistry* metrics = nullptr) {
  auto program = lang::Parse(kMixedProgram);
  MITOS_CHECK(program.ok()) << program.status().ToString();
  sim::SimFileSystem fs;
  RunConfig config{.machines = 3};
  config.backend = backend;
  config.columnar = columnar;
  config.metrics = metrics;
  auto result = Run(EngineKind::kMitos, *program, &fs, config);
  MITOS_CHECK(result.ok()) << result.status().ToString();
  Outcome outcome;
  outcome.stats = result->stats;
  for (const std::string& name : fs.ListFiles()) {
    outcome.files[name] = *fs.Read(name);
  }
  return outcome;
}

TEST(ColumnarPlaneTest, OnAndOffAreElementIdenticalOnDes) {
  Outcome on = RunMixed(BackendKind::kDes, true);
  Outcome off = RunMixed(BackendKind::kDes, false);
  // Exact file-by-file, order included: the plane changes representation,
  // never content or schedule.
  EXPECT_EQ(on.files, off.files);
  // Virtual time is representation-independent too: the cost model prices
  // bytes moved, not the in-memory encoding.
  EXPECT_EQ(on.stats.total_seconds, off.stats.total_seconds);
  EXPECT_EQ(on.stats.chunks, off.stats.chunks);
}

TEST(ColumnarPlaneTest, OnAndOffAreElementIdenticalOnThreads) {
  Outcome des = RunMixed(BackendKind::kDes, true);
  Outcome on = RunMixed(BackendKind::kThreads, true);
  Outcome off = RunMixed(BackendKind::kThreads, false);
  EXPECT_EQ(on.files, off.files);
  EXPECT_EQ(on.files, des.files);
}

TEST(ColumnarPlaneTest, MixedProgramUsesFastPathAndFallback) {
  Outcome on = RunMixed(BackendKind::kDes, true);
  EXPECT_GT(on.stats.chunks, 0);
  EXPECT_GT(on.stats.chunk_fallbacks, 0);  // string chunks ride boxed
  // The int-heavy majority must columnarize: fallbacks are a strict
  // minority of all chunks.
  EXPECT_LT(on.stats.chunk_fallbacks, on.stats.chunks);
}

TEST(ColumnarPlaneTest, ColumnarOffMakesEveryChunkFallback) {
  Outcome off = RunMixed(BackendKind::kDes, false);
  EXPECT_GT(off.stats.chunks, 0);
  EXPECT_EQ(off.stats.chunk_fallbacks, off.stats.chunks);
}

TEST(ColumnarPlaneTest, ChunkCountersReachMetricsAndProm) {
  obs::MetricsRegistry metrics;
  Outcome on = RunMixed(BackendKind::kDes, true, &metrics);
  EXPECT_EQ(metrics.counter("chunks"), on.stats.chunks);
  EXPECT_EQ(metrics.counter("chunk_fallback"), on.stats.chunk_fallbacks);

  const std::string prom =
      obs::live::ToPrometheusText(metrics, on.stats.total_seconds);
  EXPECT_NE(prom.find("mitos_chunks_total"), std::string::npos) << prom;
  EXPECT_NE(prom.find("mitos_chunk_fallback_total"), std::string::npos)
      << prom;
}

}  // namespace
}  // namespace mitos::api
