// Determinism guarantees: a given (program, inputs, configuration) always
// produces the same results, timings, and traffic, bit for bit. This is
// what makes the benchmark harness reproducible and the differential test
// suite trustworthy.
#include <gtest/gtest.h>

#include "api/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::api {
namespace {

struct RunOutcome {
  double total_seconds;
  int64_t network_bytes;
  int64_t messages;
  double cpu_seconds;
  int64_t bags;
  std::map<std::string, DatumVector> files;
};

RunOutcome RunOnce(EngineKind engine, const lang::Program& program,
                   const sim::SimFileSystem& inputs, int machines) {
  sim::SimFileSystem fs = inputs;
  auto result = Run(engine, program, &fs, {.machines = machines});
  MITOS_CHECK(result.ok()) << result.status().ToString();
  RunOutcome outcome;
  outcome.total_seconds = result->stats.total_seconds;
  outcome.network_bytes = result->stats.cluster.network_bytes;
  outcome.messages = result->stats.cluster.messages;
  outcome.cpu_seconds = result->stats.cluster.cpu_seconds;
  outcome.bags = result->stats.bags;
  for (const std::string& name : fs.ListFiles()) {
    outcome.files[name] = *fs.Read(name);
  }
  return outcome;
}

void ExpectIdentical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.total_seconds, b.total_seconds);  // exact, not approximate
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.cpu_seconds, b.cpu_seconds);
  EXPECT_EQ(a.bags, b.bags);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (const auto& [name, data] : a.files) {
    auto it = b.files.find(name);
    ASSERT_TRUE(it != b.files.end()) << name;
    // Exact element ORDER equality, not just multiset: the whole schedule
    // must replay identically.
    EXPECT_EQ(data, it->second) << name;
  }
}

class DeterminismTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(DeterminismTest, RepeatedRunsAreBitIdentical) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 5, .entries_per_day = 500,
                                         .num_pages = 50});
  lang::Program program = workloads::VisitCountProgram({.days = 5});
  RunOutcome first = RunOnce(GetParam(), program, inputs, 4);
  RunOutcome second = RunOnce(GetParam(), program, inputs, 4);
  ExpectIdentical(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DeterminismTest,
    ::testing::Values(EngineKind::kMitos, EngineKind::kMitosNoPipelining,
                      EngineKind::kMitosNoHoisting, EngineKind::kFlink,
                      EngineKind::kSpark),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      std::string name = EngineKindName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DeterminismTest, GeneratorsAreSeedStable) {
  sim::SimFileSystem a, b;
  workloads::GenerateVisitLogs(&a, {.days = 3, .entries_per_day = 100,
                                    .num_pages = 10, .seed = 99});
  workloads::GenerateVisitLogs(&b, {.days = 3, .entries_per_day = 100,
                                    .num_pages = 10, .seed = 99});
  for (const std::string& name : a.ListFiles()) {
    EXPECT_EQ(*a.Read(name), *b.Read(name));
  }
  sim::SimFileSystem c;
  workloads::GenerateVisitLogs(&c, {.days = 3, .entries_per_day = 100,
                                    .num_pages = 10, .seed = 100});
  EXPECT_NE(*a.Read("pageVisitLog1"), *c.Read("pageVisitLog1"));
}

// Every figure workload, run twice in one process: bit-identical results
// AND virtual end times. This is what makes the benchmark figures (and the
// fault-recovery byte-identity guarantee, which compares against a
// fault-free reference run) trustworthy.
TEST(DeterminismTest, KMeansIsRunToRunIdentical) {
  sim::SimFileSystem inputs;
  workloads::GeneratePoints(&inputs, {.num_points = 2000, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  ExpectIdentical(RunOnce(EngineKind::kMitos, program, inputs, 4),
                  RunOnce(EngineKind::kMitos, program, inputs, 4));
}

TEST(DeterminismTest, PageRankIsRunToRunIdentical) {
  sim::SimFileSystem inputs;
  workloads::GenerateGraph(&inputs, {.num_vertices = 200, .num_edges = 800});
  lang::Program program =
      workloads::PageRankProgram({.iterations = 5, .num_vertices = 200});
  ExpectIdentical(RunOnce(EngineKind::kMitos, program, inputs, 4),
                  RunOnce(EngineKind::kMitos, program, inputs, 4));
}

TEST(DeterminismTest, ConnectedComponentsIsRunToRunIdentical) {
  sim::SimFileSystem inputs;
  workloads::GenerateGraph(&inputs, {.num_vertices = 150, .num_edges = 400});
  lang::Program program = workloads::ConnectedComponentsProgram();
  ExpectIdentical(RunOnce(EngineKind::kMitos, program, inputs, 4),
                  RunOnce(EngineKind::kMitos, program, inputs, 4));
}

TEST(DeterminismTest, StepOverheadLoopIsRunToRunIdentical) {
  sim::SimFileSystem inputs;
  lang::Program program = workloads::StepOverheadProgram(10);
  ExpectIdentical(RunOnce(EngineKind::kMitos, program, inputs, 4),
                  RunOnce(EngineKind::kMitos, program, inputs, 4));
  ExpectIdentical(RunOnce(EngineKind::kMitosNoPipelining, program, inputs, 4),
                  RunOnce(EngineKind::kMitosNoPipelining, program, inputs, 4));
}

TEST(DeterminismTest, MachineCountChangesScheduleButNotResults) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 4, .entries_per_day = 300,
                                         .num_pages = 30});
  lang::Program program = workloads::VisitCountProgram({.days = 4});
  RunOutcome m2 = RunOnce(EngineKind::kMitos, program, inputs, 2);
  RunOutcome m8 = RunOnce(EngineKind::kMitos, program, inputs, 8);
  // Different parallelism, same logical outputs per file (as multisets —
  // partition order differs).
  ASSERT_EQ(m2.files.size(), m8.files.size());
  for (auto& [name, data] : m2.files) {
    DatumVector a = data;
    DatumVector b = m8.files.at(name);
    std::sort(a.begin(), a.end(),
              [](const Datum& x, const Datum& y) { return x < y; });
    std::sort(b.begin(), b.end(),
              [](const Datum& x, const Datum& y) { return x < y; });
    EXPECT_EQ(a, b) << name;
  }
}

}  // namespace
}  // namespace mitos::api
