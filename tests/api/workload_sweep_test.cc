// Parameterized sweep: every canonical workload agrees with the reference
// interpreter under Mitos across a range of machine counts.
#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::api {
namespace {

enum class Workload {
  kVisitCountSimple,
  kVisitCountDiffs,
  kVisitCountPageTypes,
  kPageRank,
  kKMeans,
  kConnectedComponents,
};

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kVisitCountSimple: return "VisitCountSimple";
    case Workload::kVisitCountDiffs: return "VisitCountDiffs";
    case Workload::kVisitCountPageTypes: return "VisitCountPageTypes";
    case Workload::kPageRank: return "PageRank";
    case Workload::kKMeans: return "KMeans";
    case Workload::kConnectedComponents: return "ConnectedComponents";
  }
  return "?";
}

struct Case {
  Workload workload;
  int machines;
};

lang::Program MakeProgram(Workload w, sim::SimFileSystem* inputs) {
  switch (w) {
    case Workload::kVisitCountSimple:
      workloads::GenerateVisitLogs(inputs, {.days = 4,
                                            .entries_per_day = 300,
                                            .num_pages = 25});
      return workloads::VisitCountProgram({.days = 4, .with_diffs = false});
    case Workload::kVisitCountDiffs:
      workloads::GenerateVisitLogs(inputs, {.days = 4,
                                            .entries_per_day = 300,
                                            .num_pages = 25});
      return workloads::VisitCountProgram({.days = 4});
    case Workload::kVisitCountPageTypes:
      workloads::GenerateVisitLogs(inputs, {.days = 3,
                                            .entries_per_day = 300,
                                            .num_pages = 30});
      workloads::GeneratePageTypes(inputs, {.num_pages = 30,
                                            .num_types = 3});
      return workloads::VisitCountProgram({.days = 3,
                                           .with_page_types = true});
    case Workload::kPageRank:
      workloads::GenerateGraph(inputs, {.num_vertices = 50,
                                        .num_edges = 250});
      return workloads::PageRankProgram({.iterations = 4,
                                         .num_vertices = 50});
    case Workload::kKMeans:
      workloads::GeneratePoints(inputs, {.num_points = 120,
                                         .num_clusters = 3});
      return workloads::KMeansProgram({.iterations = 3});
    case Workload::kConnectedComponents:
      workloads::GenerateGraph(inputs, {.num_vertices = 30,
                                        .num_edges = 45});
      return workloads::ConnectedComponentsProgram();
  }
  MITOS_UNREACHABLE();
  return {};
}

// Output files holding double-valued aggregates (which reduce in a
// different order when distributed) need keyed approximate comparison;
// keys are unique in these files, unlike in the raw inputs.
const char* ApproxCompareFile(Workload w) {
  if (w == Workload::kPageRank) return "ranks";
  if (w == Workload::kKMeans) return "centroids_out";
  return nullptr;
}

bool ApproxEqual(const Datum& a, const Datum& b) {
  if (a.kind() != b.kind()) return false;
  if (a.is_double()) {
    double x = a.dbl(), y = b.dbl();
    return std::abs(x - y) <= 1e-9 * (1.0 + std::abs(x) + std::abs(y));
  }
  if (a.is_tuple()) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!ApproxEqual(a.field(i), b.field(i))) return false;
    }
    return true;
  }
  return a == b;
}

class WorkloadSweepTest : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadSweepTest, MitosMatchesReference) {
  const Case& c = GetParam();
  sim::SimFileSystem inputs;
  lang::Program program = MakeProgram(c.workload, &inputs);

  sim::SimFileSystem fs_ref = inputs;
  auto ref = ::mitos::api::Run(EngineKind::kReference, program, &fs_ref);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  sim::SimFileSystem fs = inputs;
  auto result = ::mitos::api::Run(EngineKind::kMitos, program, &fs,
                    {.machines = c.machines});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.jobs, 1);

  ASSERT_EQ(fs_ref.ListFiles(), fs.ListFiles());
  for (const std::string& name : fs_ref.ListFiles()) {
    DatumVector expected = *fs_ref.Read(name);
    DatumVector actual = *fs.Read(name);
    ASSERT_EQ(expected.size(), actual.size()) << name;
    const char* approx_file = ApproxCompareFile(c.workload);
    if (approx_file != nullptr && name == approx_file) {
      std::map<Datum, Datum> by_key;
      for (const Datum& e : expected) by_key[e.field(0)] = e;
      for (const Datum& a : actual) {
        auto it = by_key.find(a.field(0));
        ASSERT_TRUE(it != by_key.end()) << name;
        EXPECT_TRUE(ApproxEqual(it->second, a))
            << name << ": " << it->second.ToString() << " vs "
            << a.ToString();
      }
    } else {
      std::sort(expected.begin(), expected.end(),
                [](const Datum& x, const Datum& y) { return x < y; });
      std::sort(actual.begin(), actual.end(),
                [](const Datum& x, const Datum& y) { return x < y; });
      EXPECT_EQ(expected, actual) << name;
    }
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (Workload w : {Workload::kVisitCountSimple, Workload::kVisitCountDiffs,
                     Workload::kVisitCountPageTypes, Workload::kPageRank,
                     Workload::kKMeans, Workload::kConnectedComponents}) {
    for (int machines : {1, 2, 5, 9}) {
      cases.push_back({w, machines});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSweepTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(WorkloadName(info.param.workload)) + "_m" +
             std::to_string(info.param.machines);
    });

}  // namespace
}  // namespace mitos::api
