// Differential fuzzing: seeded random imperative programs are run through
// the reference interpreter, Mitos (several machine counts and option
// combinations), and the baselines; all file outputs must match as
// multisets.
//
// The generator produces well-typed, guaranteed-terminating programs over
// a small grammar: bounded counter loops (while/do-while, nesting <= 2),
// ifs on counter parity, and a mix of bag operations over two shapes
// (plain int64 bags and (k, v) pair bags), with loop-carried bags and
// joins whose build side may come from an enclosing scope — the exact
// territory of the paper's Challenges 1-3.
#include <algorithm>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "common/rng.h"
#include "lang/builder.h"

namespace mitos::api {
namespace {

using lang::ExprPtr;
using lang::ProgramBuilder;

DatumVector Sorted(DatumVector v) {
  std::sort(v.begin(), v.end(),
            [](const Datum& a, const Datum& b) { return a < b; });
  return v;
}

enum class BagShape { kInt, kPair };

class ProgramGenerator {
 public:
  explicit ProgramGenerator(uint64_t seed) : rng_(seed) {}

  lang::Program Generate() {
    // Seed bags.
    int num_seeds = 2 + static_cast<int>(rng_.NextBelow(2));
    for (int i = 0; i < num_seeds; ++i) {
      std::string name = NewVar();
      BagShape shape = rng_.NextBelow(2) == 0 ? BagShape::kInt
                                              : BagShape::kPair;
      pb_.Assign(name, lang::BagLit(RandomBag(shape)));
      bags_.push_back({name, shape});
    }
    EmitStmts(/*budget=*/6 + static_cast<int>(rng_.NextBelow(6)),
              /*loop_depth=*/0);
    // Write out every live bag so every computation is observable.
    int out = 0;
    for (const auto& [name, shape] : bags_) {
      pb_.WriteFile(lang::Var(name),
                    lang::LitString("out" + std::to_string(out++)));
    }
    return pb_.Build();
  }

 private:
  struct BagVar {
    std::string name;
    BagShape shape;
  };

  std::string NewVar() { return "v" + std::to_string(counter_++); }

  DatumVector RandomBag(BagShape shape) {
    DatumVector data;
    size_t n = 1 + rng_.NextBelow(40);
    for (size_t i = 0; i < n; ++i) {
      int64_t k = static_cast<int64_t>(rng_.NextBelow(12));
      if (shape == BagShape::kInt) {
        data.push_back(Datum::Int64(k));
      } else {
        data.push_back(Datum::Pair(
            Datum::Int64(k),
            Datum::Int64(static_cast<int64_t>(rng_.NextBelow(100)))));
      }
    }
    return data;
  }

  const BagVar& RandomBagVar() {
    return bags_[rng_.NextBelow(bags_.size())];
  }

  // Picks a bag of the wanted shape, or derives one from an existing bag.
  std::string BagOfShape(BagShape want) {
    std::vector<const BagVar*> candidates;
    for (const BagVar& b : bags_) {
      if (b.shape == want) candidates.push_back(&b);
    }
    if (!candidates.empty()) {
      return candidates[rng_.NextBelow(candidates.size())]->name;
    }
    // Convert a random bag into the wanted shape.
    const BagVar& src = RandomBagVar();
    std::string name = NewVar();
    if (want == BagShape::kPair) {
      ExprPtr in = lang::Var(src.name);
      if (src.shape == BagShape::kPair) {
        in = lang::Map(in, lang::fns::Field(0));
      }
      pb_.Assign(name, lang::Map(in, lang::fns::PairWithOne()));
    } else {
      ExprPtr in = lang::Var(src.name);
      if (src.shape == BagShape::kPair) {
        pb_.Assign(name, lang::Map(in, lang::fns::Field(1)));
      } else {
        pb_.Assign(name, lang::Map(in, lang::fns::AddInt64(1)));
      }
    }
    bags_.push_back({name, want});
    return name;
  }

  void EmitBagStmt() {
    switch (rng_.NextBelow(9)) {
      case 0: {  // int map
        std::string in = BagOfShape(BagShape::kInt);
        std::string name = NewVar();
        pb_.Assign(name, lang::Map(lang::Var(in), lang::fns::AddInt64(
                                                      rng_.NextInRange(-3,
                                                                       3))));
        bags_.push_back({name, BagShape::kInt});
        break;
      }
      case 1: {  // filter
        std::string in = BagOfShape(BagShape::kInt);
        std::string name = NewVar();
        pb_.Assign(name,
                   lang::Filter(lang::Var(in),
                                lang::fns::Int64ModEquals(
                                    2 + rng_.NextInRange(0, 2),
                                    0)));
        bags_.push_back({name, BagShape::kInt});
        break;
      }
      case 2: {  // pair from int
        std::string in = BagOfShape(BagShape::kInt);
        std::string name = NewVar();
        pb_.Assign(name, lang::Map(lang::Var(in), lang::fns::PairWithOne()));
        bags_.push_back({name, BagShape::kPair});
        break;
      }
      case 3: {  // reduceByKey
        std::string in = BagOfShape(BagShape::kPair);
        std::string name = NewVar();
        pb_.Assign(name, lang::ReduceByKey(lang::Var(in),
                                           lang::fns::SumInt64()));
        bags_.push_back({name, BagShape::kPair});
        break;
      }
      case 4: {  // join two pair bags, project back to a pair
        std::string build = BagOfShape(BagShape::kPair);
        std::string probe = BagOfShape(BagShape::kPair);
        std::string name = NewVar();
        pb_.Assign(name,
                   lang::Map(lang::Join(lang::Var(build), lang::Var(probe)),
                             {"sumJoin", [](const Datum& t) {
                                return Datum::Pair(
                                    t.field(0),
                                    Datum::Int64(t.field(1).int64() +
                                                 t.field(2).int64()));
                              }}));
        bags_.push_back({name, BagShape::kPair});
        break;
      }
      case 5: {  // union (same shape)
        BagShape shape = rng_.NextBelow(2) == 0 ? BagShape::kInt
                                                : BagShape::kPair;
        std::string a = BagOfShape(shape);
        std::string b = BagOfShape(shape);
        std::string name = NewVar();
        pb_.Assign(name, lang::Union(lang::Var(a), lang::Var(b)));
        bags_.push_back({name, shape});
        break;
      }
      case 6: {  // distinct
        std::string in = BagOfShape(BagShape::kInt);
        std::string name = NewVar();
        pb_.Assign(name, lang::Distinct(lang::Var(in)));
        bags_.push_back({name, BagShape::kInt});
        break;
      }
      case 7: {  // values of pairs
        std::string in = BagOfShape(BagShape::kPair);
        std::string name = NewVar();
        pb_.Assign(name, lang::Map(lang::Var(in), lang::fns::Field(1)));
        bags_.push_back({name, BagShape::kInt});
        break;
      }
      case 8: {  // copy (tests identity materialization + loop carry)
        const BagVar& src = RandomBagVar();
        std::string name = NewVar();
        pb_.Assign(name, lang::Var(src.name));
        bags_.push_back({name, src.shape});
        break;
      }
    }
  }

  void EmitStmts(int budget, int loop_depth) {
    while (budget-- > 0) {
      uint64_t pick = rng_.NextBelow(10);
      if (pick < 6 || loop_depth >= 2) {
        EmitBagStmt();
      } else if (pick < 8) {
        EmitLoop(loop_depth);
      } else {
        EmitIf(loop_depth);
      }
    }
  }

  void EmitLoop(int loop_depth) {
    std::string counter = NewVar();
    int64_t iterations = static_cast<int64_t>(rng_.NextBelow(4));
    pb_.Assign(counter, lang::LitInt(0));
    size_t scope = bags_.size();
    auto body = [&] {
      // Reassign an existing bag inside the loop so it is loop-carried.
      EmitStmts(1 + static_cast<int>(rng_.NextBelow(3)), loop_depth + 1);
      ReassignExistingBag(scope);
      pb_.Assign(counter, lang::Add(lang::Var(counter), lang::LitInt(1)));
    };
    if (rng_.NextBelow(2) == 0) {
      pb_.While(lang::Lt(lang::Var(counter), lang::LitInt(iterations)), body);
      // A while body may run zero times: its definitions do not escape.
      bags_.resize(scope);
    } else {
      pb_.DoWhile(body,
                  lang::Lt(lang::Var(counter), lang::LitInt(iterations)));
      // Do-while definitions escape (the body runs at least once).
    }
  }

  void EmitIf(int loop_depth) {
    std::string flag = NewVar();
    pb_.Assign(flag, lang::LitInt(rng_.NextInRange(0, 1)));
    size_t scope = bags_.size();
    auto then_body = [&] {
      EmitStmts(1 + static_cast<int>(rng_.NextBelow(2)), loop_depth + 1);
      ReassignExistingBag(scope);
    };
    if (rng_.NextBelow(2) == 0) {
      pb_.If(lang::Eq(lang::Var(flag), lang::LitInt(1)), then_body);
    } else {
      pb_.If(lang::Eq(lang::Var(flag), lang::LitInt(1)), then_body,
             [&] { ReassignExistingBag(scope); });
    }
    // Branch-local definitions do not escape the if.
    bags_.resize(scope);
  }

  // x = x.map(...) for a bag existing OUTSIDE the current scope: creates
  // Φs at loop heads and if joins.
  void ReassignExistingBag(size_t scope) {
    MITOS_CHECK_GT(scope, 0u);
    const BagVar& target = bags_[rng_.NextBelow(scope)];
    if (target.shape == BagShape::kInt) {
      pb_.Assign(target.name, lang::Map(lang::Var(target.name),
                                        lang::fns::AddInt64(1)));
    } else {
      pb_.Assign(target.name, lang::ReduceByKey(lang::Var(target.name),
                                                lang::fns::SumInt64()));
    }
  }

  ProgramBuilder pb_;
  std::vector<BagVar> bags_;
  Rng rng_;
  int counter_ = 0;
};

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, AllEnginesMatchReference) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  ProgramGenerator generator(seed);
  lang::Program program = generator.Generate();

  sim::SimFileSystem fs_ref;
  auto ref = ::mitos::api::Run(EngineKind::kReference, program, &fs_ref);
  ASSERT_TRUE(ref.ok()) << "seed " << seed << ": "
                        << ref.status().ToString() << "\n"
                        << lang::ToString(program);

  struct Variant {
    EngineKind engine;
    int machines;
    bool fusion = false;
  };
  std::vector<Variant> variants = {
      {EngineKind::kMitos, 1},
      {EngineKind::kMitos, 3},
      {EngineKind::kMitos, 7},
      {EngineKind::kMitos, 3, /*fusion=*/true},
      {EngineKind::kMitosNoPipelining, 3},
      {EngineKind::kMitosNoHoisting, 3},
      {EngineKind::kFlink, 3},
      {EngineKind::kSpark, 3},
  };
  for (const Variant& v : variants) {
    sim::SimFileSystem fs;
    auto result = ::mitos::api::Run(
        v.engine, program, &fs,
        {.machines = v.machines, .mitos_operator_fusion = v.fusion});
    ASSERT_TRUE(result.ok())
        << "seed " << seed << " " << EngineKindName(v.engine) << "@"
        << v.machines << ": " << result.status().ToString() << "\n"
        << lang::ToString(program);
    ASSERT_EQ(fs_ref.ListFiles(), fs.ListFiles())
        << "seed " << seed << " " << EngineKindName(v.engine);
    for (const std::string& name : fs_ref.ListFiles()) {
      ASSERT_EQ(Sorted(*fs_ref.Read(name)), Sorted(*fs.Read(name)))
          << "seed " << seed << " " << EngineKindName(v.engine) << "@"
          << v.machines << " differs in " << name << "\nprogram:\n"
          << lang::ToString(program);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace mitos::api
