#include "api/engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include <gtest/gtest.h>

#include "lang/builder.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::api {
namespace {

DatumVector Sorted(DatumVector v) {
  std::sort(v.begin(), v.end(),
            [](const Datum& a, const Datum& b) { return a < b; });
  return v;
}

bool ApproxEqual(const Datum& a, const Datum& b) {
  if (a.kind() != b.kind()) return false;
  if (a.is_double()) {
    double x = a.dbl(), y = b.dbl();
    return std::abs(x - y) <= 1e-9 * (1.0 + std::abs(x) + std::abs(y));
  }
  if (a.is_tuple()) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!ApproxEqual(a.field(i), b.field(i))) return false;
    }
    return true;
  }
  return a == b;
}

// Compares keyed outputs (elements are tuples with a unique field-0 key)
// with floating-point tolerance: distributed reductions add doubles in a
// different order than the sequential reference, so exact equality is not
// expected for double-valued aggregates.
void ExpectKeyedApproxEqual(const DatumVector& expected,
                            const DatumVector& actual,
                            const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  // Non-tuple files (e.g. raw inputs) compare exactly.
  if (!expected.empty() && !expected[0].is_tuple()) {
    EXPECT_EQ(Sorted(expected), Sorted(actual)) << context;
    return;
  }
  std::map<Datum, Datum> by_key_expected, by_key_actual;
  for (const Datum& e : expected) by_key_expected[e.field(0)] = e;
  for (const Datum& a : actual) by_key_actual[a.field(0)] = a;
  ASSERT_EQ(by_key_expected.size(), by_key_actual.size()) << context;
  for (const auto& [key, value] : by_key_expected) {
    auto it = by_key_actual.find(key);
    ASSERT_TRUE(it != by_key_actual.end())
        << context << ": missing key " << key.ToString();
    EXPECT_TRUE(ApproxEqual(value, it->second))
        << context << ": " << value.ToString() << " vs "
        << it->second.ToString();
  }
}

// All engines must produce identical file outputs (as multisets) for the
// same program and inputs: the paper's coordination algorithm promises the
// distributed execution creates "the same bags ... as a non-parallel
// execution would" (Sec. 5.2), and the baselines implement the same
// language.
void ExpectAllEnginesAgree(const lang::Program& program,
                           const sim::SimFileSystem& inputs, int machines,
                           bool keyed_approx = false) {
  sim::SimFileSystem fs_ref = inputs;
  auto ref = ::mitos::api::Run(EngineKind::kReference, program, &fs_ref);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (EngineKind engine :
       {EngineKind::kMitos, EngineKind::kMitosNoPipelining,
        EngineKind::kMitosNoHoisting, EngineKind::kFlink,
        EngineKind::kSpark, EngineKind::kFlinkSeparateJobs,
        EngineKind::kNaiad, EngineKind::kTensorFlow}) {
    sim::SimFileSystem fs = inputs;
    auto result = Run(engine, program, &fs, {.machines = machines});
    ASSERT_TRUE(result.ok())
        << EngineKindName(engine) << ": " << result.status().ToString();
    EXPECT_EQ(fs_ref.ListFiles(), fs.ListFiles()) << EngineKindName(engine);
    for (const std::string& name : fs_ref.ListFiles()) {
      if (keyed_approx) {
        ExpectKeyedApproxEqual(*fs_ref.Read(name), *fs.Read(name),
                               std::string(EngineKindName(engine)) + "/" +
                                   name);
      } else {
        EXPECT_EQ(Sorted(*fs_ref.Read(name)), Sorted(*fs.Read(name)))
            << EngineKindName(engine) << " differs in file " << name;
      }
    }
  }
}

TEST(EngineAgreementTest, VisitCountSimple) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(
      &inputs, {.days = 4, .entries_per_day = 200, .num_pages = 20});
  lang::Program program =
      workloads::VisitCountProgram({.days = 4, .with_diffs = false});
  ExpectAllEnginesAgree(program, inputs, 3);
}

TEST(EngineAgreementTest, VisitCountWithDiffs) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(
      &inputs, {.days = 5, .entries_per_day = 300, .num_pages = 30});
  lang::Program program = workloads::VisitCountProgram({.days = 5});
  ExpectAllEnginesAgree(program, inputs, 4);
}

TEST(EngineAgreementTest, VisitCountWithPageTypes) {
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(
      &inputs, {.days = 3, .entries_per_day = 250, .num_pages = 40});
  workloads::GeneratePageTypes(&inputs, {.num_pages = 40, .num_types = 3});
  lang::Program program = workloads::VisitCountProgram(
      {.days = 3, .with_page_types = true});
  ExpectAllEnginesAgree(program, inputs, 3);
}

TEST(EngineAgreementTest, PageRank) {
  sim::SimFileSystem inputs;
  workloads::GenerateGraph(&inputs,
                           {.num_vertices = 60, .num_edges = 300});
  lang::Program program = workloads::PageRankProgram(
      {.iterations = 5, .num_vertices = 60});
  ExpectAllEnginesAgree(program, inputs, 3, /*keyed_approx=*/true);
}

TEST(EngineAgreementTest, PageRankUntilConvergence) {
  // The convergence variant has a double-valued, data-dependent loop
  // condition (summed rank movement under an epsilon), so the iteration
  // count is decided at runtime. Compare only Mitos vs reference:
  // comparing distributed float reductions against the epsilon can flip
  // the final iteration between engines with different reduction orders,
  // so cross-engine agreement is checked on the fixed-iteration variant.
  sim::SimFileSystem inputs;
  workloads::GenerateGraph(&inputs, {.num_vertices = 40, .num_edges = 200});
  lang::Program program = workloads::PageRankProgram(
      {.iterations = 50, .num_vertices = 40, .convergence_epsilon = 1e-7});

  sim::SimFileSystem fs_ref = inputs;
  auto ref = ::mitos::api::Run(EngineKind::kReference, program, &fs_ref);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  sim::SimFileSystem fs = inputs;
  auto result = ::mitos::api::Run(EngineKind::kMitos, program, &fs,
                                  {.machines = 3});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Converged well before the cap, and the ranks agree to within the
  // (loose, relative to epsilon) tolerance despite possibly different
  // iteration counts.
  EXPECT_LT(result->stats.decisions, 50);
  auto expected = fs_ref.Read("ranks");
  auto actual = fs.Read("ranks");
  ASSERT_EQ(expected->size(), actual->size());
  std::map<Datum, double> by_key;
  for (const Datum& e : *expected) by_key[e.field(0)] = e.field(1).dbl();
  for (const Datum& a : *actual) {
    EXPECT_NEAR(a.field(1).dbl(), by_key.at(a.field(0)), 1e-5);
  }
  // Rank mass is conserved.
  double total = 0;
  for (const Datum& a : *actual) total += a.field(1).dbl();
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(EngineAgreementTest, KMeans) {
  sim::SimFileSystem inputs;
  workloads::GeneratePoints(&inputs, {.num_points = 150, .num_clusters = 3});
  lang::Program program = workloads::KMeansProgram({.iterations = 4});
  ExpectAllEnginesAgree(program, inputs, 3, /*keyed_approx=*/true);
}

TEST(EngineAgreementTest, ConnectedComponentsConvergenceLoop) {
  // Data-dependent loop condition (iterate until no label changes): the
  // decision count is not known statically.
  sim::SimFileSystem inputs;
  workloads::GenerateGraph(&inputs, {.num_vertices = 40, .num_edges = 80});
  lang::Program program = workloads::ConnectedComponentsProgram();
  ExpectAllEnginesAgree(program, inputs, 3);

  // Components are correct: every vertex's label is the minimum vertex id
  // reachable from it (checked against a plain union-find).
  sim::SimFileSystem fs = inputs;
  auto result = ::mitos::api::Run(EngineKind::kMitos, program, &fs,
                                  {.machines = 3});
  ASSERT_TRUE(result.ok());
  auto vertices = inputs.Read("vertices");
  auto edges = inputs.Read("edges");
  std::vector<int64_t> parent(vertices->size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = (int64_t)i;
  std::function<int64_t(int64_t)> find = [&](int64_t x) {
    while (parent[(size_t)x] != x) {
      x = parent[(size_t)x] = parent[(size_t)parent[(size_t)x]];
    }
    return x;
  };
  for (const Datum& e : *edges) {
    int64_t a = find(e.field(0).int64()), b = find(e.field(1).int64());
    if (a != b) parent[(size_t)std::max(a, b)] = std::min(a, b);
  }
  // Normalize roots to the minimum member id.
  std::map<int64_t, int64_t> root_min;
  for (size_t v = 0; v < parent.size(); ++v) {
    int64_t r = find((int64_t)v);
    auto it = root_min.find(r);
    if (it == root_min.end() || (int64_t)v < it->second) {
      root_min[r] = std::min<int64_t>((int64_t)v, r);
    }
  }
  auto components = fs.Read("components");
  ASSERT_TRUE(components.ok());
  ASSERT_EQ(components->size(), vertices->size());
  for (const Datum& c : *components) {
    int64_t v = c.field(0).int64();
    EXPECT_EQ(c.field(1).int64(), root_min.at(find(v)))
        << "vertex " << v;
  }
}

TEST(EngineAgreementTest, StepOverheadLoop) {
  sim::SimFileSystem inputs;
  lang::Program program = workloads::StepOverheadProgram(10);
  ExpectAllEnginesAgree(program, inputs, 2);
}

// ----- timing properties (the paper's qualitative claims) -----

double TimeOf(EngineKind engine, const lang::Program& program,
              const sim::SimFileSystem& inputs, int machines) {
  sim::SimFileSystem fs = inputs;
  auto result = Run(engine, program, &fs, {.machines = machines});
  EXPECT_TRUE(result.ok())
      << EngineKindName(engine) << ": " << result.status().ToString();
  if (!result.ok()) return 0;
  return result->stats.total_seconds;
}

class TimingPropertiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::GenerateVisitLogs(
        &inputs_, {.days = 8, .entries_per_day = 4000, .num_pages = 500});
    program_ = workloads::VisitCountProgram({.days = 8});
  }
  sim::SimFileSystem inputs_;
  lang::Program program_;
};

TEST_F(TimingPropertiesTest, PipeliningNeverHurts) {
  // Sec. 6.6: overlapping iteration steps can only help.
  double pipelined = TimeOf(EngineKind::kMitos, program_, inputs_, 4);
  double barriered =
      TimeOf(EngineKind::kMitosNoPipelining, program_, inputs_, 4);
  EXPECT_LE(pipelined, barriered * 1.0001);
}

TEST_F(TimingPropertiesTest, MitosBeatsSparkOnIterativeWork) {
  // Sec. 6.2: per-step job launches make Spark much slower.
  double mitos = TimeOf(EngineKind::kMitos, program_, inputs_, 4);
  double spark = TimeOf(EngineKind::kSpark, program_, inputs_, 4);
  EXPECT_LT(mitos * 2, spark);
}

TEST_F(TimingPropertiesTest, MitosBeatsFlinkSim) {
  // Sec. 6.6: no barrier, no per-step overhead.
  double mitos = TimeOf(EngineKind::kMitos, program_, inputs_, 4);
  double flink = TimeOf(EngineKind::kFlink, program_, inputs_, 4);
  EXPECT_LT(mitos, flink);
}

TEST_F(TimingPropertiesTest, SparkStepOverheadGrowsWithMachines) {
  // Sec. 6.4: job-launch overhead is linear in the machine count, so the
  // *overhead-dominated* Spark run gets slower with more machines on a
  // fixed small input.
  lang::Program tiny = workloads::StepOverheadProgram(10);
  sim::SimFileSystem none;
  double spark4 = TimeOf(EngineKind::kSpark, tiny, none, 4);
  double spark16 = TimeOf(EngineKind::kSpark, tiny, none, 16);
  EXPECT_GT(spark16, spark4 * 1.5);
}

TEST_F(TimingPropertiesTest, MitosStepOverheadStaysFlat) {
  // Per-step overhead = marginal time per additional step (the one-time job
  // launch cancels out). It must stay roughly flat in the machine count,
  // unlike Spark's (Fig. 7).
  sim::SimFileSystem none;
  auto per_step = [&](EngineKind engine, int machines) {
    double t_short =
        TimeOf(engine, workloads::StepOverheadProgram(10), none, machines);
    double t_long =
        TimeOf(engine, workloads::StepOverheadProgram(60), none, machines);
    return (t_long - t_short) / 50.0;
  };
  double mitos4 = per_step(EngineKind::kMitos, 4);
  double mitos16 = per_step(EngineKind::kMitos, 16);
  EXPECT_LT(mitos16, mitos4 * 3.0);
  // And it is orders of magnitude below Spark's per-step job launch.
  double spark16 = per_step(EngineKind::kSpark, 16);
  EXPECT_LT(mitos16 * 50, spark16);
}

TEST(HoistingTimingTest, HoistingHelpsWithLargeInvariantDataset) {
  // Sec. 6.5: with a large loop-invariant build side, rebuilding the hash
  // table every step costs linearly in its size.
  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(
      &inputs, {.days = 6, .entries_per_day = 500, .num_pages = 500});
  // A large invariant dataset: the rebuild cost without hoisting is per
  // element per step.
  workloads::GeneratePageTypes(&inputs, {.num_pages = 200'000,
                                         .num_types = 3});
  lang::Program program = workloads::VisitCountProgram(
      {.days = 6, .with_page_types = true});
  double with = TimeOf(EngineKind::kMitos, program, inputs, 3);
  double without = TimeOf(EngineKind::kMitosNoHoisting, program, inputs, 3);
  EXPECT_LT(with * 1.05, without);
}

TEST(EngineTest, FlinkStrictRejectsVisitCount) {
  // Sec. 2: file I/O and ifs inside loops are outside Flink's native
  // iteration fragment.
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(&fs, {.days = 2, .entries_per_day = 10,
                                     .num_pages = 5});
  lang::Program program = workloads::VisitCountProgram({.days = 2});
  auto result = ::mitos::api::Run(EngineKind::kFlink, program, &fs,
                    {.machines = 2, .flink_strict = true});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(EngineTest, SparkCountsOneJobPerStepForVisitCount) {
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(&fs, {.days = 6, .entries_per_day = 50,
                                     .num_pages = 10});
  lang::Program program = workloads::VisitCountProgram({.days = 6});
  auto result =
      ::mitos::api::Run(EngineKind::kSpark, program, &fs, {.machines = 2});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // One action (the diff write) per day except day 1: 5 jobs... plus the
  // job count must scale with steps, not stay constant.
  EXPECT_GE(result->stats.jobs, 5);
  EXPECT_LE(result->stats.jobs, 7);
}

TEST(EngineTest, MitosRunsSingleJob) {
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(&fs, {.days = 6, .entries_per_day = 50,
                                     .num_pages = 10});
  lang::Program program = workloads::VisitCountProgram({.days = 6});
  auto result =
      ::mitos::api::Run(EngineKind::kMitos, program, &fs, {.machines = 2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.jobs, 1);
  // Two decisions per day: the if and the loop exit.
  EXPECT_EQ(result->stats.decisions, 12);
}

TEST(EngineTest, ReferenceEngineWritesOutputs) {
  sim::SimFileSystem fs;
  workloads::GenerateVisitLogs(&fs, {.days = 2, .entries_per_day = 20,
                                     .num_pages = 5});
  lang::Program program = workloads::VisitCountProgram({.days = 2});
  auto result = ::mitos::api::Run(EngineKind::kReference, program, &fs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(fs.Exists("diff2"));
}

}  // namespace
}  // namespace mitos::api
