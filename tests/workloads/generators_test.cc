#include "workloads/generators.h"

#include <set>

#include <gtest/gtest.h>

namespace mitos::workloads {
namespace {

TEST(GeneratorsTest, VisitLogsShapeAndRange) {
  sim::SimFileSystem fs;
  GenerateVisitLogs(&fs, {.days = 3, .entries_per_day = 500,
                          .num_pages = 20});
  for (int day = 1; day <= 3; ++day) {
    auto data = fs.Read("pageVisitLog" + std::to_string(day));
    ASSERT_TRUE(data.ok());
    ASSERT_EQ(data->size(), 500u);
    for (const Datum& d : *data) {
      ASSERT_TRUE(d.is_int64());
      EXPECT_GE(d.int64(), 0);
      EXPECT_LT(d.int64(), 20);
    }
  }
  EXPECT_FALSE(fs.Exists("pageVisitLog4"));
}

TEST(GeneratorsTest, VisitLogsRoughlyUniform) {
  // The paper generates visits uniformly distributed (Sec. 6.1).
  sim::SimFileSystem fs;
  GenerateVisitLogs(&fs, {.days = 1, .entries_per_day = 100'000,
                          .num_pages = 10});
  auto data = fs.Read("pageVisitLog1");
  std::vector<int> counts(10, 0);
  for (const Datum& d : *data) ++counts[static_cast<size_t>(d.int64())];
  for (int c : counts) {
    EXPECT_GT(c, 9'000);
    EXPECT_LT(c, 11'000);
  }
}

TEST(GeneratorsTest, PageTypesCoverEveryPageOnce) {
  sim::SimFileSystem fs;
  GeneratePageTypes(&fs, {.num_pages = 50, .num_types = 4});
  auto data = fs.Read("pageTypes");
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), 50u);
  std::set<int64_t> pages;
  for (const Datum& row : *data) {
    pages.insert(row.field(0).int64());
    EXPECT_GE(row.field(1).int64(), 0);
    EXPECT_LT(row.field(1).int64(), 4);
  }
  EXPECT_EQ(pages.size(), 50u);
}

TEST(GeneratorsTest, PageTypePaddingScalesRowBytes) {
  sim::SimFileSystem plain, padded;
  GeneratePageTypes(&plain, {.num_pages = 100, .num_types = 2});
  GeneratePageTypes(&padded, {.num_pages = 100, .num_types = 2,
                              .padding_bytes = 180});
  EXPECT_GT(padded.FileBytes("pageTypes"),
            plain.FileBytes("pageTypes") + 100 * 170);
  // Key/type fields stay in place.
  auto row = (*padded.Read("pageTypes"))[0];
  EXPECT_TRUE(row.field(0).is_int64());
  EXPECT_TRUE(row.field(1).is_int64());
}

TEST(GeneratorsTest, GraphHasOutEdgeForEveryVertex) {
  sim::SimFileSystem fs;
  GenerateGraph(&fs, {.num_vertices = 40, .num_edges = 120});
  auto vertices = fs.Read("vertices");
  auto edges = fs.Read("edges");
  ASSERT_EQ(vertices->size(), 40u);
  ASSERT_EQ(edges->size(), 120u);
  std::set<int64_t> sources;
  for (const Datum& e : *edges) {
    sources.insert(e.field(0).int64());
    EXPECT_GE(e.field(1).int64(), 0);
    EXPECT_LT(e.field(1).int64(), 40);
  }
  // Every vertex has at least one outgoing edge (so 1/out-degree exists).
  EXPECT_EQ(sources.size(), 40u);
}

TEST(GeneratorsTest, PointsAndCentroidsShape) {
  sim::SimFileSystem fs;
  GeneratePoints(&fs, {.num_points = 200, .num_clusters = 5});
  auto points = fs.Read("points");
  auto centroids = fs.Read("centroids");
  ASSERT_EQ(points->size(), 200u);
  ASSERT_EQ(centroids->size(), 5u);
  std::set<int64_t> ids;
  for (const Datum& p : *points) {
    ASSERT_EQ(p.size(), 3u);
    ids.insert(p.field(0).int64());
  }
  EXPECT_EQ(ids.size(), 200u);  // unique point ids
  for (const Datum& c : *centroids) {
    ASSERT_EQ(c.size(), 3u);
    EXPECT_TRUE(c.field(1).is_double());
  }
}

}  // namespace
}  // namespace mitos::workloads
