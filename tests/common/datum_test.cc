#include "common/datum.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

namespace mitos {
namespace {

TEST(DatumTest, KindsAndAccessors) {
  EXPECT_TRUE(Datum().is_null());
  EXPECT_EQ(Datum::Int64(42).int64(), 42);
  EXPECT_DOUBLE_EQ(Datum::Double(1.5).dbl(), 1.5);
  EXPECT_TRUE(Datum::Bool(true).boolean());
  EXPECT_EQ(Datum::String("abc").str(), "abc");

  Datum t = Datum::Tuple({Datum::Int64(1), Datum::String("x")});
  ASSERT_TRUE(t.is_tuple());
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.field(0).int64(), 1);
  EXPECT_EQ(t.field(1).str(), "x");
}

TEST(DatumTest, PairIsTwoFieldTuple) {
  Datum p = Datum::Pair(Datum::Int64(7), Datum::Int64(1));
  ASSERT_TRUE(p.is_tuple());
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.field(0).int64(), 7);
  EXPECT_EQ(p.field(1).int64(), 1);
}

TEST(DatumTest, EqualityIsValueBased) {
  EXPECT_EQ(Datum::Int64(3), Datum::Int64(3));
  EXPECT_NE(Datum::Int64(3), Datum::Int64(4));
  // No numeric coercion across kinds.
  EXPECT_NE(Datum::Int64(3), Datum::Double(3.0));
  EXPECT_EQ(Datum::Tuple({Datum::Int64(1), Datum::Int64(2)}),
            Datum::Tuple({Datum::Int64(1), Datum::Int64(2)}));
  EXPECT_NE(Datum::Tuple({Datum::Int64(1)}),
            Datum::Tuple({Datum::Int64(1), Datum::Int64(2)}));
  EXPECT_EQ(Datum(), Datum());
}

TEST(DatumTest, OrderingIsTotalAndKindMajor) {
  DatumVector values = {
      Datum::Tuple({Datum::Int64(2)}),
      Datum::String("b"),
      Datum::Int64(5),
      Datum(),
      Datum::Bool(false),
      Datum::Double(0.5),
      Datum::Int64(-1),
      Datum::String("a"),
  };
  std::sort(values.begin(), values.end(),
            [](const Datum& a, const Datum& b) { return a < b; });
  // Null < int64s < double < bool < strings < tuple.
  EXPECT_TRUE(values[0].is_null());
  EXPECT_EQ(values[1].int64(), -1);
  EXPECT_EQ(values[2].int64(), 5);
  EXPECT_TRUE(values[3].is_double());
  EXPECT_TRUE(values[4].is_bool());
  EXPECT_EQ(values[5].str(), "a");
  EXPECT_EQ(values[6].str(), "b");
  EXPECT_TRUE(values[7].is_tuple());
}

TEST(DatumTest, TupleOrderingIsLexicographic) {
  Datum a = Datum::Tuple({Datum::Int64(1), Datum::Int64(9)});
  Datum b = Datum::Tuple({Datum::Int64(2), Datum::Int64(0)});
  Datum c = Datum::Tuple({Datum::Int64(1)});
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(c < a);  // shorter prefix sorts first
}

TEST(DatumTest, HashConsistentWithEquality) {
  Datum a = Datum::Tuple({Datum::Int64(1), Datum::String("k")});
  Datum b = Datum::Tuple({Datum::Int64(1), Datum::String("k")});
  EXPECT_EQ(a.Hash(), b.Hash());

  std::unordered_set<Datum, DatumHash, DatumEq> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
  set.insert(Datum::Int64(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(DatumTest, HashSpreadsIntegers) {
  // Neighbouring int keys should not collide pairwise (sanity for the
  // shuffle partitioner).
  std::unordered_set<size_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) {
    hashes.insert(Datum::Int64(i).Hash());
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(DatumTest, SerializedSizeModel) {
  EXPECT_EQ(Datum::Int64(1).SerializedSize(), 8u);
  EXPECT_EQ(Datum::Double(1.0).SerializedSize(), 8u);
  EXPECT_EQ(Datum::Bool(true).SerializedSize(), 1u);
  EXPECT_EQ(Datum::String("abcd").SerializedSize(), 8u);  // 4 header + 4
  // Tuple: 4-byte header + fields.
  EXPECT_EQ(Datum::Pair(Datum::Int64(1), Datum::Int64(2)).SerializedSize(),
            4u + 16u);
  DatumVector v = {Datum::Int64(1), Datum::Int64(2)};
  EXPECT_EQ(SerializedSize(v), 16u);
}

TEST(DatumTest, ToStringRendering) {
  EXPECT_EQ(Datum::Int64(42).ToString(), "42");
  EXPECT_EQ(Datum::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Datum::Bool(false).ToString(), "false");
  EXPECT_EQ(Datum::Pair(Datum::Int64(1), Datum::String("a")).ToString(),
            "(1, \"a\")");
  EXPECT_EQ(Datum().ToString(), "null");
}

TEST(DatumTest, AsNumberCoercesIntAndDouble) {
  EXPECT_DOUBLE_EQ(Datum::Int64(3).AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(Datum::Double(2.5).AsNumber(), 2.5);
}

TEST(DatumTest, CopiesAreIndependentAndCheap) {
  Datum t = Datum::Tuple({Datum::Int64(1), Datum::Int64(2)});
  Datum copy = t;
  EXPECT_EQ(copy, t);
  // Tuples share immutable storage, so copies compare equal and stay valid
  // after the source is reassigned.
  t = Datum::Int64(0);
  EXPECT_EQ(copy.field(1).int64(), 2);
}

}  // namespace
}  // namespace mitos
