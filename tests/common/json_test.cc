#include "common/json.h"

#include <gtest/gtest.h>

namespace mitos::json {
namespace {

TEST(JsonParseTest, ScalarsAndNesting) {
  auto v = Value::Parse(
      R"({"a": 1.5, "b": [true, false, null, -2e3], "c": {"d": "x"}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->NumberOr("a", 0), 1.5);

  const Value* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array().size(), 4u);
  EXPECT_TRUE(b->array()[0].boolean());
  EXPECT_FALSE(b->array()[1].boolean());
  EXPECT_TRUE(b->array()[2].is_null());
  EXPECT_DOUBLE_EQ(b->array()[3].number(), -2000.0);

  const Value* c = v->Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->StringOr("d", ""), "x");
}

TEST(JsonParseTest, StringEscapes) {
  auto v = Value::Parse(R"(["a\"b", "tab\there", "A\n"])");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_EQ(v->array().size(), 3u);
  EXPECT_EQ(v->array()[0].string(), "a\"b");
  EXPECT_EQ(v->array()[1].string(), "tab\there");
  EXPECT_EQ(v->array()[2].string(), "A\n");
}

TEST(JsonParseTest, UnicodeEscapesDecodeToUtf8) {
  // ASCII, 2-byte (U+00E9), 3-byte (U+20AC), and a surrogate pair
  // (U+1F389) -- all previously collapsed to '?' for non-ASCII.
  auto v =
      Value::Parse(R"(["\u0041", "\u00e9", "\u20AC", "\ud83c\udf89"])");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_EQ(v->array().size(), 4u);
  EXPECT_EQ(v->array()[0].string(), "A");
  EXPECT_EQ(v->array()[1].string(), "\xC3\xA9");
  EXPECT_EQ(v->array()[2].string(), "\xE2\x82\xAC");
  EXPECT_EQ(v->array()[3].string(), "\xF0\x9F\x8E\x89");
}

TEST(JsonParseTest, LoneSurrogatesBecomeReplacementCharacter) {
  // High surrogate with no low, low alone, and high followed by a
  // non-surrogate escape (which must itself still decode).
  auto v = Value::Parse(R"(["\ud83c", "\udf89", "\ud83cX", "\ud83c\u0041"])");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const std::string replacement = "\xEF\xBF\xBD";  // U+FFFD
  EXPECT_EQ(v->array()[0].string(), replacement);
  EXPECT_EQ(v->array()[1].string(), replacement);
  EXPECT_EQ(v->array()[2].string(), replacement + "X");
  EXPECT_EQ(v->array()[3].string(), replacement + "A");
}

TEST(JsonParseTest, RejectsBadUnicodeEscapes) {
  EXPECT_FALSE(Value::Parse(R"("\u12")").ok());     // truncated
  EXPECT_FALSE(Value::Parse(R"("\u12g4")").ok());   // non-hex digit
  EXPECT_FALSE(Value::Parse(R"("\ud83c\uzz")").ok());  // bad pair tail
}

TEST(JsonParseTest, AccessorFallbacks) {
  auto v = Value::Parse(R"({"num": 7, "str": "s"})");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->NumberOr("missing", -1), -1);
  EXPECT_DOUBLE_EQ(v->NumberOr("str", -1), -1);  // mistyped -> fallback
  EXPECT_EQ(v->StringOr("num", "fb"), "fb");
  EXPECT_EQ(v->Find("missing"), nullptr);
  Value not_object;
  EXPECT_EQ(not_object.Find("x"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Value::Parse("").ok());
  EXPECT_FALSE(Value::Parse("{").ok());
  EXPECT_FALSE(Value::Parse("[1,]").ok());
  EXPECT_FALSE(Value::Parse(R"({"a" 1})").ok());
  EXPECT_FALSE(Value::Parse("1 2").ok());  // trailing garbage
  EXPECT_FALSE(Value::Parse(R"("\q")").ok());
  EXPECT_FALSE(Value::Parse("tru").ok());
  EXPECT_FALSE(Value::Parse(R"("unterminated)").ok());
}

TEST(JsonParseTest, RoundTripsOurWriterOutput) {
  // The exact shapes our observability writers emit.
  auto v = Value::Parse(
      "{\"figure\":\"fig9\",\"entries\":[\n"
      " {\"key\":\"fig9/0/Mitos/4m\",\"total_seconds\":1.5e-05}\n"
      "]}");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const Value* entries = v->Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->array().size(), 1u);
  EXPECT_DOUBLE_EQ(entries->array()[0].NumberOr("total_seconds", 0), 1.5e-05);
}

}  // namespace
}  // namespace mitos::json
