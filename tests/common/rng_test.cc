// Golden-value tests for common/rng.h. The Rng seeds the program/fault
// generator (src/testing/), so its output is a cross-platform contract:
// a CI seed must generate the identical program on every machine. These
// goldens are the reference SplitMix64 sequence (Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators") — if they fail, the
// generator's seed -> program mapping has silently changed on this
// platform, and every committed fuzz repro's "seed:" header is wrong.
#include "common/rng.h"

#include <cstdint>

#include "gtest/gtest.h"

namespace mitos {
namespace {

TEST(RngTest, GoldenSplitMix64Sequences) {
  struct Golden {
    uint64_t seed;
    uint64_t values[4];
  };
  const Golden kGoldens[] = {
      {0x0ULL,
       {0xe220a8397b1dcdafULL, 0x6e789e6aa1b965f4ULL, 0x06c45d188009454fULL,
        0xf88bb8a8724c81ecULL}},
      {0x1ULL,
       {0x910a2dec89025cc1ULL, 0xbeeb8da1658eec67ULL, 0xf893a2eefb32555eULL,
        0x71c18690ee42c90bULL}},
      {0x2aULL,
       {0xbdd732262feb6e95ULL, 0x28efe333b266f103ULL, 0x47526757130f9f52ULL,
        0x581ce1ff0e4ae394ULL}},
      {0xdeadbeefULL,
       {0x4adfb90f68c9eb9bULL, 0xde586a3141a10922ULL, 0x021fbc2f8e1cfc1dULL,
        0x7466ce737be16790ULL}},
  };
  for (const Golden& golden : kGoldens) {
    Rng rng(golden.seed);
    for (uint64_t want : golden.values) {
      EXPECT_EQ(rng.Next(), want) << "seed " << golden.seed;
    }
  }
}

TEST(RngTest, GoldenNextBelow) {
  Rng rng(7);
  const uint64_t want[] = {7, 4, 6, 3, 4, 5};
  for (uint64_t w : want) {
    EXPECT_EQ(rng.NextBelow(10), w);
  }
}

TEST(RngTest, GoldenNextDouble) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(rng.NextDouble(), 0.3898297483912715);
}

TEST(RngTest, NextInRangeStaysInRangeAndCoversBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, NextDoubleIsInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace mitos
