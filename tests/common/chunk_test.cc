// Unit tests for the batched data plane's unit of movement (common/chunk.h):
// columnarization of homogeneous batches, the boxed fallback, zero-copy
// slicing, and the representation-independence invariants (SerializedSize
// and Hash*At must agree between a columnar chunk and its boxed twin — the
// cost model and shuffle routing both depend on that).
#include "common/chunk.h"

#include <utility>
#include <vector>

#include "common/datum.h"
#include "gtest/gtest.h"

namespace mitos {
namespace {

DatumVector Ints(std::initializer_list<int64_t> values) {
  DatumVector data;
  for (int64_t v : values) data.push_back(Datum::Int64(v));
  return data;
}

TEST(ChunkTest, OfDatumsColumnarizesHomogeneousInt64) {
  Chunk c = Chunk::OfDatums(Ints({1, 2, 3}));
  EXPECT_EQ(c.rep(), Chunk::Rep::kInt64);
  EXPECT_FALSE(c.fallback());
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.i64()[0], 1);
  EXPECT_EQ(c.i64()[2], 3);
}

TEST(ChunkTest, OfDatumsColumnarizesHomogeneousDouble) {
  DatumVector data{Datum::Double(1.5), Datum::Double(-2.5)};
  Chunk c = Chunk::OfDatums(std::move(data));
  EXPECT_EQ(c.rep(), Chunk::Rep::kDouble);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.f64()[1], -2.5);
}

TEST(ChunkTest, OfDatumsColumnarizesInt64Pairs) {
  DatumVector data{Datum::Pair(Datum::Int64(1), Datum::Int64(10)),
                   Datum::Pair(Datum::Int64(2), Datum::Int64(20))};
  Chunk c = Chunk::OfDatums(std::move(data));
  EXPECT_EQ(c.rep(), Chunk::Rep::kInt64Pair);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.keys()[1], 2);
  EXPECT_EQ(c.vals()[1], 20);
}

TEST(ChunkTest, MixedAndStringBatchesFallBack) {
  DatumVector mixed{Datum::Int64(1), Datum::String("x")};
  Chunk c = Chunk::OfDatums(std::move(mixed));
  EXPECT_EQ(c.rep(), Chunk::Rep::kDatums);
  EXPECT_TRUE(c.fallback());

  DatumVector strings{Datum::String("a"), Datum::String("bb")};
  Chunk s = Chunk::OfDatums(std::move(strings));
  EXPECT_TRUE(s.fallback());
}

TEST(ChunkTest, ColumnarizeFalseKeepsBoxedRep) {
  Chunk c = Chunk::OfDatums(Ints({1, 2, 3}), /*columnarize=*/false);
  EXPECT_EQ(c.rep(), Chunk::Rep::kDatums);
  EXPECT_TRUE(c.fallback());
  EXPECT_EQ(c.ToDatums(), Ints({1, 2, 3}));
}

TEST(ChunkTest, EmptyChunkIsColumnarAndSizeZero) {
  Chunk c;
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.fallback());
  EXPECT_EQ(c.SerializedSize(), 0u);
  EXPECT_TRUE(c.ToDatums().empty());
}

TEST(ChunkTest, SliceIsZeroCopyAndHonorsOffsets) {
  Chunk c = Chunk::OfInt64({10, 11, 12, 13, 14});
  Chunk s = c.Slice(1, 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.i64(), c.i64() + 1);  // same buffer, shifted — no copy
  EXPECT_EQ(s.At(0), Datum::Int64(11));
  EXPECT_EQ(s.At(2), Datum::Int64(13));

  // A slice of a slice composes offsets.
  Chunk ss = s.Slice(1, 1);
  EXPECT_EQ(ss.At(0), Datum::Int64(12));
  EXPECT_EQ(ss.i64(), c.i64() + 2);
}

TEST(ChunkTest, SliceKeepsStorageAliveAfterParentDies) {
  Chunk s;
  {
    Chunk c = Chunk::OfInt64({7, 8, 9});
    s = c.Slice(2, 1);
  }
  EXPECT_EQ(s.At(0), Datum::Int64(9));
}

TEST(ChunkTest, AtAndAppendToMatchBoxedElements) {
  DatumVector data{Datum::Pair(Datum::Int64(3), Datum::Int64(30)),
                   Datum::Pair(Datum::Int64(4), Datum::Int64(40))};
  Chunk c = Chunk::OfDatums(DatumVector(data));
  ASSERT_EQ(c.rep(), Chunk::Rep::kInt64Pair);
  EXPECT_EQ(c.At(0), data[0]);
  EXPECT_EQ(c.At(1), data[1]);
  DatumVector out;
  c.AppendTo(&out);
  EXPECT_EQ(out, data);
}

// The invariant the cost model charges by: a columnar chunk and its boxed
// twin report identical wire bytes.
TEST(ChunkTest, SerializedSizeIsRepresentationIndependent) {
  DatumVector ints = Ints({1, 2, 3});
  EXPECT_EQ(Chunk::OfDatums(DatumVector(ints)).SerializedSize(),
            Chunk::OfDatums(DatumVector(ints), false).SerializedSize());
  EXPECT_EQ(Chunk::OfDatums(DatumVector(ints)).SerializedSize(), 3u * 8u);

  DatumVector pairs{Datum::Pair(Datum::Int64(1), Datum::Int64(2))};
  EXPECT_EQ(Chunk::OfDatums(DatumVector(pairs)).SerializedSize(),
            Chunk::OfDatums(DatumVector(pairs), false).SerializedSize());
  EXPECT_EQ(Chunk::OfDatums(DatumVector(pairs)).SerializedSize(),
            4u + 8u + 8u);
}

// The invariant the shuffle routes by: hashes must not depend on the rep.
TEST(ChunkTest, HashAtMatchesDatumHash) {
  DatumVector ints = Ints({0, -5, 123456789});
  Chunk c = Chunk::OfDatums(DatumVector(ints));
  ASSERT_EQ(c.rep(), Chunk::Rep::kInt64);
  for (size_t i = 0; i < ints.size(); ++i) {
    EXPECT_EQ(c.HashAt(i), ints[i].Hash()) << i;
  }

  DatumVector pairs{Datum::Pair(Datum::Int64(2), Datum::Int64(7)),
                    Datum::Pair(Datum::Int64(-1), Datum::Int64(0))};
  Chunk p = Chunk::OfDatums(DatumVector(pairs));
  ASSERT_EQ(p.rep(), Chunk::Rep::kInt64Pair);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(p.HashAt(i), pairs[i].Hash()) << i;
    EXPECT_EQ(p.HashField0At(i), pairs[i].field(0).Hash()) << i;
  }
}

TEST(ChunkTest, HashAtOnSliceIndexesTheView) {
  Chunk c = Chunk::OfInt64({10, 20, 30});
  Chunk s = c.Slice(1, 2);
  EXPECT_EQ(s.HashAt(0), Datum::Int64(20).Hash());
  EXPECT_EQ(s.HashAt(1), Datum::Int64(30).Hash());
}

TEST(ChunkTest, CopyIsAHandleNotAPayloadCopy) {
  Chunk a = Chunk::OfInt64({1, 2, 3, 4});
  Chunk b = a;
  EXPECT_EQ(a.i64(), b.i64());  // shared storage
}

}  // namespace
}  // namespace mitos
