// Tests for the seeded program generator (testing/generator.h): determinism
// (including cross-platform golden hashes of the seed -> source mapping),
// parser round-tripping, termination, and size bounds.
#include "testing/generator.h"

#include <set>

#include "api/engine.h"
#include "gtest/gtest.h"
#include "lang/parser.h"
#include "sim/filesystem.h"

namespace mitos::testing {
namespace {

// FNV-1a over the source text: stable across platforms, so these goldens
// pin the full seed -> program mapping (any change to the generator, the
// Rng, or ToSource shows up here first — bump deliberately).
uint64_t SourceHash(const std::string& text) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(GeneratorTest, SameSeedSameProgram) {
  GeneratorOptions options;
  options.seed = 42;
  GeneratedCase a = GenerateCase(options);
  GeneratedCase b = GenerateCase(options);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.fault_specs, b.fault_specs);
  EXPECT_EQ(a.op_histogram, b.op_histogram);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions options;
  options.seed = 1;
  GeneratedCase a = GenerateCase(options);
  options.seed = 2;
  GeneratedCase b = GenerateCase(options);
  EXPECT_NE(a.source, b.source);
}

TEST(GeneratorTest, RoundTripsThroughParser) {
  GeneratorOptions options;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    options.seed = seed;
    GeneratedCase generated = GenerateCase(options);
    auto reparsed = lang::Parse(generated.source);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status().ToString() << "\n"
        << generated.source;
    // Printing the reparsed program reproduces the source exactly — the
    // fixpoint that makes repro files authoritative.
    EXPECT_EQ(lang::ToSource(*reparsed), generated.source)
        << "seed " << seed;
  }
  // Deep/wide configs reach rarer vocabulary (e.g. the join→absDiff arm,
  // whose registry spelling once diverged from lang/functions.h) — the
  // whole op surface must stay within the parser registry.
  GeneratorOptions deep;
  deep.max_depth = 6;
  deep.budget = 26;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    deep.seed = CaseSeed(seed, 17);
    GeneratedCase generated = GenerateCase(deep);
    auto reparsed = lang::Parse(generated.source);
    ASSERT_TRUE(reparsed.ok())
        << "deep seed " << deep.seed << ": " << reparsed.status().ToString()
        << "\n"
        << generated.source;
    EXPECT_EQ(lang::ToSource(*reparsed), generated.source)
        << "deep seed " << deep.seed;
  }
}

TEST(GeneratorTest, EveryProgramTerminatesOnTheReference) {
  GeneratorOptions options;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    options.seed = seed;
    GeneratedCase generated = GenerateCase(options);
    sim::SimFileSystem fs;
    auto run =
        api::Run(api::EngineKind::kReference, generated.program, &fs, {});
    EXPECT_TRUE(run.ok()) << "seed " << seed << ": "
                          << run.status().ToString() << "\n"
                          << generated.source;
  }
}

TEST(GeneratorTest, CaseSeedIsInjectiveOverSmallRuns) {
  std::set<uint64_t> seen;
  for (int base = 1; base <= 5; ++base) {
    for (int i = 0; i < 200; ++i) {
      seen.insert(CaseSeed(static_cast<uint64_t>(base), i));
    }
  }
  EXPECT_EQ(seen.size(), 5u * 200u);
}

TEST(GeneratorTest, CaseSeedIndependentOfCount) {
  // Case i's seed must not depend on how many cases the run asks for.
  EXPECT_EQ(CaseSeed(7, 3), CaseSeed(7, 3));
  EXPECT_NE(CaseSeed(7, 3), CaseSeed(7, 4));
  EXPECT_NE(CaseSeed(7, 3), CaseSeed(8, 3));
}

TEST(GeneratorTest, FaultPlansAreRoundTrippedSpecs) {
  GeneratorOptions options;
  options.seed = 9;
  options.fault_plans = 3;
  GeneratedCase generated = GenerateCase(options);
  ASSERT_EQ(generated.fault_plans.size(), 3u);
  ASSERT_EQ(generated.fault_specs.size(), 3u);
  for (size_t i = 0; i < generated.fault_specs.size(); ++i) {
    auto plan = sim::FaultPlan::Parse(generated.fault_specs[i]);
    ASSERT_TRUE(plan.ok()) << generated.fault_specs[i];
    EXPECT_EQ(plan->ToString(), generated.fault_plans[i].ToString());
    // Workers only: machine 0 hosts the coordinator.
    for (const auto& crash : plan->crashes) {
      EXPECT_GE(crash.machine, 1);
      EXPECT_LT(crash.machine, options.machines);
    }
  }
}

TEST(GeneratorTest, BudgetBoundsProgramSize) {
  GeneratorOptions options;
  options.budget = 4;
  options.max_depth = 1;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    options.seed = seed;
    GeneratedCase small = GenerateCase(options);
    // Budget + seed bags + conversions + writes + loop scaffolding stays
    // well under a small multiple of the budget.
    EXPECT_LE(small.source.size(), 4096u) << small.source;
  }
}

// Golden hashes: the platform-independence contract. If this test fails
// after an intentional generator change, re-pin with the values from the
// failure message; if it fails on only one platform, the generator or Rng
// has platform-dependent behavior — a real bug.
TEST(GeneratorTest, GoldenSourceHashes) {
  struct Golden {
    uint64_t seed;
    uint64_t hash;
  };
  const Golden kGoldens[] = {
      {1, 0x45e1064e9bdebaa4ULL},
      {2, 0xab42f7361dd34f1cULL},
      {3, 0xc903c2fc4a1354f3ULL},
  };
  GeneratorOptions options;
  for (const Golden& golden : kGoldens) {
    options.seed = golden.seed;
    GeneratedCase generated = GenerateCase(options);
    // Failure output is copy-pasteable for deliberate re-pinning.
    EXPECT_EQ(SourceHash(generated.source), golden.hash)
        << "seed " << golden.seed << ": re-pin with {" << golden.seed
        << ", 0x" << std::hex << SourceHash(generated.source)
        << "ULL},\nsource:\n"
        << generated.source;
  }
}

}  // namespace
}  // namespace mitos::testing
