// Tests for the greedy AST minimizer (testing/shrink.h). Predicates here
// are cheap structural checks (does the program still contain X?) so the
// passes can be exercised exhaustively; the mutation-style end-to-end case
// (predicate = a real differential run against a hand-broken engine
// matrix) lives in the tamper-hook test at the bottom.
#include "testing/shrink.h"

#include "gtest/gtest.h"
#include "lang/parser.h"
#include "testing/differential.h"
#include "testing/generator.h"

namespace mitos::testing {
namespace {

lang::Program MustParse(const std::string& source) {
  auto program = lang::Parse(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return *program;
}

bool SourceContains(const lang::Program& program, const std::string& text) {
  return lang::ToSource(program).find(text) != std::string::npos;
}

TEST(ShrinkTest, DeletesIrrelevantStatements) {
  lang::Program program = MustParse(R"(
    a = bagOf(1, 2, 3);
    noise1 = a.map(addInt64(5));
    noise2 = noise1.filter(gtInt64(2));
    write(noise2, "n");
    write(a, "o0");
  )");
  auto keeps_failing = [](const lang::Program& p) {
    // Structural predicates do not need validity, so pin the defining bag
    // too — otherwise deleting `a = bagOf(...)` would also "still fail".
    return SourceContains(p, "bagOf") &&
           SourceContains(p, "write(a, \"o0\");");
  };
  ShrinkResult result = Shrink(program, keeps_failing);
  // Everything except the seed bag and the interesting write goes away.
  EXPECT_EQ(CountStmts(result.program), 2) << lang::ToSource(result.program);
  EXPECT_TRUE(keeps_failing(result.program));
  EXPECT_GT(result.evals, 0);
}

TEST(ShrinkTest, UnwrapsControlFlow) {
  lang::Program program = MustParse(R"(
    a = bagOf(1, 2);
    i = 0;
    while (i < 3) {
      a = a.map(addInt64(1));
      i = i + 1;
    }
    write(a, "o0");
  )");
  auto keeps_failing = [](const lang::Program& p) {
    return SourceContains(p, "a.map(addInt64(1))") &&
           SourceContains(p, "write(a, \"o0\");");
  };
  ShrinkResult result = Shrink(program, keeps_failing);
  // The while wrapper disappears; the interesting map survives unwrapped.
  EXPECT_FALSE(SourceContains(result.program, "while"))
      << lang::ToSource(result.program);
  EXPECT_TRUE(keeps_failing(result.program));
}

TEST(ShrinkTest, ShrinksLiteralsAndBags) {
  lang::Program program = MustParse(R"(
    a = bagOf(7, 3, 9, 1, 5, 2);
    b = a.map(addInt64(40));
    write(b, "o0");
  )");
  auto keeps_failing = [](const lang::Program& p) {
    return SourceContains(p, "bagOf") && SourceContains(p, "addInt64");
  };
  ShrinkResult result = Shrink(program, keeps_failing);
  const std::string source = lang::ToSource(result.program);
  // The six-element bag collapses to one element and the literal to 1.
  EXPECT_TRUE(SourceContains(result.program, "bagOf(7)")) << source;
  EXPECT_TRUE(SourceContains(result.program, "addInt64(1)")) << source;
}

TEST(ShrinkTest, ReplacesOperatorChainsWithInputs) {
  lang::Program program = MustParse(R"(
    a = bagOf(1, 2, 3);
    b = a.map(addInt64(1)).filter(gtInt64(0)).distinct();
    write(b, "o0");
  )");
  auto keeps_failing = [](const lang::Program& p) {
    return SourceContains(p, "write(b, \"o0\");");
  };
  ShrinkResult result = Shrink(program, keeps_failing);
  const std::string source = lang::ToSource(result.program);
  EXPECT_FALSE(SourceContains(result.program, "map")) << source;
  EXPECT_FALSE(SourceContains(result.program, "filter")) << source;
  EXPECT_FALSE(SourceContains(result.program, "distinct")) << source;
}

TEST(ShrinkTest, RespectsEvalBudget) {
  GeneratorOptions gen_options;
  gen_options.seed = 5;
  GeneratedCase generated = GenerateCase(gen_options);
  int calls = 0;
  auto count_calls = [&](const lang::Program&) {
    ++calls;
    return true;  // everything "fails", so shrinking runs to the floor
  };
  ShrinkOptions options;
  options.max_evals = 25;
  ShrinkResult result = Shrink(generated.program, count_calls, options);
  EXPECT_LE(result.evals, 25);
  EXPECT_EQ(result.evals, calls);
}

TEST(ShrinkTest, InvalidCandidatesAreRejectedByTheHarness) {
  // Predicate = a real differential run with a tampered matrix (the
  // "mutation test" for the minimizer): candidates that delete the
  // statement defining `a` fail to compile on every engine including the
  // reference -> kInfraError -> predicate false -> rejected. The minimum
  // keeps exactly the defining chain of the tampered file.
  lang::Program program = MustParse(R"(
    a = bagOf(4, 5);
    dead = a.map(mulInt64(3));
    write(dead, "n");
    write(a.map(addInt64(2)), "o0");
  )");
  DiffOptions diff_options;
  diff_options.variants = FilterMatrix(DefaultMatrix(), "flink");
  diff_options.tamper = [](const std::string&, sim::SimFileSystem* fs) {
    if (auto data = fs->Read("o0"); data.ok()) {
      DatumVector corrupted = *data;
      corrupted.push_back(Datum::Int64(1234));
      fs->Write("o0", corrupted);
    }
  };
  auto still_fails = [&](const lang::Program& candidate) {
    return RunDifferential(candidate, diff_options).verdict ==
           Verdict::kMismatch;
  };
  ASSERT_TRUE(still_fails(program));
  ShrinkResult result = Shrink(program, still_fails);
  const std::string source = lang::ToSource(result.program);
  // The dead chain is gone; the tampered write and its input survive.
  EXPECT_EQ(CountStmts(result.program), 2) << source;
  EXPECT_TRUE(SourceContains(result.program, "\"o0\"")) << source;
  EXPECT_FALSE(SourceContains(result.program, "mulInt64")) << source;
  EXPECT_TRUE(still_fails(result.program));
}

}  // namespace
}  // namespace mitos::testing
