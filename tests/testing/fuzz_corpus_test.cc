// Replays the committed fuzz corpus (tests/fixtures/fuzz/*.mitos) through
// the full differential harness. Each corpus file is a self-contained repro
// written by mitos_fuzz (or pinned by hand): a program plus the fault plans
// it was found with. All of them must agree across the entire engine matrix
// — a failure here is a regression of a previously working (or previously
// fixed) behavior, and the failing file names the seed that produced it.
//
// This is the same check CI's blocking fuzz-smoke job runs via
//   mitos_fuzz --corpus=tests/fixtures/fuzz
// kept as a gtest too so plain `ctest` covers the corpus with no extra
// wiring.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lang/parser.h"
#include "testing/differential.h"
#include "testing/repro.h"

namespace mitos::testing {
namespace {

#ifndef MITOS_TEST_FIXTURES
#error "MITOS_TEST_FIXTURES must point at tests/fixtures (set in CMake)"
#endif

std::string CorpusDir() {
  return std::string(MITOS_TEST_FIXTURES) + "/fuzz";
}

TEST(FuzzCorpusTest, CorpusIsNonEmpty) {
  // An empty corpus means the replay below vacuously passes; fail loudly
  // instead (the corpus ships with the repo).
  EXPECT_GE(ListCorpus(CorpusDir()).size(), 5u) << CorpusDir();
}

TEST(FuzzCorpusTest, EveryReproParsesAndRoundTrips) {
  for (const std::string& path : ListCorpus(CorpusDir())) {
    auto repro = LoadReproFile(path);
    ASSERT_TRUE(repro.ok()) << path << ": " << repro.status().ToString();
    EXPECT_NE(repro->seed, 0u) << path << ": missing '// seed:' header";
    // The program body must survive a print -> parse -> print fixpoint.
    const std::string printed = lang::ToSource(repro->program);
    auto reparsed = lang::Parse(printed);
    ASSERT_TRUE(reparsed.ok()) << path << ": " << reparsed.status().ToString();
    EXPECT_EQ(lang::ToSource(*reparsed), printed) << path;
  }
}

TEST(FuzzCorpusTest, EveryReproAgreesAcrossAllEngines) {
  for (const std::string& path : ListCorpus(CorpusDir())) {
    auto repro = LoadReproFile(path);
    ASSERT_TRUE(repro.ok()) << path << ": " << repro.status().ToString();
    DiffOptions options;
    options.fault_plans = repro->fault_plans;
    DiffReport report = RunDifferential(repro->program, options);
    EXPECT_EQ(report.verdict, Verdict::kOk)
        << path << " (seed " << repro->seed << "): " << report.ToString();
  }
}

}  // namespace
}  // namespace mitos::testing
