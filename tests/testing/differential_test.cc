// Tests for the cross-engine differential harness (testing/differential.h):
// agreement on generated programs, verdict classification, and — via the
// tamper hook — proof that the harness actually detects injected
// divergences in plain, reordered, rerun, and faulted outputs.
#include "testing/differential.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "lang/parser.h"
#include "testing/generator.h"

namespace mitos::testing {
namespace {

lang::Program MustParse(const std::string& source) {
  auto program = lang::Parse(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return *program;
}

TEST(DifferentialTest, GeneratedProgramsAgreeAcrossTheMatrix) {
  GeneratorOptions gen_options;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    gen_options.seed = seed;
    GeneratedCase generated = GenerateCase(gen_options);
    DiffOptions options;
    options.fault_plans = generated.fault_plans;
    DiffReport report = RunDifferential(generated.program, options);
    EXPECT_EQ(report.verdict, Verdict::kOk)
        << "seed " << seed << ": " << report.ToString() << "\n"
        << generated.source;
    // Reference + 8 variants + 2 reruns + fault replays.
    EXPECT_GT(report.runs, 9);
  }
}

TEST(DifferentialTest, TamperedOutputIsAMismatch) {
  lang::Program program = MustParse(R"(
    b = bagOf(1, 2, 3);
    write(b.map(addInt64(1)), "o0");
  )");
  DiffOptions options;
  options.tamper = [](const std::string& label, sim::SimFileSystem* fs) {
    if (label != "spark@3") return;
    DatumVector data = *fs->Read("o0");
    data.push_back(Datum::Int64(99));
    fs->Write("o0", data);
  };
  DiffReport report = RunDifferential(program, options);
  ASSERT_EQ(report.verdict, Verdict::kMismatch) << report.ToString();
  ASSERT_EQ(report.mismatches.size(), 1u);
  EXPECT_EQ(report.mismatches[0].label, "spark@3");
  EXPECT_EQ(report.mismatches[0].file, "o0");
  EXPECT_NE(report.mismatches[0].detail.find("extra 1"), std::string::npos)
      << report.mismatches[0].detail;
}

TEST(DifferentialTest, TamperedElementOrderTripsOnlyExactChecks) {
  // Reordering elements is legal for the multiset cross-engine check but
  // must trip the byte-identical rerun check.
  lang::Program program = MustParse(R"(
    b = bagOf(5, 1, 4, 2);
    write(b, "o0");
  )");
  DiffOptions options;
  int tampered = 0;
  options.tamper = [&](const std::string& label, sim::SimFileSystem* fs) {
    if (label != "mitos-threads@3" || tampered++ > 0) return;
    // Only the first (baseline) run is reordered; the rerun is pristine.
    DatumVector data = *fs->Read("o0");
    std::reverse(data.begin(), data.end());
    fs->Write("o0", data);
  };
  DiffReport report = RunDifferential(program, options);
  ASSERT_EQ(report.verdict, Verdict::kMismatch) << report.ToString();
  ASSERT_EQ(report.mismatches.size(), 1u);
  EXPECT_EQ(report.mismatches[0].label, "mitos-threads@3:rerun");
  EXPECT_NE(report.mismatches[0].detail.find("different order"),
            std::string::npos)
      << report.mismatches[0].detail;
}

TEST(DifferentialTest, ReferenceFailureIsInfraError) {
  // readFile of a missing file fails on every engine, reference included:
  // the program (not an engine) is broken, so the verdict is infra.
  lang::Program program = MustParse(R"(
    b = readFile("no_such_input");
    write(b, "o0");
  )");
  DiffReport report = RunDifferential(program, {});
  EXPECT_EQ(report.verdict, Verdict::kInfraError) << report.ToString();
  EXPECT_EQ(report.infra_context, "reference run");
  EXPECT_FALSE(report.infra_status.ok());
}

TEST(DifferentialTest, FilterMatrixSelectsBySubstring) {
  auto all = DefaultMatrix();
  EXPECT_EQ(FilterMatrix(all, "").size(), all.size());
  auto mitos_only = FilterMatrix(all, "mitos-des");
  ASSERT_EQ(mitos_only.size(), 4u);  // t@3, not@3, t@1, boxed@3
  for (const auto& v : mitos_only) {
    EXPECT_NE(v.label.find("mitos-des"), std::string::npos);
  }
  auto two = FilterMatrix(all, "flink,spark");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_TRUE(FilterMatrix(all, "zzz").empty());
}

TEST(DifferentialTest, FaultReplayRunsPerPlan) {
  lang::Program program = MustParse(R"(
    b = bagOf((1, 10), (2, 20), (1, 30));
    r = b.reduceByKey(sumInt64);
    write(r, "o0");
  )");
  DiffOptions options;
  options.variants = FilterMatrix(DefaultMatrix(), "mitos-des-t@3");
  ASSERT_EQ(options.variants.size(), 1u);
  auto plan = sim::FaultPlan::Parse("crash=1@0.2+0.3; ckpt=1");
  ASSERT_TRUE(plan.ok());
  options.fault_plans = {*plan, *plan};
  DiffReport report = RunDifferential(program, options);
  EXPECT_EQ(report.verdict, Verdict::kOk) << report.ToString();
  // reference + base + rerun + two fault replays.
  EXPECT_EQ(report.runs, 5);
}

}  // namespace
}  // namespace mitos::testing
