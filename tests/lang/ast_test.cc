#include "lang/ast.h"

#include <gtest/gtest.h>

#include "lang/builder.h"

namespace mitos::lang {
namespace {

TEST(AstTest, ExprFactoriesSetKinds) {
  EXPECT_EQ(LitInt(1)->kind, ExprKind::kLit);
  EXPECT_EQ(Var("x")->kind, ExprKind::kVarRef);
  EXPECT_EQ(Add(LitInt(1), LitInt(2))->kind, ExprKind::kBinOp);
  EXPECT_EQ(Add(LitInt(1), LitInt(2))->binop, BinOpKind::kAdd);
  EXPECT_EQ(ReadFile(LitString("f"))->kind, ExprKind::kReadFile);
  EXPECT_EQ(Map(Var("b"), fns::Identity())->kind, ExprKind::kMap);
  EXPECT_EQ(Join(Var("a"), Var("b"))->kind, ExprKind::kJoin);
  EXPECT_EQ(ScalarFromBag(Var("b"))->kind, ExprKind::kScalarFromBag);
}

TEST(AstTest, IsBagExprKindClassification) {
  EXPECT_TRUE(IsBagExprKind(ExprKind::kMap));
  EXPECT_TRUE(IsBagExprKind(ExprKind::kReadFile));
  EXPECT_TRUE(IsBagExprKind(ExprKind::kFromScalar));
  EXPECT_TRUE(IsBagExprKind(ExprKind::kCount));
  EXPECT_FALSE(IsBagExprKind(ExprKind::kLit));
  EXPECT_FALSE(IsBagExprKind(ExprKind::kBinOp));
  EXPECT_FALSE(IsBagExprKind(ExprKind::kScalarFromBag));
  EXPECT_FALSE(IsBagExprKind(ExprKind::kVarRef));
}

TEST(AstTest, PrinterRendersExpressions) {
  EXPECT_EQ(ToString(*Add(Var("day"), LitInt(1))), "(day + 1)");
  EXPECT_EQ(ToString(*Concat(LitString("log"), Var("day"))),
            "(\"log\" concat day)");
  EXPECT_EQ(ToString(*Map(Var("v"), fns::PairWithOne())),
            "v.map(pairWithOne)");
  EXPECT_EQ(ToString(*Join(Var("a"), Var("b"))), "(a join b)");
  EXPECT_EQ(ToString(*Not(Var("c"))), "!(c)");
}

TEST(AstTest, PrinterRendersStatements) {
  StmtPtr s = Assign("x", LitInt(3));
  EXPECT_EQ(ToString(*s), "x = 3\n");

  StmtPtr w = While(Le(Var("i"), LitInt(2)), {Assign("i", LitInt(9))});
  std::string text = ToString(*w);
  EXPECT_NE(text.find("while (i <= 2) do"), std::string::npos);
  EXPECT_NE(text.find("  i = 9"), std::string::npos);
  EXPECT_NE(text.find("end while"), std::string::npos);
}

TEST(AstTest, PrinterRendersIfElse) {
  StmtPtr s = If(Var("c"), {Assign("a", LitInt(1))},
                 {Assign("a", LitInt(2))});
  std::string text = ToString(*s);
  EXPECT_NE(text.find("if c then"), std::string::npos);
  EXPECT_NE(text.find("else"), std::string::npos);
  EXPECT_NE(text.find("end if"), std::string::npos);
}

TEST(BuilderTest, BuildsFlatProgram) {
  ProgramBuilder pb;
  pb.Assign("x", LitInt(1));
  pb.WriteFile(FromScalar(Var("x")), LitString("out"));
  Program p = pb.Build();
  ASSERT_EQ(p.stmts.size(), 2u);
  EXPECT_EQ(p.stmts[0]->kind, StmtKind::kAssign);
  EXPECT_EQ(p.stmts[1]->kind, StmtKind::kWriteFile);
}

TEST(BuilderTest, CapturesNestedControlFlow) {
  ProgramBuilder pb;
  pb.Assign("day", LitInt(1));
  pb.While(Le(Var("day"), LitInt(3)), [&] {
    pb.If(Ne(Var("day"), LitInt(1)), [&] { pb.Assign("z", LitInt(1)); });
    pb.Assign("day", Add(Var("day"), LitInt(1)));
  });
  Program p = pb.Build();
  ASSERT_EQ(p.stmts.size(), 2u);
  const Stmt& loop = *p.stmts[1];
  EXPECT_EQ(loop.kind, StmtKind::kWhile);
  ASSERT_EQ(loop.body.size(), 2u);
  EXPECT_EQ(loop.body[0]->kind, StmtKind::kIf);
  EXPECT_EQ(loop.body[0]->body.size(), 1u);
  EXPECT_TRUE(loop.body[0]->else_body.empty());
}

TEST(BuilderTest, DoWhileShape) {
  ProgramBuilder pb;
  pb.Assign("i", LitInt(0));
  pb.DoWhile([&] { pb.Assign("i", Add(Var("i"), LitInt(1))); },
             Lt(Var("i"), LitInt(5)));
  Program p = pb.Build();
  ASSERT_EQ(p.stmts.size(), 2u);
  EXPECT_EQ(p.stmts[1]->kind, StmtKind::kDoWhile);
  EXPECT_EQ(p.stmts[1]->body.size(), 1u);
}

TEST(BuilderTest, ProgramPrintsRoundTrippableText) {
  ProgramBuilder pb;
  pb.Assign("day", LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("visits",
                  ReadFile(Concat(LitString("pageVisitLog"), Var("day"))));
        pb.Assign("counts", ReduceByKey(Map(Var("visits"), fns::PairWithOne()),
                                        fns::SumInt64()));
        pb.WriteFile(Var("counts"), Concat(LitString("counts"), Var("day")));
        pb.Assign("day", Add(Var("day"), LitInt(1)));
      },
      Le(Var("day"), LitInt(365)));
  std::string text = ToString(pb.Build());
  EXPECT_NE(text.find("readFile((\"pageVisitLog\" concat day))"),
            std::string::npos);
  EXPECT_NE(text.find(".reduceByKey(sumInt64)"), std::string::npos);
  EXPECT_NE(text.find("while (day <= 365)"), std::string::npos);
}

}  // namespace
}  // namespace mitos::lang
