#include "lang/parser.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "lang/interpreter.h"
#include "workloads/generators.h"
#include "workloads/programs.h"

namespace mitos::lang {
namespace {

DatumVector Sorted(DatumVector v) {
  std::sort(v.begin(), v.end(),
            [](const Datum& a, const Datum& b) { return a < b; });
  return v;
}

TEST(ParserTest, ScalarStatementsAndArithmetic) {
  auto program = Parse(R"(
    x = 2;
    y = (x + 3) * 4 - 6 / 2;
    z = -y;
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  sim::SimFileSystem fs;
  Interpreter interp(&fs);
  ASSERT_TRUE(interp.Run(*program).ok());
  EXPECT_EQ(interp.scalars().at("y").int64(), 17);
  EXPECT_EQ(interp.scalars().at("z").int64(), -17);
}

TEST(ParserTest, PrecedenceAndBooleans) {
  auto program = Parse(R"(
    a = 1 + 2 * 3 == 7;
    b = true && !false || 1 > 2;
    c = "v" ++ (10 % 3);
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  sim::SimFileSystem fs;
  Interpreter interp(&fs);
  ASSERT_TRUE(interp.Run(*program).ok());
  EXPECT_TRUE(interp.scalars().at("a").boolean());
  EXPECT_TRUE(interp.scalars().at("b").boolean());
  EXPECT_EQ(interp.scalars().at("c").str(), "v1");
}

TEST(ParserTest, BagMethodsChain) {
  auto program = Parse(R"(
    b = bagOf(1, 2, 3, 4, 5, 2);
    counts = b.map(pairWithOne).reduceByKey(sumInt64);
    evens = b.filter(modEquals(2, 0)).distinct();
    n = b.count();
    total = b.reduce(sumInt64);
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  sim::SimFileSystem fs;
  Interpreter interp(&fs);
  Status status = interp.Run(*program);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(interp.bags().at("n")[0].int64(), 6);
  EXPECT_EQ(interp.bags().at("total")[0].int64(), 17);
  EXPECT_EQ(Sorted(interp.bags().at("evens")),
            (DatumVector{Datum::Int64(2), Datum::Int64(4)}));
}

TEST(ParserTest, ControlFlowConstructs) {
  auto program = Parse(R"(
    acc = 0;
    i = 0;
    while (i < 5) {
      if (i % 2 == 0) {
        acc = acc + i;
      } else {
        acc = acc - 1;
      }
      i = i + 1;
    }
    j = 0;
    do { j = j + 10; } while (j < 25);
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  sim::SimFileSystem fs;
  Interpreter interp(&fs);
  ASSERT_TRUE(interp.Run(*program).ok());
  EXPECT_EQ(interp.scalars().at("acc").int64(), 4);  // 0+2+4 -1 -1
  EXPECT_EQ(interp.scalars().at("j").int64(), 30);
}

TEST(ParserTest, FullVisitCountScriptMatchesBuilderProgram) {
  // The paper's running example, written as text, must behave exactly like
  // the builder-constructed VisitCountProgram under both the interpreter
  // and Mitos.
  const char* source = R"(
    // Visit Count with consecutive-day comparison (paper Sec. 2).
    yesterday = empty();
    day = 1;
    do {
      visits = readFile("pageVisitLog" ++ day);
      counts = visits.map(pairWithOne).reduceByKey(sumInt64);
      if (day != 1) {
        summed = yesterday.join(counts).map(absDiff).reduce(sumInt64);
        write(summed, "diff" ++ day);
      }
      yesterday = counts;
      day = day + 1;
    } while (day <= 4);
  )";
  auto parsed = Parse(source);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  sim::SimFileSystem inputs;
  workloads::GenerateVisitLogs(&inputs, {.days = 4, .entries_per_day = 200,
                                         .num_pages = 20});

  sim::SimFileSystem fs_builder = inputs;
  auto ref = api::Run(api::EngineKind::kReference,
                      workloads::VisitCountProgram({.days = 4}),
                      &fs_builder);
  ASSERT_TRUE(ref.ok());

  for (auto engine : {api::EngineKind::kReference, api::EngineKind::kMitos}) {
    sim::SimFileSystem fs = inputs;
    auto result = api::Run(engine, *parsed, &fs, {.machines = 3});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(fs_builder.ListFiles(), fs.ListFiles());
    for (const std::string& name : fs_builder.ListFiles()) {
      EXPECT_EQ(Sorted(*fs_builder.Read(name)), Sorted(*fs.Read(name)))
          << name;
    }
  }
}

TEST(ParserTest, ParameterizedBuiltins) {
  auto program = Parse(R"(
    b = bagOf(1, 2, 3);
    shifted = b.map(addInt64(-1)).map(mulInt64(10));
    pairs = b.map(pairWithOne).map(pairSwap);
    expanded = b.flatMap(rangeTo);
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  sim::SimFileSystem fs;
  Interpreter interp(&fs);
  ASSERT_TRUE(interp.Run(*program).ok());
  EXPECT_EQ(interp.bags().at("shifted"),
            (DatumVector{Datum::Int64(0), Datum::Int64(10),
                         Datum::Int64(20)}));
  EXPECT_EQ(interp.bags().at("expanded").size(), 6u);  // 0+1+2+3 ranges
  EXPECT_EQ(interp.bags().at("pairs")[0],
            Datum::Pair(Datum::Int64(1), Datum::Int64(1)));
}

TEST(ParserTest, ErrorsCarryLineAndColumn) {
  auto missing_semi = Parse("x = 1\ny = 2;");
  ASSERT_FALSE(missing_semi.ok());
  EXPECT_NE(missing_semi.status().message().find("line 2"),
            std::string::npos);

  auto bad_char = Parse("x = 1 # 2;");
  ASSERT_FALSE(bad_char.ok());
  EXPECT_NE(bad_char.status().message().find("unexpected character"),
            std::string::npos);

  auto unknown_fn = Parse("b = bagOf(1); c = b.map(noSuchFn);");
  ASSERT_FALSE(unknown_fn.ok());
  EXPECT_NE(unknown_fn.status().message().find("noSuchFn"),
            std::string::npos);

  auto unterminated = Parse("x = \"abc;");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("unterminated"),
            std::string::npos);

  auto bad_arity = Parse("b = bagOf(1); c = b.map(field(1, 2));");
  ASSERT_FALSE(bad_arity.ok());
  EXPECT_NE(bad_arity.status().message().find("expects"), std::string::npos);
}

TEST(ParserTest, CommentsAndWhitespaceIgnored) {
  auto program = Parse(R"(
    // leading comment
    x = 1;  // trailing comment
    // comment between statements
    y = x + 1;
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->stmts.size(), 2u);
}

TEST(ParserTest, NewBagAndScalarOf) {
  auto program = Parse(R"(
    n = 7;
    b = newBag(n * 2);
    s = scalarOf(b) + 1;
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  sim::SimFileSystem fs;
  Interpreter interp(&fs);
  ASSERT_TRUE(interp.Run(*program).ok());
  EXPECT_EQ(interp.scalars().at("s").int64(), 15);
}

}  // namespace
}  // namespace mitos::lang
