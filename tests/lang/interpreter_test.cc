#include "lang/interpreter.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "lang/builder.h"

namespace mitos::lang {
namespace {

DatumVector Ints(std::initializer_list<int64_t> values) {
  DatumVector out;
  for (int64_t v : values) out.push_back(Datum::Int64(v));
  return out;
}

DatumVector Sorted(DatumVector v) {
  std::sort(v.begin(), v.end(),
            [](const Datum& a, const Datum& b) { return a < b; });
  return v;
}

class InterpreterTest : public ::testing::Test {
 protected:
  sim::SimFileSystem fs_;
};

TEST_F(InterpreterTest, ScalarArithmeticAndAssignment) {
  ProgramBuilder pb;
  pb.Assign("x", LitInt(2));
  pb.Assign("y", Mul(Add(Var("x"), LitInt(3)), LitInt(4)));  // (2+3)*4
  pb.Assign("z", Sub(Var("y"), Mod(Var("y"), LitInt(7))));   // 20 - 6
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.scalars().at("y").int64(), 20);
  EXPECT_EQ(interp.scalars().at("z").int64(), 14);
}

TEST_F(InterpreterTest, StringConcatStringifiesNumbers) {
  ProgramBuilder pb;
  pb.Assign("day", LitInt(7));
  pb.Assign("name", Concat(LitString("log"), Var("day")));
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.scalars().at("name").str(), "log7");
}

TEST_F(InterpreterTest, WhileLoopCounts) {
  ProgramBuilder pb;
  pb.Assign("i", LitInt(0));
  pb.Assign("sum", LitInt(0));
  pb.While(Lt(Var("i"), LitInt(5)), [&] {
    pb.Assign("i", Add(Var("i"), LitInt(1)));
    pb.Assign("sum", Add(Var("sum"), Var("i")));
  });
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.scalars().at("sum").int64(), 15);
  EXPECT_EQ(interp.stats().loop_iterations, 5);
}

TEST_F(InterpreterTest, WhileFalseNeverRuns) {
  ProgramBuilder pb;
  pb.Assign("x", LitInt(1));
  pb.While(LitBool(false), [&] { pb.Assign("x", LitInt(99)); });
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.scalars().at("x").int64(), 1);
}

TEST_F(InterpreterTest, DoWhileRunsAtLeastOnce) {
  ProgramBuilder pb;
  pb.Assign("x", LitInt(1));
  pb.DoWhile([&] { pb.Assign("x", LitInt(99)); }, LitBool(false));
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.scalars().at("x").int64(), 99);
}

TEST_F(InterpreterTest, IfElseTakesCorrectBranch) {
  ProgramBuilder pb;
  pb.Assign("c", Gt(LitInt(3), LitInt(2)));
  pb.If(Var("c"), [&] { pb.Assign("r", LitInt(1)); },
        [&] { pb.Assign("r", LitInt(2)); });
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.scalars().at("r").int64(), 1);
}

TEST_F(InterpreterTest, InfiniteLoopIsCut) {
  ProgramBuilder pb;
  pb.Assign("x", LitInt(0));
  pb.While(LitBool(true), [&] { pb.Assign("x", Add(Var("x"), LitInt(1))); });
  Interpreter interp(&fs_, {.max_total_iterations = 100});
  Status status = interp.Run(pb.Build());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(InterpreterTest, MapFilterFlatMap) {
  ProgramBuilder pb;
  pb.Assign("b", BagLit(Ints({1, 2, 3, 4})));
  pb.Assign("m", Map(Var("b"), fns::AddInt64(10)));
  pb.Assign("f", Filter(Var("b"), fns::Int64ModEquals(2, 0)));
  pb.Assign("fm", FlatMap(Var("b"), {"dup", [](const Datum& x) {
                                       return DatumVector{x, x};
                                     }}));
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.bags().at("m"), Ints({11, 12, 13, 14}));
  EXPECT_EQ(interp.bags().at("f"), Ints({2, 4}));
  EXPECT_EQ(interp.bags().at("fm"), Ints({1, 1, 2, 2, 3, 3, 4, 4}));
}

TEST_F(InterpreterTest, ReduceByKeyCombinesPerKey) {
  ProgramBuilder pb;
  pb.Assign("b", BagLit(Ints({7, 8, 7, 7, 9, 8})));
  pb.Assign("counts", ReduceByKey(Map(Var("b"), fns::PairWithOne()),
                                  fns::SumInt64()));
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  DatumVector expected = {Datum::Pair(Datum::Int64(7), Datum::Int64(3)),
                          Datum::Pair(Datum::Int64(8), Datum::Int64(2)),
                          Datum::Pair(Datum::Int64(9), Datum::Int64(1))};
  EXPECT_EQ(Sorted(interp.bags().at("counts")), Sorted(expected));
}

TEST_F(InterpreterTest, ReduceOnEmptyBagIsEmpty) {
  ProgramBuilder pb;
  pb.Assign("b", BagLit({}));
  pb.Assign("r", Reduce(Var("b"), fns::SumInt64()));
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_TRUE(interp.bags().at("r").empty());
}

TEST_F(InterpreterTest, ReduceFoldsWholeBag) {
  ProgramBuilder pb;
  pb.Assign("b", BagLit(Ints({1, 2, 3, 4, 5})));
  pb.Assign("r", Reduce(Var("b"), fns::SumInt64()));
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.bags().at("r"), Ints({15}));
}

TEST_F(InterpreterTest, JoinEmitsKeyBuildProbeTuples) {
  ProgramBuilder pb;
  pb.Assign("build",
            BagLit({Datum::Pair(Datum::Int64(1), Datum::String("a")),
                    Datum::Pair(Datum::Int64(2), Datum::String("b")),
                    Datum::Pair(Datum::Int64(1), Datum::String("c"))}));
  pb.Assign("probe", BagLit({Datum::Pair(Datum::Int64(1), Datum::Int64(10)),
                             Datum::Pair(Datum::Int64(3), Datum::Int64(30))}));
  pb.Assign("j", Join(Var("build"), Var("probe")));
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  DatumVector expected = {
      Datum::Tuple({Datum::Int64(1), Datum::String("a"), Datum::Int64(10)}),
      Datum::Tuple({Datum::Int64(1), Datum::String("c"), Datum::Int64(10)})};
  EXPECT_EQ(Sorted(interp.bags().at("j")), Sorted(expected));
}

TEST_F(InterpreterTest, UnionDistinctCount) {
  ProgramBuilder pb;
  pb.Assign("a", BagLit(Ints({1, 2})));
  pb.Assign("b", BagLit(Ints({2, 3})));
  pb.Assign("u", Union(Var("a"), Var("b")));
  pb.Assign("d", Distinct(Var("u")));
  pb.Assign("c", Count(Var("u")));
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.bags().at("u"), Ints({1, 2, 2, 3}));
  EXPECT_EQ(Sorted(interp.bags().at("d")), Ints({1, 2, 3}));
  EXPECT_EQ(interp.bags().at("c"), Ints({4}));
}

TEST_F(InterpreterTest, ScalarFromBagRequiresSingleton) {
  ProgramBuilder pb;
  pb.Assign("b", BagLit(Ints({1, 2})));
  pb.Assign("s", ScalarFromBag(Var("b")));
  Interpreter interp(&fs_);
  EXPECT_FALSE(interp.Run(pb.Build()).ok());
}

TEST_F(InterpreterTest, ReadMissingFileFails) {
  ProgramBuilder pb;
  pb.Assign("b", ReadFile(LitString("missing")));
  Interpreter interp(&fs_);
  Status status = interp.Run(pb.Build());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(InterpreterTest, FileRoundTripThroughLoop) {
  fs_.Write("in1", Ints({1, 2}));
  fs_.Write("in2", Ints({3}));
  ProgramBuilder pb;
  pb.Assign("i", LitInt(1));
  pb.While(Le(Var("i"), LitInt(2)), [&] {
    pb.Assign("data", ReadFile(Concat(LitString("in"), Var("i"))));
    pb.WriteFile(Map(Var("data"), fns::AddInt64(100)),
                 Concat(LitString("out"), Var("i")));
    pb.Assign("i", Add(Var("i"), LitInt(1)));
  });
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(*fs_.Read("out1"), Ints({101, 102}));
  EXPECT_EQ(*fs_.Read("out2"), Ints({103}));
  EXPECT_EQ(interp.stats().elements_read, 3);
  EXPECT_EQ(interp.stats().elements_written, 3);
}

TEST_F(InterpreterTest, VisitCountDiffProgramEndToEnd) {
  // The paper's running example (Sec. 2) on a tiny 3-day input.
  fs_.Write("pageVisitLog1", Ints({1, 1, 2}));
  fs_.Write("pageVisitLog2", Ints({1, 2, 2}));
  fs_.Write("pageVisitLog3", Ints({2, 2, 2}));
  ProgramBuilder pb;
  pb.Assign("yesterday", BagLit({}));
  pb.Assign("day", LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("visits",
                  ReadFile(Concat(LitString("pageVisitLog"), Var("day"))));
        pb.Assign("counts", ReduceByKey(Map(Var("visits"), fns::PairWithOne()),
                                        fns::SumInt64()));
        pb.If(Ne(Var("day"), LitInt(1)), [&] {
          pb.Assign("joined", Join(Var("yesterday"), Var("counts")));
          pb.Assign("diffs", Map(Var("joined"), fns::AbsDiffFields12()));
          pb.Assign("summed", Reduce(Var("diffs"), fns::SumInt64()));
          pb.WriteFile(Var("summed"), Concat(LitString("diff"), Var("day")));
        });
        pb.Assign("yesterday", Var("counts"));
        pb.Assign("day", Add(Var("day"), LitInt(1)));
      },
      Le(Var("day"), LitInt(3)));
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  // Day1: {1:2, 2:1}; Day2: {1:1, 2:2} -> |2-1| + |1-2| = 2.
  // Day3: {2:3} -> joined only on page 2: |2-3| = 1.
  EXPECT_EQ(*fs_.Read("diff2"), Ints({2}));
  EXPECT_EQ(*fs_.Read("diff3"), Ints({1}));
  EXPECT_FALSE(fs_.Exists("diff1"));
}

TEST_F(InterpreterTest, NestedLoops) {
  ProgramBuilder pb;
  pb.Assign("total", LitInt(0));
  pb.Assign("i", LitInt(0));
  pb.While(Lt(Var("i"), LitInt(3)), [&] {
    pb.Assign("j", LitInt(0));
    pb.While(Lt(Var("j"), LitInt(4)), [&] {
      pb.Assign("total", Add(Var("total"), LitInt(1)));
      pb.Assign("j", Add(Var("j"), LitInt(1)));
    });
    pb.Assign("i", Add(Var("i"), LitInt(1)));
  });
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.scalars().at("total").int64(), 12);
}

TEST_F(InterpreterTest, DivisionByZeroIsError) {
  ProgramBuilder pb;
  pb.Assign("x", Div(LitInt(1), LitInt(0)));
  Interpreter interp(&fs_);
  EXPECT_FALSE(interp.Run(pb.Build()).ok());
}

TEST_F(InterpreterTest, ConditionOverBagViaScalarFromBag) {
  // while (residual > 0) — condition flows out of a bag, k-means style.
  ProgramBuilder pb;
  pb.Assign("vals", BagLit(Ints({5})));
  pb.Assign("steps", LitInt(0));
  pb.While(Gt(ScalarFromBag(Var("vals")), LitInt(0)), [&] {
    pb.Assign("vals", Map(Var("vals"), fns::AddInt64(-2)));
    pb.Assign("steps", Add(Var("steps"), LitInt(1)));
  });
  Interpreter interp(&fs_);
  ASSERT_TRUE(interp.Run(pb.Build()).ok());
  EXPECT_EQ(interp.scalars().at("steps").int64(), 3);  // 5 -> 3 -> 1 -> -1
}

}  // namespace
}  // namespace mitos::lang
