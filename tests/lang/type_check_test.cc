#include "lang/type_check.h"

#include <gtest/gtest.h>

#include "lang/builder.h"

namespace mitos::lang {
namespace {

TEST(TypeCheckTest, InfersScalarAndBagTypes) {
  ProgramBuilder pb;
  pb.Assign("n", LitInt(3));
  pb.Assign("b", BagLit({Datum::Int64(1)}));
  pb.Assign("m", Map(Var("b"), fns::Identity()));
  pb.Assign("s", ScalarFromBag(Var("m")));
  auto result = TypeCheck(pb.Build());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->var_types.at("n"), VarType::kScalar);
  EXPECT_EQ(result->var_types.at("b"), VarType::kBag);
  EXPECT_EQ(result->var_types.at("m"), VarType::kBag);
  EXPECT_EQ(result->var_types.at("s"), VarType::kScalar);
}

TEST(TypeCheckTest, RejectsUseBeforeDef) {
  ProgramBuilder pb;
  pb.Assign("y", Add(Var("x"), LitInt(1)));
  auto result = TypeCheck(pb.Build());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TypeCheckTest, RejectsMapOnScalar) {
  ProgramBuilder pb;
  pb.Assign("x", LitInt(1));
  pb.Assign("y", Map(Var("x"), fns::Identity()));
  auto result = TypeCheck(pb.Build());
  ASSERT_FALSE(result.ok());
}

TEST(TypeCheckTest, AcceptsBagConditions) {
  // Conditions may be one-element bool bags — this is the form the
  // Preparator produces (paper Sec. 4.1) and is also user-writable.
  ProgramBuilder pb;
  pb.Assign("b", BagLit({Datum::Bool(false)}));
  pb.While(Var("b"), [] {});
  EXPECT_TRUE(TypeCheck(pb.Build()).ok());
}

TEST(TypeCheckTest, RejectsBinOpOnBagOperand) {
  ProgramBuilder pb;
  pb.Assign("b", BagLit({Datum::Int64(1)}));
  pb.Assign("x", Add(Var("b"), LitInt(1)));
  EXPECT_FALSE(TypeCheck(pb.Build()).ok());
}

TEST(TypeCheckTest, Combine2RequiresBags) {
  ProgramBuilder pb;
  pb.Assign("x", LitInt(1));
  pb.Assign("b", BagLit({Datum::Int64(2)}));
  pb.Assign("c", Combine2(Var("x"), Var("b"), fns::SumInt64()));
  EXPECT_FALSE(TypeCheck(pb.Build()).ok());
}

TEST(TypeCheckTest, RejectsMixedScalarBagAssignment) {
  ProgramBuilder pb;
  pb.Assign("x", LitInt(1));
  pb.Assign("x", BagLit({Datum::Int64(1)}));
  auto result = TypeCheck(pb.Build());
  ASSERT_FALSE(result.ok());
}

TEST(TypeCheckTest, VariableDefinedInOnlyOneIfBranchIsNotDefinedAfter) {
  ProgramBuilder pb;
  pb.Assign("c", LitBool(true));
  pb.If(Var("c"), [&] { pb.Assign("a", LitInt(1)); });
  pb.Assign("y", Add(Var("a"), LitInt(1)));
  auto result = TypeCheck(pb.Build());
  ASSERT_FALSE(result.ok());
}

TEST(TypeCheckTest, VariableDefinedInBothIfBranchesIsDefinedAfter) {
  ProgramBuilder pb;
  pb.Assign("c", LitBool(true));
  pb.If(Var("c"), [&] { pb.Assign("a", LitInt(1)); },
        [&] { pb.Assign("a", LitInt(2)); });
  pb.Assign("y", Add(Var("a"), LitInt(1)));
  auto result = TypeCheck(pb.Build());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(TypeCheckTest, WhileBodyDefinitionsDoNotEscape) {
  ProgramBuilder pb;
  pb.Assign("c", LitBool(false));
  pb.While(Var("c"), [&] { pb.Assign("a", LitInt(1)); });
  pb.Assign("y", Add(Var("a"), LitInt(1)));
  auto result = TypeCheck(pb.Build());
  ASSERT_FALSE(result.ok());
}

TEST(TypeCheckTest, DoWhileBodyDefinitionsEscape) {
  ProgramBuilder pb;
  pb.DoWhile([&] { pb.Assign("a", LitInt(1)); }, LitBool(false));
  pb.Assign("y", Add(Var("a"), LitInt(1)));
  auto result = TypeCheck(pb.Build());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(TypeCheckTest, DoWhileConditionMayUseBodyVariable) {
  ProgramBuilder pb;
  pb.DoWhile([&] { pb.Assign("i", LitInt(1)); }, Lt(Var("i"), LitInt(0)));
  EXPECT_TRUE(TypeCheck(pb.Build()).ok());
}

TEST(TypeCheckTest, WhileConditionVariableMustPreexist) {
  ProgramBuilder pb;
  pb.While(Var("i"), [&] { pb.Assign("i", LitBool(false)); });
  EXPECT_FALSE(TypeCheck(pb.Build()).ok());
}

TEST(TypeCheckTest, AcceptsVisitCountProgram) {
  ProgramBuilder pb;
  pb.Assign("yesterdayCounts", BagLit({}));
  pb.Assign("day", LitInt(1));
  pb.DoWhile(
      [&] {
        pb.Assign("visits",
                  ReadFile(Concat(LitString("pageVisitLog"), Var("day"))));
        pb.Assign("counts", ReduceByKey(Map(Var("visits"), fns::PairWithOne()),
                                        fns::SumInt64()));
        pb.If(Ne(Var("day"), LitInt(1)), [&] {
          pb.Assign("joined", Join(Var("yesterdayCounts"), Var("counts")));
          pb.Assign("diffs", Map(Var("joined"), fns::AbsDiffFields12()));
          pb.Assign("summed", Reduce(Var("diffs"), fns::SumInt64()));
          pb.WriteFile(Var("summed"), Concat(LitString("diff"), Var("day")));
        });
        pb.Assign("yesterdayCounts", Var("counts"));
        pb.Assign("day", Add(Var("day"), LitInt(1)));
      },
      Le(Var("day"), LitInt(365)));
  auto result = TypeCheck(pb.Build());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->var_types.at("yesterdayCounts"), VarType::kBag);
  EXPECT_EQ(result->var_types.at("day"), VarType::kScalar);
}

}  // namespace
}  // namespace mitos::lang
