#include "dataflow/operators.h"

#include <gtest/gtest.h>

#include "common/chunk.h"

namespace mitos::dataflow {
namespace {

DatumVector Ints(std::initializer_list<int64_t> values) {
  DatumVector out;
  for (int64_t v : values) out.push_back(Datum::Int64(v));
  return out;
}

// Drives one output bag through a kernel and collects emissions. With
// `columnar` false the kernel and every input chunk stay boxed, exercising
// the generic paths the columnar fast paths must agree with.
DatumVector RunBag(BagOperator& op,
                   const std::vector<std::pair<int, DatumVector>>& pushes,
                   int num_inputs = 1, bool columnar = true) {
  op.set_columnar(columnar);
  DatumVector collected;
  BagOperator::EmitFn emit = [&](Chunk&& chunk) {
    chunk.AppendTo(&collected);
  };
  op.Open();
  for (const auto& [input, data] : pushes) {
    op.Push(input, Chunk::OfDatums(DatumVector(data), columnar), emit);
  }
  for (int i = 0; i < num_inputs; ++i) op.Close(i, emit);
  op.Finish(emit);
  return collected;
}

TEST(OperatorsTest, MapTransformsEveryElement) {
  MapOp op(lang::fns::AddInt64(5));
  DatumVector out = RunBag(op, {{0, Ints({1, 2})}, {0, Ints({3})}});
  EXPECT_EQ(out, Ints({6, 7, 8}));
}

TEST(OperatorsTest, FilterKeepsMatching) {
  FilterOp op(lang::fns::Int64ModEquals(2, 1));
  DatumVector out = RunBag(op, {{0, Ints({1, 2, 3, 4, 5})}});
  EXPECT_EQ(out, Ints({1, 3, 5}));
}

TEST(OperatorsTest, FlatMapExpands) {
  FlatMapOp op({"explode", [](const Datum& x) {
                  DatumVector v;
                  for (int64_t i = 0; i < x.int64(); ++i) {
                    v.push_back(Datum::Int64(i));
                  }
                  return v;
                }});
  DatumVector out = RunBag(op, {{0, Ints({2, 0, 3})}});
  EXPECT_EQ(out, Ints({0, 1, 0, 1, 2}));
}

TEST(OperatorsTest, ReduceByKeyAggregatesAcrossChunks) {
  ReduceByKeyOp op(lang::fns::SumInt64());
  DatumVector out = RunBag(
      op, {{0, {Datum::Pair(Datum::Int64(1), Datum::Int64(10))}},
           {0, {Datum::Pair(Datum::Int64(2), Datum::Int64(5)),
                Datum::Pair(Datum::Int64(1), Datum::Int64(1))}}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Datum::Pair(Datum::Int64(1), Datum::Int64(11)));
  EXPECT_EQ(out[1], Datum::Pair(Datum::Int64(2), Datum::Int64(5)));
}

TEST(OperatorsTest, ReduceByKeyResetsBetweenBags) {
  ReduceByKeyOp op(lang::fns::SumInt64());
  RunBag(op, {{0, {Datum::Pair(Datum::Int64(1), Datum::Int64(10))}}});
  DatumVector out =
      RunBag(op, {{0, {Datum::Pair(Datum::Int64(1), Datum::Int64(2))}}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].field(1).int64(), 2);  // not 12: state was dropped
}

TEST(OperatorsTest, ReduceByKeyDegradesToGenericMidBag) {
  // First chunk hits the typed accumulator; the second is a boxed mixed
  // chunk, forcing a mid-bag degrade that must preserve the typed state.
  ReduceByKeyOp op(lang::fns::SumInt64());
  op.set_columnar(true);
  DatumVector collected;
  BagOperator::EmitFn emit = [&](Chunk&& chunk) {
    chunk.AppendTo(&collected);
  };
  op.Open();
  op.Push(0,
          Chunk::OfDatums({Datum::Pair(Datum::Int64(1), Datum::Int64(10)),
                           Datum::Pair(Datum::Int64(2), Datum::Int64(5))}),
          emit);
  op.Push(0,
          Chunk::OfDatums({Datum::Pair(Datum::String("k"), Datum::Int64(3)),
                           Datum::Pair(Datum::Int64(1), Datum::Int64(1))},
                          /*columnarize=*/false),
          emit);
  op.Close(0, emit);
  op.Finish(emit);
  ASSERT_EQ(collected.size(), 3u);
  EXPECT_EQ(collected[0], Datum::Pair(Datum::Int64(1), Datum::Int64(11)));
  EXPECT_EQ(collected[1], Datum::Pair(Datum::Int64(2), Datum::Int64(5)));
  EXPECT_EQ(collected[2],
            Datum::Pair(Datum::String("k"), Datum::Int64(3)));
}

TEST(OperatorsTest, ReduceEmitsNothingOnEmptyInput) {
  ReduceOp op(lang::fns::SumInt64());
  EXPECT_TRUE(RunBag(op, {}).empty());
}

TEST(OperatorsTest, ReduceFolds) {
  ReduceOp op(lang::fns::SumInt64());
  DatumVector out = RunBag(op, {{0, Ints({1, 2})}, {0, Ints({3})}});
  EXPECT_EQ(out, Ints({6}));
}

TEST(OperatorsTest, CountEmitsZeroForEmpty) {
  CountOp op;
  EXPECT_EQ(RunBag(op, {}), Ints({0}));
}

TEST(OperatorsTest, JoinBuildThenProbe) {
  JoinOp op;
  DatumVector out = RunBag(
      op,
      {{0, {Datum::Pair(Datum::Int64(1), Datum::String("a"))}},
       {1, {Datum::Pair(Datum::Int64(1), Datum::Int64(10)),
            Datum::Pair(Datum::Int64(2), Datum::Int64(20))}}},
      /*num_inputs=*/2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Datum::Tuple({Datum::Int64(1), Datum::String("a"),
                                  Datum::Int64(10)}));
}

TEST(OperatorsTest, JoinBlockingInputIsBuildSide) {
  JoinOp op;
  EXPECT_EQ(op.BlockingInput(), 0);
  EXPECT_TRUE(op.CanReuseInput(0));
  EXPECT_FALSE(op.CanReuseInput(1));
}

TEST(OperatorsTest, JoinReusesBuildStateWhenAsked) {
  JoinOp op;
  // Bag 1: build {1: a}, probe nothing.
  RunBag(op, {{0, {Datum::Pair(Datum::Int64(1), Datum::String("a"))}}},
         /*num_inputs=*/2);
  // Bag 2: reuse the build side, probe key 1 — must still match.
  op.SetReuseInput(0, true);
  DatumVector collected;
  BagOperator::EmitFn emit = [&](Chunk&& chunk) {
    chunk.AppendTo(&collected);
  };
  op.Open();
  op.Push(1, Chunk::OfDatums({Datum::Pair(Datum::Int64(1), Datum::Int64(7))}),
          emit);
  op.Finish(emit);
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].field(1).str(), "a");
}

TEST(OperatorsTest, JoinDropsBuildStateWithoutReuse) {
  JoinOp op;
  RunBag(op, {{0, {Datum::Pair(Datum::Int64(1), Datum::String("a"))}}},
         /*num_inputs=*/2);
  op.SetReuseInput(0, false);
  DatumVector collected;
  BagOperator::EmitFn emit = [&](Chunk&& chunk) {
    chunk.AppendTo(&collected);
  };
  op.Open();
  op.Push(1, Chunk::OfDatums({Datum::Pair(Datum::Int64(1), Datum::Int64(7))}),
          emit);
  op.Finish(emit);
  EXPECT_TRUE(collected.empty());
}

TEST(OperatorsTest, JoinMultiMatchEmitsAllBuildValues) {
  JoinOp op;
  DatumVector out = RunBag(
      op,
      {{0, {Datum::Pair(Datum::Int64(1), Datum::String("a")),
            Datum::Pair(Datum::Int64(1), Datum::String("b"))}},
       {1, {Datum::Pair(Datum::Int64(1), Datum::Int64(9))}}},
      /*num_inputs=*/2);
  EXPECT_EQ(out.size(), 2u);
}

TEST(OperatorsTest, UnionForwardsBothInputs) {
  UnionOp op;
  DatumVector out = RunBag(op, {{0, Ints({1})}, {1, Ints({2})},
                                {0, Ints({3})}},
                           /*num_inputs=*/2);
  EXPECT_EQ(out, Ints({1, 2, 3}));
}

TEST(OperatorsTest, DistinctDeduplicatesWithinBag) {
  DistinctOp op;
  DatumVector out = RunBag(op, {{0, Ints({1, 2, 1})}, {0, Ints({2, 3})}});
  EXPECT_EQ(out, Ints({1, 2, 3}));
  // And resets between bags.
  DatumVector again = RunBag(op, {{0, Ints({1})}});
  EXPECT_EQ(again, Ints({1}));
}

TEST(OperatorsTest, Combine2AppliesFunction) {
  Combine2Op op(lang::fns::SumInt64());
  DatumVector out = RunBag(op, {{0, Ints({4})}, {1, Ints({5})}},
                           /*num_inputs=*/2);
  EXPECT_EQ(out, Ints({9}));
}

TEST(OperatorsTest, Combine2EmitsNothingWhenAnInputIsEmpty) {
  Combine2Op op(lang::fns::SumInt64());
  DatumVector out = RunBag(op, {{0, Ints({4})}}, /*num_inputs=*/2);
  EXPECT_TRUE(out.empty());
}

TEST(OperatorsTest, PhiForwardsSelectedInput) {
  PhiOp op;
  DatumVector out = RunBag(op, {{1, Ints({7, 8})}}, /*num_inputs=*/2);
  EXPECT_EQ(out, Ints({7, 8}));
}

TEST(OperatorsTest, MakeOperatorDispatch) {
  LogicalNode node;
  node.kind = NodeKind::kMap;
  node.unary = lang::fns::Identity();
  EXPECT_NE(MakeOperator(node), nullptr);
  node.kind = NodeKind::kReadFile;
  EXPECT_EQ(MakeOperator(node), nullptr);  // host-handled
  node.kind = NodeKind::kCondition;
  EXPECT_EQ(MakeOperator(node), nullptr);
  node.kind = NodeKind::kJoin;
  EXPECT_NE(MakeOperator(node), nullptr);
}

// Every vectorized fast path must agree element-for-element with the
// generic (boxed) path it replaces.
TEST(OperatorsTest, ColumnarMatchesBoxedAcrossKernels) {
  DatumVector ints, doubles, pairs;
  for (int64_t i = 0; i < 100; ++i) {
    ints.push_back(Datum::Int64(i * 7 % 23));
    doubles.push_back(Datum::Double(static_cast<double>(i) * 0.5));
    pairs.push_back(Datum::Pair(Datum::Int64(i % 5), Datum::Int64(i)));
  }
  struct Case {
    const char* name;
    std::function<std::unique_ptr<BagOperator>()> make;
    const DatumVector* input;
  };
  const std::vector<Case> cases = {
      {"map.addInt64", [] { return std::make_unique<MapOp>(
                                lang::fns::AddInt64(3)); }, &ints},
      {"map.pairWithOne", [] { return std::make_unique<MapOp>(
                                   lang::fns::PairWithOne()); }, &ints},
      {"map.field0", [] { return std::make_unique<MapOp>(
                              lang::fns::Field(0)); }, &pairs},
      {"map.pairSwap", [] { return std::make_unique<MapOp>(
                                lang::fns::PairSwap()); }, &pairs},
      {"map.scaleDouble", [] { return std::make_unique<MapOp>(
                                   lang::fns::ScaleDouble(1.5)); }, &doubles},
      {"filter.gt", [] { return std::make_unique<FilterOp>(
                             lang::fns::GtInt64(10)); }, &ints},
      {"filter.fieldEquals", [] { return std::make_unique<FilterOp>(
                                      lang::fns::FieldEquals(
                                          0, Datum::Int64(2))); }, &pairs},
      {"flatMap.dup", [] { return std::make_unique<FlatMapOp>(
                               lang::fns::Dup()); }, &ints},
      {"reduceByKey.sum", [] { return std::make_unique<ReduceByKeyOp>(
                                   lang::fns::SumInt64()); }, &pairs},
      {"reduceByKey.min", [] { return std::make_unique<ReduceByKeyOp>(
                                   lang::fns::MinInt64()); }, &pairs},
      {"reduce.sum", [] { return std::make_unique<ReduceOp>(
                              lang::fns::SumInt64()); }, &ints},
      {"reduce.max", [] { return std::make_unique<ReduceOp>(
                              lang::fns::MaxInt64()); }, &ints},
      {"distinct", [] { return std::make_unique<DistinctOp>(); }, &ints},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    // Split the input in two chunks to exercise cross-chunk state.
    DatumVector first(c.input->begin(), c.input->begin() + 40);
    DatumVector rest(c.input->begin() + 40, c.input->end());
    auto fast_op = c.make();
    DatumVector fast = RunBag(*fast_op, {{0, first}, {0, rest}},
                              /*num_inputs=*/1, /*columnar=*/true);
    auto boxed_op = c.make();
    DatumVector boxed = RunBag(*boxed_op, {{0, first}, {0, rest}},
                               /*num_inputs=*/1, /*columnar=*/false);
    EXPECT_EQ(fast, boxed);
    EXPECT_FALSE(fast.empty());
  }
}

}  // namespace
}  // namespace mitos::dataflow
