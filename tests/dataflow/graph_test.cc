#include "dataflow/graph.h"

#include <gtest/gtest.h>

#include "ir/ssa.h"
#include "runtime/translator.h"
#include "workloads/programs.h"

namespace mitos::dataflow {
namespace {

LogicalGraph VisitCountGraph() {
  lang::Program program = workloads::VisitCountProgram({.days = 3});
  auto ir = ir::CompileToIr(program);
  MITOS_CHECK(ir.ok());
  auto translated = runtime::Translate(*ir, 4);
  MITOS_CHECK(translated.ok());
  return std::move(translated->graph);
}

TEST(GraphTest, OutEdgesInvertInputs) {
  LogicalGraph g = VisitCountGraph();
  auto out = g.BuildOutEdges();
  int edges_via_inputs = 0;
  for (const LogicalNode& node : g.nodes) {
    edges_via_inputs += static_cast<int>(node.inputs.size());
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      // The producer's out-edge list contains this (consumer, input).
      bool found = false;
      for (const auto& oe :
           out[static_cast<size_t>(node.inputs[i].from)]) {
        if (oe.to == node.id && oe.input_index == static_cast<int>(i)) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << node.name << " input " << i;
    }
  }
  int edges_via_out = 0;
  for (const auto& v : out) edges_via_out += static_cast<int>(v.size());
  EXPECT_EQ(edges_via_inputs, edges_via_out);
}

TEST(GraphTest, ToStringListsEveryNode) {
  LogicalGraph g = VisitCountGraph();
  std::string text = ToString(g);
  for (const LogicalNode& node : g.nodes) {
    EXPECT_NE(text.find(node.name), std::string::npos) << node.name;
  }
  EXPECT_NE(text.find("conditional"), std::string::npos);
  EXPECT_NE(text.find("shuffle"), std::string::npos);
}

TEST(GraphTest, ToDotIsWellFormedGraphviz) {
  LogicalGraph g = VisitCountGraph();
  std::string dot = ToDot(g);
  EXPECT_EQ(dot.rfind("digraph mitos {", 0), 0u);
  EXPECT_NE(dot.find("subgraph cluster_block"), std::string::npos);
  // Φ nodes render black (the paper's Fig. 3b styling).
  EXPECT_NE(dot.find("fillcolor=black"), std::string::npos);
  // Condition nodes are colored, conditional edges dashed.
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // Every node id appears; braces balance.
  for (const LogicalNode& node : g.nodes) {
    EXPECT_NE(dot.find("n" + std::to_string(node.id) + " "),
              std::string::npos);
  }
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(GraphTest, IrPrinterShowsBlocksAndPhis) {
  lang::Program program = workloads::VisitCountProgram({.days = 3});
  auto ir = ir::CompileToIr(program);
  ASSERT_TRUE(ir.ok());
  std::string text = ir::ToString(*ir);
  EXPECT_NE(text.find("block 0 (entry):"), std::string::npos);
  EXPECT_NE(text.find("Φ("), std::string::npos);
  EXPECT_NE(text.find("branch"), std::string::npos);
  EXPECT_NE(text.find("exit"), std::string::npos);
  EXPECT_NE(text.find("[singleton]"), std::string::npos);
  EXPECT_NE(text.find("readFile("), std::string::npos);
}

}  // namespace
}  // namespace mitos::dataflow
